//! Watching the segment cleaner work (§4.3).
//!
//! Fills a small disk with short-lived files until the cleaner must run,
//! then prints the segment life cycle and the cost of cleaning at the
//! resulting utilization.
//!
//! ```sh
//! cargo run --release --example cleaner_tuning
//! ```

use std::sync::Arc;

use lfs_repro::lfs_core::layout::usage_block::SegState;
use lfs_repro::lfs_core::{CleanerPolicy, Lfs, LfsConfig};
use lfs_repro::obs::report::Report;
use lfs_repro::sim_disk::{Clock, DiskGeometry, SimDisk};
use lfs_repro::vfs::FileSystem;
use lfs_repro::workload::payload;

fn segment_picture(fs: &Lfs<SimDisk>) -> String {
    let usage = fs.usage_table();
    (0..usage.nsegments())
        .map(|i| {
            let seg = lfs_repro::lfs_core::SegNo(i);
            match usage.state(seg) {
                SegState::Active => 'A',
                SegState::Clean => '.',
                SegState::CleanPending => 'p',
                SegState::Dirty => {
                    let u = usage.utilization(seg);
                    char::from_digit((u * 9.99) as u32, 10).unwrap_or('9')
                }
            }
        })
        .collect()
}

fn main() {
    // 24 MB disk, 1 MB segments: small enough to watch.
    let clock = Clock::new();
    let disk = SimDisk::new(
        DiskGeometry::wren_iv().with_sectors(24 * 2048),
        Arc::clone(&clock),
    );
    let mut cfg = LfsConfig::paper().with_cache_bytes(2 * 1024 * 1024);
    cfg.cleaner.policy = CleanerPolicy::Greedy;
    let mut fs = Lfs::format(disk, cfg, Arc::clone(&clock)).unwrap();

    println!("segment map legend: . clean | A active | p clean-pending | 0-9 live tenths\n");
    let data = payload(11, 96 * 1024);
    for round in 0..48 {
        // Churn: write four files; after they reach the log, delete
        // three (dead blocks now litter the segments they landed in).
        for i in 0..4 {
            let path = format!("/r{round:02}f{i}");
            fs.write_file(&path, &data).unwrap();
        }
        fs.sync().unwrap();
        for i in 0..3 {
            let path = format!("/r{round:02}f{i}");
            fs.unlink(&path).unwrap();
        }
        if round % 4 == 3 {
            println!(
                "round {round:>2}: [{}] clean={} cleaned so far={}",
                segment_picture(&fs),
                fs.usage_table().clean_count(),
                fs.stats().segments_cleaned
            );
        }
    }

    println!("\ncleaner totals: {:?}", fs.stats().segments_cleaned);
    println!(
        "live blocks copied: {} ({} whole-segment reads)",
        fs.stats().cleaner_blocks_copied,
        fs.stats().cleaner_bytes_read / (1024 * 1024)
    );

    // Explicit user-initiated cleaning (the §4.3.4 interface): compact
    // everything possible.
    let before = fs.usage_table().clean_count();
    let after = fs.clean_until(usize::MAX).unwrap();
    println!("\nuser-initiated clean_until: clean {before} -> {after}");
    println!("final map: [{}]", segment_picture(&fs));

    let report = fs.fsck().unwrap();
    println!("fsck: {report}");

    let mut metrics = Report::new("example_cleaner_tuning");
    metrics.add_run("churn_and_clean", "lfs", clock.now_ns(), fs.obs());
    match metrics.write_bench_json() {
        Ok(path) => println!("metrics: {}", path.display()),
        Err(e) => eprintln!("warning: could not write metrics JSON: {e}"),
    }
}
