//! Quickstart: format an LFS volume on a simulated disk and use it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::obs::report::Report;
use lfs_repro::sim_disk::{Clock, DiskGeometry, SimDisk};
use lfs_repro::vfs::FileSystem;

fn main() {
    // A simulated WREN IV — the disk from the paper's evaluation:
    // 1.3 MB/s bandwidth, 17.5 ms average seek, ~300 MB.
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::wren_iv(), Arc::clone(&clock));

    // Format with the paper's configuration: 4 KB blocks, 1 MB segments,
    // a 15 MB file cache, 30-second write-back and checkpoint intervals.
    let mut fs = Lfs::format(disk, LfsConfig::paper(), Arc::clone(&clock)).unwrap();

    // Ordinary file-system calls.
    fs.mkdir("/projects").unwrap();
    fs.mkdir("/projects/lfs").unwrap();
    fs.write_file("/projects/lfs/notes.txt", b"the disk is a log")
        .unwrap();

    let ino = fs.lookup("/projects/lfs/notes.txt").unwrap();
    let meta = fs.stat(ino).unwrap();
    println!(
        "created /projects/lfs/notes.txt ({} bytes, ino {})",
        meta.size, meta.ino
    );

    // Everything so far lives in the file cache; `sync` packs it into one
    // segment write and commits a checkpoint.
    fs.sync().unwrap();
    println!(
        "after sync: {} log chunks written, {} checkpoints",
        fs.stats().chunks_written,
        fs.stats().checkpoints
    );

    // Reads come from the cache, or from the log after a cache flush.
    fs.drop_caches().unwrap();
    let data = fs.read_file("/projects/lfs/notes.txt").unwrap();
    println!("read back: {:?}", String::from_utf8_lossy(&data));

    // The disk model kept score.
    let stats = fs.device().stats();
    println!(
        "disk: {} writes ({} synchronous), {} reads, {:.1} KB written",
        stats.writes,
        stats.sync_writes,
        stats.reads,
        stats.bytes_written as f64 / 1024.0
    );
    println!("virtual time elapsed: {:.3} s", clock.now_secs());

    // And the file system can prove itself consistent.
    let report = fs.fsck().unwrap();
    println!("fsck: {report}");

    // Dump everything the stack measured — latency histograms, disk time
    // breakdown, cache hits, log composition — as a metrics JSON file.
    let mut metrics = Report::new("example_quickstart");
    metrics.add_run("quickstart", "lfs", clock.now_ns(), fs.obs());
    match metrics.write_bench_json() {
        Ok(path) => println!("metrics: {}", path.display()),
        Err(e) => eprintln!("warning: could not write metrics JSON: {e}"),
    }
}
