//! The office/engineering workload of §3, on both file systems.
//!
//! The paper motivates LFS with this environment: many small files,
//! short lifetimes, whole-file reads and overwrites. This example runs
//! the same seeded workload against LFS and the FFS baseline on identical
//! simulated disks and compares throughput and disk traffic.
//!
//! ```sh
//! cargo run --release --example office_churn
//! ```

use std::sync::Arc;

use lfs_repro::ffs_baseline::{Ffs, FfsConfig};
use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::obs::report::Report;
use lfs_repro::sim_disk::{Clock, DiskGeometry, SimDisk};
use lfs_repro::vfs::FileSystem;
use lfs_repro::workload::office::{run, OfficeSpec};
use lfs_repro::workload::Stopwatch;

fn spec() -> OfficeSpec {
    let mut spec = OfficeSpec::default_mix();
    spec.operations = 10_000;
    spec
}

fn report<F: FileSystem>(name: &str, fs: &mut F, clock: &Arc<Clock>) {
    let watch = Stopwatch::start(Arc::clone(clock));
    let outcome = run(fs, &spec()).unwrap();
    fs.sync().unwrap();
    let secs = watch.elapsed_secs();
    println!(
        "{name}: {} ops in {secs:.1} virtual s ({:.0} ops/s)",
        spec().operations,
        spec().operations as f64 / secs
    );
    println!(
        "  {} creates, {} overwrites, {} reads, {} deletes",
        outcome.creates, outcome.overwrites, outcome.reads, outcome.deletes
    );
}

fn main() {
    let mut metrics = Report::new("example_office_churn");
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::wren_iv(), Arc::clone(&clock));
    let mut lfs = Lfs::format(disk, LfsConfig::paper(), Arc::clone(&clock)).unwrap();
    report("LFS", &mut lfs, &clock);
    metrics.add_run("office", "lfs", clock.now_ns(), lfs.obs());
    let stats = lfs.device().stats();
    println!(
        "  disk: {} writes ({} sync), {:.1} MB written, {:.1} MB read\n",
        stats.writes,
        stats.sync_writes,
        stats.bytes_written as f64 / 1048576.0,
        stats.bytes_read as f64 / 1048576.0
    );

    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::wren_iv(), Arc::clone(&clock));
    let mut ffs = Ffs::format(disk, FfsConfig::paper(), Arc::clone(&clock)).unwrap();
    report("FFS", &mut ffs, &clock);
    metrics.add_run("office", "ffs", clock.now_ns(), ffs.obs());
    let stats = ffs.device().stats();
    println!(
        "  disk: {} writes ({} sync), {:.1} MB written, {:.1} MB read",
        stats.writes,
        stats.sync_writes,
        stats.bytes_written as f64 / 1048576.0,
        stats.bytes_read as f64 / 1048576.0
    );
    println!(
        "\nthe gap is the paper's thesis: FFS pays {} small synchronous\n\
         metadata writes; LFS batches everything into large segment writes.",
        ffs.stats().sync_inode_writes + ffs.stats().sync_dir_writes
    );
    match metrics.write_bench_json() {
        Ok(path) => println!("\nmetrics: {}", path.display()),
        Err(e) => eprintln!("warning: could not write metrics JSON: {e}"),
    }
}
