//! Record a workload on one file system, replay it on the other.
//!
//! The paper's conclusion: "the real test of a file system is its
//! performance over months and years of use" — which takes traces. This
//! example wraps LFS in a [`TracingFs`], runs the office workload through
//! it, serialises the trace to text, and replays it against the FFS
//! baseline for a trace-identical A/B comparison.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use std::sync::Arc;

use lfs_repro::ffs_baseline::{Ffs, FfsConfig};
use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::obs::report::Report;
use lfs_repro::sim_disk::{Clock, DiskGeometry, SimDisk};
use lfs_repro::vfs::FileSystem;
use lfs_repro::workload::office::{run, OfficeSpec};
use lfs_repro::workload::trace::{from_text, replay, to_text, TracingFs};
use lfs_repro::workload::Stopwatch;

fn main() {
    // Record: drive LFS through the tracing wrapper.
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::wren_iv(), Arc::clone(&clock));
    let lfs = Lfs::format(disk, LfsConfig::paper(), Arc::clone(&clock)).unwrap();
    let mut traced = TracingFs::new(lfs);

    let mut spec = OfficeSpec::default_mix();
    spec.operations = 4_000;
    let watch = Stopwatch::start(Arc::clone(&clock));
    run(&mut traced, &spec).unwrap();
    traced.sync().unwrap();
    let lfs_secs = watch.elapsed_secs();

    let (mut lfs, ops) = traced.finish();
    let text = to_text(&ops);
    println!(
        "recorded {} operations ({} KB of trace text) in {lfs_secs:.1} virtual s on LFS",
        ops.len(),
        text.len() / 1024
    );
    println!("first lines of the trace:");
    for line in text.lines().take(6) {
        println!("  {line}");
    }

    let lfs_io = lfs.device().stats().clone();

    // Replay: parse the text back and apply it to FFS.
    let parsed = from_text(&text).unwrap();
    assert_eq!(parsed.len(), ops.len());
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::wren_iv(), Arc::clone(&clock));
    let mut ffs = Ffs::format(disk, FfsConfig::paper(), Arc::clone(&clock)).unwrap();
    let watch = Stopwatch::start(Arc::clone(&clock));
    let outcome = replay(&mut ffs, &parsed);
    ffs.sync().unwrap();
    let ffs_secs = watch.elapsed_secs();

    println!(
        "\nreplayed on FFS: {} ok, {} failed, {ffs_secs:.1} virtual s ({:.1}x slower)",
        outcome.succeeded,
        outcome.failed,
        ffs_secs / lfs_secs
    );
    let ffs_io = ffs.device().stats().clone();
    println!(
        "\ndisk traffic   LFS: {:>6} writes ({} sync)   FFS: {:>6} writes ({} sync)",
        lfs_io.writes, lfs_io.sync_writes, ffs_io.writes, ffs_io.sync_writes
    );

    // Both ended with the same tree.
    let lfs_files = lfs.readdir("/office0").unwrap().len();
    let ffs_files = ffs.readdir("/office0").unwrap().len();
    assert_eq!(lfs_files, ffs_files, "replayed tree diverged");
    println!("both file systems hold the same {lfs_files} files in /office0");

    let mut metrics = Report::new("example_trace_replay");
    metrics.add_run("record", "lfs", lfs.clock().now_ns(), lfs.obs());
    metrics.add_run("replay", "ffs", ffs.clock().now_ns(), ffs.obs());
    match metrics.write_bench_json() {
        Ok(path) => println!("metrics: {}", path.display()),
        Err(e) => eprintln!("warning: could not write metrics JSON: {e}"),
    }
}
