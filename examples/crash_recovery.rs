//! Crash and recover: checkpoints and roll-forward in action (§4.4).
//!
//! Writes files, syncs some of them, crashes the disk mid-operation, and
//! remounts — showing what each recovery mode brings back.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use std::sync::Arc;

use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::obs::report::Report;
use lfs_repro::sim_disk::{Clock, DiskGeometry, SimDisk};
use lfs_repro::vfs::FileSystem;

fn main() {
    let geometry = DiskGeometry::wren_iv().with_sectors(64 * 2048); // 64 MB
    let clock = Clock::new();
    let disk = SimDisk::new(geometry.clone(), Arc::clone(&clock));
    let mut fs = Lfs::format(disk, LfsConfig::paper(), Arc::clone(&clock)).unwrap();

    // Phase 1: durable data, committed by a checkpoint.
    fs.mkdir("/safe").unwrap();
    fs.write_file("/safe/ledger", b"balance: 42").unwrap();
    fs.sync().unwrap();
    println!("checkpointed /safe/ledger");

    // Phase 2: written to the log (fsync pushes a partial segment), but
    // after the last checkpoint.
    let ino = fs
        .write_file("/safe/journal", b"entry 1\nentry 2\n")
        .unwrap();
    fs.fsync(ino).unwrap();
    println!("fsync'd /safe/journal (in the log, after the checkpoint)");

    // Phase 3: still sitting in the file cache — nowhere on disk.
    fs.write_file("/safe/scratch", b"unsaved thoughts").unwrap();
    println!("wrote /safe/scratch (cache only)");

    // CRASH. Take the raw platters; all memory state is gone.
    let image = fs.into_device().into_image();
    println!("\n*** power failure ***\n");

    let mut metrics = Report::new("example_crash_recovery");
    for (mode, roll_forward) in [("checkpoint-only", false), ("roll-forward", true)] {
        let clock = Clock::new();
        let disk = SimDisk::from_image(geometry.clone(), Arc::clone(&clock), image.clone());
        let mut cfg = LfsConfig::paper();
        cfg.roll_forward = roll_forward;
        let t0 = clock.now_ns();
        let mut fs = Lfs::mount(disk, cfg, Arc::clone(&clock)).unwrap();
        let ms = (clock.now_ns() - t0) as f64 / 1e6;

        println!("recovery with {mode}: {ms:.1} virtual ms");
        for path in ["/safe/ledger", "/safe/journal", "/safe/scratch"] {
            match fs.read_file(path) {
                Ok(data) => println!("  {path}: recovered ({} bytes)", data.len()),
                Err(e) => println!("  {path}: lost ({e})"),
            }
        }
        let report = fs.fsck().unwrap();
        println!("  fsck: {report}");
        metrics.add_run(mode, "lfs", clock.now_ns(), fs.obs());
        if roll_forward {
            println!(
                "  roll-forward replayed {} log chunks, {} inodes",
                fs.stats().rollforward_chunks,
                fs.stats().rollforward_inodes
            );
        }
        println!();
    }
    println!(
        "checkpoint-only recovery keeps what the last checkpoint saw; \n\
         roll-forward also recovers the fsync'd journal from the log tail. \n\
         The cache-only scratch file is gone either way — exactly the \n\
         paper's stated loss window."
    );
    match metrics.write_bench_json() {
        Ok(path) => println!("metrics: {}", path.display()),
        Err(e) => eprintln!("warning: could not write metrics JSON: {e}"),
    }
}
