//! The [`vfs::FileSystem`] implementation for FFS.
//!
//! This is where the paper's §3.1 behaviour lives: `create` and `unlink`
//! perform small, random, *synchronous* writes of the inode-table block
//! and the directory data block — the accesses Figure 1 draws and the
//! reason FFS's small-file throughput cannot scale with CPU speed.

use sim_disk::{BlockDevice, CpuCost};
use vfs::{DirEntry, FileKind, FileSystem, FsError, FsResult, FsStats, Ino, Metadata};

use crate::fs::{CachedInode, Ffs, FfsObs};
use crate::layout::FfsInode;

impl<D: BlockDevice> Ffs<D> {
    /// Runs `f` and records its virtual-clock duration in the histogram
    /// `hist` selects, successful or not — a failed operation still costs
    /// the time it spent.
    fn timed<R>(
        &mut self,
        hist: fn(&FfsObs) -> &obs::Hist,
        f: impl FnOnce(&mut Self) -> FsResult<R>,
    ) -> FsResult<R> {
        let start = self.now();
        let result = f(self);
        let elapsed = self.now().saturating_sub(start);
        hist(&self.obs).record(elapsed);
        result
    }

    fn create_node(&mut self, path: &str, kind: FileKind) -> FsResult<Ino> {
        self.charge(CpuCost::CreateFile);
        let (parent, name) = self.resolve_parent(path)?;
        vfs::path::validate_name(name)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        let (parent_cg, _) = self.sb.ino_location(parent)?;
        let ino = self.alloc.alloc_inode(parent_cg)?;
        let now = self.now();
        self.inodes.insert(
            ino,
            CachedInode {
                inode: FfsInode::new(ino, kind, now),
                dirty: true,
            },
        );
        let range = match self.dir_insert(parent, name, ino, kind) {
            Ok(range) => range,
            Err(e) => {
                self.inodes.remove(&ino);
                let _ = self.alloc.free_inode(ino);
                return Err(e);
            }
        };
        // Figure 1: the new inode and the directory block go to disk
        // synchronously, before creat returns.
        self.write_inode_to_table(ino, true)?;
        self.sync_file_range(parent, range.0, range.1)?;
        self.maybe_writeback()?;
        Ok(ino)
    }

    fn drop_link(&mut self, ino: Ino) -> FsResult<()> {
        let nlink = self.with_inode_mut(ino, |i| {
            i.nlink -= 1;
            i.nlink
        })?;
        if nlink == 0 {
            self.destroy_file(ino)?;
        } else {
            self.write_inode_to_table(ino, true)?;
        }
        Ok(())
    }
}

impl<D: BlockDevice> FileSystem for Ffs<D> {
    fn lookup(&mut self, path: &str) -> FsResult<Ino> {
        self.timed(
            |o| &o.op_lookup,
            |fs| {
                fs.charge(CpuCost::Syscall);
                let components = vfs::path::split(path)?;
                let ino = fs.resolve_components(&components)?;
                fs.maybe_writeback()?;
                Ok(ino)
            },
        )
    }

    fn create(&mut self, path: &str) -> FsResult<Ino> {
        self.timed(
            |o| &o.op_create,
            |fs| fs.create_node(path, FileKind::Regular),
        )
    }

    fn mkdir(&mut self, path: &str) -> FsResult<Ino> {
        self.timed(
            |o| &o.op_mkdir,
            |fs| fs.create_node(path, FileKind::Directory),
        )
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.timed(
            |o| &o.op_unlink,
            |fs| {
                fs.charge(CpuCost::RemoveFile);
                let (parent, name) = fs.resolve_parent(path)?;
                let (ino, kind) = fs.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
                if kind == FileKind::Directory {
                    return Err(FsError::IsADirectory);
                }
                let (_, range) = fs.dir_remove(parent, name)?;
                // Figure 1 semantics: directory block and inode synchronously.
                fs.sync_file_range(parent, range.0, range.1)?;
                fs.drop_link(ino)?;
                fs.maybe_writeback()?;
                Ok(())
            },
        )
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.timed(
            |o| &o.op_rmdir,
            |fs| {
                fs.charge(CpuCost::RemoveFile);
                let (parent, name) = fs.resolve_parent(path)?;
                let (ino, kind) = fs.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
                if kind != FileKind::Directory {
                    return Err(FsError::NotADirectory);
                }
                if !fs.dir_entries(ino)?.is_empty() {
                    return Err(FsError::DirectoryNotEmpty);
                }
                let (_, range) = fs.dir_remove(parent, name)?;
                fs.sync_file_range(parent, range.0, range.1)?;
                fs.destroy_file(ino)?;
                fs.maybe_writeback()?;
                Ok(())
            },
        )
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.timed(
            |o| &o.op_rename,
            |fs| {
                fs.charge(CpuCost::CreateFile);
                let from_parts = vfs::path::split(from)?;
                let to_parts = vfs::path::split(to)?;
                if from_parts == to_parts {
                    fs.resolve_components(&from_parts)?;
                    return Ok(());
                }
                if !from_parts.is_empty() && to_parts.starts_with(&from_parts) {
                    return Err(FsError::InvalidPath);
                }
                let (from_parent, from_name) = fs.resolve_parent(from)?;
                let (to_parent, to_name) = fs.resolve_parent(to)?;
                vfs::path::validate_name(to_name)?;

                let (src, src_kind) = fs
                    .dir_lookup(from_parent, from_name)?
                    .ok_or(FsError::NotFound)?;
                if let Some((existing, existing_kind)) = fs.dir_lookup(to_parent, to_name)? {
                    match existing_kind {
                        FileKind::Directory => return Err(FsError::AlreadyExists),
                        FileKind::Regular => {
                            if src_kind == FileKind::Directory {
                                return Err(FsError::NotADirectory);
                            }
                            let (_, range) = fs.dir_remove(to_parent, to_name)?;
                            fs.sync_file_range(to_parent, range.0, range.1)?;
                            fs.drop_link(existing)?;
                        }
                    }
                }
                let (_, from_range) = fs.dir_remove(from_parent, from_name)?;
                fs.sync_file_range(from_parent, from_range.0, from_range.1)?;
                let to_range = fs.dir_insert(to_parent, to_name, src, src_kind)?;
                fs.sync_file_range(to_parent, to_range.0, to_range.1)?;
                fs.maybe_writeback()?;
                Ok(())
            },
        )
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.timed(
            |o| &o.op_link,
            |fs| {
                fs.charge(CpuCost::CreateFile);
                let components = vfs::path::split(existing)?;
                let src = fs.resolve_components(&components)?;
                if fs.inode(src)?.kind == FileKind::Directory {
                    return Err(FsError::IsADirectory);
                }
                let (parent, name) = fs.resolve_parent(new)?;
                vfs::path::validate_name(name)?;
                if fs.dir_lookup(parent, name)?.is_some() {
                    return Err(FsError::AlreadyExists);
                }
                let range = fs.dir_insert(parent, name, src, FileKind::Regular)?;
                fs.with_inode_mut(src, |i| i.nlink += 1)?;
                fs.write_inode_to_table(src, true)?;
                fs.sync_file_range(parent, range.0, range.1)?;
                fs.maybe_writeback()?;
                Ok(())
            },
        )
    }

    fn read_at(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.timed(
            |o| &o.op_read,
            |fs| {
                fs.charge(CpuCost::Syscall);
                if fs.inode(ino)?.kind == FileKind::Directory {
                    return Err(FsError::IsADirectory);
                }
                let n = fs.do_read(ino, offset, buf)?;
                fs.maybe_writeback()?;
                Ok(n)
            },
        )
    }

    fn write_at(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.timed(
            |o| &o.op_write,
            |fs| {
                fs.charge(CpuCost::Syscall);
                if fs.inode(ino)?.kind == FileKind::Directory {
                    return Err(FsError::IsADirectory);
                }
                let n = fs.do_write(ino, offset, data)?;
                fs.maybe_writeback()?;
                Ok(n)
            },
        )
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        self.timed(
            |o| &o.op_truncate,
            |fs| {
                fs.charge(CpuCost::Syscall);
                if fs.inode(ino)?.kind == FileKind::Directory {
                    return Err(FsError::IsADirectory);
                }
                fs.do_truncate(ino, size)?;
                fs.maybe_writeback()?;
                Ok(())
            },
        )
    }

    fn stat(&mut self, ino: Ino) -> FsResult<Metadata> {
        self.charge(CpuCost::Syscall);
        let inode = self.inode(ino)?;
        Ok(Metadata {
            ino,
            kind: inode.kind,
            size: inode.size,
            nlink: inode.nlink as u32,
            mtime_ns: inode.mtime_ns,
            atime_ns: inode.atime_ns,
        })
    }

    fn readdir(&mut self, path: &str) -> FsResult<Vec<DirEntry>> {
        self.charge(CpuCost::Syscall);
        let components = vfs::path::split(path)?;
        let dir = self.resolve_components(&components)?;
        let entries = self.dir_entries(dir)?;
        Ok(entries
            .into_iter()
            .map(|e| DirEntry {
                name: e.name,
                ino: e.ino,
                kind: e.kind,
            })
            .collect())
    }

    fn fsync(&mut self, ino: Ino) -> FsResult<()> {
        self.timed(
            |o| &o.op_fsync,
            |fs| {
                fs.charge(CpuCost::Syscall);
                fs.ensure_inode(ino)?;
                // Write the file's dirty blocks and inode to their homes.
                let keys: Vec<_> = fs
                    .cache
                    .dirty_keys_of(block_cache::Owner::File(ino))
                    .into_iter()
                    .collect();
                for key in keys {
                    let data = fs.cache.get(key).unwrap().to_vec();
                    let addr = if crate::fs::is_data_idx(key.index) {
                        fs.map_block(ino, key.index)?
                    } else {
                        fs.indirect_home(ino, key.index)?
                    };
                    if addr != crate::layout::NIL {
                        fs.dev.annotate("fsync-data");
                        fs.dev.write(fs.sector_of(addr), &data, true)?;
                        fs.cache.mark_clean(key);
                    }
                }
                fs.write_inode_to_table(ino, true)?;
                fs.dev.flush()?;
                Ok(())
            },
        )
    }

    fn sync(&mut self) -> FsResult<()> {
        self.timed(
            |o| &o.op_sync,
            |fs| {
                fs.charge(CpuCost::Syscall);
                fs.flush_all()?;
                fs.dev.flush()?;
                Ok(())
            },
        )
    }

    fn drop_caches(&mut self) -> FsResult<()> {
        self.cache.drop_clean();
        self.inodes.retain(|_, c| c.dirty);
        Ok(())
    }

    fn fs_stats(&mut self) -> FsResult<FsStats> {
        let total = self.sb.data_capacity_bytes();
        let free = self.alloc.free_blocks() * self.block_size() as u64;
        Ok(FsStats {
            capacity_bytes: total,
            used_bytes: total - free,
            live_inodes: (self.sb.max_inodes() as u64) - self.alloc.free_inodes(),
        })
    }

    fn set_active_client(&mut self, client: Option<u32>) {
        self.cache.set_client(client);
    }
}
