//! The [`vfs::FileSystem`] implementation for FFS.
//!
//! This is where the paper's §3.1 behaviour lives: `create` and `unlink`
//! perform small, random, *synchronous* writes of the inode-table block
//! and the directory data block — the accesses Figure 1 draws and the
//! reason FFS's small-file throughput cannot scale with CPU speed.

use sim_disk::{BlockDevice, CpuCost};
use vfs::{DirEntry, FileKind, FileSystem, FsError, FsResult, FsStats, Ino, Metadata};

use crate::fs::{CachedInode, Ffs};
use crate::layout::FfsInode;

impl<D: BlockDevice> Ffs<D> {
    fn create_node(&mut self, path: &str, kind: FileKind) -> FsResult<Ino> {
        self.charge(CpuCost::CreateFile);
        let (parent, name) = self.resolve_parent(path)?;
        vfs::path::validate_name(name)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        let (parent_cg, _) = self.sb.ino_location(parent)?;
        let ino = self.alloc.alloc_inode(parent_cg)?;
        let now = self.now();
        self.inodes.insert(
            ino,
            CachedInode {
                inode: FfsInode::new(ino, kind, now),
                dirty: true,
            },
        );
        let range = match self.dir_insert(parent, name, ino, kind) {
            Ok(range) => range,
            Err(e) => {
                self.inodes.remove(&ino);
                let _ = self.alloc.free_inode(ino);
                return Err(e);
            }
        };
        // Figure 1: the new inode and the directory block go to disk
        // synchronously, before creat returns.
        self.write_inode_to_table(ino, true)?;
        self.sync_file_range(parent, range.0, range.1)?;
        self.maybe_writeback()?;
        Ok(ino)
    }

    fn drop_link(&mut self, ino: Ino) -> FsResult<()> {
        let nlink = self.with_inode_mut(ino, |i| {
            i.nlink -= 1;
            i.nlink
        })?;
        if nlink == 0 {
            self.destroy_file(ino)?;
        } else {
            self.write_inode_to_table(ino, true)?;
        }
        Ok(())
    }
}

impl<D: BlockDevice> FileSystem for Ffs<D> {
    fn lookup(&mut self, path: &str) -> FsResult<Ino> {
        self.charge(CpuCost::Syscall);
        let components = vfs::path::split(path)?;
        let ino = self.resolve_components(&components)?;
        self.maybe_writeback()?;
        Ok(ino)
    }

    fn create(&mut self, path: &str) -> FsResult<Ino> {
        self.create_node(path, FileKind::Regular)
    }

    fn mkdir(&mut self, path: &str) -> FsResult<Ino> {
        self.create_node(path, FileKind::Directory)
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.charge(CpuCost::RemoveFile);
        let (parent, name) = self.resolve_parent(path)?;
        let (ino, kind) = self.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
        if kind == FileKind::Directory {
            return Err(FsError::IsADirectory);
        }
        let (_, range) = self.dir_remove(parent, name)?;
        // Figure 1 semantics: directory block and inode synchronously.
        self.sync_file_range(parent, range.0, range.1)?;
        self.drop_link(ino)?;
        self.maybe_writeback()?;
        Ok(())
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.charge(CpuCost::RemoveFile);
        let (parent, name) = self.resolve_parent(path)?;
        let (ino, kind) = self.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
        if kind != FileKind::Directory {
            return Err(FsError::NotADirectory);
        }
        if !self.dir_entries(ino)?.is_empty() {
            return Err(FsError::DirectoryNotEmpty);
        }
        let (_, range) = self.dir_remove(parent, name)?;
        self.sync_file_range(parent, range.0, range.1)?;
        self.destroy_file(ino)?;
        self.maybe_writeback()?;
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.charge(CpuCost::CreateFile);
        let from_parts = vfs::path::split(from)?;
        let to_parts = vfs::path::split(to)?;
        if from_parts == to_parts {
            self.resolve_components(&from_parts)?;
            return Ok(());
        }
        if !from_parts.is_empty() && to_parts.starts_with(&from_parts) {
            return Err(FsError::InvalidPath);
        }
        let (from_parent, from_name) = self.resolve_parent(from)?;
        let (to_parent, to_name) = self.resolve_parent(to)?;
        vfs::path::validate_name(to_name)?;

        let (src, src_kind) = self
            .dir_lookup(from_parent, from_name)?
            .ok_or(FsError::NotFound)?;
        if let Some((existing, existing_kind)) = self.dir_lookup(to_parent, to_name)? {
            match existing_kind {
                FileKind::Directory => return Err(FsError::AlreadyExists),
                FileKind::Regular => {
                    if src_kind == FileKind::Directory {
                        return Err(FsError::NotADirectory);
                    }
                    let (_, range) = self.dir_remove(to_parent, to_name)?;
                    self.sync_file_range(to_parent, range.0, range.1)?;
                    self.drop_link(existing)?;
                }
            }
        }
        let (_, from_range) = self.dir_remove(from_parent, from_name)?;
        self.sync_file_range(from_parent, from_range.0, from_range.1)?;
        let to_range = self.dir_insert(to_parent, to_name, src, src_kind)?;
        self.sync_file_range(to_parent, to_range.0, to_range.1)?;
        self.maybe_writeback()?;
        Ok(())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.charge(CpuCost::CreateFile);
        let components = vfs::path::split(existing)?;
        let src = self.resolve_components(&components)?;
        if self.inode(src)?.kind == FileKind::Directory {
            return Err(FsError::IsADirectory);
        }
        let (parent, name) = self.resolve_parent(new)?;
        vfs::path::validate_name(name)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        let range = self.dir_insert(parent, name, src, FileKind::Regular)?;
        self.with_inode_mut(src, |i| i.nlink += 1)?;
        self.write_inode_to_table(src, true)?;
        self.sync_file_range(parent, range.0, range.1)?;
        self.maybe_writeback()?;
        Ok(())
    }

    fn read_at(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.charge(CpuCost::Syscall);
        if self.inode(ino)?.kind == FileKind::Directory {
            return Err(FsError::IsADirectory);
        }
        let n = self.do_read(ino, offset, buf)?;
        self.maybe_writeback()?;
        Ok(n)
    }

    fn write_at(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.charge(CpuCost::Syscall);
        if self.inode(ino)?.kind == FileKind::Directory {
            return Err(FsError::IsADirectory);
        }
        let n = self.do_write(ino, offset, data)?;
        self.maybe_writeback()?;
        Ok(n)
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        self.charge(CpuCost::Syscall);
        if self.inode(ino)?.kind == FileKind::Directory {
            return Err(FsError::IsADirectory);
        }
        self.do_truncate(ino, size)?;
        self.maybe_writeback()?;
        Ok(())
    }

    fn stat(&mut self, ino: Ino) -> FsResult<Metadata> {
        self.charge(CpuCost::Syscall);
        let inode = self.inode(ino)?;
        Ok(Metadata {
            ino,
            kind: inode.kind,
            size: inode.size,
            nlink: inode.nlink as u32,
            mtime_ns: inode.mtime_ns,
            atime_ns: inode.atime_ns,
        })
    }

    fn readdir(&mut self, path: &str) -> FsResult<Vec<DirEntry>> {
        self.charge(CpuCost::Syscall);
        let components = vfs::path::split(path)?;
        let dir = self.resolve_components(&components)?;
        let entries = self.dir_entries(dir)?;
        Ok(entries
            .into_iter()
            .map(|e| DirEntry {
                name: e.name,
                ino: e.ino,
                kind: e.kind,
            })
            .collect())
    }

    fn fsync(&mut self, ino: Ino) -> FsResult<()> {
        self.charge(CpuCost::Syscall);
        self.ensure_inode(ino)?;
        // Write the file's dirty blocks and inode to their homes.
        let keys: Vec<_> = self
            .cache
            .dirty_keys_of(block_cache::Owner::File(ino))
            .into_iter()
            .collect();
        for key in keys {
            let data = self.cache.get(key).unwrap().to_vec();
            let addr = if crate::fs::is_data_idx(key.index) {
                self.map_block(ino, key.index)?
            } else {
                self.indirect_home(ino, key.index)?
            };
            if addr != crate::layout::NIL {
                self.dev.annotate("fsync-data");
                self.dev.write(self.sector_of(addr), &data, true)?;
                self.cache.mark_clean(key);
            }
        }
        self.write_inode_to_table(ino, true)?;
        self.dev.flush()?;
        Ok(())
    }

    fn sync(&mut self) -> FsResult<()> {
        self.charge(CpuCost::Syscall);
        self.flush_all()?;
        self.dev.flush()?;
        Ok(())
    }

    fn drop_caches(&mut self) -> FsResult<()> {
        self.cache.drop_clean();
        self.inodes.retain(|_, c| c.dirty);
        Ok(())
    }

    fn fs_stats(&mut self) -> FsResult<FsStats> {
        let total = self.sb.data_capacity_bytes();
        let free = self.alloc.free_blocks() * self.block_size() as u64;
        Ok(FsStats {
            capacity_bytes: total,
            used_bytes: total - free,
            live_inodes: (self.sb.max_inodes() as u64) - self.alloc.free_inodes(),
        })
    }
}
