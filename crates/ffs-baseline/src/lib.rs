#![warn(missing_docs)]

//! An update-in-place BSD-FFS-style file system, the paper's comparator.
//!
//! The LFS paper (§3, §5) compares against SunOS 4.0.3's version of the
//! BSD fast file system. This crate reproduces the behaviour that matters
//! for those comparisons:
//!
//! * **Fixed metadata locations**: the disk is divided into cylinder
//!   groups, each with a bitmap block and a fixed inode table. Inodes
//!   never move.
//! * **Synchronous metadata writes**: `create` and `unlink` write the
//!   affected inode-table block and directory data block synchronously —
//!   the "small, non-sequential, and synchronous" accesses of §3.1 and
//!   Figure 1 that couple application speed to disk latency.
//! * **Update-in-place data**: file blocks are allocated near their inode
//!   (with a sequential-allocation hint) and always rewritten at the same
//!   address, so random writes stay random at the disk.
//! * **Delayed data write-back**: file data sits in the same
//!   [`block_cache::BlockCache`] used by LFS and is written back on age
//!   threshold, cache pressure, or sync — matching the SunOS file cache.
//! * **Scan-based recovery**: a volume that was not cleanly unmounted is
//!   repaired at mount by a whole-disk scan (`fsck`), which is what makes
//!   FFS recovery time proportional to disk size (§4.4).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use ffs_baseline::{Ffs, FfsConfig};
//! use sim_disk::{Clock, DiskGeometry, SimDisk};
//! use vfs::FileSystem;
//!
//! let clock = Clock::new();
//! let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
//! let mut fs = Ffs::format(disk, FfsConfig::small_test(), clock).unwrap();
//!
//! let sync_before = fs.device().stats().sync_writes;
//! fs.write_file("/report", b"quarterly numbers").unwrap();
//! // The create performed synchronous metadata writes — the paper's
//! // Figure 1 behaviour.
//! assert!(fs.device().stats().sync_writes > sync_before);
//! assert_eq!(fs.read_file("/report").unwrap(), b"quarterly numbers");
//! ```

pub mod alloc;
pub mod config;
pub mod fs;
pub mod fsck;
pub mod layout;

mod dir;
#[cfg(test)]
mod fs_tests;
mod file;
mod ops;

pub use config::FfsConfig;
pub use fs::{Ffs, FfsStats};
pub use fsck::FfsFsckReport;
