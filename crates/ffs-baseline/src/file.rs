//! FFS file data paths: eager block allocation, read/write/truncate.
//!
//! Unlike LFS, every block receives its permanent disk address at the
//! moment it is first written into the cache — update-in-place means the
//! address never changes afterwards, so random logical writes stay random
//! physical writes (the behaviour Figure 4's random-write comparison
//! exposes).

use block_cache::{BlockKey, Owner};
use sim_disk::{BlockDevice, CpuCost};
use vfs::blockmap::{self, BlockPath};
use vfs::{FsError, FsResult, Ino};

use crate::fs::{idx_dchild, Ffs, IDX_DTOP, IDX_SINGLE};
use crate::layout::{FfsAddr, NIL};

fn read_ptr(block: &[u8], slot: usize) -> FfsAddr {
    let start = slot * 4;
    u32::from_le_bytes(block[start..start + 4].try_into().unwrap())
}

fn write_ptr(block: &mut [u8], slot: usize, addr: FfsAddr) {
    let start = slot * 4;
    block[start..start + 4].copy_from_slice(&addr.to_le_bytes());
}

impl<D: BlockDevice> Ffs<D> {
    fn ptrs_per_block(&self) -> usize {
        self.block_size() / 4
    }

    /// Ensures an indirect block is cached, loading it from `disk_addr`
    /// or — with `create` — allocating a fresh one on disk immediately.
    /// Returns the block's disk address (NIL if absent and not created).
    fn ensure_indirect(
        &mut self,
        ino: Ino,
        idx: u64,
        disk_addr: FfsAddr,
        create: bool,
        hint: Option<FfsAddr>,
    ) -> FsResult<FfsAddr> {
        let key = BlockKey::file(ino, idx);
        if disk_addr != NIL {
            if !self.cache.contains(key) {
                let data = self.read_block_raw(disk_addr)?;
                self.charge(CpuCost::MapBlock);
                self.cache.insert_clean(key, data.into_boxed_slice());
            }
            return Ok(disk_addr);
        }
        if !create {
            return Ok(NIL);
        }
        let addr = self.alloc.alloc_block(hint)?;
        let data = vec![0xFFu8; self.block_size()].into_boxed_slice();
        let now = self.now();
        self.cache.insert_dirty(key, data, now);
        Ok(addr)
    }

    /// Reads pointer `slot` of the cached indirect block.
    fn indirect_get(&mut self, ino: Ino, idx: u64, slot: usize) -> FfsAddr {
        let block = self
            .cache
            .get(BlockKey::file(ino, idx))
            .expect("indirect block must be cached");
        read_ptr(block, slot)
    }

    fn indirect_set(&mut self, ino: Ino, idx: u64, slot: usize, addr: FfsAddr) -> FfsAddr {
        let now = self.now();
        let block = self
            .cache
            .get_mut(BlockKey::file(ino, idx), now)
            .expect("indirect block must be cached");
        let old = read_ptr(block, slot);
        write_ptr(block, slot, addr);
        old
    }

    /// The disk address where an *indirect* block lives.
    pub(crate) fn indirect_home(&mut self, ino: Ino, idx: u64) -> FsResult<FfsAddr> {
        let inode = self.inode(ino)?;
        if idx == IDX_SINGLE {
            Ok(inode.single)
        } else if idx == IDX_DTOP {
            Ok(inode.double)
        } else {
            let outer = (idx - crate::fs::IDX_DCHILD_BASE) as usize;
            if inode.double == NIL {
                return Ok(NIL);
            }
            self.ensure_indirect(ino, IDX_DTOP, inode.double, false, None)?;
            Ok(self.indirect_get(ino, IDX_DTOP, outer))
        }
    }

    /// Resolves file block `bno` to its disk address (NIL for holes).
    pub(crate) fn map_block(&mut self, ino: Ino, bno: u64) -> FsResult<FfsAddr> {
        let path = blockmap::resolve(bno, self.ptrs_per_block()).ok_or(FsError::FileTooLarge)?;
        let inode = self.inode(ino)?;
        match path {
            BlockPath::Direct { slot } => Ok(inode.direct[slot]),
            BlockPath::Single { slot } => {
                if self.ensure_indirect(ino, IDX_SINGLE, inode.single, false, None)? == NIL {
                    return Ok(NIL);
                }
                Ok(self.indirect_get(ino, IDX_SINGLE, slot))
            }
            BlockPath::Double { outer, inner } => {
                if self.ensure_indirect(ino, IDX_DTOP, inode.double, false, None)? == NIL {
                    return Ok(NIL);
                }
                let child = self.indirect_get(ino, IDX_DTOP, outer);
                if self.ensure_indirect(ino, idx_dchild(outer as u32), child, false, None)? == NIL {
                    return Ok(NIL);
                }
                Ok(self.indirect_get(ino, idx_dchild(outer as u32), inner))
            }
        }
    }

    /// Maps block `bno`, allocating it (and any needed indirect blocks)
    /// if absent. Returns `(address, freshly_allocated)` — a fresh block's
    /// on-disk contents are whatever a previous owner left there, so the
    /// caller must never read them.
    pub(crate) fn map_block_alloc(&mut self, ino: Ino, bno: u64) -> FsResult<(FfsAddr, bool)> {
        let existing = self.map_block(ino, bno)?;
        if existing != NIL {
            return Ok((existing, false));
        }
        // Locality hint: previous block of the file, else the group of
        // the inode itself.
        let hint = if bno > 0 {
            match self.map_block(ino, bno - 1)? {
                NIL => self.inode_home_hint(ino)?,
                prev => Some(prev),
            }
        } else {
            self.inode_home_hint(ino)?
        };
        let path = blockmap::resolve(bno, self.ptrs_per_block()).ok_or(FsError::FileTooLarge)?;
        let addr = self.alloc.alloc_block(hint)?;
        match path {
            BlockPath::Direct { slot } => {
                self.with_inode_mut(ino, |i| i.direct[slot] = addr)?;
            }
            BlockPath::Single { slot } => {
                let inode = self.inode(ino)?;
                let single =
                    self.ensure_indirect(ino, IDX_SINGLE, inode.single, true, Some(addr))?;
                if inode.single == NIL {
                    self.with_inode_mut(ino, |i| i.single = single)?;
                }
                self.indirect_set(ino, IDX_SINGLE, slot, addr);
            }
            BlockPath::Double { outer, inner } => {
                let inode = self.inode(ino)?;
                let dtop = self.ensure_indirect(ino, IDX_DTOP, inode.double, true, Some(addr))?;
                if inode.double == NIL {
                    self.with_inode_mut(ino, |i| i.double = dtop)?;
                }
                let child_idx = idx_dchild(outer as u32);
                let child_addr = self.indirect_get(ino, IDX_DTOP, outer);
                let child = self.ensure_indirect(ino, child_idx, child_addr, true, Some(addr))?;
                if child_addr == NIL {
                    self.indirect_set(ino, IDX_DTOP, outer, child);
                }
                self.indirect_set(ino, child_idx, inner, addr);
            }
        }
        Ok((addr, true))
    }

    /// First-block placement hint: the start of the inode's group.
    fn inode_home_hint(&mut self, ino: Ino) -> FsResult<Option<FfsAddr>> {
        let (cg, _) = self.sb.ino_location(ino)?;
        Ok(Some(self.sb.data_start(cg)))
    }

    /// Fetches one file block through the cache; `None` for a hole.
    pub(crate) fn file_block(&mut self, ino: Ino, bno: u64) -> FsResult<Option<Vec<u8>>> {
        let key = BlockKey::file(ino, bno);
        if let Some(data) = self.cache.get(key) {
            return Ok(Some(data.to_vec()));
        }
        let addr = self.map_block(ino, bno)?;
        if addr == NIL {
            return Ok(None);
        }
        self.dev.annotate("file-data");
        let data = self.read_block_raw(addr)?;
        self.cache
            .insert_clean(key, data.clone().into_boxed_slice());
        Ok(Some(data))
    }

    /// Core read path.
    pub(crate) fn do_read(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        let inode = self.inode(ino)?;
        if offset >= inode.size {
            return Ok(0);
        }
        let bs = self.block_size() as u64;
        let want = (buf.len() as u64).min(inode.size - offset) as usize;
        let mut done = 0usize;
        while done < want {
            let pos = offset + done as u64;
            let bno = pos / bs;
            let within = (pos % bs) as usize;
            let n = (bs as usize - within).min(want - done);
            self.charge(CpuCost::MapBlock);
            match self.file_block(ino, bno)? {
                Some(block) => buf[done..done + n].copy_from_slice(&block[within..within + n]),
                None => buf[done..done + n].fill(0),
            }
            self.charge(CpuCost::Instructions(
                CpuCost::CopyKb.instructions() * (n as u64).div_ceil(1024),
            ));
            done += n;
        }
        // FFS keeps atime in the inode; updating it dirties the inode
        // (one of the costs LFS's inode-map design avoids).
        let now = self.now();
        self.with_inode_mut(ino, |i| i.atime_ns = now)?;
        Ok(done)
    }

    /// Core write path (allocates addresses eagerly).
    pub(crate) fn do_write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let bs = self.block_size() as u64;
        let end = offset
            .checked_add(data.len() as u64)
            .ok_or(FsError::FileTooLarge)?;
        blockmap::resolve((end - 1) / bs, self.ptrs_per_block()).ok_or(FsError::FileTooLarge)?;

        let now = self.now();
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let bno = pos / bs;
            let within = (pos % bs) as usize;
            let n = (bs as usize - within).min(data.len() - done);
            self.charge(CpuCost::MapBlock);
            // Allocate the block's permanent home now.
            let (_, fresh) = self.map_block_alloc(ino, bno)?;
            let key = BlockKey::file(ino, bno);
            if within == 0 && n == bs as usize {
                let block = data[done..done + n].to_vec().into_boxed_slice();
                self.cache.insert_dirty(key, block, now);
            } else {
                // A freshly allocated block may hold a previous owner's
                // stale bytes on disk; start from zeros instead.
                let existing = if fresh {
                    None
                } else {
                    self.file_block(ino, bno)?
                };
                let mut block = existing.unwrap_or_else(|| vec![0u8; bs as usize]);
                block[within..within + n].copy_from_slice(&data[done..done + n]);
                self.cache.insert_dirty(key, block.into_boxed_slice(), now);
            }
            self.charge(CpuCost::Instructions(
                CpuCost::CopyKb.instructions() * (n as u64).div_ceil(1024),
            ));
            done += n;
        }
        self.with_inode_mut(ino, |i| {
            i.size = i.size.max(end);
            i.mtime_ns = now;
        })?;
        Ok(done)
    }

    /// Core truncate path.
    pub(crate) fn do_truncate(&mut self, ino: Ino, new_size: u64) -> FsResult<()> {
        let inode = self.inode(ino)?;
        let bs = self.block_size() as u64;
        if new_size < inode.size {
            let old_blocks = blockmap::blocks_for_size(inode.size, bs as usize);
            let new_blocks = blockmap::blocks_for_size(new_size, bs as usize);
            for bno in new_blocks..old_blocks {
                self.free_data_block(ino, bno)?;
            }
            if !new_size.is_multiple_of(bs) {
                let bno = new_size / bs;
                if let Some(mut block) = self.file_block(ino, bno)? {
                    let keep = (new_size % bs) as usize;
                    block[keep..].fill(0);
                    let now = self.now();
                    self.cache.insert_dirty(
                        BlockKey::file(ino, bno),
                        block.into_boxed_slice(),
                        now,
                    );
                }
            }
            if new_size == 0 {
                self.free_indirect_blocks(ino)?;
            }
        }
        let now = self.now();
        self.with_inode_mut(ino, |i| {
            i.size = new_size;
            i.mtime_ns = now;
        })?;
        Ok(())
    }

    /// Frees one data block and clears its pointer.
    fn free_data_block(&mut self, ino: Ino, bno: u64) -> FsResult<()> {
        let addr = self.map_block(ino, bno)?;
        if addr == NIL {
            return Ok(());
        }
        self.alloc.free_block(addr)?;
        self.cache.remove(BlockKey::file(ino, bno));
        let path = blockmap::resolve(bno, self.ptrs_per_block()).ok_or(FsError::FileTooLarge)?;
        match path {
            BlockPath::Direct { slot } => {
                self.with_inode_mut(ino, |i| i.direct[slot] = NIL)?;
            }
            BlockPath::Single { slot } => {
                self.indirect_set(ino, IDX_SINGLE, slot, NIL);
            }
            BlockPath::Double { outer, inner } => {
                self.indirect_set(ino, idx_dchild(outer as u32), inner, NIL);
            }
        }
        Ok(())
    }

    /// Frees all indirect blocks of a file (truncate-to-zero / delete).
    fn free_indirect_blocks(&mut self, ino: Ino) -> FsResult<()> {
        let inode = self.inode(ino)?;
        if inode.double != NIL {
            self.ensure_indirect(ino, IDX_DTOP, inode.double, false, None)?;
            for outer in 0..self.ptrs_per_block() {
                let child = self.indirect_get(ino, IDX_DTOP, outer);
                if child != NIL {
                    self.alloc.free_block(child)?;
                }
                self.cache
                    .remove(BlockKey::file(ino, idx_dchild(outer as u32)));
            }
            self.alloc.free_block(inode.double)?;
            self.cache.remove(BlockKey::file(ino, IDX_DTOP));
            self.with_inode_mut(ino, |i| i.double = NIL)?;
        }
        let inode = self.inode(ino)?;
        if inode.single != NIL {
            self.alloc.free_block(inode.single)?;
            self.cache.remove(BlockKey::file(ino, IDX_SINGLE));
            self.with_inode_mut(ino, |i| i.single = NIL)?;
        }
        Ok(())
    }

    /// Destroys a file whose last link went away. The freed inode slot is
    /// zeroed on disk synchronously (Figure 1's unlink behaviour).
    pub(crate) fn destroy_file(&mut self, ino: Ino) -> FsResult<()> {
        self.do_truncate(ino, 0)?;
        self.inodes.remove(&ino);
        self.alloc.free_inode(ino)?;
        self.cache.remove_owner(Owner::File(ino));
        self.write_inode_to_table(ino, true)?;
        Ok(())
    }
}
