//! FFS configuration.

use block_cache::WritebackPolicy;
use mem_mgr::CachePolicy;

/// Tunable parameters of an FFS volume.
#[derive(Debug, Clone)]
pub struct FfsConfig {
    /// File-system block size in bytes (SunOS used 8 KB in the paper's
    /// tests).
    pub block_size: usize,
    /// Blocks per cylinder group.
    pub cg_blocks: usize,
    /// Inodes per cylinder group.
    pub inodes_per_cg: u32,
    /// File-cache capacity in bytes.
    pub cache_bytes: usize,
    /// Delayed-write policy for file data.
    pub writeback: WritebackPolicy,
    /// Memory-manager policy: shared LRU (the classic buffer cache) or
    /// the adaptive write-buffer / scan-resistant read-cache split.
    pub cache_policy: CachePolicy,
    /// How many inode-table reads the mount-time fsck scan keeps in
    /// flight. `1` (the default) is the classic sequential scan; `0`
    /// asks the device for its spindle count; larger values fan the
    /// per-cylinder-group reads out across the array through the
    /// asynchronous read facade. The rebuilt bitmaps and link counts
    /// are identical at every setting — the scan decodes results in
    /// `(cylinder group, table block)` order regardless of completion
    /// order.
    pub fsck_fanout: usize,
}

impl FfsConfig {
    /// The paper's SunOS configuration: 8 KB blocks, ~15 MB cache.
    pub fn paper() -> Self {
        Self {
            block_size: 8192,
            // 16 MB cylinder groups.
            cg_blocks: 2048,
            inodes_per_cg: 2048,
            cache_bytes: 15 * 1024 * 1024,
            writeback: WritebackPolicy::paper(),
            cache_policy: CachePolicy::SharedLru,
            fsck_fanout: 1,
        }
    }

    /// A miniature configuration for unit tests on tiny disks.
    pub fn small_test() -> Self {
        Self {
            block_size: 512,
            cg_blocks: 128,
            inodes_per_cg: 64,
            cache_bytes: 64 * 1024,
            writeback: WritebackPolicy::paper(),
            cache_policy: CachePolicy::SharedLru,
            fsck_fanout: 1,
        }
    }

    /// The natural striping unit for this configuration: one cylinder
    /// group, so allocation locality within a group maps to a single
    /// spindle and groups rotate round-robin across the array.
    pub fn stripe_chunk_bytes(&self) -> usize {
        self.cg_blocks * self.block_size
    }

    /// Builder-style override of the cache size.
    pub fn with_cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    /// Builder-style override of the memory-manager cache policy.
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Builder-style override of the block size.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Builder-style override of the mount-time fsck fan-out
    /// (`0` = ask the device for its spindle count).
    pub fn with_fsck_fanout(mut self, fanout: usize) -> Self {
        self.fsck_fanout = fanout;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn validate(&self) {
        assert!(
            self.block_size >= sim_disk::SECTOR_SIZE
                && self.block_size.is_multiple_of(sim_disk::SECTOR_SIZE),
            "block size must be a multiple of the sector size"
        );
        assert!(self.cg_blocks >= 8, "cylinder groups must hold >= 8 blocks");
        assert!(self.inodes_per_cg >= 8, "need at least 8 inodes per group");
    }
}

impl Default for FfsConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        FfsConfig::paper().validate();
        FfsConfig::small_test().validate();
        assert_eq!(FfsConfig::paper().block_size, 8192);
    }

    #[test]
    #[should_panic(expected = "multiple of the sector size")]
    fn rejects_bad_block_size() {
        FfsConfig::paper().with_block_size(1000).validate();
    }
}
