//! FFS consistency checking and mount-time repair.
//!
//! §4.4: "Unlike the UNIX file system, which must scan the entire disk
//! after a crash to repair damage, LFS need only examine the tail of the
//! log." This module is the "scan the entire disk" half of that
//! comparison: `Ffs::fsck_scan` reads every inode-table block (and every
//! directory and indirect block it leads to) to rebuild the bitmaps after
//! an unclean shutdown. An [`fsck_fanout`] above 1 fans the
//! per-cylinder-group inode-table reads (and a prefetch of the indirect
//! and directory blocks the later passes walk) out across the array's
//! spindles; results are decoded in `(cylinder group, table block)`
//! order, so the rebuilt bitmaps and link counts are identical to the
//! sequential scan's. [`Ffs::fsck`] is the verification-only variant
//! used by tests.
//!
//! [`fsck_fanout`]: crate::FfsConfig::fsck_fanout

use std::collections::{HashMap, HashSet, VecDeque};

use block_cache::BlockKey;
use sim_disk::BlockDevice;
use vfs::blockmap::{self, NDIRECT};
use vfs::{FileKind, FsResult, Ino};

use crate::fs::{idx_dchild, Ffs, IDX_DTOP, IDX_SINGLE};
use crate::layout::{FfsAddr, FfsInode, INODE_SIZE, NIL};

/// Reads pointer `slot` from an indirect block's raw bytes.
fn read_ptr(block: &[u8], slot: usize) -> FfsAddr {
    let start = slot * 4;
    u32::from_le_bytes(block[start..start + 4].try_into().unwrap())
}

/// Verification result.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FfsFsckReport {
    /// Invariant violations.
    pub errors: Vec<String>,
    /// Suspicious but tolerated conditions.
    pub warnings: Vec<String>,
}

impl FfsFsckReport {
    /// Returns true if no errors were found.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

impl std::fmt::Display for FfsFsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() && self.warnings.is_empty() {
            return write!(f, "clean");
        }
        for e in &self.errors {
            writeln!(f, "error: {e}")?;
        }
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        Ok(())
    }
}

impl<D: BlockDevice> Ffs<D> {
    /// Collects every block address a file references (data + indirect).
    fn file_blocks(&mut self, ino: Ino) -> FsResult<Vec<u32>> {
        let inode = self.inode(ino)?;
        let bs = self.block_size();
        let mut out = Vec::new();
        let nblocks = blockmap::blocks_for_size(inode.size, bs);
        for bno in 0..nblocks {
            let addr = self.map_block(ino, bno)?;
            if addr != NIL {
                out.push(addr);
            }
        }
        if inode.single != NIL {
            out.push(inode.single);
        }
        if inode.double != NIL {
            out.push(inode.double);
            for outer in 0..bs / 4 {
                let child = self.indirect_home(ino, crate::fs::idx_dchild(outer as u32))?;
                if child != NIL {
                    out.push(child);
                }
            }
        }
        Ok(out)
    }

    /// Verification-only check: directory tree, link counts, bitmap
    /// agreement, double allocation.
    pub fn fsck(&mut self) -> FsResult<FfsFsckReport> {
        let mut report = FfsFsckReport::default();

        let mut ref_counts: HashMap<Ino, u32> = HashMap::new();
        let mut visited: HashSet<Ino> = HashSet::new();
        let mut queue: VecDeque<(Ino, String)> = VecDeque::new();
        visited.insert(Ino::ROOT);
        queue.push_back((Ino::ROOT, "/".to_string()));
        while let Some((dir, path)) = queue.pop_front() {
            let entries = match self.dir_entries(dir) {
                Ok(entries) => entries,
                Err(e) => {
                    report
                        .errors
                        .push(format!("unreadable directory {path}: {e}"));
                    continue;
                }
            };
            for entry in entries {
                let child_path = format!("{}{}", path, entry.name);
                if !self.alloc.is_inode_allocated(entry.ino) {
                    report.errors.push(format!(
                        "dangling entry {child_path} -> unallocated {}",
                        entry.ino
                    ));
                    continue;
                }
                *ref_counts.entry(entry.ino).or_insert(0) += 1;
                match self.inode(entry.ino) {
                    Ok(inode) => {
                        if inode.kind != entry.kind {
                            report.errors.push(format!("kind mismatch at {child_path}"));
                        }
                        if inode.kind == FileKind::Directory {
                            if visited.insert(entry.ino) {
                                queue.push_back((entry.ino, format!("{child_path}/")));
                            } else {
                                report
                                    .errors
                                    .push(format!("directory {child_path} has multiple parents"));
                            }
                        }
                    }
                    Err(e) => report
                        .errors
                        .push(format!("unreadable inode for {child_path}: {e}")),
                }
            }
        }

        // Every allocated inode must be referenced with the right count,
        // and every block claimed exactly once.
        let mut claimed: HashMap<u32, Ino> = HashMap::new();
        for index in 0..self.sb.max_inodes() {
            let ino = Ino(index + 1);
            if !self.alloc.is_inode_allocated(ino) {
                continue;
            }
            let refs = ref_counts.get(&ino).copied().unwrap_or(0);
            if ino != Ino::ROOT && refs == 0 {
                report.errors.push(format!("orphaned inode {ino}"));
                continue;
            }
            let inode = match self.inode(ino) {
                Ok(inode) => inode,
                Err(e) => {
                    report.errors.push(format!("unreadable inode {ino}: {e}"));
                    continue;
                }
            };
            if ino != Ino::ROOT && inode.nlink as u32 != refs {
                report.errors.push(format!(
                    "{ino}: nlink {} but {} references",
                    inode.nlink, refs
                ));
            }
            for addr in self.file_blocks(ino)? {
                if !self.sb.is_data_block(addr) {
                    report
                        .errors
                        .push(format!("{ino} references metadata block {addr}"));
                    continue;
                }
                if !self.alloc.is_block_allocated(addr) {
                    report
                        .errors
                        .push(format!("{ino} references free block {addr}"));
                }
                if let Some(previous) = claimed.insert(addr, ino) {
                    report
                        .errors
                        .push(format!("block {addr} claimed by both {previous} and {ino}"));
                }
            }
        }
        Ok(report)
    }

    /// Mount-time repair after an unclean shutdown: scans the whole
    /// volume to rebuild both bitmaps and fix link counts. This is the
    /// O(disk size) recovery the paper contrasts with LFS's O(1)
    /// checkpoint read.
    pub(crate) fn fsck_scan(&mut self) -> FsResult<()> {
        self.obs.fsck_scans.inc();
        let start_ns = self.now();
        let fanout = match self.cfg.fsck_fanout {
            0 => self.dev.fanout(),
            n => n,
        };
        // Pass 1: read every inode-table block; rebuild the inode bitmap
        // from non-empty slots. With a fan-out above 1 the reads are
        // issued through the asynchronous facade, up to `fanout` in
        // flight, so cylinder groups on different spindles overlap in
        // virtual time; decoding runs over the results in
        // `(cylinder group, table block)` order, so `found` — and the
        // first propagated read error, if any — is identical to the
        // sequential scan's.
        let per_block = self.block_size() / INODE_SIZE;
        let mut found: Vec<FfsInode> = Vec::new();
        let table: Vec<(u32, u32)> = (0..self.sb.ncg)
            .flat_map(|cg| (0..self.sb.it_blocks()).map(move |tb| (cg, tb)))
            .collect();
        let mut prefetched = if fanout > 1 {
            let bs = self.block_size();
            let reqs: Vec<(u64, usize)> = table
                .iter()
                .map(|&(cg, tb)| (self.sector_of(self.sb.cg_base(cg) + 1 + tb), bs))
                .collect();
            self.dev.set_maintenance(true);
            let (results, _) = sim_disk::read_batch(&mut self.dev, "fsck-scan", fanout, &reqs);
            self.dev.set_maintenance(false);
            Some(results.into_iter())
        } else {
            None
        };
        for (cg, tb) in table {
            let block = match prefetched.as_mut().and_then(|iter| iter.next()) {
                Some(result) => result?,
                None => {
                    let addr = self.sb.cg_base(cg) + 1 + tb;
                    self.read_block_raw(addr)?
                }
            };
            self.obs.fsck_blocks_scanned.inc();
            for slot in 0..per_block {
                let bytes = &block[slot * INODE_SIZE..(slot + 1) * INODE_SIZE];
                if let Ok(Some(inode)) = FfsInode::decode_slot(bytes) {
                    let expected = self.sb.ino_at(cg, (tb as usize * per_block + slot) as u32);
                    if inode.ino == expected {
                        found.push(inode);
                    }
                }
            }
        }
        // Rebuild the allocator from scratch.
        self.alloc = crate::alloc::Allocator::new(self.sb.clone());
        for inode in &found {
            // Mark the inode bit.
            let (cg, _) = self.sb.ino_location(inode.ino)?;
            let _ = cg;
            // alloc_inode scans; instead poke via load path: re-mark by
            // allocating the specific bit through the bitmap round trip.
            self.mark_inode_allocated(inode.ino);
            self.inodes.insert(
                inode.ino,
                crate::fs::CachedInode {
                    inode: inode.clone(),
                    dirty: false,
                },
            );
        }
        // With a fan-out, front-load the cache misses passes 2 and 3
        // are about to take: indirect blocks and directory data, read
        // in overlapped waves. The passes themselves are untouched — a
        // block the gather could not fetch is re-read serially with
        // the identical error, so the rebuilt state does not change.
        if fanout > 1 {
            self.gather_scan_metadata(fanout, &found);
        }
        // Pass 2: walk every file's pointer tree to rebuild the block
        // bitmap (reads every indirect block — the expensive part).
        let inos: Vec<Ino> = found.iter().map(|i| i.ino).collect();
        for ino in inos {
            for addr in self.file_blocks(ino)? {
                self.mark_block_allocated(addr);
                self.obs.fsck_blocks_scanned.inc();
            }
        }
        // Pass 3: fix directory reference counts.
        crate::fsck::fix_links(self)?;
        // Persist the rebuilt bitmaps.
        self.flush_bitmaps(true)?;
        let now = self.now();
        self.obs.registry.event(
            now,
            "fsck",
            format!(
                "blocks_scanned={} took_ns={}",
                self.obs.fsck_blocks_scanned.get(),
                now.saturating_sub(start_ns)
            ),
        );
        Ok(())
    }

    /// Issues one wave of `(cache key, disk address)` prefetches with at
    /// most `window` reads in flight. Quiet: a read that fails is simply
    /// not inserted, leaving the serial pass to re-read and report it.
    fn gather_wave(&mut self, window: usize, mut targets: Vec<(BlockKey, FfsAddr)>) {
        targets.retain(|&(key, addr)| addr != NIL && !self.cache.contains(key));
        // Ascending disk order: deterministic, and sequential within
        // each spindle's share of the address space.
        targets.sort_by_key(|&(_, addr)| addr);
        targets.dedup();
        let bs = self.block_size();
        let reqs: Vec<(u64, usize)> = targets
            .iter()
            .map(|&(_, addr)| (self.sector_of(addr), bs))
            .collect();
        let (results, _) = sim_disk::read_batch(&mut self.dev, "fsck-gather", window, &reqs);
        for ((key, _), result) in targets.into_iter().zip(results) {
            if let Ok(data) = result {
                self.cache.insert_clean(key, data.into_boxed_slice());
            }
        }
    }

    /// Prefetches the blocks passes 2 and 3 will walk: wave 1 the
    /// indirect roots and direct directory data of every recovered
    /// inode, wave 2 the double-indirect children and each directory's
    /// single-indirect data span.
    fn gather_scan_metadata(&mut self, window: usize, found: &[FfsInode]) {
        self.dev.set_maintenance(true);
        let bs = self.block_size();
        let ppb = bs / 4;

        let mut wave: Vec<(BlockKey, FfsAddr)> = Vec::new();
        for inode in found {
            wave.push((BlockKey::file(inode.ino, IDX_SINGLE), inode.single));
            wave.push((BlockKey::file(inode.ino, IDX_DTOP), inode.double));
            if inode.kind == FileKind::Directory {
                let nblocks = blockmap::blocks_for_size(inode.size, bs);
                for bno in 0..nblocks.min(NDIRECT as u64) {
                    wave.push((BlockKey::file(inode.ino, bno), inode.direct[bno as usize]));
                }
            }
        }
        self.gather_wave(window, wave);

        let mut wave: Vec<(BlockKey, FfsAddr)> = Vec::new();
        for inode in found {
            if inode.double != NIL {
                if let Some(block) = self.cache.peek(BlockKey::file(inode.ino, IDX_DTOP)) {
                    let children: Vec<FfsAddr> =
                        (0..ppb).map(|slot| read_ptr(block, slot)).collect();
                    for (outer, child) in children.into_iter().enumerate() {
                        wave.push((BlockKey::file(inode.ino, idx_dchild(outer as u32)), child));
                    }
                }
            }
            if inode.kind == FileKind::Directory && inode.single != NIL {
                if let Some(block) = self.cache.peek(BlockKey::file(inode.ino, IDX_SINGLE)) {
                    let nblocks = blockmap::blocks_for_size(inode.size, bs);
                    let hi = nblocks.min(NDIRECT as u64 + ppb as u64);
                    let spans: Vec<(u64, FfsAddr)> = (NDIRECT as u64..hi)
                        .map(|bno| (bno, read_ptr(block, (bno - NDIRECT as u64) as usize)))
                        .collect();
                    for (bno, addr) in spans {
                        wave.push((BlockKey::file(inode.ino, bno), addr));
                    }
                }
            }
        }
        self.gather_wave(window, wave);
        self.dev.set_maintenance(false);
    }

    fn mark_inode_allocated(&mut self, ino: Ino) {
        // Encode/decode round trip through the bitmap block would be
        // wasteful; poke the allocator via its public API.
        if !self.alloc.is_inode_allocated(ino) {
            self.alloc.force_inode(ino);
        }
    }

    fn mark_block_allocated(&mut self, addr: u32) {
        if !self.alloc.is_block_allocated(addr) {
            self.alloc.force_block(addr);
        }
    }
}

/// Reads a directory, salvaging a crash-corrupted tail: the valid prefix
/// of entries is kept and the directory is truncated to it (what the
/// classic fsck's directory salvage pass does).
fn salvage_directory<D: BlockDevice>(
    fs: &mut Ffs<D>,
    dir: Ino,
) -> FsResult<Vec<vfs::dirent::RawEntry>> {
    let stream = match fs.read_dir_stream(dir) {
        Ok(stream) => stream,
        // Unreadable outright: empty the directory.
        Err(_) => {
            fs.do_truncate(dir, 0)?;
            return Ok(Vec::new());
        }
    };
    match vfs::dirent::parse(&stream) {
        Ok(entries) => Ok(entries),
        Err(_) => {
            let (entries, valid_len) = vfs::dirent::parse_prefix(&stream);
            fs.do_truncate(dir, valid_len as u64)?;
            fs.write_inode_to_table(dir, true)?;
            fs.sync_file_range(dir, 0, valid_len as u64)?;
            Ok(entries)
        }
    }
}

/// Fixes link counts and removes dangling entries after a scan.
fn fix_links<D: BlockDevice>(fs: &mut Ffs<D>) -> FsResult<()> {
    let mut ref_counts: HashMap<Ino, u32> = HashMap::new();
    let mut visited: HashSet<Ino> = HashSet::new();
    let mut queue: VecDeque<Ino> = VecDeque::new();
    visited.insert(Ino::ROOT);
    queue.push_back(Ino::ROOT);
    while let Some(dir) = queue.pop_front() {
        let entries = salvage_directory(fs, dir)?;
        let mut dangling = Vec::new();
        for entry in entries {
            if !fs.alloc.is_inode_allocated(entry.ino) {
                dangling.push(entry.name);
                continue;
            }
            *ref_counts.entry(entry.ino).or_insert(0) += 1;
            if entry.kind == FileKind::Directory && visited.insert(entry.ino) {
                queue.push_back(entry.ino);
            }
        }
        for name in dangling {
            let (_, range) = fs.dir_remove(dir, &name)?;
            fs.sync_file_range(dir, range.0, range.1)?;
        }
    }
    // Orphans and link counts.
    for index in 0..fs.sb.max_inodes() {
        let ino = Ino(index + 1);
        if ino == Ino::ROOT || !fs.alloc.is_inode_allocated(ino) {
            continue;
        }
        match ref_counts.get(&ino) {
            None => {
                fs.destroy_file(ino)?;
            }
            Some(&count) => {
                let nlink = fs.inode(ino)?.nlink as u32;
                if nlink != count {
                    fs.with_inode_mut(ino, |i| i.nlink = count as u16)?;
                    fs.write_inode_to_table(ino, false)?;
                }
            }
        }
    }
    Ok(())
}
