//! FFS directory content management.
//!
//! Same wire format as LFS ([`vfs::dirent`]). Mutating helpers report the
//! modified byte range so `create`/`unlink` can write exactly the
//! affected directory blocks synchronously (Figure 1).

use sim_disk::{BlockDevice, CpuCost};
use vfs::dirent::{self, RawEntry};
use vfs::{FileKind, FsError, FsResult, Ino};

use crate::fs::Ffs;

impl<D: BlockDevice> Ffs<D> {
    pub(crate) fn read_dir_stream(&mut self, dir: Ino) -> FsResult<Vec<u8>> {
        let inode = self.inode(dir)?;
        if inode.kind != FileKind::Directory {
            return Err(FsError::NotADirectory);
        }
        let mut stream = vec![0u8; inode.size as usize];
        let mut read = 0usize;
        while read < stream.len() {
            let n = self.do_read(dir, read as u64, &mut stream[read..])?;
            if n == 0 {
                return Err(FsError::Corrupt("directory shorter than its size"));
            }
            read += n;
        }
        Ok(stream)
    }

    pub(crate) fn dir_entries(&mut self, dir: Ino) -> FsResult<Vec<RawEntry>> {
        let stream = self.read_dir_stream(dir)?;
        dirent::parse(&stream)
    }

    pub(crate) fn dir_lookup(&mut self, dir: Ino, name: &str) -> FsResult<Option<(Ino, FileKind)>> {
        let entries = self.dir_entries(dir)?;
        Ok(dirent::find(&entries, name).map(|e| (e.ino, e.kind)))
    }

    /// Appends an entry; returns the modified byte range.
    pub(crate) fn dir_insert(
        &mut self,
        dir: Ino,
        name: &str,
        ino: Ino,
        kind: FileKind,
    ) -> FsResult<(u64, u64)> {
        let size = self.inode(dir)?.size;
        let mut encoded = Vec::new();
        dirent::encode_entry(&mut encoded, ino, kind, name);
        self.do_write(dir, size, &encoded)?;
        Ok((size, size + encoded.len() as u64))
    }

    /// Removes an entry; returns the removed target and the modified
    /// byte range.
    pub(crate) fn dir_remove(
        &mut self,
        dir: Ino,
        name: &str,
    ) -> FsResult<((Ino, FileKind), (u64, u64))> {
        let entries = self.dir_entries(dir)?;
        let index = entries
            .iter()
            .position(|e| e.name == name)
            .ok_or(FsError::NotFound)?;
        let removed = (entries[index].ino, entries[index].kind);
        let offset = entries[index].offset as u64;
        let suffix = dirent::encode_all(&entries[index + 1..]);
        if !suffix.is_empty() {
            self.do_write(dir, offset, &suffix)?;
        }
        self.do_truncate(dir, offset + suffix.len() as u64)?;
        Ok((removed, (offset, offset + suffix.len().max(1) as u64)))
    }

    pub(crate) fn resolve_components(&mut self, components: &[&str]) -> FsResult<Ino> {
        let mut current = Ino::ROOT;
        for part in components {
            self.charge(CpuCost::MapBlock);
            match self.dir_lookup(current, part)? {
                Some((ino, _)) => current = ino,
                None => return Err(FsError::NotFound),
            }
        }
        Ok(current)
    }

    pub(crate) fn resolve_parent<'p>(&mut self, path: &'p str) -> FsResult<(Ino, &'p str)> {
        let (parent_parts, name) = vfs::path::split_parent(path)?;
        let parent = self.resolve_components(&parent_parts)?;
        if self.inode(parent)?.kind != FileKind::Directory {
            return Err(FsError::NotADirectory);
        }
        Ok((parent, name))
    }
}
