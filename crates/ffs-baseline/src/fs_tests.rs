//! White-box tests of FFS internals: eager allocation, synchronous
//! metadata paths, and write-back mechanics.

use std::sync::Arc;

use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::{FileSystem, Ino};

use crate::config::FfsConfig;
use crate::fs::Ffs;
use crate::layout::NIL;

fn fresh() -> Ffs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(32_768), Arc::clone(&clock));
    Ffs::format(disk, FfsConfig::small_test(), clock).unwrap()
}

#[test]
fn map_block_alloc_reports_freshness() {
    let mut fs = fresh();
    let ino = fs.create("/f").unwrap();
    let (addr1, fresh1) = fs.map_block_alloc(ino, 0).unwrap();
    assert!(fresh1, "first mapping allocates");
    assert_ne!(addr1, NIL);
    let (addr2, fresh2) = fs.map_block_alloc(ino, 0).unwrap();
    assert!(!fresh2, "second mapping reuses");
    assert_eq!(addr1, addr2);
}

#[test]
fn sequential_blocks_of_a_file_are_nearly_contiguous() {
    let mut fs = fresh();
    let ino = fs.write_file("/seq", &vec![1u8; 10 * 512]).unwrap();
    let mut addrs = Vec::new();
    for bno in 0..10u64 {
        let addr = fs.map_block(ino, bno).unwrap();
        assert_ne!(addr, NIL);
        addrs.push(addr);
    }
    // Monotone increasing (the sequential-allocation hint) with at most a
    // couple of gaps where directory metadata interleaved.
    assert!(addrs.windows(2).all(|w| w[1] > w[0]), "{addrs:?}");
    let span = addrs.last().unwrap() - addrs.first().unwrap();
    assert!(span <= 12, "layout too scattered: {addrs:?}");
}

#[test]
fn indirect_blocks_get_disk_homes_eagerly() {
    let mut fs = fresh();
    let ino = fs.create("/deep").unwrap();
    // Block 12 is the first single-indirect block (NDIRECT = 12).
    fs.write_at(ino, 12 * 512, &vec![2u8; 512]).unwrap();
    let inode = fs.inode(ino).unwrap();
    assert_ne!(inode.single, NIL, "indirect block must have a home");
    assert_ne!(fs.map_block(ino, 12).unwrap(), NIL);
    // And it is a real, allocated data block.
    assert!(fs.superblock().is_data_block(inode.single));
}

#[test]
fn write_inode_to_table_controls_sync_flag() {
    let mut fs = fresh();
    let ino = fs.write_file("/flagged", b"x").unwrap();
    let sync_before = fs.device().stats().sync_writes;
    fs.with_inode_mut(ino, |i| i.mtime_ns += 1).unwrap();
    fs.write_inode_to_table(ino, false).unwrap();
    assert_eq!(
        fs.device().stats().sync_writes,
        sync_before,
        "async inode write must not be synchronous"
    );
    fs.with_inode_mut(ino, |i| i.mtime_ns += 1).unwrap();
    fs.write_inode_to_table(ino, true).unwrap();
    assert_eq!(fs.device().stats().sync_writes, sync_before + 1);
}

#[test]
fn sync_file_range_writes_only_affected_blocks() {
    let mut fs = fresh();
    let ino = fs.write_file("/ranged", &vec![3u8; 8 * 512]).unwrap();
    fs.sync().unwrap();
    // Dirty two specific blocks, then sync just their range.
    fs.write_at(ino, 2 * 512, &vec![4u8; 512]).unwrap();
    fs.write_at(ino, 3 * 512, &vec![5u8; 512]).unwrap();
    let writes_before = fs.device().stats().writes;
    fs.sync_file_range(ino, 2 * 512, 4 * 512).unwrap();
    let delta = fs.device().stats().writes - writes_before;
    assert_eq!(delta, 2, "exactly the two dirty blocks in range");
}

#[test]
fn destroy_file_zeroes_the_inode_slot_synchronously() {
    let mut fs = fresh();
    fs.write_file("/gone", b"bye").unwrap();
    fs.sync().unwrap();
    let sync_before = fs.device().stats().sync_writes;
    fs.unlink("/gone").unwrap();
    assert!(
        fs.device().stats().sync_writes > sync_before,
        "unlink must synchronously clear metadata (Figure 1)"
    );
    // Remount from the raw image: the inode slot must be empty.
    let geometry = fs.device().geometry().clone();
    let image = fs.into_device().into_image();
    let disk = SimDisk::from_image(geometry, Clock::new(), image);
    let clock = disk.clock().clone();
    let mut fs = Ffs::mount(disk, FfsConfig::small_test(), clock).unwrap();
    assert!(fs.lookup("/gone").is_err());
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn alloc_spills_to_other_groups_when_one_fills() {
    let mut fs = fresh();
    // One cylinder group has 64 inodes (small_test); creating more than
    // that in a single directory forces inode allocation to spill.
    for i in 0..100 {
        fs.create(&format!("/s{i:03}")).unwrap();
    }
    let a = fs.lookup("/s000").unwrap();
    let b = fs.lookup("/s099").unwrap();
    let (cg_a, _) = fs.superblock().ino_location(a).unwrap();
    let (cg_b, _) = fs.superblock().ino_location(b).unwrap();
    assert_ne!(cg_a, cg_b, "allocation must have spilled groups");
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn root_inode_is_pinned_to_group_zero() {
    let fs = fresh();
    let (cg, slot) = fs.superblock().ino_location(Ino::ROOT).unwrap();
    assert_eq!((cg, slot), (0, 0));
}
