//! FFS on-disk layout: superblock, cylinder groups, fixed inode tables.
//!
//! ```text
//! block 0                      superblock (with clean/dirty flag)
//! block 1 ..                   cylinder group 0:
//!   +0                           bitmap block (inode + block bitmaps)
//!   +1 .. +1+it                  inode table (fixed!)
//!   +1+it ..                     data blocks
//! ...                          cylinder group 1, 2, ...
//! ```
//!
//! Unlike LFS, every structure has a fixed home and is updated in place.

use vfs::blockmap::NDIRECT;
use vfs::wire::{crc32, ByteReader, ByteWriter};
use vfs::{FileKind, FsError, FsResult, Ino};

use crate::config::FfsConfig;

/// Magic number identifying an FFS superblock ("FFS1").
pub const SUPERBLOCK_MAGIC: u32 = 0x4646_5331;

/// On-disk size of one inode, in bytes.
pub const INODE_SIZE: usize = 128;

/// A block address in FS-block units. `u32::MAX` is "no block".
pub type FfsAddr = u32;

/// The null block address.
pub const NIL: FfsAddr = u32::MAX;

/// Immutable volume geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FfsSuperblock {
    /// Block size in bytes.
    pub block_size: u32,
    /// Blocks per cylinder group.
    pub cg_blocks: u32,
    /// Inodes per cylinder group.
    pub inodes_per_cg: u32,
    /// Number of cylinder groups.
    pub ncg: u32,
    /// Whether the volume was cleanly unmounted.
    pub clean: bool,
}

impl FfsSuperblock {
    /// Derives geometry for a device of `capacity_bytes`.
    pub fn derive(cfg: &FfsConfig, capacity_bytes: u64) -> FsResult<Self> {
        cfg.validate();
        let total_blocks = capacity_bytes / cfg.block_size as u64;
        if total_blocks <= 1 + cfg.cg_blocks as u64 {
            return Err(FsError::NoSpace);
        }
        let ncg = ((total_blocks - 1) / cfg.cg_blocks as u64) as u32;
        let sb = Self {
            block_size: cfg.block_size as u32,
            cg_blocks: cfg.cg_blocks as u32,
            inodes_per_cg: cfg.inodes_per_cg,
            ncg,
            clean: true,
        };
        if sb.data_blocks_per_cg() < 4 {
            return Err(FsError::NoSpace);
        }
        // Bitmaps must fit the single bitmap block.
        let bitmap_bytes = sb.inodes_per_cg.div_ceil(8) + sb.cg_blocks.div_ceil(8);
        if bitmap_bytes as usize > cfg.block_size {
            return Err(FsError::Corrupt("bitmaps do not fit the bitmap block"));
        }
        Ok(sb)
    }

    /// Inode-table blocks per cylinder group.
    pub fn it_blocks(&self) -> u32 {
        (self.inodes_per_cg as u64 * INODE_SIZE as u64).div_ceil(self.block_size as u64) as u32
    }

    /// Data blocks per cylinder group.
    pub fn data_blocks_per_cg(&self) -> u32 {
        self.cg_blocks - 1 - self.it_blocks()
    }

    /// First block of cylinder group `cg`.
    pub fn cg_base(&self, cg: u32) -> FfsAddr {
        1 + cg * self.cg_blocks
    }

    /// Block address of the bitmap block of `cg`.
    pub fn bitmap_block(&self, cg: u32) -> FfsAddr {
        self.cg_base(cg)
    }

    /// First data block of `cg`.
    pub fn data_start(&self, cg: u32) -> FfsAddr {
        self.cg_base(cg) + 1 + self.it_blocks()
    }

    /// Total inodes on the volume.
    pub fn max_inodes(&self) -> u32 {
        self.ncg * self.inodes_per_cg
    }

    /// Total data capacity in bytes.
    pub fn data_capacity_bytes(&self) -> u64 {
        self.ncg as u64 * self.data_blocks_per_cg() as u64 * self.block_size as u64
    }

    /// Maps an inode number to `(cg, slot within group)`.
    ///
    /// Inode 0 is invalid; the root is inode 1 (group 0, slot 0).
    pub fn ino_location(&self, ino: Ino) -> FsResult<(u32, u32)> {
        if !ino.is_valid() || ino.0 > self.max_inodes() {
            return Err(FsError::Corrupt("inode number out of range"));
        }
        let index = ino.0 - 1;
        Ok((index / self.inodes_per_cg, index % self.inodes_per_cg))
    }

    /// Maps `(cg, slot)` back to an inode number.
    pub fn ino_at(&self, cg: u32, slot: u32) -> Ino {
        Ino(cg * self.inodes_per_cg + slot + 1)
    }

    /// Block + byte offset of an inode's slot in its inode table.
    pub fn inode_slot(&self, ino: Ino) -> FsResult<(FfsAddr, usize)> {
        let (cg, slot) = self.ino_location(ino)?;
        let per_block = self.block_size as usize / INODE_SIZE;
        let block = self.cg_base(cg) + 1 + slot / per_block as u32;
        let offset = (slot as usize % per_block) * INODE_SIZE;
        Ok((block, offset))
    }

    /// Cylinder group containing a data block address, if any.
    pub fn cg_of_block(&self, addr: FfsAddr) -> Option<u32> {
        if addr == NIL || addr == 0 {
            return None;
        }
        let cg = (addr - 1) / self.cg_blocks;
        (cg < self.ncg).then_some(cg)
    }

    /// Returns true if `addr` is a data block (not metadata).
    pub fn is_data_block(&self, addr: FfsAddr) -> bool {
        match self.cg_of_block(addr) {
            Some(cg) => addr >= self.data_start(cg) && addr < self.cg_base(cg) + self.cg_blocks,
            None => false,
        }
    }

    /// Serialises into one block.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.block_size as usize);
        w.u32(SUPERBLOCK_MAGIC);
        w.u32(self.block_size);
        w.u32(self.cg_blocks);
        w.u32(self.inodes_per_cg);
        w.u32(self.ncg);
        w.u32(self.clean as u32);
        let crc = crc32(w.as_slice());
        w.u32(crc);
        w.pad_to(self.block_size as usize);
        w.into_vec()
    }

    /// Parses from the first block.
    pub fn decode(block: &[u8]) -> FsResult<Self> {
        let mut r = ByteReader::new(block);
        let magic = r.u32().ok_or(FsError::Corrupt("superblock too short"))?;
        if magic != SUPERBLOCK_MAGIC {
            return Err(FsError::Corrupt("bad FFS superblock magic"));
        }
        let block_size = r.u32().ok_or(FsError::Corrupt("superblock too short"))?;
        let cg_blocks = r.u32().ok_or(FsError::Corrupt("superblock too short"))?;
        let inodes_per_cg = r.u32().ok_or(FsError::Corrupt("superblock too short"))?;
        let ncg = r.u32().ok_or(FsError::Corrupt("superblock too short"))?;
        let clean = r.u32().ok_or(FsError::Corrupt("superblock too short"))? != 0;
        let stored = r.u32().ok_or(FsError::Corrupt("superblock too short"))?;
        if crc32(&block[..24]) != stored {
            return Err(FsError::Corrupt("FFS superblock checksum mismatch"));
        }
        Ok(Self {
            block_size,
            cg_blocks,
            inodes_per_cg,
            ncg,
            clean,
        })
    }
}

/// An FFS on-disk inode (classic UNIX format; no LFS version field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FfsInode {
    /// This inode's number.
    pub ino: Ino,
    /// Regular file or directory.
    pub kind: FileKind,
    /// Hard-link count.
    pub nlink: u16,
    /// File length in bytes.
    pub size: u64,
    /// Last modification time (virtual ns).
    pub mtime_ns: u64,
    /// Last access time (virtual ns). FFS keeps it in the inode; LFS
    /// moves it to the inode map.
    pub atime_ns: u64,
    /// Direct block pointers.
    pub direct: [FfsAddr; NDIRECT],
    /// Single-indirect pointer.
    pub single: FfsAddr,
    /// Double-indirect pointer.
    pub double: FfsAddr,
}

const INODE_MAGIC: u8 = 0xF5;

impl FfsInode {
    /// Creates an empty inode.
    pub fn new(ino: Ino, kind: FileKind, now_ns: u64) -> Self {
        Self {
            ino,
            kind,
            nlink: 1,
            size: 0,
            mtime_ns: now_ns,
            atime_ns: now_ns,
            direct: [NIL; NDIRECT],
            single: NIL,
            double: NIL,
        }
    }

    /// Serialises into [`INODE_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(INODE_SIZE);
        w.u8(INODE_MAGIC);
        w.u8(match self.kind {
            FileKind::Regular => 1,
            FileKind::Directory => 2,
        });
        w.u16(self.nlink);
        w.u32(self.ino.0);
        w.u64(self.size);
        w.u64(self.mtime_ns);
        w.u64(self.atime_ns);
        for addr in &self.direct {
            w.u32(*addr);
        }
        w.u32(self.single);
        w.u32(self.double);
        w.pad_to(INODE_SIZE);
        w.into_vec()
    }

    /// Parses an inode slot; `None` if the slot is free (all zero).
    pub fn decode_slot(bytes: &[u8]) -> FsResult<Option<Self>> {
        if bytes.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        let mut r = ByteReader::new(bytes);
        let magic = r.u8().ok_or(FsError::Corrupt("inode slot too short"))?;
        if magic != INODE_MAGIC {
            return Err(FsError::Corrupt("bad FFS inode magic"));
        }
        let kind = match r.u8().ok_or(FsError::Corrupt("inode slot too short"))? {
            1 => FileKind::Regular,
            2 => FileKind::Directory,
            _ => return Err(FsError::Corrupt("bad FFS inode kind")),
        };
        let nlink = r.u16().ok_or(FsError::Corrupt("inode slot too short"))?;
        let ino = Ino(r.u32().ok_or(FsError::Corrupt("inode slot too short"))?);
        let size = r.u64().ok_or(FsError::Corrupt("inode slot too short"))?;
        let mtime_ns = r.u64().ok_or(FsError::Corrupt("inode slot too short"))?;
        let atime_ns = r.u64().ok_or(FsError::Corrupt("inode slot too short"))?;
        let mut direct = [NIL; NDIRECT];
        for slot in &mut direct {
            *slot = r.u32().ok_or(FsError::Corrupt("inode slot too short"))?;
        }
        let single = r.u32().ok_or(FsError::Corrupt("inode slot too short"))?;
        let double = r.u32().ok_or(FsError::Corrupt("inode slot too short"))?;
        Ok(Some(Self {
            ino,
            kind,
            nlink,
            size,
            mtime_ns,
            atime_ns,
            direct,
            single,
            double,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> FfsSuperblock {
        FfsSuperblock::derive(&FfsConfig::small_test(), 4 * 1024 * 1024).unwrap()
    }

    #[test]
    fn geometry_is_consistent() {
        let sb = sb();
        assert_eq!(sb.block_size, 512);
        assert!(sb.ncg >= 1);
        // 64 inodes of 128 B in 512 B blocks -> 16 inode-table blocks.
        assert_eq!(sb.it_blocks(), 16);
        assert_eq!(sb.data_blocks_per_cg(), 128 - 1 - 16);
        assert!(sb.data_start(0) > sb.bitmap_block(0));
    }

    #[test]
    fn ino_mapping_round_trips() {
        let sb = sb();
        assert_eq!(sb.ino_location(Ino(1)).unwrap(), (0, 0));
        assert_eq!(sb.ino_at(0, 0), Ino(1));
        let last = sb.max_inodes();
        let (cg, slot) = sb.ino_location(Ino(last)).unwrap();
        assert_eq!(sb.ino_at(cg, slot), Ino(last));
        assert!(sb.ino_location(Ino(0)).is_err());
        assert!(sb.ino_location(Ino(last + 1)).is_err());
    }

    #[test]
    fn inode_slot_addresses_are_in_the_table() {
        let sb = sb();
        let (block, offset) = sb.inode_slot(Ino(1)).unwrap();
        assert_eq!(block, sb.cg_base(0) + 1);
        assert_eq!(offset, 0);
        let per_block = 512 / INODE_SIZE; // 4
        let (block5, offset5) = sb.inode_slot(Ino(1 + per_block as u32)).unwrap();
        assert_eq!(block5, sb.cg_base(0) + 2);
        assert_eq!(offset5, 0);
    }

    #[test]
    fn superblock_round_trips_and_detects_corruption() {
        let sb = sb();
        let bytes = sb.encode();
        assert_eq!(FfsSuperblock::decode(&bytes).unwrap(), sb);
        let mut bad = bytes.clone();
        bad[6] ^= 1;
        assert!(FfsSuperblock::decode(&bad).is_err());
    }

    #[test]
    fn inode_round_trips() {
        let mut inode = FfsInode::new(Ino(9), FileKind::Directory, 42);
        inode.size = 1234;
        inode.direct[3] = 77;
        inode.single = 99;
        let bytes = inode.encode();
        assert_eq!(bytes.len(), INODE_SIZE);
        assert_eq!(FfsInode::decode_slot(&bytes).unwrap(), Some(inode));
        assert_eq!(FfsInode::decode_slot(&[0u8; INODE_SIZE]).unwrap(), None);
    }

    #[test]
    fn data_block_classification() {
        let sb = sb();
        assert!(!sb.is_data_block(0)); // Superblock.
        assert!(!sb.is_data_block(sb.bitmap_block(0)));
        assert!(!sb.is_data_block(sb.cg_base(0) + 1)); // Inode table.
        assert!(sb.is_data_block(sb.data_start(0)));
        assert!(!sb.is_data_block(NIL));
    }

    #[test]
    fn derive_rejects_tiny_devices() {
        assert!(FfsSuperblock::derive(&FfsConfig::small_test(), 1024).is_err());
    }
}
