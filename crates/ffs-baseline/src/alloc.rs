//! In-memory bitmap allocators for inodes and data blocks.
//!
//! The bitmaps live in memory while mounted; the dirty ones are written
//! back to their cylinder group's bitmap block with the delayed writes.
//! Allocation policy follows FFS: inodes go in their parent directory's
//! group when possible, and data blocks are placed near the previous
//! block of the same file, falling back to a rotor scan over all groups.

use vfs::{FsError, FsResult};

use crate::layout::{FfsAddr, FfsSuperblock};

/// Bitmap state for all cylinder groups.
#[derive(Debug, Clone)]
pub struct Allocator {
    sb: FfsSuperblock,
    /// One bool per inode (true = allocated).
    inode_map: Vec<bool>,
    /// One bool per block of every cg (true = allocated). Metadata blocks
    /// are pre-marked.
    block_map: Vec<bool>,
    /// Per-cg dirty flags (bitmap block needs rewriting).
    dirty: Vec<bool>,
    /// Rotor for block allocation fallback.
    next_cg: u32,
    free_blocks: u64,
    free_inodes: u64,
}

impl Allocator {
    /// Creates a fresh allocator with all data blocks and inodes free.
    pub fn new(sb: FfsSuperblock) -> Self {
        let nblocks = (sb.ncg * sb.cg_blocks) as usize;
        let mut block_map = vec![false; nblocks];
        // Pre-mark each group's metadata region.
        let meta = 1 + sb.it_blocks();
        for cg in 0..sb.ncg {
            let base = (cg * sb.cg_blocks) as usize;
            for b in 0..meta as usize {
                block_map[base + b] = true;
            }
        }
        let free_blocks = (sb.ncg * sb.data_blocks_per_cg()) as u64;
        let free_inodes = sb.max_inodes() as u64;
        let ncg = sb.ncg as usize;
        let max_inodes = sb.max_inodes() as usize;
        Self {
            sb,
            inode_map: vec![false; max_inodes],
            block_map,
            dirty: vec![false; ncg],
            next_cg: 0,
            free_blocks,
            free_inodes,
        }
    }

    /// Free data blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Free inodes remaining.
    pub fn free_inodes(&self) -> u64 {
        self.free_inodes
    }

    fn block_index(&self, addr: FfsAddr) -> usize {
        (addr - 1) as usize
    }

    fn addr_of_index(&self, index: usize) -> FfsAddr {
        index as u32 + 1
    }

    /// Returns true if the data block at `addr` is allocated.
    pub fn is_block_allocated(&self, addr: FfsAddr) -> bool {
        self.block_map[self.block_index(addr)]
    }

    /// Returns true if `ino`'s bitmap bit is set.
    pub fn is_inode_allocated(&self, ino: vfs::Ino) -> bool {
        ino.is_valid()
            && self
                .inode_map
                .get(ino.0 as usize - 1)
                .copied()
                .unwrap_or(false)
    }

    /// Allocates an inode, preferring cylinder group `prefer_cg`.
    pub fn alloc_inode(&mut self, prefer_cg: u32) -> FsResult<vfs::Ino> {
        let ncg = self.sb.ncg;
        for probe in 0..ncg {
            let cg = (prefer_cg + probe) % ncg;
            let start = (cg * self.sb.inodes_per_cg) as usize;
            let end = start + self.sb.inodes_per_cg as usize;
            for index in start..end {
                if !self.inode_map[index] {
                    self.inode_map[index] = true;
                    self.dirty[cg as usize] = true;
                    self.free_inodes -= 1;
                    return Ok(vfs::Ino(index as u32 + 1));
                }
            }
        }
        Err(FsError::NoInodes)
    }

    /// Frees an inode.
    pub fn free_inode(&mut self, ino: vfs::Ino) -> FsResult<()> {
        let index = ino.0 as usize - 1;
        if !self.inode_map[index] {
            return Err(FsError::Corrupt("double free of FFS inode"));
        }
        self.inode_map[index] = false;
        let (cg, _) = self.sb.ino_location(ino)?;
        self.dirty[cg as usize] = true;
        self.free_inodes += 1;
        Ok(())
    }

    /// Allocates a data block. `hint` (the previous block of the same
    /// file, or the inode's group) steers locality: the block after the
    /// hint is tried first, which lays files out contiguously.
    pub fn alloc_block(&mut self, hint: Option<FfsAddr>) -> FsResult<FfsAddr> {
        // Sequential next: the block right after the hint.
        if let Some(prev) = hint {
            let next = prev + 1;
            if self.sb.is_data_block(next) && !self.is_block_allocated(next) {
                return Ok(self.take(next));
            }
            // Any free block in the hint's group.
            if let Some(cg) = self.sb.cg_of_block(prev) {
                if let Some(addr) = self.scan_cg(cg) {
                    return Ok(self.take(addr));
                }
            }
        }
        // Rotor over all groups.
        let ncg = self.sb.ncg;
        for probe in 0..ncg {
            let cg = (self.next_cg + probe) % ncg;
            if let Some(addr) = self.scan_cg(cg) {
                self.next_cg = cg;
                return Ok(self.take(addr));
            }
        }
        Err(FsError::NoSpace)
    }

    fn scan_cg(&self, cg: u32) -> Option<FfsAddr> {
        let start = self.block_index(self.sb.data_start(cg));
        let end = self.block_index(self.sb.cg_base(cg) + self.sb.cg_blocks - 1) + 1;
        (start..end)
            .find(|&i| !self.block_map[i])
            .map(|i| self.addr_of_index(i))
    }

    fn take(&mut self, addr: FfsAddr) -> FfsAddr {
        let index = self.block_index(addr);
        debug_assert!(!self.block_map[index]);
        self.block_map[index] = true;
        if let Some(cg) = self.sb.cg_of_block(addr) {
            self.dirty[cg as usize] = true;
        }
        self.free_blocks -= 1;
        addr
    }

    /// Forcibly marks an inode allocated (fsck bitmap reconstruction).
    pub fn force_inode(&mut self, ino: vfs::Ino) {
        let index = ino.0 as usize - 1;
        if !self.inode_map[index] {
            self.inode_map[index] = true;
            self.free_inodes -= 1;
            if let Ok((cg, _)) = self.sb.ino_location(ino) {
                self.dirty[cg as usize] = true;
            }
        }
    }

    /// Forcibly marks a block allocated (fsck bitmap reconstruction).
    pub fn force_block(&mut self, addr: FfsAddr) {
        if self.sb.is_data_block(addr) && !self.is_block_allocated(addr) {
            self.take(addr);
        }
    }

    /// Frees a data block.
    pub fn free_block(&mut self, addr: FfsAddr) -> FsResult<()> {
        if !self.sb.is_data_block(addr) {
            return Err(FsError::Corrupt("freeing a non-data block"));
        }
        let index = self.block_index(addr);
        if !self.block_map[index] {
            return Err(FsError::Corrupt("double free of FFS block"));
        }
        self.block_map[index] = false;
        if let Some(cg) = self.sb.cg_of_block(addr) {
            self.dirty[cg as usize] = true;
        }
        self.free_blocks += 1;
        Ok(())
    }

    /// Cylinder groups whose bitmap block needs writing.
    pub fn dirty_groups(&self) -> Vec<u32> {
        (0..self.dirty.len() as u32)
            .filter(|&cg| self.dirty[cg as usize])
            .collect()
    }

    /// Marks a group's bitmap clean (after write-back).
    pub fn mark_clean(&mut self, cg: u32) {
        self.dirty[cg as usize] = false;
    }

    /// Serialises one group's bitmaps into a bitmap block.
    pub fn encode_bitmap_block(&self, cg: u32, block_size: usize) -> Vec<u8> {
        let mut block = vec![0u8; block_size];
        let ipc = self.sb.inodes_per_cg as usize;
        let istart = (cg as usize) * ipc;
        for (i, &bit) in self.inode_map[istart..istart + ipc].iter().enumerate() {
            if bit {
                block[i / 8] |= 1 << (i % 8);
            }
        }
        let boff = ipc.div_ceil(8);
        let cgb = self.sb.cg_blocks as usize;
        let bstart = (cg as usize) * cgb;
        for (i, &bit) in self.block_map[bstart..bstart + cgb].iter().enumerate() {
            if bit {
                block[boff + i / 8] |= 1 << (i % 8);
            }
        }
        block
    }

    /// Loads one group's bitmaps from its bitmap block.
    pub fn load_bitmap_block(&mut self, cg: u32, block: &[u8]) {
        let ipc = self.sb.inodes_per_cg as usize;
        let istart = (cg as usize) * ipc;
        for i in 0..ipc {
            let bit = block[i / 8] & (1 << (i % 8)) != 0;
            let was = self.inode_map[istart + i];
            if was != bit {
                self.inode_map[istart + i] = bit;
                if bit {
                    self.free_inodes -= 1;
                } else {
                    self.free_inodes += 1;
                }
            }
        }
        let boff = ipc.div_ceil(8);
        let cgb = self.sb.cg_blocks as usize;
        let bstart = (cg as usize) * cgb;
        for i in 0..cgb {
            let bit = block[boff + i / 8] & (1 << (i % 8)) != 0;
            let was = self.block_map[bstart + i];
            if was != bit {
                self.block_map[bstart + i] = bit;
                let addr = self.addr_of_index(bstart + i);
                if self.sb.is_data_block(addr) {
                    if bit {
                        self.free_blocks -= 1;
                    } else {
                        self.free_blocks += 1;
                    }
                }
            }
        }
        self.dirty[cg as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FfsConfig;
    use vfs::Ino;

    fn alloc() -> Allocator {
        let sb = FfsSuperblock::derive(&FfsConfig::small_test(), 4 * 1024 * 1024).unwrap();
        Allocator::new(sb)
    }

    #[test]
    fn inode_allocation_prefers_group() {
        let mut a = alloc();
        let ino = a.alloc_inode(1).unwrap();
        // Group 1 starts at inode 65 (64 inodes per group).
        assert_eq!(ino, Ino(65));
        assert!(a.is_inode_allocated(ino));
        a.free_inode(ino).unwrap();
        assert!(!a.is_inode_allocated(ino));
    }

    #[test]
    fn inode_exhaustion_and_double_free() {
        let mut a = alloc();
        let total = a.free_inodes();
        for _ in 0..total {
            a.alloc_inode(0).unwrap();
        }
        assert_eq!(a.alloc_inode(0), Err(FsError::NoInodes));
        let ino = Ino(1);
        a.free_inode(ino).unwrap();
        assert!(a.free_inode(ino).is_err());
    }

    #[test]
    fn block_allocation_is_sequential_with_hint() {
        let mut a = alloc();
        let first = a.alloc_block(None).unwrap();
        let second = a.alloc_block(Some(first)).unwrap();
        assert_eq!(second, first + 1, "hint should give the next block");
        let third = a.alloc_block(Some(second)).unwrap();
        assert_eq!(third, second + 1);
    }

    #[test]
    fn block_free_and_reuse() {
        let mut a = alloc();
        let addr = a.alloc_block(None).unwrap();
        let before = a.free_blocks();
        a.free_block(addr).unwrap();
        assert_eq!(a.free_blocks(), before + 1);
        assert!(a.free_block(addr).is_err(), "double free detected");
        // Freeing metadata is rejected.
        assert!(a.free_block(0).is_err());
    }

    #[test]
    fn metadata_blocks_are_premarked() {
        let a = alloc();
        let sb = a.sb.clone();
        assert!(a.is_block_allocated(sb.bitmap_block(0)));
        assert!(a.is_block_allocated(sb.cg_base(0) + 1));
        assert!(!a.is_block_allocated(sb.data_start(0)));
    }

    #[test]
    fn bitmap_blocks_round_trip() {
        let mut a = alloc();
        let ino = a.alloc_inode(0).unwrap();
        let blk = a.alloc_block(None).unwrap();
        let encoded = a.encode_bitmap_block(0, 512);

        let mut fresh = alloc();
        fresh.load_bitmap_block(0, &encoded);
        assert!(fresh.is_inode_allocated(ino));
        assert!(fresh.is_block_allocated(blk));
        assert_eq!(fresh.free_blocks(), a.free_blocks());
        assert_eq!(fresh.free_inodes(), a.free_inodes());
        assert!(fresh.dirty_groups().is_empty());
    }

    #[test]
    fn dirty_group_tracking() {
        let mut a = alloc();
        assert!(a.dirty_groups().is_empty());
        a.alloc_block(None).unwrap();
        assert_eq!(a.dirty_groups(), vec![0]);
        a.mark_clean(0);
        assert!(a.dirty_groups().is_empty());
    }
}
