//! The mounted FFS volume: state, metadata I/O, and delayed write-back.

use std::collections::HashMap;
use std::sync::Arc;

use block_cache::{BlockKey, Owner};
use mem_mgr::{CacheReport, MemConfig, MemMgr};
use sim_disk::{BlockDevice, Clock, CpuCost, CpuModel};
use vfs::{FileKind, FsError, FsResult, Ino};

use crate::alloc::Allocator;
use crate::config::FfsConfig;
use crate::layout::{FfsAddr, FfsInode, FfsSuperblock, INODE_SIZE, NIL};

/// Metadata cache namespace: inode-table and bitmap blocks, by address.
pub(crate) const NS_META: u32 = 1;

/// Cache-owner index of a file's single-indirect block.
pub(crate) const IDX_SINGLE: u64 = 1 << 40;
/// Cache-owner index of a file's double-indirect top block.
pub(crate) const IDX_DTOP: u64 = (1 << 40) + 1;
/// Base cache-owner index of second-level indirect blocks.
pub(crate) const IDX_DCHILD_BASE: u64 = 1 << 41;

/// Cache index of double-indirect child `outer`.
pub(crate) fn idx_dchild(outer: u32) -> u64 {
    IDX_DCHILD_BASE + outer as u64
}

/// Returns true if a file-owner cache index denotes a data block.
pub(crate) fn is_data_idx(idx: u64) -> bool {
    idx < IDX_SINGLE
}

/// An in-memory inode with its dirty flag.
#[derive(Debug, Clone)]
pub(crate) struct CachedInode {
    pub inode: FfsInode,
    pub dirty: bool,
}

/// Operational counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FfsStats {
    /// Synchronous inode-table block writes (create/unlink/fsync).
    pub sync_inode_writes: u64,
    /// Synchronous directory data block writes.
    pub sync_dir_writes: u64,
    /// Delayed (asynchronous) data block writes.
    pub delayed_data_writes: u64,
    /// Delayed inode-table block writes.
    pub delayed_inode_writes: u64,
    /// Bitmap block writes.
    pub bitmap_writes: u64,
    /// Whole-volume fsck scans performed at mount.
    pub fsck_scans: u64,
    /// Blocks read by mount-time fsck scans.
    pub fsck_blocks_scanned: u64,
}

/// Registry-backed instruments: one counter per [`FfsStats`] field plus
/// the per-operation latency histograms shared with LFS (same `op.*`
/// names, so LFS and FFS runs export through one schema).
pub(crate) struct FfsObs {
    pub registry: obs::Registry,
    pub sync_inode_writes: obs::Counter,
    pub sync_dir_writes: obs::Counter,
    pub delayed_data_writes: obs::Counter,
    pub delayed_inode_writes: obs::Counter,
    pub bitmap_writes: obs::Counter,
    pub fsck_scans: obs::Counter,
    pub fsck_blocks_scanned: obs::Counter,
    pub op_lookup: obs::Hist,
    pub op_create: obs::Hist,
    pub op_mkdir: obs::Hist,
    pub op_unlink: obs::Hist,
    pub op_rmdir: obs::Hist,
    pub op_rename: obs::Hist,
    pub op_link: obs::Hist,
    pub op_read: obs::Hist,
    pub op_write: obs::Hist,
    pub op_truncate: obs::Hist,
    pub op_fsync: obs::Hist,
    pub op_sync: obs::Hist,
}

impl FfsObs {
    pub fn new(registry: obs::Registry) -> Self {
        let c = |name: &str| registry.counter(name);
        let h = |name: &str| registry.hist(name);
        FfsObs {
            sync_inode_writes: c("ffs.sync_inode_writes"),
            sync_dir_writes: c("ffs.sync_dir_writes"),
            delayed_data_writes: c("ffs.delayed_data_writes"),
            delayed_inode_writes: c("ffs.delayed_inode_writes"),
            bitmap_writes: c("ffs.bitmap_writes"),
            fsck_scans: c("fsck.scans"),
            fsck_blocks_scanned: c("fsck.blocks_scanned"),
            op_lookup: h("op.lookup_ns"),
            op_create: h("op.create_ns"),
            op_mkdir: h("op.mkdir_ns"),
            op_unlink: h("op.unlink_ns"),
            op_rmdir: h("op.rmdir_ns"),
            op_rename: h("op.rename_ns"),
            op_link: h("op.link_ns"),
            op_read: h("op.read_ns"),
            op_write: h("op.write_ns"),
            op_truncate: h("op.truncate_ns"),
            op_fsync: h("op.fsync_ns"),
            op_sync: h("op.sync_ns"),
            registry,
        }
    }

    pub fn stats(&self) -> FfsStats {
        FfsStats {
            sync_inode_writes: self.sync_inode_writes.get(),
            sync_dir_writes: self.sync_dir_writes.get(),
            delayed_data_writes: self.delayed_data_writes.get(),
            delayed_inode_writes: self.delayed_inode_writes.get(),
            bitmap_writes: self.bitmap_writes.get(),
            fsck_scans: self.fsck_scans.get(),
            fsck_blocks_scanned: self.fsck_blocks_scanned.get(),
        }
    }
}

/// A mounted FFS volume over a block device.
///
/// Create with [`Ffs::format`] or [`Ffs::mount`]; use through the
/// [`vfs::FileSystem`] trait.
pub struct Ffs<D: BlockDevice> {
    pub(crate) dev: D,
    pub(crate) sb: FfsSuperblock,
    pub(crate) cfg: FfsConfig,
    pub(crate) clock: Arc<Clock>,
    pub(crate) cpu: CpuModel,
    pub(crate) cache: MemMgr,
    pub(crate) alloc: Allocator,
    pub(crate) inodes: HashMap<Ino, CachedInode>,
    pub(crate) obs: FfsObs,
    pub(crate) in_maintenance: bool,
}

impl<D: BlockDevice> Ffs<D> {
    /// Formats the device and mounts the new, empty volume.
    pub fn format(mut dev: D, cfg: FfsConfig, clock: Arc<Clock>) -> FsResult<Self> {
        let sb = FfsSuperblock::derive(&cfg, dev.capacity_bytes())?;
        dev.annotate("superblock");
        dev.write(0, &sb.encode(), true)?;
        let mut fs = Self::fresh(dev, sb, cfg, clock);

        // Root directory: inode 1, written synchronously with its bitmap.
        let root = fs.alloc.alloc_inode(0)?;
        debug_assert_eq!(root, Ino::ROOT);
        let now = fs.clock.now_ns();
        fs.inodes.insert(
            Ino::ROOT,
            CachedInode {
                inode: FfsInode::new(Ino::ROOT, FileKind::Directory, now),
                dirty: true,
            },
        );
        fs.write_inode_to_table(Ino::ROOT, true)?;
        fs.flush_bitmaps(true)?;
        fs.mark_superblock(false)?;
        Ok(fs)
    }

    /// Mounts an existing volume.
    ///
    /// A cleanly unmounted volume loads its bitmaps directly; a dirty one
    /// (crash) pays for a whole-volume scan — the recovery-cost contrast
    /// at the heart of §4.4.
    pub fn mount(mut dev: D, cfg: FfsConfig, clock: Arc<Clock>) -> FsResult<Self> {
        let mut first = vec![0u8; sim_disk::SECTOR_SIZE];
        dev.read(0, &mut first)?;
        let sb = FfsSuperblock::decode(&first)?;
        if sb.block_size as usize != cfg.block_size {
            return Err(FsError::Corrupt("configuration does not match volume"));
        }
        let was_clean = sb.clean;
        let mut fs = Self::fresh(dev, sb, cfg, clock);
        if was_clean {
            for cg in 0..fs.sb.ncg {
                let addr = fs.sb.bitmap_block(cg);
                let block = fs.read_block_raw(addr)?;
                fs.alloc.load_bitmap_block(cg, &block);
            }
        } else {
            fs.fsck_scan()?;
        }
        fs.mark_superblock(false)?;
        Ok(fs)
    }

    /// Cleanly unmounts: syncs everything and marks the volume clean.
    pub fn unmount(mut self) -> FsResult<D> {
        use vfs::FileSystem;
        self.sync()?;
        self.mark_superblock(true)?;
        Ok(self.dev)
    }

    fn fresh(mut dev: D, sb: FfsSuperblock, cfg: FfsConfig, clock: Arc<Clock>) -> Self {
        let cpu = CpuModel::sun_4_260(Arc::clone(&clock));
        // One metrics registry covers device, cache, and file system.
        let registry = obs::Registry::new();
        dev.attach_obs(&registry);
        // FFS has no segment-sized flush unit, so the manager tracks no
        // flush efficiency; the adaptive split still gives the read side
        // scan resistance when configured.
        let mut cache = MemMgr::new(
            sb.block_size as usize,
            (cfg.cache_bytes / sb.block_size as usize).max(8),
            MemConfig {
                policy: cfg.cache_policy,
                writeback: cfg.writeback,
                ..MemConfig::shared(cfg.writeback)
            },
        );
        cache.attach_obs(&registry);
        let alloc = Allocator::new(sb.clone());
        Self {
            dev,
            sb,
            cfg,
            clock,
            cpu,
            cache,
            alloc,
            inodes: HashMap::new(),
            obs: FfsObs::new(registry),
            in_maintenance: false,
        }
    }

    fn mark_superblock(&mut self, clean: bool) -> FsResult<()> {
        self.sb.clean = clean;
        let bytes = self.sb.encode();
        self.dev.annotate("superblock");
        self.dev.write(0, &bytes, true)?;
        Ok(())
    }

    /// A point-in-time report of the memory manager: pool sizes,
    /// traffic counters, and per-client residency attribution.
    pub fn cache_report(&self) -> CacheReport {
        self.cache.report()
    }

    /// Replaces the CPU model (CPU-scaling experiments).
    pub fn set_cpu_mips(&mut self, mips: f64) {
        self.cpu = CpuModel::new(Arc::clone(&self.clock), mips);
    }

    /// The volume geometry.
    pub fn superblock(&self) -> &FfsSuperblock {
        &self.sb
    }

    /// The configuration this volume was mounted with.
    pub fn config(&self) -> &FfsConfig {
        &self.cfg
    }

    /// A point-in-time snapshot of the operational counters.
    pub fn stats(&self) -> FfsStats {
        self.obs.stats()
    }

    /// The stack's shared metrics registry (device + cache + file
    /// system), for snapshots, event dumps, and JSON export.
    pub fn obs(&self) -> &obs::Registry {
        &self.obs.registry
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Borrows the underlying device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutably borrows the underlying device.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Unmounts without syncing (crash testing) and returns the device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// File-system block size in bytes.
    pub fn block_size(&self) -> usize {
        self.sb.block_size as usize
    }

    pub(crate) fn now(&self) -> u64 {
        self.clock.now_ns()
    }

    pub(crate) fn charge(&self, cost: CpuCost) {
        self.cpu.charge(cost);
    }

    pub(crate) fn sector_of(&self, addr: FfsAddr) -> u64 {
        addr as u64 * (self.sb.block_size as u64 / sim_disk::SECTOR_SIZE as u64)
    }

    // ------------------------------------------------------------------
    // Raw and metadata block I/O.
    // ------------------------------------------------------------------

    pub(crate) fn read_block_raw(&mut self, addr: FfsAddr) -> FsResult<Vec<u8>> {
        let mut buf = vec![0u8; self.block_size()];
        self.dev.read(self.sector_of(addr), &mut buf)?;
        Ok(buf)
    }

    /// Reads a metadata block through the address-keyed cache.
    pub(crate) fn read_meta_block(&mut self, addr: FfsAddr) -> FsResult<Vec<u8>> {
        let key = BlockKey::meta(NS_META, addr as u64);
        if let Some(data) = self.cache.get(key) {
            return Ok(data.to_vec());
        }
        let data = self.read_block_raw(addr)?;
        self.cache
            .insert_clean(key, data.clone().into_boxed_slice());
        Ok(data)
    }

    // ------------------------------------------------------------------
    // Inodes.
    // ------------------------------------------------------------------

    pub(crate) fn ensure_inode(&mut self, ino: Ino) -> FsResult<()> {
        if self.inodes.contains_key(&ino) {
            return Ok(());
        }
        if !self.alloc.is_inode_allocated(ino) {
            return Err(FsError::NotFound);
        }
        let (block_addr, offset) = self.sb.inode_slot(ino)?;
        let block = self.read_meta_block(block_addr)?;
        let inode = FfsInode::decode_slot(&block[offset..offset + INODE_SIZE])?
            .ok_or(FsError::Corrupt("allocated inode slot is empty"))?;
        if inode.ino != ino {
            return Err(FsError::Corrupt("FFS inode number mismatch"));
        }
        self.inodes.insert(
            ino,
            CachedInode {
                inode,
                dirty: false,
            },
        );
        Ok(())
    }

    pub(crate) fn inode(&mut self, ino: Ino) -> FsResult<FfsInode> {
        self.ensure_inode(ino)?;
        Ok(self.inodes[&ino].inode.clone())
    }

    pub(crate) fn with_inode_mut<R>(
        &mut self,
        ino: Ino,
        f: impl FnOnce(&mut FfsInode) -> R,
    ) -> FsResult<R> {
        self.ensure_inode(ino)?;
        let slot = self.inodes.get_mut(&ino).unwrap();
        slot.dirty = true;
        Ok(f(&mut slot.inode))
    }

    /// Writes an inode into its fixed table slot. With `sync`, this is
    /// the synchronous metadata write of Figure 1.
    pub(crate) fn write_inode_to_table(&mut self, ino: Ino, sync: bool) -> FsResult<()> {
        let (block_addr, offset) = self.sb.inode_slot(ino)?;
        let encoded = match self.inodes.get(&ino) {
            Some(cached) => cached.inode.encode(),
            // A freed inode: zero its slot.
            None => vec![0u8; INODE_SIZE],
        };
        let mut block = self.read_meta_block(block_addr)?;
        block[offset..offset + INODE_SIZE].copy_from_slice(&encoded);
        self.cache.insert_clean(
            BlockKey::meta(NS_META, block_addr as u64),
            block.clone().into_boxed_slice(),
        );
        self.dev.annotate(if sync { "inode-sync" } else { "inode" });
        self.dev.write(self.sector_of(block_addr), &block, sync)?;
        if sync {
            self.obs.sync_inode_writes.inc();
        } else {
            self.obs.delayed_inode_writes.inc();
        }
        if let Some(cached) = self.inodes.get_mut(&ino) {
            cached.dirty = false;
        }
        Ok(())
    }

    /// Writes a file's cached blocks covering `[start, end)` bytes to
    /// disk synchronously (directory updates in create/unlink).
    pub(crate) fn sync_file_range(&mut self, ino: Ino, start: u64, end: u64) -> FsResult<()> {
        if end <= start {
            return Ok(());
        }
        let bs = self.block_size() as u64;
        for bno in start / bs..end.div_ceil(bs) {
            let key = BlockKey::file(ino, bno);
            let Some(data) = self.cache.get(key).map(|d| d.to_vec()) else {
                continue;
            };
            let addr = self.map_block(ino, bno)?;
            if addr == NIL {
                return Err(FsError::Corrupt("dirty block without an address"));
            }
            self.dev.annotate("dir-sync");
            self.dev.write(self.sector_of(addr), &data, true)?;
            self.cache.mark_clean(key);
            self.obs.sync_dir_writes.inc();
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Delayed write-back.
    // ------------------------------------------------------------------

    /// Writes all dirty state to its home locations (update in place).
    /// Writes are asynchronous; callers wanting durability follow with
    /// `dev.flush()`.
    pub(crate) fn flush_all(&mut self) -> FsResult<()> {
        let was = std::mem::replace(&mut self.in_maintenance, true);
        let result = self.flush_inner();
        self.in_maintenance = was;
        result
    }

    fn flush_inner(&mut self) -> FsResult<()> {
        // Data and indirect blocks, in (file, block) order.
        for key in self.cache.dirty_keys() {
            let Owner::File(ino) = key.owner else {
                continue;
            };
            let data = self
                .cache
                .get(key)
                .expect("dirty block must be cached")
                .to_vec();
            let addr = if is_data_idx(key.index) {
                self.map_block(ino, key.index)?
            } else {
                self.indirect_home(ino, key.index)?
            };
            if addr == NIL {
                return Err(FsError::Corrupt("dirty block without an address"));
            }
            self.dev.annotate("data");
            self.dev.write(self.sector_of(addr), &data, false)?;
            self.cache.mark_clean(key);
            self.obs.delayed_data_writes.inc();
        }

        // Dirty inodes, grouped by inode-table block so co-located inodes
        // cost one write (as the real FFS buffer cache would).
        let mut dirty_inos: Vec<Ino> = self
            .inodes
            .iter()
            .filter(|(_, c)| c.dirty)
            .map(|(&ino, _)| ino)
            .collect();
        dirty_inos.sort();
        let mut by_block: Vec<(FfsAddr, Vec<Ino>)> = Vec::new();
        for ino in dirty_inos {
            let (block_addr, _) = self.sb.inode_slot(ino)?;
            match by_block.last_mut() {
                Some((addr, inos)) if *addr == block_addr => inos.push(ino),
                _ => by_block.push((block_addr, vec![ino])),
            }
        }
        for (block_addr, inos) in by_block {
            let mut block = self.read_meta_block(block_addr)?;
            for &ino in &inos {
                let (_, offset) = self.sb.inode_slot(ino)?;
                let encoded = self.inodes[&ino].inode.encode();
                block[offset..offset + INODE_SIZE].copy_from_slice(&encoded);
            }
            self.cache.insert_clean(
                BlockKey::meta(NS_META, block_addr as u64),
                block.clone().into_boxed_slice(),
            );
            self.dev.annotate("inode");
            self.dev.write(self.sector_of(block_addr), &block, false)?;
            self.obs.delayed_inode_writes.inc();
            for ino in inos {
                if let Some(cached) = self.inodes.get_mut(&ino) {
                    cached.dirty = false;
                }
            }
        }

        // Dirty bitmaps.
        self.flush_bitmaps(false)?;
        Ok(())
    }

    /// Writes dirty bitmap blocks.
    pub(crate) fn flush_bitmaps(&mut self, sync: bool) -> FsResult<()> {
        for cg in self.alloc.dirty_groups() {
            let block = self.alloc.encode_bitmap_block(cg, self.block_size());
            let addr = self.sb.bitmap_block(cg);
            self.cache.insert_clean(
                BlockKey::meta(NS_META, addr as u64),
                block.clone().into_boxed_slice(),
            );
            self.dev.annotate("bitmap");
            self.dev.write(self.sector_of(addr), &block, sync)?;
            self.alloc.mark_clean(cg);
            self.obs.bitmap_writes.inc();
        }
        Ok(())
    }

    /// Applies the delayed-write policy after an operation.
    pub(crate) fn maybe_writeback(&mut self) -> FsResult<()> {
        if self.in_maintenance {
            return Ok(());
        }
        let now = self.now();
        if self.cache.writeback_trigger(now).is_some() {
            self.flush_all()?;
        }
        Ok(())
    }
}
