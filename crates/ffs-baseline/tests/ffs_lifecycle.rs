//! End-to-end lifecycle tests for the FFS baseline.

use std::sync::Arc;

use ffs_baseline::{Ffs, FfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::{FileSystem, FsError};

fn fresh_fs() -> Ffs<SimDisk> {
    let clock = Clock::new();
    // 8 MB tiny-test disk.
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    Ffs::format(disk, FfsConfig::small_test(), clock).unwrap()
}

fn assert_fsck_clean(fs: &mut Ffs<SimDisk>) {
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "fsck found problems:\n{report}");
}

#[test]
fn format_produces_clean_empty_fs() {
    let mut fs = fresh_fs();
    assert!(fs.readdir("/").unwrap().is_empty());
    assert_eq!(fs.fs_stats().unwrap().live_inodes, 1);
    assert_fsck_clean(&mut fs);
}

#[test]
fn create_performs_synchronous_metadata_writes() {
    let mut fs = fresh_fs();
    let sync_before = fs.device().stats().sync_writes;
    fs.create("/file").unwrap();
    let sync_after = fs.device().stats().sync_writes;
    assert!(
        sync_after >= sync_before + 2,
        "creat must write the inode and directory block synchronously \
         ({sync_before} -> {sync_after})"
    );
    assert!(fs.stats().sync_inode_writes >= 1);
    assert!(fs.stats().sync_dir_writes >= 1);
}

#[test]
fn small_file_round_trip() {
    let mut fs = fresh_fs();
    fs.write_file("/hello", b"hello ffs").unwrap();
    assert_eq!(fs.read_file("/hello").unwrap(), b"hello ffs");
    fs.sync().unwrap();
    fs.drop_caches().unwrap();
    assert_eq!(fs.read_file("/hello").unwrap(), b"hello ffs");
    assert_fsck_clean(&mut fs);
}

#[test]
fn directories_and_links() {
    let mut fs = fresh_fs();
    fs.mkdir("/d").unwrap();
    fs.write_file("/d/f", b"data").unwrap();
    fs.link("/d/f", "/d/g").unwrap();
    let ino = fs.lookup("/d/f").unwrap();
    assert_eq!(fs.stat(ino).unwrap().nlink, 2);
    fs.unlink("/d/f").unwrap();
    assert_eq!(fs.read_file("/d/g").unwrap(), b"data");
    fs.rename("/d/g", "/top").unwrap();
    assert_eq!(fs.read_file("/top").unwrap(), b"data");
    assert_fsck_clean(&mut fs);
}

#[test]
fn large_file_with_indirect_blocks() {
    let mut fs = fresh_fs();
    let payload: Vec<u8> = (0..200 * 1024u32).map(|i| (i * 13 % 256) as u8).collect();
    fs.write_file("/big", &payload).unwrap();
    fs.sync().unwrap();
    fs.drop_caches().unwrap();
    assert_eq!(fs.read_file("/big").unwrap(), payload);
    assert_fsck_clean(&mut fs);
}

#[test]
fn sequential_allocation_gives_contiguous_layout() {
    let mut fs = fresh_fs();
    let payload = vec![1u8; 20 * 512];
    fs.write_file("/seq", &payload).unwrap();
    fs.sync().unwrap();
    // Reading it back sequentially after dropping caches should be
    // mostly sequential disk I/O thanks to the allocation hint.
    fs.drop_caches().unwrap();
    let before = fs.device().stats().clone();
    fs.read_file("/seq").unwrap();
    let delta = fs.device().stats().delta_since(&before);
    assert!(
        delta.sequential * 2 >= delta.total_requests(),
        "expected mostly sequential reads, got {delta}"
    );
}

#[test]
fn truncate_frees_blocks() {
    let mut fs = fresh_fs();
    let ino = fs.write_file("/t", &vec![7u8; 30 * 512]).unwrap();
    let used_before = fs.fs_stats().unwrap().used_bytes;
    fs.truncate(ino, 512).unwrap();
    let used_after = fs.fs_stats().unwrap().used_bytes;
    assert!(used_after < used_before);
    fs.sync().unwrap();
    assert_fsck_clean(&mut fs);
}

#[test]
fn unlink_returns_space() {
    let mut fs = fresh_fs();
    let free0 = fs.fs_stats().unwrap().used_bytes;
    fs.write_file("/x", &vec![1u8; 50 * 512]).unwrap();
    fs.unlink("/x").unwrap();
    assert_eq!(fs.fs_stats().unwrap().used_bytes, free0);
    assert_fsck_clean(&mut fs);
}

#[test]
fn clean_unmount_and_remount_loads_bitmaps() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Ffs::format(disk, FfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    fs.mkdir("/d").unwrap();
    fs.write_file("/d/f", b"persisted").unwrap();
    let disk = fs.unmount().unwrap();

    let image = disk.into_image();
    let clock2 = Clock::new();
    let disk2 = SimDisk::from_image(geometry, Arc::clone(&clock2), image);
    let mut fs2 = Ffs::mount(disk2, FfsConfig::small_test(), clock2).unwrap();
    assert_eq!(fs2.stats().fsck_scans, 0, "clean mount must not scan");
    assert_eq!(fs2.read_file("/d/f").unwrap(), b"persisted");
    assert_fsck_clean(&mut fs2);
}

#[test]
fn dirty_mount_runs_full_scan_and_repairs() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Ffs::format(disk, FfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    fs.mkdir("/d").unwrap();
    fs.write_file("/d/f", b"synced data").unwrap();
    fs.sync().unwrap();
    // No clean unmount: simulate a crash by taking the image directly.
    let image = fs.into_device().into_image();

    let clock2 = Clock::new();
    let disk2 = SimDisk::from_image(geometry, Arc::clone(&clock2), image);
    let mut fs2 = Ffs::mount(disk2, FfsConfig::small_test(), clock2).unwrap();
    assert_eq!(fs2.stats().fsck_scans, 1, "dirty mount must scan");
    assert!(fs2.stats().fsck_blocks_scanned > 0);
    assert_eq!(fs2.read_file("/d/f").unwrap(), b"synced data");
    assert_fsck_clean(&mut fs2);
}

#[test]
fn error_paths_match_unix_semantics() {
    let mut fs = fresh_fs();
    fs.mkdir("/d").unwrap();
    fs.create("/d/f").unwrap();
    assert_eq!(fs.create("/d/f"), Err(FsError::AlreadyExists));
    assert_eq!(fs.unlink("/d"), Err(FsError::IsADirectory));
    assert_eq!(fs.rmdir("/d"), Err(FsError::DirectoryNotEmpty));
    assert_eq!(fs.lookup("/nope"), Err(FsError::NotFound));
    assert_eq!(fs.rename("/d", "/d/sub"), Err(FsError::InvalidPath));
}

#[test]
fn many_files_across_groups() {
    let mut fs = fresh_fs();
    // small_test has 64 inodes/cg; creating 150 files spans groups.
    for i in 0..150 {
        fs.mkdir(&format!("/dir{i:03}")).unwrap();
        fs.write_file(&format!("/dir{i:03}/f"), &vec![i as u8; 700])
            .unwrap();
    }
    fs.sync().unwrap();
    fs.drop_caches().unwrap();
    for i in (0..150).step_by(13) {
        assert_eq!(
            fs.read_file(&format!("/dir{i:03}/f")).unwrap(),
            vec![i as u8; 700]
        );
    }
    assert_fsck_clean(&mut fs);
}

#[test]
fn random_overwrites_stay_in_place() {
    let mut fs = fresh_fs();
    let ino = fs.write_file("/f", &vec![0u8; 40 * 512]).unwrap();
    fs.sync().unwrap();
    let addr_of = |fs: &mut Ffs<SimDisk>| {
        // Re-read through the public API and ensure content changes while
        // fsck stays clean (addresses are internal, so we check the
        // update-in-place effect indirectly: used space is unchanged).
        fs.fs_stats().unwrap().used_bytes
    };
    let used_before = addr_of(&mut fs);
    fs.write_at(ino, 7 * 512, &vec![9u8; 512]).unwrap();
    fs.sync().unwrap();
    assert_eq!(addr_of(&mut fs), used_before, "overwrite must not allocate");
    let mut buf = vec![0u8; 512];
    fs.read_at(ino, 7 * 512, &mut buf).unwrap();
    assert_eq!(buf, vec![9u8; 512]);
    assert_fsck_clean(&mut fs);
}
