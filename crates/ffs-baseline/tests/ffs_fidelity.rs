//! Tests pinning FFS's contrasting design points — the behaviours the
//! paper's comparison depends on.

use std::sync::Arc;

use ffs_baseline::{Ffs, FfsConfig};
use sim_disk::{AccessKind, Clock, DiskGeometry, SimDisk};
use vfs::FileSystem;

fn fresh() -> Ffs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(32_768), Arc::clone(&clock));
    Ffs::format(disk, FfsConfig::small_test(), clock).unwrap()
}

/// Inodes live at fixed disk addresses: rewriting a file many times
/// never moves its inode (the defining contrast with LFS's inode map).
#[test]
fn inode_table_writes_hit_the_same_sector() {
    let mut fs = fresh();
    let ino = fs.write_file("/fixed", b"v1").unwrap();
    fs.device_mut().trace_mut().enable();
    for generation in 0..5 {
        fs.truncate(ino, 0).unwrap();
        fs.write_at(ino, 0, format!("gen {generation}").as_bytes())
            .unwrap();
        fs.sync().unwrap();
    }
    let inode_sectors: Vec<u64> = fs
        .device()
        .trace()
        .records()
        .iter()
        .filter(|r| r.kind == AccessKind::Write && r.label.starts_with("inode"))
        .map(|r| r.sector)
        .collect();
    assert!(!inode_sectors.is_empty());
    assert!(
        inode_sectors.windows(2).all(|w| w[0] == w[1]),
        "FFS inodes must never move: {inode_sectors:?}"
    );
}

/// Data blocks are updated in place: overwriting a block writes the same
/// sector it occupied before.
#[test]
fn data_overwrites_are_in_place() {
    let mut fs = fresh();
    let ino = fs.write_file("/in-place", &vec![1u8; 512]).unwrap();
    fs.sync().unwrap();
    fs.device_mut().trace_mut().enable();
    fs.write_at(ino, 0, &vec![2u8; 512]).unwrap();
    fs.sync().unwrap();
    fs.write_at(ino, 0, &vec![3u8; 512]).unwrap();
    fs.sync().unwrap();
    let data_sectors: Vec<u64> = fs
        .device()
        .trace()
        .records()
        .iter()
        .filter(|r| r.kind == AccessKind::Write && r.label == "data")
        .map(|r| r.sector)
        .collect();
    assert_eq!(data_sectors.len(), 2);
    assert_eq!(data_sectors[0], data_sectors[1], "update must be in place");
}

/// FFS keeps atime in the inode, so a read dirties the inode and the
/// next sync rewrites it — the cost LFS's footnote-2 design avoids.
#[test]
fn reads_dirty_the_inode() {
    let mut fs = fresh();
    let ino = fs.write_file("/atime", b"contents").unwrap();
    fs.sync().unwrap();
    let before = fs.stats().delayed_inode_writes + fs.stats().sync_inode_writes;
    let mut buf = [0u8; 4];
    fs.clock().advance_ns(5_000_000);
    fs.read_at(ino, 0, &mut buf).unwrap();
    fs.sync().unwrap();
    let after = fs.stats().delayed_inode_writes + fs.stats().sync_inode_writes;
    assert!(
        after > before,
        "an FFS read must eventually rewrite the inode"
    );
}

/// Inode placement prefers the parent directory's cylinder group, and a
/// file's data lands near its inode.
#[test]
fn allocation_has_cylinder_group_locality() {
    let mut fs = fresh();
    fs.mkdir("/near").unwrap();
    fs.write_file("/near/a", &vec![1u8; 4096]).unwrap();
    fs.write_file("/near/b", &vec![2u8; 4096]).unwrap();
    fs.sync().unwrap();
    fs.drop_caches().unwrap();

    // Reading both files back should be dominated by short seeks: all
    // blocks sit in one or two cylinder groups.
    let before = fs.device().stats().clone();
    fs.read_file("/near/a").unwrap();
    fs.read_file("/near/b").unwrap();
    let delta = fs.device().stats().delta_since(&before);
    // With 64-block groups of 512 B, everything lives within ~64 KB; the
    // seek cost per access must be near the track-to-track minimum, far
    // below random access over the whole device.
    let per_request_ns = delta.busy_ns / delta.total_requests();
    let worst_random = fs.device().geometry().avg_seek_ns;
    assert!(
        per_request_ns < worst_random,
        "locality lost: {per_request_ns} ns/request"
    );
}

/// The volume remembers clean vs dirty across unmount.
#[test]
fn clean_flag_tracks_unmount() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(32_768), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Ffs::format(disk, FfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    fs.write_file("/f", b"x").unwrap();
    // Clean unmount → next mount does not scan.
    let disk = fs.unmount().unwrap();
    let image = disk.into_image();
    let disk = SimDisk::from_image(geometry.clone(), Clock::new(), image);
    let clock2 = disk.clock().clone();
    let mut fs = Ffs::mount(disk, FfsConfig::small_test(), clock2).unwrap();
    assert_eq!(fs.stats().fsck_scans, 0);

    // Crash (no unmount) → next mount scans.
    fs.write_file("/g", b"y").unwrap();
    fs.sync().unwrap();
    let image = fs.into_device().into_image();
    let disk = SimDisk::from_image(geometry, Clock::new(), image);
    let clock3 = disk.clock().clone();
    let fs = Ffs::mount(disk, FfsConfig::small_test(), clock3).unwrap();
    assert_eq!(fs.stats().fsck_scans, 1);
}
