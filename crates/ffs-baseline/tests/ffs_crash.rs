//! FFS crash behaviour: a dirty mount must run the full scan and repair
//! the volume to consistency, whatever the crash interrupted.

use std::sync::Arc;

use ffs_baseline::{Ffs, FfsConfig};
use sim_disk::{Clock, CrashPlan, DiskGeometry, SimDisk};
use vfs::FileSystem;

const DISK_SECTORS: u64 = 16_384; // 8 MB

fn scripted_run(fs: &mut Ffs<SimDisk>) {
    let _ = fs.mkdir("/a");
    for i in 0..8 {
        let _ = fs.write_file(&format!("/a/f{i}"), &vec![i as u8 + 1; 900]);
    }
    let _ = fs.sync();
    for i in 0..4 {
        let _ = fs.unlink(&format!("/a/f{i}"));
    }
    let _ = fs.mkdir("/b");
    for i in 0..6 {
        let _ = fs.write_file(&format!("/b/g{i}"), &vec![0x30 + i as u8; 1500]);
    }
    let _ = fs.sync();
}

#[test]
fn crash_at_many_points_repairs_to_consistency() {
    // Count the full run's writes first.
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
    let mut fs = Ffs::format(disk, FfsConfig::small_test(), clock).unwrap();
    scripted_run(&mut fs);
    let total = fs.device().stats().writes;

    let mut tested = 0;
    for crash_at in (0..total + 2).step_by(2) {
        let clock = Clock::new();
        let mut disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
        disk.arm_crash(CrashPlan::drop_at(crash_at));
        let Ok(mut fs) = Ffs::format(disk, FfsConfig::small_test(), clock) else {
            continue; // Crash during mkfs: nothing to recover.
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scripted_run(&mut fs);
        }));
        let _ = result;
        let image = fs.into_device().into_image();

        let disk = SimDisk::from_image(DiskGeometry::tiny_test(DISK_SECTORS), Clock::new(), image);
        let clock = disk.clock().clone();
        let mut fs = Ffs::mount(disk, FfsConfig::small_test(), clock)
            .unwrap_or_else(|e| panic!("crash at {crash_at}: mount failed: {e}"));
        assert_eq!(fs.stats().fsck_scans, 1, "dirty volume must scan");
        let report = fs.fsck().unwrap();
        assert!(
            report.is_clean(),
            "crash at {crash_at}: still inconsistent after repair:\n{report}"
        );
        // The repaired volume must be fully usable.
        fs.write_file("/post-crash", b"works").unwrap();
        assert_eq!(fs.read_file("/post-crash").unwrap(), b"works");
        tested += 1;
    }
    assert!(tested > 20, "only {tested} crash points exercised");
}

#[test]
fn torn_metadata_write_is_repaired() {
    for torn in [0u64, 1] {
        let clock = Clock::new();
        let mut disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
        // Tear an early write (likely the superblock or an inode table
        // block during the setup phase).
        disk.arm_crash(CrashPlan::tear_at(6, torn));
        let Ok(mut fs) = Ffs::format(disk, FfsConfig::small_test(), clock) else {
            continue;
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scripted_run(&mut fs);
        }));
        let _ = result;
        let image = fs.into_device().into_image();

        let disk = SimDisk::from_image(DiskGeometry::tiny_test(DISK_SECTORS), Clock::new(), image);
        let clock = disk.clock().clone();
        if let Ok(mut fs) = Ffs::mount(disk, FfsConfig::small_test(), clock) {
            let report = fs.fsck().unwrap();
            assert!(report.is_clean(), "torn {torn}: {report}");
        }
    }
}
