//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace maps the
//! `rand` dependency name to this crate. It implements exactly the subset
//! of the rand 0.8 API the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over
//! half-open and inclusive integer ranges.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
//! statistically solid 64-bit PRNG. It is NOT the ChaCha12 generator real
//! `rand` uses, so seeded sequences differ from upstream — fine here, since
//! every consumer only needs determinism under a fixed seed, not
//! bit-compatibility with rand proper.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, bound)` via Lemire-style rejection on the top
    /// bits (bias is negligible for the bounds used here, but reject anyway
    /// to keep the distribution exact).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Zone rejection: largest multiple of `bound` that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let raw = self.next_u64();
            if raw <= zone {
                return raw % bound;
            }
        }
    }
}

/// Seeding trait mirroring `rand::SeedableRng` for the one constructor the
/// workspace calls.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from an `Rng` for one output type, mirroring
/// `rand::distributions::Standard` coverage for the types used here.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random bits mapped to [0, 1), matching rand's convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}

impl Standard for u16 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> u16 {
        rng.next_u64() as u16
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// A range we can sample uniformly, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below_u64(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + rng.below_u64(span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.below_u64(span as u64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below_u64(span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i32 => u32, i64 => u64);

/// Minimal core trait so `Standard`/`SampleRange` can be written once.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn below_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let raw = self.next_u64();
            if raw <= zone {
                return raw % bound;
            }
        }
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// Stand-in for `rand::rngs::StdRng`: deterministic under
    /// `seed_from_u64`, which is the only way the workspace constructs it.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        core: SplitMix64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                core: SplitMix64::new(seed),
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.core.next_u64()
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(256usize..=4096);
            assert!((256..=4096).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
