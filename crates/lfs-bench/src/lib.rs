#![warn(missing_docs)]

//! Benchmark rig for reproducing the paper's evaluation (§5).
//!
//! Each figure/table from the paper has a binary in `src/bin/`:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_2_create_trace` | Figures 1 & 2 — disk accesses for two small-file creations |
//! | `fig3_small_file` | Figure 3 — small-file create/read/delete throughput |
//! | `fig4_large_file` | Figure 4 — 100 MB file sequential/random transfer rates |
//! | `fig5_cleaning_rate` | Figure 5 — cleaning rate vs segment utilization |
//! | `tbl_s1_cpu_scaling` | §3.1 — create+delete latency vs CPU speed |
//! | `tbl_s2_recovery` | §4.4 — crash-recovery cost and loss window |
//! | `abl_segment_size` | §4.3 ablation — segment size sweep |
//! | `abl_cleaner_policy` | §4.3.4 ablation — victim-selection policies |
//! | `abl_writeback_age` | §4.3.5 ablation — write-back age threshold |
//! | `abl_liveness_fastpath` | §4.3.3 ablation — version-number fast path |
//!
//! Extensions beyond the paper's figures (each documented in
//! EXPERIMENTS.md):
//!
//! | Binary | Claim under test |
//! |---|---|
//! | `ext_sustained_use` | §5.3/§6 — steady-state behaviour vs disk fullness |
//! | `mt_scaling` | §3 — multi-client scaling through the request engine |
//! | `stripe_scaling` | §2 — log bandwidth scales with spindle count |
//! | `cleaner_interference` | §4.3.4 — async cleaning as an engine client |
//! | `trace_replay` | §4.3.5 — trace-driven multi-tenant replay with QoS |
//! | `crash_sweep` | §4.4 — exhaustive crash/media-fault torture sweep |
//! | `degraded_rebuild` | §3 parity claim — degraded reads and online rebuild |
//! | `fail_slow` | fail-slow tolerance — hedged reads, health eviction, hot-spare failover |
//! | `recovery_scaling` | §4.4 — crash-recovery time vs spindle count (parallel recovery) |
//!
//! All measurements are **virtual time** from the shared [`sim_disk::Clock`]
//! driven by the WREN IV disk model and the Sun-4/260 CPU model, so runs
//! are deterministic.

pub mod cache_mix;
pub mod crash_sweep;
pub mod degraded;
pub mod fail_slow;
pub mod interference;
pub mod recovery_scaling;
pub mod trace_replay;

use std::sync::Arc;

use ffs_baseline::{Ffs, FfsConfig};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{BlockDevice, Clock, DiskGeometry, SimDisk};

/// A freshly formatted LFS on a paper-configuration WREN IV disk.
pub fn lfs_rig(cfg: LfsConfig) -> (Lfs<SimDisk>, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::wren_iv(), Arc::clone(&clock));
    let fs = Lfs::format(disk, cfg, Arc::clone(&clock)).expect("format LFS");
    (fs, clock)
}

/// A freshly formatted FFS on a paper-configuration WREN IV disk.
pub fn ffs_rig(cfg: FfsConfig) -> (Ffs<SimDisk>, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::wren_iv(), Arc::clone(&clock));
    let fs = Ffs::format(disk, cfg, Arc::clone(&clock)).expect("format FFS");
    (fs, clock)
}

/// Collects labelled registry snapshots over a benchmark's runs and
/// writes the `lfs-repro/metrics/v1` report as `BENCH_<name>.json`
/// (into `$BENCH_OUT_DIR`, default the working directory).
pub struct MetricsReport {
    inner: obs::report::Report,
}

impl MetricsReport {
    /// Starts a report named after the benchmark binary.
    pub fn new(name: &str) -> Self {
        Self {
            inner: obs::report::Report::new(name),
        }
    }

    /// Snapshots an LFS stack (device + cache + fs) as one run.
    pub fn add_lfs<D: BlockDevice>(&mut self, label: &str, fs: &Lfs<D>) {
        self.inner
            .add_run(label, "lfs", fs.clock().now_ns(), fs.obs());
    }

    /// Snapshots an FFS stack as one run.
    pub fn add_ffs<D: BlockDevice>(&mut self, label: &str, fs: &Ffs<D>) {
        self.inner
            .add_run(label, "ffs", fs.clock().now_ns(), fs.obs());
    }

    /// Snapshots a bare registry (no file system attached).
    pub fn add_registry(&mut self, label: &str, clock_ns: u64, registry: &obs::Registry) {
        self.inner.add_run(label, "-", clock_ns, registry);
    }

    /// The report rendered as its JSON document, without writing a
    /// file — what `emit` would write. The determinism tests compare
    /// this byte-for-byte across repeated runs.
    pub fn to_json(&self) -> String {
        self.inner.to_json()
    }

    /// Writes the report file and prints its path. Failures are reported
    /// but do not abort the benchmark: the table output on stdout is
    /// still the primary artifact.
    pub fn emit(self) {
        match self.inner.write_bench_json() {
            Ok(path) => println!("\nmetrics: {}", path.display()),
            Err(e) => eprintln!("warning: could not write metrics JSON: {e}"),
        }
    }
}

/// One row of a result table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (leftmost column).
    pub label: String,
    /// Cell values, matching the header order.
    pub values: Vec<String>,
}

impl Row {
    /// Builds a row from a label and preformatted cells.
    pub fn new(label: impl Into<String>, values: Vec<String>) -> Self {
        Self {
            label: label.into(),
            values,
        }
    }
}

/// Prints a fixed-width table (the format EXPERIMENTS.md records).
pub fn print_table(title: &str, first_header: &str, headers: &[&str], rows: &[Row]) {
    println!("\n== {title} ==");
    let label_width = rows
        .iter()
        .map(|r| r.label.len())
        .chain([first_header.len()])
        .max()
        .unwrap_or(8)
        + 2;
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.values.get(i).map_or(0, |v| v.len()))
                .chain([h.len()])
                .max()
                .unwrap_or(8)
                + 2
        })
        .collect();
    print!("{first_header:<label_width$}");
    for (h, w) in headers.iter().zip(&widths) {
        print!("{h:>w$}");
    }
    println!();
    for row in rows {
        print!("{:<label_width$}", row.label);
        for (v, w) in row.values.iter().zip(&widths) {
            print!("{v:>w$}");
        }
        println!();
    }
}

/// Formats a rate with adaptive precision.
pub fn fmt_rate(value: f64) -> String {
    if value >= 100.0 {
        format!("{value:.0}")
    } else if value >= 10.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::FileSystem;

    #[test]
    fn rigs_produce_working_file_systems() {
        let (mut lfs, clock) = lfs_rig(LfsConfig::paper());
        lfs.write_file("/x", b"lfs").unwrap();
        assert_eq!(lfs.read_file("/x").unwrap(), b"lfs");
        assert!(clock.now_ns() > 0);

        let (mut ffs, clock) = ffs_rig(FfsConfig::paper());
        ffs.write_file("/x", b"ffs").unwrap();
        assert_eq!(ffs.read_file("/x").unwrap(), b"ffs");
        assert!(clock.now_ns() > 0);
    }

    #[test]
    fn fmt_rate_adapts_precision() {
        assert_eq!(fmt_rate(1234.5), "1234");
        assert_eq!(fmt_rate(56.78), "56.8");
        assert_eq!(fmt_rate(3.456), "3.46");
    }
}
