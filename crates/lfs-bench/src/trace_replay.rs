//! Shared cell runner for the `trace_replay` bench (§4.3.5 traces,
//! multi-tenant QoS) and its determinism test.
//!
//! One *cell* is one replay of one trace against a freshly formatted
//! file system: `trace x {lfs, ffs} x spindles x qos {on, off}`. Every
//! cell mounts the file system on a [`volume::StripedVolume`] (one
//! spindle is the degenerate stripe), replays through the volume's
//! [`engine::RequestEngine`] seam, fscks the result, digests the final
//! namespace for the cross-fs equivalence check, and publishes the
//! replay's per-tenant outcome as gauges so CI can recompute the QoS
//! assertions from the emitted JSON alone.

use std::sync::Arc;

use ffs_baseline::{Ffs, FfsConfig};
use lfs_core::{Lfs, LfsConfig};
use obs::Registry;
use sim_disk::{Clock, DiskGeometry};
use trace::{replay, snapshot, ReplayConfig, ReplayReport, Trace};
use volume::{StripedVolume, VolumeConfig, VolumeDisk};

use crate::MetricsReport;

/// Modern-host CPU speed (MIPS): the disks, not the CPU, contend.
pub const CPU_MIPS: f64 = 1000.0;
/// Sectors per spindle (64 MB each, Wren IV mechanics).
const SPINDLE_SECTORS: u64 = 131_072;

/// Which file system a cell mounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsKind {
    /// The log-structured file system under test.
    Lfs,
    /// The FFS baseline.
    Ffs,
}

impl FsKind {
    /// Label fragment (`lfs` / `ffs`).
    pub fn name(self) -> &'static str {
        match self {
            FsKind::Lfs => "lfs",
            FsKind::Ffs => "ffs",
        }
    }
}

/// One replayed cell's outcome.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// `trace/fs/sN/q{on,off}` — also the metrics-run label.
    pub label: String,
    /// The replay driver's report.
    pub report: ReplayReport,
    /// FNV-1a digest of the final namespace snapshot; equal across
    /// every cell that replayed the same trace.
    pub snapshot_hash: u64,
}

fn volume_rig(spindles: usize, chunk_bytes: usize) -> (VolumeDisk, Arc<Clock>) {
    let clock = Clock::new();
    let vol = StripedVolume::new(
        DiskGeometry::wren_iv().with_sectors(SPINDLE_SECTORS),
        Arc::clone(&clock),
        VolumeConfig::rr_segment(spindles, chunk_bytes),
    );
    (VolumeDisk::new(vol.into_shared()), clock)
}

/// FNV-1a digest of a namespace snapshot (kind, size, content hash per
/// path) — one u64 the JSON report can carry per cell.
pub fn snapshot_digest(snap: &[(String, vfs::FileKind, u64, u64)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{snap:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Publishes the replay outcome as gauges in the cell's registry, so
/// the `BENCH_trace_replay.json` run carries everything CI needs to
/// recompute the QoS assertions: per-tenant weight, p99, and
/// contended-window bytes, plus aggregate throughput and the namespace
/// digest.
fn publish_gauges(registry: &Registry, trace: &Trace, report: &ReplayReport, digest: u64) {
    for t in &report.per_tenant {
        let c = t.client;
        let qos = trace.qos.tenant(c);
        registry
            .gauge(&format!("trace.t{c:02}.weight"))
            .set(qos.weight);
        registry
            .gauge(&format!("trace.t{c:02}.p99_ns"))
            .set(t.p99_ns());
        registry
            .gauge(&format!("trace.t{c:02}.contended_bytes"))
            .set(report.contended_bytes[c]);
        registry
            .gauge(&format!("trace.t{c:02}.bytes_total"))
            .set(t.bytes_total());
    }
    registry.gauge("replay.elapsed_ns").set(report.elapsed_ns);
    registry.gauge("replay.total_ops").set(report.total_ops);
    registry.gauge("replay.failed_ops").set(report.failed_ops);
    registry
        .gauge("replay.contended_ns")
        .set(report.contended_ns);
    registry
        .gauge("replay.ops_per_sec_milli")
        .set((report.ops_per_sec() * 1000.0) as u64);
    registry.gauge("replay.snapshot_hash").set(digest);
}

/// Runs one cell: format, replay, snapshot, fsck, publish, record.
pub fn run_cell(
    kind: FsKind,
    trace_name: &str,
    trace: &Trace,
    spindles: usize,
    qos: bool,
    metrics: &mut MetricsReport,
) -> CellResult {
    let label = format!(
        "{trace_name}/{}/s{spindles}/q{}",
        kind.name(),
        if qos { "on" } else { "off" }
    );
    let rcfg = ReplayConfig::default().with_qos(qos);
    match kind {
        FsKind::Lfs => {
            let cfg = LfsConfig::paper();
            let (dev, clock) = volume_rig(spindles, cfg.stripe_chunk_bytes());
            let pump = dev.clone();
            let mut fs = Lfs::format(dev, cfg, clock).expect("format LFS");
            fs.set_cpu_mips(CPU_MIPS);
            let registry = fs.obs().clone();
            let report = replay(&mut fs, &pump, &registry, trace, &rcfg).expect("LFS replay");
            let digest = snapshot_digest(&snapshot(&mut fs).expect("LFS snapshot"));
            let fsck = fs.fsck().expect("fsck");
            assert!(fsck.is_clean(), "LFS inconsistent after {label}:\n{fsck}");
            publish_gauges(&registry, trace, &report, digest);
            metrics.add_lfs(&label, &fs);
            CellResult {
                label,
                report,
                snapshot_hash: digest,
            }
        }
        FsKind::Ffs => {
            let cfg = FfsConfig::paper();
            let (dev, clock) = volume_rig(spindles, cfg.stripe_chunk_bytes());
            let pump = dev.clone();
            let mut fs = Ffs::format(dev, cfg, clock).expect("format FFS");
            fs.set_cpu_mips(CPU_MIPS);
            let registry = fs.obs().clone();
            let report = replay(&mut fs, &pump, &registry, trace, &rcfg).expect("FFS replay");
            let digest = snapshot_digest(&snapshot(&mut fs).expect("FFS snapshot"));
            let fsck = fs.fsck().expect("fsck");
            assert!(fsck.is_clean(), "FFS inconsistent after {label}:\n{fsck}");
            publish_gauges(&registry, trace, &report, digest);
            metrics.add_ffs(&label, &fs);
            CellResult {
                label,
                report,
                snapshot_hash: digest,
            }
        }
    }
}
