//! Trace-driven multi-tenant replay with per-client QoS (§4.3.5).
//!
//! Rosenblum & Ousterhout validate LFS against an office/engineering
//! workload trace; this bench replays that trace — plus three
//! multi-tenant shapes (mail server, build farm, Zipf hot-file churn) —
//! through the full engine/volume stack, sweeping
//! `trace x {lfs, ffs} x spindles {1, 4} x QoS {off, on}` and reporting
//! per-tenant throughput and latency per cell.
//!
//! In-binary assertions (all recomputable from `BENCH_trace_replay.json`):
//!
//! * **Proportional share** — in the Zipf-churn trace, flooder tenant 1
//!   carries weight 4 and flooder tenant 2 weight 1; with QoS on, over
//!   the contended window (before any tenant drains) tenant 1 must
//!   move at least 3x tenant 2's bytes. With QoS off the dispatcher is
//!   earliest-ready-first and the flooders split evenly.
//! * **Bounded latency class** — the Zipf probe (tenant 0, latency
//!   class) must keep its p99 op latency under the flood within 2x its
//!   solo p99 (the same probe replayed alone via
//!   [`trace::Trace::filter_client`]).
//! * **Paper headline** — the office trace through LFS must sustain
//!   >= 2x FFS's ops/s (1 spindle, QoS off).
//! * **Replay equivalence** — every cell of one trace (either file
//!   system, any spindle count, QoS on or off) ends in a byte-identical
//!   namespace digest; every happens-before edge is audited at dispatch
//!   (violations == 0, and the audit is non-vacuous).
//!
//! Everything runs on the shared virtual clock: output (tables and
//! metrics JSON) is byte-identical across runs.
//!
//! `--smoke` runs the CI-sized sweep: office at 1 and 8 clients plus a
//! small Zipf-churn trace, 1 spindle only.

use engine::QosClass;
use lfs_bench::trace_replay::{run_cell, CellResult, FsKind};
use lfs_bench::{fmt_rate, print_table, MetricsReport, Row};
use trace::{by_name, GenSpec, Trace, TRACE_NAMES};

/// Weight given to Zipf flooder tenant 1 (tenant 2 keeps weight 1).
const HEAVY_WEIGHT: u64 = 4;
/// Contended-window share ratio the weighted flooder must reach.
const SHARE_RATIO_MIN: f64 = 3.0;
/// Flood-vs-solo p99 bound for the latency-class probe.
const P99_RATIO_MAX: f64 = 2.0;
/// Office-trace LFS/FFS throughput ratio floor (the paper's headline).
const LFS_FFS_RATIO_MIN: f64 = 2.0;

/// One trace to sweep, with the tenants the assertions look at.
struct TraceCase {
    name: String,
    trace: Trace,
}

fn zipf_with_weights(spec: &GenSpec) -> Trace {
    let mut t = by_name("zipf", spec).expect("zipf generator");
    // Tenant 0 is the latency-class probe (set by the generator);
    // tenants 1 and 2 are the weighted/unweighted flooder pair.
    t.qos = t.qos.with_weight(1, HEAVY_WEIGHT);
    t
}

fn cases(smoke: bool) -> Vec<TraceCase> {
    if smoke {
        vec![
            TraceCase {
                name: "office_c1".into(),
                trace: by_name("office", &GenSpec::small(1)).expect("office"),
            },
            TraceCase {
                name: "office_c8".into(),
                trace: by_name("office", &GenSpec::small(8)).expect("office"),
            },
            TraceCase {
                name: "zipf".into(),
                trace: zipf_with_weights(&GenSpec::small(4)),
            },
        ]
    } else {
        TRACE_NAMES
            .iter()
            .map(|&name| TraceCase {
                name: name.to_string(),
                trace: if name == "zipf" {
                    zipf_with_weights(&GenSpec::new(4, 60))
                } else {
                    by_name(name, &GenSpec::new(4, 60)).expect("known trace")
                },
            })
            .collect()
    }
}

fn find<'a>(cells: &'a [CellResult], label: &str) -> Option<&'a CellResult> {
    cells.iter().find(|c| c.label == label)
}

fn print_cells(case: &TraceCase, cells: &[CellResult]) {
    let rows: Vec<Row> = cells
        .iter()
        .map(|c| {
            Row::new(
                c.label.clone(),
                vec![
                    c.report.total_ops.to_string(),
                    fmt_rate(c.report.ops_per_sec()),
                    format!("{:.1}", c.report.elapsed_ns as f64 / 1e6),
                    c.report.dep_edges_checked.to_string(),
                    format!("{:016x}", c.snapshot_hash),
                ],
            )
        })
        .collect();
    print_table(
        &format!(
            "trace replay: {} ({} records, {} tenants)",
            case.name,
            case.trace.records.len(),
            case.trace.clients
        ),
        "cell",
        &["ops", "ops/s", "elapsed ms", "edges", "namespace digest"],
        &rows,
    );
}

fn print_tenants(title: &str, case: &TraceCase, cell: &CellResult) {
    let rows: Vec<Row> = cell
        .report
        .per_tenant
        .iter()
        .map(|t| {
            let qos = case.trace.qos.tenant(t.client);
            Row::new(
                format!("t{:02}", t.client),
                vec![
                    qos.class.name().to_string(),
                    qos.weight.to_string(),
                    t.ops.to_string(),
                    format!(
                        "{:.2}",
                        cell.report.contended_bytes.get(t.client).copied().unwrap_or(0) as f64
                            / 1e6
                    ),
                    format!("{:.0}", t.p99_ns() as f64 / 1e3),
                ],
            )
        })
        .collect();
    print_table(
        title,
        "tenant",
        &["class", "weight", "ops", "contended MB", "p99 us"],
        &rows,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spindle_counts: &[usize] = if smoke { &[1] } else { &[1, 4] };

    let mut metrics = MetricsReport::new("trace_replay");
    let mut failures: Vec<String> = Vec::new();

    for case in cases(smoke) {
        let mut cells: Vec<CellResult> = Vec::new();
        for &spindles in spindle_counts {
            for kind in [FsKind::Lfs, FsKind::Ffs] {
                for qos in [false, true] {
                    let cell = run_cell(kind, &case.name, &case.trace, spindles, qos, &mut metrics);
                    if cell.report.failed_ops != 0 {
                        failures.push(format!(
                            "{}: {} operations failed during replay",
                            cell.label, cell.report.failed_ops
                        ));
                    }
                    if cell.report.dep_violations != 0 {
                        failures.push(format!(
                            "{}: {} happens-before violations",
                            cell.label, cell.report.dep_violations
                        ));
                    }
                    if cell.report.dep_edges_checked == 0 {
                        failures.push(format!("{}: dependency audit was vacuous", cell.label));
                    }
                    cells.push(cell);
                }
            }
        }
        print_cells(&case, &cells);

        // Replay equivalence: determinate traces end in the same place
        // on every file system, spindle count, and QoS policy.
        let digest0 = cells[0].snapshot_hash;
        for c in &cells[1..] {
            if c.snapshot_hash != digest0 {
                failures.push(format!(
                    "{}: namespace digest {:016x} != {}'s {:016x} (replay not equivalent)",
                    c.label, c.snapshot_hash, cells[0].label, digest0
                ));
            }
        }

        if case.name.starts_with("office") && case.trace.clients > 1 {
            let lfs = find(&cells, &format!("{}/lfs/s1/qoff", case.name));
            let ffs = find(&cells, &format!("{}/ffs/s1/qoff", case.name));
            if let (Some(lfs), Some(ffs)) = (lfs, ffs) {
                let ratio = lfs.report.ops_per_sec() / ffs.report.ops_per_sec();
                println!(
                    "  office headline: LFS {} ops/s vs FFS {} ops/s = {ratio:.2}x",
                    fmt_rate(lfs.report.ops_per_sec()),
                    fmt_rate(ffs.report.ops_per_sec()),
                );
                if ratio < LFS_FFS_RATIO_MIN {
                    failures.push(format!(
                        "{}: LFS only {ratio:.2}x FFS ops/s (need >= {LFS_FFS_RATIO_MIN}x)",
                        case.name
                    ));
                }
            }
        }

        if case.name == "zipf" {
            let qon = find(&cells, "zipf/lfs/s1/qon").expect("zipf QoS cell");
            let qoff = find(&cells, "zipf/lfs/s1/qoff").expect("zipf baseline cell");
            print_tenants("zipf tenants, LFS s1, QoS on", &case, qon);
            debug_assert_eq!(case.trace.qos.tenant(0).class, QosClass::Latency);

            // Proportional share over the contended window: weight-4
            // flooder (t1) vs weight-1 flooder (t2).
            let ratio_on = qon.report.contended_ratio(1, 2);
            let ratio_off = qoff.report.contended_ratio(1, 2);
            println!(
                "  contended share t1/t2: {ratio_on:.2}x with QoS (weight {HEAVY_WEIGHT}), \
                 {ratio_off:.2}x without"
            );
            if ratio_on < SHARE_RATIO_MIN {
                failures.push(format!(
                    "zipf: weighted flooder got only {ratio_on:.2}x the contended bytes \
                     of the 1x flooder (need >= {SHARE_RATIO_MIN}x)"
                ));
            }

            // Bounded latency class: the probe's p99 under the flood vs
            // the same probe replayed alone.
            let solo_trace = case.trace.filter_client(0);
            let solo = run_cell(
                FsKind::Lfs,
                "zipf_solo",
                &solo_trace,
                1,
                true,
                &mut metrics,
            );
            let flood_p99 = qon.report.per_tenant[0].p99_ns();
            let solo_p99 = solo.report.per_tenant[0].p99_ns();
            println!(
                "  probe p99: {:.0} us under flood vs {:.0} us solo",
                flood_p99 as f64 / 1e3,
                solo_p99 as f64 / 1e3
            );
            if (flood_p99 as f64) > P99_RATIO_MAX * solo_p99 as f64 {
                failures.push(format!(
                    "zipf: latency-class probe p99 {flood_p99} ns under flood exceeds \
                     {P99_RATIO_MAX}x its solo p99 {solo_p99} ns"
                ));
            }
        }
    }

    println!(
        "\npaper (§4.3.5): trace replay is the real test; the QoS ledger turns the \
         replay's parallel process sets into proportional tenant shares without \
         starving anyone, and determinate traces land every file system in the \
         same final state."
    );
    metrics.emit();

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("trace_replay: FAILED: {f}");
        }
        std::process::exit(1);
    }
}
