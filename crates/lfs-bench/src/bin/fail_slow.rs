//! Fail-slow tolerance — does a limping spindle take the array's tail
//! latency with it, and does the system heal itself?
//!
//! Fail-slow hardware (a spindle serving at 10x its healthy time while
//! still returning correct bytes) is the failure mode RAID was never
//! built for: nothing errors, so nothing fails over, and every read
//! through the sick disk drags the foreground tail. This bench runs the
//! degraded-rebuild workload on a 4-spindle parity volume with one
//! spindle degrading mid-run, in three arms (see
//! [`lfs_bench::fail_slow`]): `hedged` (hedge deadline + health
//! monitor + hot spare), `nohedge` (the suffering baseline), and a
//! never-faulted `control`.
//!
//! In-binary assertions, each also recomputable from
//! `BENCH_fail_slow.json`:
//!
//! * (a) hedged fail-slow foreground *read* p99 <= 2x the healthy
//!   baseline (the control arm's same phase on a never-faulted array) —
//!   hedged reconstruction bounds what the slow spindle can charge;
//! * (b) the no-hedge arm's fail-slow read p99 is worse than the
//!   hedged arm's — the protection is load-bearing, not vacuous;
//! * (c) the hedged arm heals itself: exactly one eviction, one hot
//!   spare consumed, one rebuild completed, scrub clean, and a
//!   namespace digest equal to the never-faulted control's;
//! * vacuity: hedges fired and reconstruction won races in the hedged
//!   arm; the control arm saw no eviction and no degraded read.
//!
//! Everything runs on the shared virtual clock; `--smoke` shrinks the
//! op counts for CI and the assertions still run.

use lfs_bench::fail_slow::{
    bench_cfg, run_arm, ArmResult, ARMS, HEDGE_DEADLINE_NS, MULTIPLIER_PCT, SPINDLES,
};
use lfs_bench::{print_table, MetricsReport, Row};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut metrics = MetricsReport::new("fail_slow");
    let mut failures: Vec<String> = Vec::new();

    let results: Vec<ArmResult> = ARMS
        .iter()
        .map(|spec| run_arm(spec, smoke, &mut metrics))
        .collect();
    let arm = |name: &str| {
        results
            .iter()
            .find(|r| r.spec.name == name)
            .expect("arm present")
    };
    let hedged = arm("hedged");
    let nohedge = arm("nohedge");
    let control = arm("control");

    let headers: Vec<&str> = results.iter().map(|r| r.spec.name).collect();
    let cfg = bench_cfg(smoke);
    print_table(
        &format!(
            "fail-slow ({}x mid-run), {} clients x {} ops/phase, {SPINDLES} spindles \
             (parity-segment), hedge deadline {} ms",
            MULTIPLIER_PCT / 100,
            cfg.clients,
            cfg.ops_per_phase,
            HEDGE_DEADLINE_NS / 1_000_000,
        ),
        "metric",
        &headers,
        &[
            Row::new(
                "healthy read p99 ms",
                results
                    .iter()
                    .map(|r| format!("{:.1}", r.phase("healthy").read_p99_ns as f64 / 1e6))
                    .collect(),
            ),
            Row::new(
                "failslow read p99 ms",
                results
                    .iter()
                    .map(|r| format!("{:.1}", r.phase("failslow").read_p99_ns as f64 / 1e6))
                    .collect(),
            ),
            Row::new(
                "failslow op p99 ms",
                results
                    .iter()
                    .map(|r| format!("{:.1}", r.phase("failslow").p99_ns as f64 / 1e6))
                    .collect(),
            ),
            Row::new(
                "failslow ops/s",
                results
                    .iter()
                    .map(|r| format!("{:.2}", r.phase("failslow").ops_per_sec()))
                    .collect(),
            ),
            Row::new(
                "hedges (wins)",
                results
                    .iter()
                    .map(|r| format!("{} ({})", r.hedges, r.hedge_wins))
                    .collect(),
            ),
            Row::new(
                "evictions",
                results.iter().map(|r| r.evictions.to_string()).collect(),
            ),
            Row::new(
                "spares used",
                results.iter().map(|r| r.spares_used.to_string()).collect(),
            ),
            Row::new(
                "scrub clean",
                results.iter().map(|r| r.scrub_clean.to_string()).collect(),
            ),
            Row::new(
                "digest",
                results
                    .iter()
                    .map(|r| format!("{:016x}", r.digest))
                    .collect(),
            ),
        ],
    );

    // (a) Hedging bounds the fail-slow read tail: read p99 within 2x
    // the healthy baseline — the control arm's same phase, same ops on
    // a never-faulted array, so the only difference is the fault.
    // (Reads are the shieldable half of an op — a write lands on every
    // spindle and cannot be served from the survivors, so whole-op
    // latency is not the hedge's claim.)
    let hedged_ratio = hedged.phase("failslow").read_p99_ns as f64
        / control.phase("failslow").read_p99_ns.max(1) as f64;
    println!(
        "\n  hedged failslow read p99 / control (no-fault) read p99 = {hedged_ratio:.2}x \
         (bound 2.00x)"
    );
    if hedged_ratio > 2.0 {
        failures.push(format!(
            "hedged fail-slow read p99 is {hedged_ratio:.2}x the no-fault control (bound: 2x)"
        ));
    }

    // (b) The baseline without hedging is worse — the protection is
    // load-bearing.
    let baseline_ratio = nohedge.phase("failslow").read_p99_ns as f64
        / hedged.phase("failslow").read_p99_ns.max(1) as f64;
    println!(
        "  nohedge failslow read p99 / hedged failslow read p99 = {baseline_ratio:.2}x \
         (need > 1.00x)"
    );
    if nohedge.phase("failslow").read_p99_ns <= hedged.phase("failslow").read_p99_ns {
        failures.push(format!(
            "the no-hedge arm's fail-slow read p99 ({} ns) is not worse than the hedged arm's \
             ({} ns)",
            nohedge.phase("failslow").read_p99_ns,
            hedged.phase("failslow").read_p99_ns
        ));
    }

    // (c) The hedged arm healed itself: one eviction, one spare, one
    // completed rebuild, a clean scrub, and the control's namespace.
    if hedged.evictions != 1 || hedged.spares_used != 1 || hedged.rebuilds_completed != 1 {
        failures.push(format!(
            "self-healing did not converge: {} evictions, {} spares used, {} rebuilds completed \
             (want 1/1/1)",
            hedged.evictions, hedged.spares_used, hedged.rebuilds_completed
        ));
    }
    if !hedged.scrub_clean {
        failures.push("post-failover scrub found damage".to_string());
    }
    for r in [hedged, nohedge] {
        if r.digest != control.digest {
            failures.push(format!(
                "{} namespace digest {:016x} != control {:016x}",
                r.spec.name, r.digest, control.digest
            ));
        }
    }

    // Vacuity guards: the mechanisms must actually have been exercised.
    assert!(
        hedged.hedges > 0,
        "no read was ever reported overdue in the hedged arm"
    );
    assert!(
        hedged.hedge_wins > 0,
        "reconstruction never beat the slow spindle in the hedged arm"
    );
    assert!(
        hedged.drain_steps + hedged.phase("failslow").rebuild_steps > 0,
        "the hot-spare rebuild never stepped"
    );
    assert_eq!(
        control.evictions, 0,
        "the monitor evicted a spindle on healthy media"
    );
    assert_eq!(
        control.degraded_reads, 0,
        "the control arm must never serve a degraded read"
    );
    assert_eq!(
        nohedge.evictions, 0,
        "the unmonitored arm cannot evict anything"
    );

    println!(
        "\nfail-slow is the failure RAID's error model misses: nothing faults, \
         so nothing fails over, and one sick spindle owns the tail. Hedged \
         reconstruction puts a price cap on every read (pay the survivors \
         instead of waiting), and the health monitor turns the latency \
         signature into an eviction + hot-spare rebuild with no operator in \
         the loop."
    );
    metrics.emit();

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("fail_slow: FAILED: {f}");
        }
        std::process::exit(1);
    }
}
