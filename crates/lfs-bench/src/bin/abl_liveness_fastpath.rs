//! Ablation — the cleaner's version-number fast path (§4.3.3).
//!
//! "Included in the summary entry is the file's version number from the
//! inode map when the block was written. If the version number does not
//! match the current version number of the file, the block is known to
//! have been deleted or overwritten... Since total overwrite or deletion
//! are the most common write access modes to files in the workstation
//! environment, Step 1 is able to determine the live blocks quickly."
//!
//! This ablation cleans delete-heavy segments with the fast path on and
//! off. Without it, every dead block of a *reused* inode number costs an
//! inode fetch (step 2) to discover it is dead.

use std::sync::Arc;

use lfs_bench::{print_table, MetricsReport, Row};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::FileSystem;
use workload::{payload, Stopwatch};

fn run(use_fastpath: bool, metrics: &mut MetricsReport) -> Row {
    let clock = Clock::new();
    let disk = SimDisk::new(
        DiskGeometry::wren_iv().with_sectors(64 * 2048),
        Arc::clone(&clock),
    );
    let mut cfg = LfsConfig::paper();
    cfg.cleaner.use_version_fastpath = use_fastpath;
    cfg.cleaner.activate_below_clean = 0; // Manual cleaning only.
    cfg.cleaner.segments_per_pass = 4;
    let mut fs = Lfs::format(disk, cfg, Arc::clone(&clock)).unwrap();

    // Create many small files, then overwrite them all in their entirety
    // (truncate to zero + rewrite). §4.2.1: truncation to length zero
    // bumps the inode-map version, so every block in the *old* segments
    // is dead — but its owner is still a live file. Without the version
    // fast path, proving each such block dead requires fetching the
    // owner's inode (and walking its mapping).
    let data = payload(3, 4096);
    let nfiles = 8_000usize;
    for d in 0..nfiles / 200 {
        fs.mkdir(&format!("/d{d:02}")).unwrap();
    }
    let path = |i: usize| format!("/d{:02}/f{i:05}", i / 200);
    for i in 0..nfiles {
        fs.write_file(&path(i), &data).unwrap();
    }
    fs.sync().unwrap();
    for i in 0..nfiles {
        let ino = fs.lookup(&path(i)).unwrap();
        fs.truncate(ino, 0).unwrap();
        fs.write_at(ino, 0, &data).unwrap();
    }
    fs.sync().unwrap();

    // Flush the caches so step-2 inode walks must touch the disk — the
    // situation a real cleaner faces when cleaning cold segments.
    fs.drop_caches().unwrap();

    // Clean a batch of segments and measure the cost.
    let reads_before = fs.device().stats().reads;
    let watch = Stopwatch::start(Arc::clone(&clock));
    let mut cleaned = 0usize;
    while cleaned < 24 {
        let outcome = fs.clean_pass().unwrap();
        if outcome.segments == 0 {
            break;
        }
        cleaned += outcome.segments;
        fs.checkpoint().unwrap();
    }
    let secs = watch.elapsed_secs();
    let extra_reads = fs.device().stats().reads - reads_before;
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "{report}");

    metrics.add_lfs(
        if use_fastpath {
            "fastpath_on"
        } else {
            "fastpath_off"
        },
        &fs,
    );
    Row::new(
        if use_fastpath {
            "version fast path ON"
        } else {
            "version fast path OFF"
        },
        vec![
            format!("{secs:.2} s"),
            cleaned.to_string(),
            extra_reads.to_string(),
            fs.stats().cleaner_blocks_copied.to_string(),
        ],
    )
}

fn main() {
    let mut metrics = MetricsReport::new("abl_liveness_fastpath");
    let rows = vec![run(true, &mut metrics), run(false, &mut metrics)];
    print_table(
        "Ablation: SS4.3.3 step-1 liveness fast path (delete-heavy cleaning)",
        "configuration",
        &["clean time", "segs cleaned", "disk reads", "blocks copied"],
        &rows,
    );
    println!(
        "\npaper (SS4.3.3): the version check classifies deleted/overwritten \
         blocks dead without fetching inodes; step 2 (inode walk) is only \
         needed for blocks that are probably live anyway."
    );
    metrics.emit();
}
