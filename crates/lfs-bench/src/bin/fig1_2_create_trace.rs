//! Figures 1 & 2 — the disk accesses behind creating two small files
//! (§3.1, §4.1).
//!
//! The paper's running example:
//!
//! ```c
//! fd = creat("dir1/file1", 0); write(fd, buffer, blockSize); close(fd);
//! fd = creat("dir2/file2", 0); write(fd, buffer, blockSize); close(fd);
//! ```
//!
//! Figure 1 (BSD): "The total disk I/O in this example includes 8 random
//! writes of which half are synchronous." Figure 2 (LFS): "LFS performs
//! the 8 writes in one large transfer. Unlike the BSD example, all writes
//! are sequential and none are synchronous."
//!
//! This binary runs the example on both file systems with the disk access
//! trace enabled and prints every write the device saw.

use ffs_baseline::{Ffs, FfsConfig};
use lfs_bench::{ffs_rig, lfs_rig, print_table, MetricsReport, Row};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{AccessKind, AccessRecord, BlockDevice, SimDisk};
use vfs::FileSystem;

/// Runs the two-file creation example; returns the traced accesses.
fn run_example<F, Prep, Wb>(fs: &mut F, prep: Prep, write_back: Wb) -> Vec<AccessRecord>
where
    F: FileSystem,
    Prep: Fn(&mut F) -> &mut SimDisk,
    Wb: Fn(&mut F),
{
    // Setup outside the trace: the two directories already exist.
    fs.mkdir("/dir1").unwrap();
    fs.mkdir("/dir2").unwrap();
    fs.sync().unwrap();
    fs.drop_caches().unwrap();
    let block = vec![0xABu8; 4096];

    prep(fs).trace_mut().enable();

    // The example itself.
    let f1 = fs.create("/dir1/file1").unwrap();
    fs.write_at(f1, 0, &block).unwrap();
    let f2 = fs.create("/dir2/file2").unwrap();
    fs.write_at(f2, 0, &block).unwrap();
    // ... and the delayed write-back.
    write_back(fs);

    let disk = prep(fs);
    disk.trace_mut().disable();
    let records: Vec<AccessRecord> = disk
        .trace()
        .records()
        .iter()
        .filter(|r| r.kind == AccessKind::Write)
        .cloned()
        .collect();
    disk.trace_mut().clear();
    records
}

fn rows_for(records: &[AccessRecord]) -> Vec<Row> {
    records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            Row::new(
                format!("write {}", i + 1),
                vec![
                    if r.label.is_empty() { "data" } else { r.label }.to_string(),
                    format!("{} B", r.bytes),
                    if r.sync { "sync" } else { "async" }.to_string(),
                    if r.sequential { "sequential" } else { "random" }.to_string(),
                ],
            )
        })
        .collect()
}

fn summarize(name: &str, records: &[AccessRecord]) {
    let sync = records.iter().filter(|r| r.sync).count();
    let random = records.iter().filter(|r| !r.sequential).count();
    let bytes: u64 = records.iter().map(|r| r.bytes).sum();
    println!(
        "{name}: {} writes ({sync} synchronous, {random} random), {bytes} bytes total",
        records.len(),
    );
}

fn main() {
    let mut metrics = MetricsReport::new("fig1_2_create_trace");
    let (mut ffs, _clock) = ffs_rig(FfsConfig::paper().with_block_size(4096));
    let ffs_trace = run_example(
        &mut ffs,
        |fs: &mut Ffs<SimDisk>| fs.device_mut(),
        |fs: &mut Ffs<SimDisk>| {
            fs.sync().unwrap();
        },
    );
    metrics.add_ffs("two_file_create", &ffs);
    print_table(
        "Figure 1: BSD FFS, creating dir1/file1 and dir2/file2",
        "access",
        &["content", "size", "mode", "placement"],
        &rows_for(&ffs_trace),
    );

    let (mut lfs, _clock) = lfs_rig(LfsConfig::paper());
    let lfs_trace = run_example(
        &mut lfs,
        |fs: &mut Lfs<SimDisk>| fs.device_mut(),
        |fs: &mut Lfs<SimDisk>| {
            // The bare segment write: no checkpoint machinery.
            fs.write_back().unwrap();
            fs.device_mut().flush().unwrap();
        },
    );
    metrics.add_lfs("two_file_create", &lfs);
    print_table(
        "Figure 2: LFS, creating dir1/file1 and dir2/file2",
        "access",
        &["content", "size", "mode", "placement"],
        &rows_for(&lfs_trace),
    );

    println!();
    summarize("FFS", &ffs_trace);
    summarize("LFS", &lfs_trace);
    println!(
        "\npaper: FFS issues 8 small random writes (4 synchronous); \
         LFS packs everything into one large sequential asynchronous transfer.\n\
         (Placement is relative to the previous request: LFS's single chunk\n\
         pays one positioning and then streams — 'one large transfer'.)"
    );
    metrics.emit();
}
