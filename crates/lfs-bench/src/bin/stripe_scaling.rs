//! Stripe scaling — does the log's bandwidth grow with spindle count?
//!
//! The paper's core bet is that LFS turns small writes into large
//! sequential transfers, so its throughput is bounded by *sequential
//! bandwidth* — a resource that scales linearly with disk count. FFS is
//! bounded by seeks per create, which striping does not amortize. This
//! bench mounts the same multi-client small-file create workload on a
//! [`volume::StripedVolume`] and sweeps spindle count x striping policy
//! x file system, reporting aggregate write bandwidth per cell.
//!
//! Expected shape: LFS under segment round-robin scales close to
//! linearly (4 spindles >= 3x the 1-spindle bandwidth) because whole
//! segments land on alternating spindles and drain in parallel. FFS
//! stays nearly flat (< 1.5x): every create pays synchronous
//! single-spindle seeks, so extra spindles mostly idle. The binary
//! asserts both and exits non-zero if either fails.
//!
//! Everything runs on the shared virtual clock: output (table and
//! metrics JSON) is byte-identical across runs.
//!
//! `--smoke` runs the CI-sized sweep: spindles {1, 4} x both policies,
//! LFS only, 16 clients.

use std::sync::Arc;

use engine::run_small_file_create;
use ffs_baseline::{Ffs, FfsConfig};
use lfs_bench::{print_table, MetricsReport, Row};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry};
use volume::{StripePolicyKind, StripedVolume, VolumeConfig, VolumeDisk};

/// Modern-host CPU speed (MIPS): fast enough that the disks, not the
/// CPU, are the contended resource.
const CPU_MIPS: f64 = 1000.0;
/// Size of each created file.
const FILE_SIZE: usize = 4096;
/// Total files per cell (split across clients — strong scaling).
const TOTAL_FILES: usize = 4096;
/// Mean per-client think time between operations.
const THINK_NS: u64 = 200_000;
/// Sectors per spindle (64 MB each, Wren IV mechanics).
const SPINDLE_SECTORS: u64 = 131_072;
/// RAID-0 chunk for the block-interleave policy.
const INTERLEAVE_CHUNK: usize = 64 * 1024;

struct Cell {
    spindles: usize,
    /// Aggregate physical write bandwidth over the measured run, MB/s.
    write_mb_s: f64,
    elapsed_ms: f64,
    balance_millis: u64,
}

fn volume_rig(
    spindles: usize,
    policy: StripePolicyKind,
    chunk_bytes: usize,
) -> (VolumeDisk, Arc<Clock>) {
    let clock = Clock::new();
    let cfg = match policy {
        StripePolicyKind::RrSegment => VolumeConfig::rr_segment(spindles, chunk_bytes),
        StripePolicyKind::Interleave => VolumeConfig::interleave(spindles, chunk_bytes),
        StripePolicyKind::ParitySegment => VolumeConfig::parity_segment(spindles, chunk_bytes),
        StripePolicyKind::ParityRotate => VolumeConfig::parity_rotate(spindles, chunk_bytes),
    };
    let vol = StripedVolume::new(
        DiskGeometry::wren_iv().with_sectors(SPINDLE_SECTORS),
        Arc::clone(&clock),
        cfg,
    );
    (VolumeDisk::new(vol.into_shared()), clock)
}

/// Sum of physical bytes written across every spindle of the volume.
fn physical_bytes_written(registry: &obs::Registry, spindles: usize) -> u64 {
    let snap = registry.snapshot();
    (0..spindles)
        .map(|i| snap.counter(&format!("volume.spindle.{i}.disk.bytes_written")))
        .sum()
}

fn cell_from_run(
    registry: &obs::Registry,
    spindles: usize,
    bytes_before: u64,
    elapsed_ns: u64,
) -> Cell {
    let bytes = physical_bytes_written(registry, spindles) - bytes_before;
    Cell {
        spindles,
        write_mb_s: bytes as f64 / 1e6 / (elapsed_ns as f64 / 1e9),
        elapsed_ms: elapsed_ns as f64 / 1e6,
        balance_millis: registry.snapshot().gauge("volume.stripe_balance_millis"),
    }
}

fn run_lfs(
    spindles: usize,
    policy: StripePolicyKind,
    clients: usize,
    metrics: &mut MetricsReport,
) -> Cell {
    let cfg = LfsConfig::paper();
    let chunk = match policy {
        StripePolicyKind::RrSegment | StripePolicyKind::ParitySegment => cfg.stripe_chunk_bytes(),
        StripePolicyKind::Interleave | StripePolicyKind::ParityRotate => INTERLEAVE_CHUNK,
    };
    let (dev, clock) = volume_rig(spindles, policy, chunk);
    let pump = dev.clone();
    let mut fs = Lfs::format(dev, cfg, clock).expect("format LFS");
    fs.set_cpu_mips(CPU_MIPS);
    let registry = fs.obs().clone();
    let bytes_before = physical_bytes_written(&registry, spindles);
    let mcfg = engine::MultiClientConfig::new(clients, TOTAL_FILES / clients, FILE_SIZE)
        .with_think_ns(THINK_NS);
    let report = run_small_file_create(&mut fs, &pump, &registry, &mcfg).expect("LFS run");
    let fsck = fs.fsck().expect("fsck");
    assert!(fsck.is_clean(), "LFS inconsistent after run:\n{fsck}");
    metrics.add_lfs(
        &format!("lfs/{}/s{spindles}/c{clients:03}", policy.name()),
        &fs,
    );
    cell_from_run(&registry, spindles, bytes_before, report.elapsed_ns)
}

fn run_ffs(
    spindles: usize,
    policy: StripePolicyKind,
    clients: usize,
    metrics: &mut MetricsReport,
) -> Cell {
    let cfg = FfsConfig::paper();
    let chunk = match policy {
        StripePolicyKind::RrSegment | StripePolicyKind::ParitySegment => cfg.stripe_chunk_bytes(),
        StripePolicyKind::Interleave | StripePolicyKind::ParityRotate => INTERLEAVE_CHUNK,
    };
    let (dev, clock) = volume_rig(spindles, policy, chunk);
    let pump = dev.clone();
    let mut fs = Ffs::format(dev, cfg, clock).expect("format FFS");
    fs.set_cpu_mips(CPU_MIPS);
    let registry = fs.obs().clone();
    let bytes_before = physical_bytes_written(&registry, spindles);
    let mcfg = engine::MultiClientConfig::new(clients, TOTAL_FILES / clients, FILE_SIZE)
        .with_think_ns(THINK_NS);
    let report = run_small_file_create(&mut fs, &pump, &registry, &mcfg).expect("FFS run");
    let fsck = fs.fsck().expect("fsck");
    assert!(fsck.is_clean(), "FFS inconsistent after run:\n{fsck}");
    metrics.add_ffs(
        &format!("ffs/{}/s{spindles}/c{clients:03}", policy.name()),
        &fs,
    );
    cell_from_run(&registry, spindles, bytes_before, report.elapsed_ns)
}

/// Ratio of a sweep's 4-spindle bandwidth to its 1-spindle bandwidth.
fn scaling_at_4(cells: &[Cell]) -> Option<f64> {
    let one = cells.iter().find(|c| c.spindles == 1)?;
    let four = cells.iter().find(|c| c.spindles == 4)?;
    Some(four.write_mb_s / one.write_mb_s)
}

fn print_sweep(title: &str, spindle_counts: &[usize], cells: &[Cell]) {
    let headers: Vec<String> = spindle_counts.iter().map(|n| format!("{n} sp")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        title,
        "metric",
        &header_refs,
        &[
            Row::new(
                "write MB/s",
                cells.iter().map(|c| format!("{:.2}", c.write_mb_s)).collect(),
            ),
            Row::new(
                "elapsed ms",
                cells.iter().map(|c| format!("{:.0}", c.elapsed_ms)).collect(),
            ),
            Row::new(
                "balance (x1000)",
                cells.iter().map(|c| c.balance_millis.to_string()).collect(),
            ),
        ],
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (spindle_counts, client_counts, include_ffs): (&[usize], &[usize], bool) = if smoke {
        (&[1, 4], &[16], false)
    } else {
        (&[1, 2, 4, 8], &[4, 16], true)
    };

    let mut metrics = MetricsReport::new("stripe_scaling");
    let mut failures: Vec<String> = Vec::new();

    for &clients in client_counts {
        // This bench measures raw RAID-0 scaling; the parity kinds pay
        // for redundancy by design (one spindle of every row is parity)
        // and are measured by the degraded_rebuild bench instead. They
        // also need >= 2 spindles, which the 1-spindle baseline here
        // cannot provide.
        for policy in StripePolicyKind::ALL.into_iter().filter(|k| !k.is_parity()) {
            let lfs_cells: Vec<Cell> = spindle_counts
                .iter()
                .map(|&n| run_lfs(n, policy, clients, &mut metrics))
                .collect();
            print_sweep(
                &format!(
                    "LFS stripe scaling, {} policy, {clients} clients ({TOTAL_FILES} x {FILE_SIZE} B files)",
                    policy.name()
                ),
                spindle_counts,
                &lfs_cells,
            );
            if let Some(ratio) = scaling_at_4(&lfs_cells) {
                println!("  LFS {} @ {clients} clients: 4-spindle / 1-spindle = {ratio:.2}x", policy.name());
                if policy == StripePolicyKind::RrSegment && ratio < 3.0 {
                    failures.push(format!(
                        "LFS {} @ {clients} clients scaled only {ratio:.2}x at 4 spindles (need >= 3.0x)",
                        policy.name()
                    ));
                }
            }

            if include_ffs {
                let ffs_cells: Vec<Cell> = spindle_counts
                    .iter()
                    .map(|&n| run_ffs(n, policy, clients, &mut metrics))
                    .collect();
                print_sweep(
                    &format!(
                        "FFS stripe scaling, {} policy, {clients} clients ({TOTAL_FILES} x {FILE_SIZE} B files)",
                        policy.name()
                    ),
                    spindle_counts,
                    &ffs_cells,
                );
                if let Some(ratio) = scaling_at_4(&ffs_cells) {
                    println!("  FFS {} @ {clients} clients: 4-spindle / 1-spindle = {ratio:.2}x", policy.name());
                    if policy == StripePolicyKind::RrSegment && ratio >= 1.5 {
                        failures.push(format!(
                            "FFS {} @ {clients} clients scaled {ratio:.2}x at 4 spindles (expected < 1.5x: seeks, not bandwidth, bound FFS)",
                            policy.name()
                        ));
                    }
                }
            }
        }
    }

    println!(
        "\npaper (SS1-2): LFS is bandwidth-bound, so its throughput scales with \
         the array's aggregate sequential bandwidth; FFS is seek-bound and \
         gains little from extra spindles."
    );
    metrics.emit();

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("stripe_scaling: FAILED: {f}");
        }
        std::process::exit(1);
    }
}
