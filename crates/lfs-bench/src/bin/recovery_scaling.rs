//! Recovery scaling — crash-recovery time vs spindle count (§4.4).
//!
//! The paper bounds recovery *work*: a checkpoint read plus a log-tail
//! replay, never a whole-volume scan. On a striped volume the follow-up
//! question is whether recovery *time* shrinks with spindle count. The
//! log tail is round-robin striped, so the roll-forward scan — summary
//! sweep plus tail prefetch — can keep one read in flight per spindle
//! while the merge stays serial and bit-identical to the sequential
//! scan.
//!
//! Method: per (log size × spindle count) cell, build one crash image —
//! format-time checkpoint only, then a workload flushed with fsync so
//! the whole thing is un-checkpointed tail — and remount the identical
//! images twice: `recovery_fanout = 1` (sequential) and `= 0` (one read
//! in flight per spindle). Both must recover the identical tree. The
//! speedup quoted is parallel recovery at N spindles against the
//! 1-spindle *sequential* mount of the same log. The binary asserts
//! ≥3× at 4 spindles and ≥5× at 8 on the large-log cells and exits
//! non-zero on failure; CI recomputes the same ratios from
//! `BENCH_recovery_scaling.json`.
//!
//! The FFS baseline rides along through its `fsck_fanout` knob (the
//! whole-volume inode-table scan fanned out per cylinder group) as an
//! informational comparison — its scan reads every group even when the
//! damage is small, so parallelism shrinks a cost LFS never pays.
//!
//! Everything runs on the shared virtual clock: output (table and
//! metrics JSON) is byte-identical across runs.
//!
//! `--smoke` runs the CI-sized sweep: spindles {1, 4}, a smaller log
//! (still labelled `large` so CI's recompute reads one schema), LFS
//! only, asserting the 4-spindle ratio.

use lfs_bench::recovery_scaling::{
    build_ffs_crash, build_lfs_crash, recover_ffs, recover_lfs, Recovery, WorkloadSpec,
};
use lfs_bench::{print_table, MetricsReport, Row};

/// Required parallel speedup (vs the 1-spindle sequential mount) per
/// spindle count; cells without an entry are informational.
fn required_speedup(spindles: usize) -> Option<f64> {
    match spindles {
        4 => Some(3.0),
        8 => Some(5.0),
        _ => None,
    }
}

struct Cell {
    spindles: usize,
    seq: Recovery,
    par: Recovery,
}

fn lfs_sweep(
    size: &str,
    spec: &WorkloadSpec,
    spindle_counts: &[usize],
    registry: &obs::Registry,
    failures: &mut Vec<String>,
) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &n in spindle_counts {
        let (images, at_crash) = build_lfs_crash(n, spec);
        let seq = recover_lfs(n, images.clone(), 1);
        let par = recover_lfs(n, images, 0);
        if seq.files != at_crash {
            failures.push(format!(
                "lfs {size} s{n}: sequential recovery lost files ({} of {})",
                at_crash.difference(&seq.files).count(),
                at_crash.len()
            ));
        }
        if par.files != seq.files {
            failures.push(format!(
                "lfs {size} s{n}: parallel recovery diverged from sequential"
            ));
        }
        if n > 1 && par.stats.recovery_partitions <= 1 {
            failures.push(format!(
                "lfs {size} s{n}: parallel cell is vacuous ({} partitions)",
                par.stats.recovery_partitions
            ));
        }
        let prefix = format!("recovery_scaling.lfs.{size}.s{n}");
        registry.counter(&format!("{prefix}.seq_ns")).add(seq.mount_ns);
        registry.counter(&format!("{prefix}.par_ns")).add(par.mount_ns);
        registry
            .counter(&format!("{prefix}.partitions"))
            .add(par.stats.recovery_partitions);
        registry
            .counter(&format!("{prefix}.parallel_reads"))
            .add(par.stats.recovery_parallel_reads);
        registry
            .counter(&format!("{prefix}.prefetched_blocks"))
            .add(par.stats.recovery_prefetched_blocks);
        cells.push(Cell { spindles: n, seq, par });
    }
    cells
}

fn ffs_sweep(
    size: &str,
    spec: &WorkloadSpec,
    spindle_counts: &[usize],
    registry: &obs::Registry,
    failures: &mut Vec<String>,
) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &n in spindle_counts {
        let images = build_ffs_crash(n, spec);
        let seq = recover_ffs(n, images.clone(), 1);
        let par = recover_ffs(n, images, 0);
        if par.files != seq.files {
            failures.push(format!(
                "ffs {size} s{n}: parallel fsck diverged from sequential"
            ));
        }
        let prefix = format!("recovery_scaling.ffs.{size}.s{n}");
        registry.counter(&format!("{prefix}.seq_ns")).add(seq.mount_ns);
        registry.counter(&format!("{prefix}.par_ns")).add(par.mount_ns);
        cells.push(Cell { spindles: n, seq, par });
    }
    cells
}

fn print_sweep(title: &str, cells: &[Cell], base_seq_ns: u64, lfs: bool) {
    let headers: Vec<String> = cells.iter().map(|c| format!("{} sp", c.spindles)).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = vec![
        Row::new(
            "sequential ms",
            cells
                .iter()
                .map(|c| format!("{:.2}", c.seq.mount_ns as f64 / 1e6))
                .collect(),
        ),
        Row::new(
            "parallel ms",
            cells
                .iter()
                .map(|c| format!("{:.2}", c.par.mount_ns as f64 / 1e6))
                .collect(),
        ),
        Row::new(
            "speedup vs 1 sp seq",
            cells
                .iter()
                .map(|c| format!("{:.2}x", base_seq_ns as f64 / c.par.mount_ns as f64))
                .collect(),
        ),
    ];
    if lfs {
        rows.push(Row::new(
            "partitions",
            cells
                .iter()
                .map(|c| c.par.stats.recovery_partitions.to_string())
                .collect(),
        ));
        rows.push(Row::new(
            "prefetched blocks",
            cells
                .iter()
                .map(|c| c.par.stats.recovery_prefetched_blocks.to_string())
                .collect(),
        ));
    }
    print_table(title, "metric", &header_refs, &rows);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spindle_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    // In smoke mode the one (CI-sized) log keeps the `large` label so
    // CI's recompute script reads a single schema in both modes.
    let sizes: Vec<(&str, WorkloadSpec)> = if smoke {
        vec![("large", WorkloadSpec::smoke())]
    } else {
        // The small cell is informational: its ~12 MB tail sits in the
        // sweep-dominated regime, so its speedups fall short of the
        // large cell's — the time-vs-log-size axis of the claim.
        vec![
            (
                "small",
                WorkloadSpec {
                    dirs: 3,
                    files_per_dir: 16,
                    file_bytes: 256 * 1024,
                },
            ),
            ("large", WorkloadSpec::full()),
        ]
    };

    let registry = obs::Registry::new();
    let mut metrics = MetricsReport::new("recovery_scaling");
    let mut failures: Vec<String> = Vec::new();

    for (size, spec) in &sizes {
        let cells = lfs_sweep(size, spec, spindle_counts, &registry, &mut failures);
        let base = cells
            .iter()
            .find(|c| c.spindles == 1)
            .expect("1-spindle baseline cell")
            .seq
            .mount_ns;
        print_sweep(
            &format!(
                "LFS recovery scaling, {size} log ({} dirs x {} files x {} KB)",
                spec.dirs,
                spec.files_per_dir,
                spec.file_bytes / 1024
            ),
            &cells,
            base,
            true,
        );
        for cell in &cells {
            let speedup = base as f64 / cell.par.mount_ns as f64;
            // Only the large-log cells carry the claim; the small cells
            // are the sweep-dominated end of the axis and stay
            // informational.
            if *size != "large" {
                continue;
            }
            if let Some(need) = required_speedup(cell.spindles) {
                println!(
                    "  LFS {size} @ {} spindles: parallel / 1-spindle sequential = {speedup:.2}x (need >= {need:.1}x)",
                    cell.spindles
                );
                if speedup < need {
                    failures.push(format!(
                        "lfs {size} s{}: parallel recovery sped up only {speedup:.2}x (need >= {need:.1}x)",
                        cell.spindles
                    ));
                }
            }
        }

        if !smoke {
            let cells = ffs_sweep(size, spec, spindle_counts, &registry, &mut failures);
            let base = cells
                .iter()
                .find(|c| c.spindles == 1)
                .expect("1-spindle baseline cell")
                .seq
                .mount_ns;
            print_sweep(
                &format!(
                    "FFS fsck scaling, {size} log ({} dirs x {} files x {} KB)",
                    spec.dirs,
                    spec.files_per_dir,
                    spec.file_bytes / 1024
                ),
                &cells,
                base,
                false,
            );
        }
    }

    println!(
        "\npaper (SS4.4): LFS recovery reads a bounded log tail; on a striped \
         volume the tail is spread round-robin, so fanning the scan out one \
         read per spindle shrinks recovery time toward tail / spindles while \
         the serial merge keeps the result bit-identical. FFS must still \
         scan every cylinder group — parallelism shrinks a cost LFS never \
         pays."
    );
    metrics.add_registry("scaling", 0, &registry);
    metrics.emit();

    if !failures.is_empty() {
        eprintln!("\nrecovery scaling failed:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
