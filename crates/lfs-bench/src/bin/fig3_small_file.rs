//! Figure 3 — small-file I/O (§5.1).
//!
//! "Measurements of creating, reading, and deleting many 1K and 10K files
//! using LFS and the SunOS file system. The creation phase measured the
//! speed at which 10000 one-kilobyte and 1000 ten-kilobyte files could be
//! created. Following the creation, the file cache was flushed and all
//! the files were read (in the same order as they were created). Finally,
//! we measured the speed at which the files could be deleted."
//!
//! Expected shape: LFS an order of magnitude faster on create and delete
//! (asynchronous log writes vs synchronous metadata updates), and at
//! least matching FFS on read (files packed densely in segments).

use std::sync::Arc;

use ffs_baseline::FfsConfig;
use lfs_bench::{ffs_rig, fmt_rate, lfs_rig, print_table, MetricsReport, Row};
use lfs_core::LfsConfig;
use sim_disk::Clock;
use vfs::{FileSystem, FsResult};
use workload::small_files::{create_phase, delete_phase, read_phase, SmallFileSpec};
use workload::Stopwatch;

/// Per-phase rates in files/second.
struct Phases {
    create: f64,
    read: f64,
    delete: f64,
}

fn run_one<F: FileSystem>(
    fs: &mut F,
    clock: &Arc<Clock>,
    spec: &SmallFileSpec,
) -> FsResult<Phases> {
    let mut watch = Stopwatch::start(Arc::clone(clock));

    create_phase(fs, spec)?;
    fs.sync()?;
    let create_secs = watch.lap_secs();

    // "The file cache was flushed" between create and read.
    fs.drop_caches()?;
    watch.lap_secs();

    read_phase(fs, spec)?;
    let read_secs = watch.lap_secs();

    delete_phase(fs, spec)?;
    fs.sync()?;
    let delete_secs = watch.lap_secs();

    let n = spec.nfiles as f64;
    Ok(Phases {
        create: n / create_secs,
        read: n / read_secs,
        delete: n / delete_secs,
    })
}

fn main() {
    let mut metrics = MetricsReport::new("fig3_small_file");
    let specs = [
        ("1 KB x 10000", SmallFileSpec::paper_1k()),
        ("10 KB x 1000", SmallFileSpec::paper_10k()),
    ];
    for (name, spec) in specs {
        let size_label = if spec.file_size >= 10 * 1024 {
            "10k"
        } else {
            "1k"
        };
        let (mut lfs, clock) = lfs_rig(LfsConfig::paper());
        let lfs_rates = run_one(&mut lfs, &clock, &spec).expect("LFS run");
        let report = lfs.fsck().expect("fsck");
        assert!(report.is_clean(), "LFS inconsistent after run:\n{report}");
        metrics.add_lfs(&format!("{size_label}_files"), &lfs);

        let (mut ffs, clock) = ffs_rig(FfsConfig::paper());
        let ffs_rates = run_one(&mut ffs, &clock, &spec).expect("FFS run");
        let report = ffs.fsck().expect("fsck");
        assert!(report.is_clean(), "FFS inconsistent after run:\n{report}");
        metrics.add_ffs(&format!("{size_label}_files"), &ffs);

        print_table(
            &format!("Figure 3: small-file I/O, {name} (files/sec)"),
            "phase",
            &["LFS", "SunFFS", "LFS/FFS"],
            &[
                Row::new(
                    "create",
                    vec![
                        fmt_rate(lfs_rates.create),
                        fmt_rate(ffs_rates.create),
                        format!("{:.1}x", lfs_rates.create / ffs_rates.create),
                    ],
                ),
                Row::new(
                    "read",
                    vec![
                        fmt_rate(lfs_rates.read),
                        fmt_rate(ffs_rates.read),
                        format!("{:.1}x", lfs_rates.read / ffs_rates.read),
                    ],
                ),
                Row::new(
                    "delete",
                    vec![
                        fmt_rate(lfs_rates.delete),
                        fmt_rate(ffs_rates.delete),
                        format!("{:.1}x", lfs_rates.delete / ffs_rates.delete),
                    ],
                ),
            ],
        );
    }
    metrics.emit();
}
