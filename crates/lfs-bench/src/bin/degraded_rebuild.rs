//! Degraded operation and online rebuild — what does losing a spindle
//! cost the foreground, and does the array come back whole?
//!
//! The LFS paper's claim that parity is nearly free hinges on the log:
//! full-segment writes compute parity straight from the write buffer,
//! so the healthy write path never pays RAID-5's read-modify-write.
//! This bench measures the other two regimes on a 4-spindle
//! parity-segment volume, in one continuous run of a closed-loop
//! read+overwrite workload:
//!
//! * `healthy` — the baseline phase.
//! * `degraded` — one spindle killed mid-run: every read touching it
//!   fans out to the survivors and XOR-reconstructs.
//! * `rebuilding` — a blank replacement installed, the idle-gated
//!   rebuild offered steps between foreground dispatches (the async
//!   cleaner's pacing contract), then drained to completion.
//!
//! A second, never-faulted control run executes the identical op
//! sequence. In-binary assertions, each also recomputable from
//! `BENCH_degraded_rebuild.json`:
//!
//! * (a) degraded foreground throughput >= 50% of healthy;
//! * (b) idle-gated rebuilding keeps foreground p99 <= 1.5x healthy;
//! * (c) the rebuilt volume scrubs clean and its namespace digest
//!   equals the control run's — every byte the dead spindle held came
//!   back through parity.
//!
//! Everything runs on the shared virtual clock: output (table and
//! metrics JSON) is byte-identical across runs. `--smoke` shrinks the
//! op counts for CI; the assertions still run.

use std::sync::Arc;

use lfs_bench::degraded::{drain_rebuild, fill, run_phase, PhaseOutcome, RebuildBenchConfig};
use lfs_bench::trace_replay::snapshot_digest;
use lfs_bench::{print_table, MetricsReport, Row};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry};
use trace::replay::snapshot;
use volume::{RebuildPolicy, StripedVolume, VolumeConfig, VolumeDisk};

/// Spindles in the array (one of which dies).
const SPINDLES: usize = 4;
/// The spindle the bench kills and rebuilds.
const DEAD_SPINDLE: usize = 1;
/// LFS segment size; the parity chunk is `SEGMENT / (SPINDLES - 1)`,
/// so one segment write covers exactly one data row (64 KB chunks keep
/// a rebuild step's transfer comparable to one foreground op, which is
/// what lets the idle-gated rebuild hide in think-time gaps).
const SEGMENT_BYTES: usize = 192 * 1024;
/// Per-spindle size: 16 MB. Logical capacity 48 MB — the run's append
/// volume fits without sustained cleaning, isolating parity costs.
const SPINDLE_SECTORS: u64 = 32_768;
/// Modern-host CPU (MIPS): the disks are the contended resource.
const CPU_MIPS: f64 = 1000.0;
/// Size of every slot file.
const FILE_SIZE: usize = 64 * 1024;
/// Slot files per client.
const SLOTS_PER_CLIENT: usize = 8;
/// Mean think time: 4 clients offer well under one WREN IV's
/// bandwidth, so idle periods exist for the gated rebuild.
const THINK_NS: u64 = 700_000_000;
/// Deterministic workload seed.
const SEED: u64 = 0xD15C;

fn bench_cfg(smoke: bool) -> RebuildBenchConfig {
    RebuildBenchConfig {
        clients: if smoke { 2 } else { 4 },
        ops_per_phase: if smoke { 48 } else { 96 },
        slots_per_client: SLOTS_PER_CLIENT,
        file_size: FILE_SIZE,
        think_ns: THINK_NS,
        seed: SEED,
    }
}

fn lfs_cfg() -> LfsConfig {
    // Aligned metadata + seal-on-flush: the layout rules that close the
    // parity write hole (see the crash sweep), here so the bench
    // exercises the production configuration of the subsystem.
    LfsConfig::paper()
        .with_segment_bytes(SEGMENT_BYTES)
        .with_segment_aligned_metadata()
        .with_seal_on_flush()
}

fn rig() -> (VolumeDisk, Arc<Clock>) {
    let clock = Clock::new();
    let vol = StripedVolume::new(
        DiskGeometry::wren_iv().with_sectors(SPINDLE_SECTORS),
        Arc::clone(&clock),
        VolumeConfig::parity_segment(SPINDLES, SEGMENT_BYTES),
    );
    (VolumeDisk::new(vol.into_shared()), clock)
}

/// One run's phase outcomes plus its end-state audit.
struct RunResult {
    phases: Vec<(&'static str, PhaseOutcome)>,
    drain_steps: u64,
    scrub_clean: bool,
    digest: u64,
    /// `volume.degraded_reads` at the end of the run.
    degraded_reads: u64,
    /// `volume.rebuild.runs_completed` at the end of the run.
    rebuilds_completed: u64,
}

/// Publishes a phase's exact statistics as gauges, so CI can recompute
/// every assertion from the JSON artifact alone.
fn publish_phase(registry: &obs::Registry, name: &str, out: &PhaseOutcome) {
    let g = |k: &str, v: u64| registry.gauge(&format!("degraded.{name}.{k}")).set(v);
    g("ops", out.ops);
    g("elapsed_ns", out.elapsed_ns);
    g("p50_ns", out.p50_ns);
    g("p99_ns", out.p99_ns);
    g("rebuild_steps", out.rebuild_steps);
}

/// Runs the workload once. `fault` injects the kill / replace / rebuild
/// sequence; the control run executes the identical op stream healthy.
fn one_run(smoke: bool, fault: bool, metrics: &mut MetricsReport) -> RunResult {
    let cfg = bench_cfg(smoke);
    let (dev, clock) = rig();
    let pump = dev.clone();
    let mut fs = Lfs::format(dev, lfs_cfg(), clock).expect("format LFS");
    fs.set_cpu_mips(CPU_MIPS);
    let registry = fs.obs().clone();
    fill(&mut fs, &pump, &cfg).expect("fill");

    let mut phases: Vec<(&'static str, PhaseOutcome)> = Vec::new();

    let healthy = run_phase(&mut fs, &pump, &cfg, 0, false).expect("healthy phase");
    phases.push(("healthy", healthy));

    if fault {
        pump.kill_spindle(DEAD_SPINDLE);
    }
    let degraded = run_phase(&mut fs, &pump, &cfg, 1, false).expect("degraded phase");
    phases.push(("degraded", degraded));

    if fault {
        // Idle-gated, one row per step: a step's transfer is one chunk
        // per spindle, small enough to hide in think-time gaps.
        pump.replace_spindle(
            DEAD_SPINDLE,
            RebuildPolicy::default().with_max_step_rows(1),
        )
        .expect("replace the dead spindle");
    }
    let rebuilding = run_phase(&mut fs, &pump, &cfg, 2, fault).expect("rebuilding phase");
    phases.push(("rebuilding", rebuilding));

    let drain_steps = drain_rebuild(&mut fs, &pump).expect("drain rebuild");

    let scrub = fs.scrub().expect("scrub");
    let snap = snapshot(&mut fs).expect("namespace snapshot");
    let digest = snapshot_digest(&snap);

    for (name, out) in &phases {
        publish_phase(&registry, name, out);
    }
    registry.gauge("degraded.drain_steps").set(drain_steps);
    registry
        .gauge("degraded.scrub_clean")
        .set(u64::from(scrub.is_clean()));
    registry.gauge("degraded.namespace_digest").set(digest);
    metrics.add_lfs(
        &format!("lfs/{}/s{SPINDLES}", if fault { "faulted" } else { "control" }),
        &fs,
    );

    let snap = registry.snapshot();
    RunResult {
        phases,
        drain_steps,
        scrub_clean: scrub.is_clean(),
        digest,
        degraded_reads: snap.counter("volume.degraded_reads"),
        rebuilds_completed: snap.counter("volume.rebuild.runs_completed"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut metrics = MetricsReport::new("degraded_rebuild");
    let mut failures: Vec<String> = Vec::new();

    let faulted = one_run(smoke, true, &mut metrics);
    let control = one_run(smoke, false, &mut metrics);

    let headers: Vec<&str> = faulted.phases.iter().map(|(n, _)| *n).collect();
    print_table(
        &format!(
            "degraded + rebuild, {} clients x {} ops/phase, {SPINDLES} spindles (parity-segment)",
            bench_cfg(smoke).clients,
            bench_cfg(smoke).ops_per_phase,
        ),
        "metric",
        &headers,
        &[
            Row::new(
                "fg ops/s",
                faulted
                    .phases
                    .iter()
                    .map(|(_, o)| format!("{:.2}", o.ops_per_sec()))
                    .collect(),
            ),
            Row::new(
                "fg p50 ms",
                faulted
                    .phases
                    .iter()
                    .map(|(_, o)| format!("{:.3}", o.p50_ns as f64 / 1e6))
                    .collect(),
            ),
            Row::new(
                "fg p99 ms",
                faulted
                    .phases
                    .iter()
                    .map(|(_, o)| format!("{:.3}", o.p99_ns as f64 / 1e6))
                    .collect(),
            ),
            Row::new(
                "rebuild steps",
                faulted
                    .phases
                    .iter()
                    .map(|(_, o)| o.rebuild_steps.to_string())
                    .collect(),
            ),
        ],
    );
    println!(
        "  drained {} more steps after the measured phase; scrub clean: {}",
        faulted.drain_steps, faulted.scrub_clean
    );
    println!(
        "  namespace digest {:016x} (control {:016x})",
        faulted.digest, control.digest
    );

    let phase = |name: &str| {
        faulted
            .phases
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, o)| o)
            .expect("phase present")
    };
    let healthy = phase("healthy");
    let degraded = phase("degraded");
    let rebuilding = phase("rebuilding");

    // (a) Degraded throughput >= 50% of healthy.
    let tp_ratio = degraded.ops_per_sec() / healthy.ops_per_sec();
    println!("\n  degraded throughput / healthy = {tp_ratio:.3} (need >= 0.50)");
    if tp_ratio < 0.50 {
        failures.push(format!(
            "degraded foreground throughput fell to {:.1}% of healthy (need >= 50%)",
            tp_ratio * 100.0
        ));
    }

    // (b) Idle-gated rebuild keeps foreground p99 <= 1.5x healthy.
    let p99_ratio = rebuilding.p99_ns as f64 / healthy.p99_ns.max(1) as f64;
    println!("  rebuilding p99 / healthy p99 = {p99_ratio:.2}x (bound 1.50x)");
    if p99_ratio > 1.5 {
        failures.push(format!(
            "idle-gated rebuild inflated foreground p99 {p99_ratio:.2}x over healthy (bound: 1.5x)"
        ));
    }

    // (c) The rebuilt volume is whole: scrub clean, namespace identical
    // to the never-faulted control run.
    if !faulted.scrub_clean {
        failures.push("post-rebuild scrub found damage".to_string());
    }
    if faulted.digest != control.digest {
        failures.push(format!(
            "post-rebuild namespace digest {:016x} != control {:016x}",
            faulted.digest, control.digest
        ));
    }

    // Vacuity guards: the regimes must actually have been exercised.
    assert!(
        rebuilding.rebuild_steps > 0,
        "no rebuild step landed inside the measured rebuilding phase"
    );
    assert!(
        faulted.degraded_reads > 0,
        "the killed spindle was never in the read path"
    );
    assert_eq!(
        faulted.rebuilds_completed, 1,
        "the rebuild did not run to completion"
    );
    assert_eq!(
        control.degraded_reads, 0,
        "the control run must never reconstruct"
    );

    println!(
        "\npaper (S3/S4): the log's full-segment writes make parity free on \
         the healthy path; the price of redundancy is paid only while \
         degraded (fan-out reconstruction) and rebuilding (paced, \
         maintenance-class row copies)."
    );
    metrics.emit();

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("degraded_rebuild: FAILED: {f}");
        }
        std::process::exit(1);
    }
}
