//! Ablation — cleaner victim-selection policy (§4.3.4).
//!
//! The paper chooses "the segments with the most free space" (greedy).
//! This ablation compares greedy against a cost-benefit policy (weighing
//! segment age, from the later LFS literature) and an oldest-first
//! baseline, under a sustained churn workload on a small disk where the
//! cleaner must run continuously.
//!
//! The quality metric is **write amplification**: live blocks the cleaner
//! copied per new data block written. Lower is better — it is disk
//! bandwidth stolen from the application.

use std::sync::Arc;

use lfs_bench::{print_table, MetricsReport, Row};
use lfs_core::{CleanerPolicy, Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::FileSystem;
use workload::hotcold::{churn, populate, HotColdSpec};
use workload::Stopwatch;

fn run(policy: CleanerPolicy, metrics: &mut MetricsReport) -> Row {
    let clock = Clock::new();
    // A small disk (24 MB) so churn forces continuous cleaning.
    let disk = SimDisk::new(
        DiskGeometry::wren_iv().with_sectors(24 * 2048),
        Arc::clone(&clock),
    );
    let mut cfg = LfsConfig::paper().with_cache_bytes(2 * 1024 * 1024);
    cfg.cleaner.policy = policy;
    let mut fs = Lfs::format(disk, cfg, Arc::clone(&clock)).unwrap();

    // Hot/cold churn: 80% of overwrites hit 20% of the files, giving the
    // age-aware policy something to exploit.
    let rounds = 4_000usize;
    let spec = HotColdSpec::eighty_twenty(600, 16 * 1024, rounds);
    populate(&mut fs, &spec).unwrap();

    let watch = Stopwatch::start(Arc::clone(&clock));
    churn(&mut fs, &spec).unwrap();
    fs.sync().unwrap();
    let secs = watch.elapsed_secs();

    let stats = fs.stats();
    let amplification =
        stats.cleaner_blocks_copied as f64 / stats.data_blocks_written.max(1) as f64;
    let report = fs.fsck().unwrap();
    assert!(
        report.is_clean(),
        "{policy:?} left an inconsistent FS:\n{report}"
    );
    metrics.add_lfs(&format!("{policy:?}"), &fs);
    Row::new(
        format!("{policy:?}"),
        vec![
            format!("{:.3}", amplification),
            stats.segments_cleaned.to_string(),
            stats.cleaner_blocks_copied.to_string(),
            format!("{:.1}", rounds as f64 / secs),
        ],
    )
}

fn main() {
    let mut metrics = MetricsReport::new("abl_cleaner_policy");
    let rows: Vec<Row> = [
        CleanerPolicy::Greedy,
        CleanerPolicy::CostBenefit,
        CleanerPolicy::Oldest,
    ]
    .into_iter()
    .map(|policy| run(policy, &mut metrics))
    .collect();
    print_table(
        "Ablation: cleaner victim-selection policy (hot/cold churn)",
        "policy",
        &["write amp", "segs cleaned", "blocks copied", "overwrites/s"],
        &rows,
    );
    println!(
        "\npaper (SS4.3.4): greedy (most free space) is the paper's choice; \
         cost-benefit is the refinement from the later LFS literature."
    );
    metrics.emit();
}
