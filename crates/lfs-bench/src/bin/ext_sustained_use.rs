//! Extension — sustained use at varying disk fullness (§5.3, §6).
//!
//! The paper could not run this: "As of this writing LFS has not been
//! subjected to a 'real' workload for extended periods of time... the
//! question will be how full LFS can allow the disk to become and still
//! keep the cleaning cost down."
//!
//! Here we can: fill the disk to a target fraction with a live working
//! set, then overwrite files steadily for a long horizon so the cleaner
//! must continuously reclaim space, and report end-to-end throughput and
//! the cleaner's share of disk traffic per fullness level.

use std::sync::Arc;

use lfs_bench::{print_table, MetricsReport, Row};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::FileSystem;
use workload::{payload, Stopwatch};

struct Outcome {
    overwrites_per_sec: f64,
    cleaner_share: f64,
    write_amp: f64,
    segments_cleaned: u64,
}

fn run(fullness: f64, metrics: &mut MetricsReport) -> Outcome {
    // 48 MB disk, 2 MB cache: small enough that the horizon stresses the
    // cleaner, large enough for hundreds of segments.
    let clock = Clock::new();
    let disk = SimDisk::new(
        DiskGeometry::wren_iv().with_sectors(48 * 2048),
        Arc::clone(&clock),
    );
    let mut cfg = LfsConfig::paper().with_cache_bytes(2 * 1024 * 1024);
    // Probe beyond the default 88 % utilization cap: this experiment
    // exists to map the danger zone the cap protects against.
    cfg.max_utilization = 0.97;
    let mut fs = Lfs::format(disk, cfg, Arc::clone(&clock)).unwrap();

    // Fill to the target live fraction with 16 KB files.
    let capacity = fs.superblock().log_capacity_bytes() as f64;
    let file_size = 16 * 1024usize;
    let nfiles = (capacity * fullness / file_size as f64) as usize;
    let data = payload(13, file_size);
    for d in 0..nfiles.div_ceil(200) {
        fs.mkdir(&format!("/d{d:03}")).unwrap();
    }
    let path = |i: usize| format!("/d{:03}/f{i:05}", i / 200);
    for i in 0..nfiles {
        fs.write_file(&path(i), &data).unwrap();
    }
    fs.sync().unwrap();

    // Steady-state overwrite churn for a fixed operation budget.
    let rounds = 3_000usize;
    let io_before = fs.device().stats().clone();
    let cleaned_before = fs.stats().segments_cleaned;
    let copied_before = fs.stats().cleaner_blocks_copied;
    let data_before = fs.stats().data_blocks_written;
    let cleaner_read_before = fs.stats().cleaner_bytes_read;
    let watch = Stopwatch::start(Arc::clone(&clock));
    let mut rng = 0x2545F4914F6CDD1Du64;
    for _ in 0..rounds {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let target = (rng as usize) % nfiles;
        let p = path(target);
        let ino = fs.lookup(&p).unwrap();
        fs.truncate(ino, 0).unwrap();
        fs.write_at(ino, 0, &data).unwrap();
    }
    fs.sync().unwrap();
    let secs = watch.elapsed_secs();
    let io = fs.device().stats().delta_since(&io_before);

    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "fullness {fullness}: {report}");
    metrics.add_lfs(&format!("full_{:.0}pct", fullness * 100.0), &fs);

    let copied = fs.stats().cleaner_blocks_copied - copied_before;
    let written = fs.stats().data_blocks_written - data_before;
    Outcome {
        overwrites_per_sec: rounds as f64 / secs,
        cleaner_share: (fs.stats().cleaner_bytes_read - cleaner_read_before) as f64
            / io.bytes_total() as f64,
        write_amp: copied as f64 / written.max(1) as f64,
        segments_cleaned: fs.stats().segments_cleaned - cleaned_before,
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut metrics = MetricsReport::new("ext_sustained_use");
    for fullness in [0.30f64, 0.50, 0.65, 0.78, 0.85] {
        let o = run(fullness, &mut metrics);
        rows.push(Row::new(
            format!("{:.0}% full", fullness * 100.0),
            vec![
                format!("{:.1}", o.overwrites_per_sec),
                format!("{:.2}", o.write_amp),
                format!("{:.0}%", o.cleaner_share * 100.0),
                o.segments_cleaned.to_string(),
            ],
        ));
    }
    print_table(
        "Extension: sustained overwrite churn vs disk fullness (3000 x 16 KB overwrites)",
        "live data",
        &[
            "overwrites/s",
            "write amp",
            "cleaner I/O share",
            "segs cleaned",
        ],
        &rows,
    );
    println!(
        "\npaper (SS5.3/SS6): segment utilization at cleaning time tracks disk\n\
         fullness under steady churn; throughput degrades as the cleaner must\n\
         copy ever more live data per segment reclaimed. (The default\n\
         LfsConfig caps live data at 88% of capacity to stay out of the\n\
         collapse region; this run overrides the cap to map it.)"
    );
    metrics.emit();
}
