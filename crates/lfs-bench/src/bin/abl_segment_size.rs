//! Ablation — segment size (§4.3).
//!
//! "What really matters is that the log is written in large enough pieces
//! to support I/O at near-maximum disk bandwidth. This can be achieved by
//! sizing segments so that the disk seek at the start of a segment write
//! is amortized across a long data transfer time."
//!
//! This sweep measures small-file creation throughput and large-file
//! sequential write bandwidth across segment sizes. Expected shape: tiny
//! segments waste bandwidth on per-segment positioning (and summary
//! overhead); beyond ~1 MB the curve flattens — the paper's choice sits
//! at the knee.

use std::sync::Arc;

use lfs_bench::{fmt_rate, lfs_rig, print_table, MetricsReport, Row};
use lfs_core::LfsConfig;
use vfs::FileSystem;
use workload::large_file::{seq_write, LargeFileSpec};
use workload::small_files::{create_phase, SmallFileSpec};
use workload::Stopwatch;

fn main() {
    let mut rows = Vec::new();
    let mut metrics = MetricsReport::new("abl_segment_size");
    for seg_kb in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let cfg = LfsConfig::paper().with_segment_bytes(seg_kb * 1024);

        // Small-file creation throughput.
        let (mut fs, clock) = lfs_rig(cfg.clone());
        let spec = SmallFileSpec::scaled(4_000, 1024);
        let watch = Stopwatch::start(Arc::clone(&clock));
        create_phase(&mut fs, &spec).unwrap();
        fs.sync().unwrap();
        let create_rate = spec.nfiles as f64 / watch.elapsed_secs();
        metrics.add_lfs(&format!("seg_{seg_kb}kb_create"), &fs);

        // Large-file sequential write bandwidth.
        let (mut fs, clock) = lfs_rig(cfg);
        let large = LargeFileSpec::scaled(50 * 1024 * 1024, 8192);
        let ino = fs.create("/big").unwrap();
        let watch = Stopwatch::start(Arc::clone(&clock));
        seq_write(&mut fs, ino, &large).unwrap();
        fs.sync().unwrap();
        let write_kb = large.total_bytes as f64 / 1024.0 / watch.elapsed_secs();
        let overhead = fs.stats().summary_overhead() * 100.0;
        metrics.add_lfs(&format!("seg_{seg_kb}kb_seq_write"), &fs);

        rows.push(Row::new(
            format!("{seg_kb} KB"),
            vec![
                fmt_rate(create_rate),
                fmt_rate(write_kb),
                format!("{overhead:.1}%"),
            ],
        ));
    }
    print_table(
        "Ablation: segment size",
        "segment",
        &["create files/s", "seq write KB/s", "summary overhead"],
        &rows,
    );
    println!("\npaper (SS4.3): the test configuration used 1 MB segments.");
    metrics.emit();
}
