//! Multi-client scaling — the §3 concurrency argument under load.
//!
//! N closed-loop clients create small files against LFS and FFS through
//! the request engine, sweeping client count × I/O scheduler. The run is
//! *strong scaling*: a fixed total file count is split across clients,
//! so every cell performs identical work and throughput differences
//! measure concurrency alone.
//!
//! Expected shape: LFS throughput rises with client count until the
//! disk's sequential bandwidth saturates — concurrent small writes batch
//! into ever-larger log transfers. FFS stays flat: every create costs
//! synchronous seeks, so one client is already enough to saturate the
//! seek rate, and more clients only deepen the queue.
//!
//! `--smoke` runs a reduced sweep (for CI): clients {1, 8}, schedulers
//! {fcfs, clook}, a quarter of the files.

use std::rc::Rc;
use std::sync::Arc;

use engine::{run_small_file_create, EngineConfig, EngineCore, EngineDisk, SchedulerKind};
use ffs_baseline::{Ffs, FfsConfig};
use lfs_bench::cache_mix::{run_mix_cell, run_scan_cell, MixCellResult};
use lfs_bench::{fmt_rate, print_table, MetricsReport, Row};
use lfs_core::{Lfs, LfsConfig};
use mem_mgr::CachePolicy;
use sim_disk::{Clock, DiskGeometry, SimDisk};

/// Modern-drive CPU speed (MIPS): fast enough that the disk, not the
/// CPU, is the contended resource — the regime §3 argues about.
const CPU_MIPS: f64 = 1000.0;
/// Size of each created file.
const FILE_SIZE: usize = 1024;
/// Mean per-client think time between operations.
const THINK_NS: u64 = 600_000;

struct Cell {
    clients: usize,
    throughput: f64,
    fairness_millis: u64,
}

fn engine_rig(sched: SchedulerKind) -> (Rc<std::cell::RefCell<EngineCore>>, EngineDisk, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::modern(), Arc::clone(&clock));
    let core = EngineCore::new(disk, EngineConfig::default().with_scheduler(sched)).into_shared();
    let dev = EngineDisk::new(Rc::clone(&core));
    (core, dev, clock)
}

fn run_lfs(
    sched: SchedulerKind,
    clients: usize,
    total_files: usize,
    metrics: &mut MetricsReport,
) -> Cell {
    let (core, dev, clock) = engine_rig(sched);
    let cfg = LfsConfig::paper()
        .with_block_size(1024)
        .with_cache_bytes(1 << 20);
    let mut fs = Lfs::format(dev, cfg, clock).expect("format LFS");
    fs.set_cpu_mips(CPU_MIPS);
    let registry = fs.obs().clone();
    let mcfg = engine::MultiClientConfig::new(clients, total_files / clients, FILE_SIZE)
        .with_think_ns(THINK_NS);
    let report = run_small_file_create(&mut fs, &core, &registry, &mcfg).expect("LFS run");
    let fsck = fs.fsck().expect("fsck");
    assert!(fsck.is_clean(), "LFS inconsistent after run:\n{fsck}");
    metrics.add_lfs(&format!("lfs/{}/c{clients:03}", sched.name()), &fs);
    Cell {
        clients,
        throughput: report.throughput_ops_per_sec(),
        fairness_millis: report.fairness_millis(),
    }
}

fn run_ffs(
    sched: SchedulerKind,
    clients: usize,
    total_files: usize,
    metrics: &mut MetricsReport,
) -> Cell {
    let (core, dev, clock) = engine_rig(sched);
    let mut fs = Ffs::format(dev, FfsConfig::paper(), clock).expect("format FFS");
    fs.set_cpu_mips(CPU_MIPS);
    let registry = fs.obs().clone();
    let mcfg = engine::MultiClientConfig::new(clients, total_files / clients, FILE_SIZE)
        .with_think_ns(THINK_NS);
    let report = run_small_file_create(&mut fs, &core, &registry, &mcfg).expect("FFS run");
    let fsck = fs.fsck().expect("fsck");
    assert!(fsck.is_clean(), "FFS inconsistent after run:\n{fsck}");
    metrics.add_ffs(&format!("ffs/{}/c{clients:03}", sched.name()), &fs);
    Cell {
        clients,
        throughput: report.throughput_ops_per_sec(),
        fairness_millis: report.fairness_millis(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (client_counts, schedulers, total_files): (&[usize], &[SchedulerKind], usize) = if smoke {
        (
            &[1, 8],
            &[SchedulerKind::Fcfs, SchedulerKind::CLook],
            512,
        )
    } else {
        (
            &[1, 2, 4, 8, 16, 32, 64, 128, 256],
            &SchedulerKind::all(),
            2048,
        )
    };

    let mut metrics = MetricsReport::new("mt_scaling");
    for &sched in schedulers {
        let lfs_cells: Vec<Cell> = client_counts
            .iter()
            .map(|&n| run_lfs(sched, n, total_files, &mut metrics))
            .collect();
        let ffs_cells: Vec<Cell> = client_counts
            .iter()
            .map(|&n| run_ffs(sched, n, total_files, &mut metrics))
            .collect();

        let headers: Vec<String> = client_counts.iter().map(|n| format!("{n} cl")).collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!(
                "Multi-client small-file create, {} scheduler ({total_files} files total, files/sec)",
                sched.name()
            ),
            "fs",
            &header_refs,
            &[
                Row::new(
                    "LFS",
                    lfs_cells.iter().map(|c| fmt_rate(c.throughput)).collect(),
                ),
                Row::new(
                    "FFS",
                    ffs_cells.iter().map(|c| fmt_rate(c.throughput)).collect(),
                ),
                Row::new(
                    "LFS fairness",
                    lfs_cells
                        .iter()
                        .map(|c| format!("{}", c.fairness_millis))
                        .collect(),
                ),
            ],
        );

        let lfs_1 = lfs_cells.first().expect("at least one cell");
        let lfs_peak = lfs_cells
            .iter()
            .map(|c| c.throughput)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  {} summary: LFS 1-client {:.0}/s, peak {:.0}/s ({:.1}x); FFS 1-client {:.0}/s, {}-client {:.0}/s",
            sched.name(),
            lfs_1.throughput,
            lfs_peak,
            lfs_peak / lfs_1.throughput,
            ffs_cells.first().expect("cells").throughput,
            ffs_cells.last().expect("cells").clients,
            ffs_cells.last().expect("cells").throughput,
        );
    }

    run_cache_arm(smoke, &mut metrics);
    metrics.emit();
}

/// The memory-manager arm: overwrite+read mix cells sweeping client
/// count × cache policy × memory budget, plus the streaming-scan
/// resistance cells. The 256-client pair and the scan/solo ratio carry
/// in-binary assertions; CI recomputes both from the emitted JSON.
fn run_cache_arm(smoke: bool, metrics: &mut MetricsReport) {
    let (mix_clients, budgets): (&[usize], &[usize]) = if smoke {
        (&[256], &[1 << 20])
    } else {
        (&[64, 256, 1024], &[512 * 1024, 1 << 20])
    };
    let policies = [CachePolicy::SharedLru, CachePolicy::Adaptive];

    for &budget in budgets {
        let mut cells: Vec<(CachePolicy, Vec<MixCellResult>)> = Vec::new();
        for &policy in &policies {
            let row: Vec<MixCellResult> = mix_clients
                .iter()
                .map(|&n| run_mix_cell(policy, n, budget, metrics))
                .collect();
            cells.push((policy, row));
        }

        let headers: Vec<String> = mix_clients.iter().map(|n| format!("{n} cl")).collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for (policy, row) in &cells {
            rows.push(Row::new(
                format!("{} files/s", policy.as_str()),
                row.iter().map(|c| fmt_rate(c.ops_per_sec)).collect(),
            ));
            rows.push(Row::new(
                format!("{} hit rate", policy.as_str()),
                row.iter()
                    .map(|c| format!("{:.1}%", c.hit_rate_millis as f64 / 10.0))
                    .collect(),
            ));
        }
        rows.push(Row::new(
            "adaptive write target",
            cells[1]
                .1
                .iter()
                .map(|c| format!("{} blk", c.write_target_blocks))
                .collect(),
        ));
        print_table(
            &format!(
                "Overwrite+read mix, shared-LRU vs adaptive cache ({} KB budget)",
                budget / 1024
            ),
            "policy",
            &header_refs,
            &rows,
        );

        // The acceptance pair: at 256 clients on the 1 MB budget the
        // adaptive split must beat the shared LRU on both throughput
        // and read hit rate.
        if budget == 1 << 20 {
            let at = mix_clients
                .iter()
                .position(|&n| n == 256)
                .expect("256-client cell in sweep");
            let shared = &cells[0].1[at];
            let adaptive = &cells[1].1[at];
            assert!(
                adaptive.ops_per_sec > shared.ops_per_sec,
                "adaptive cache lost on throughput at 256 clients: {:.0}/s vs {:.0}/s",
                adaptive.ops_per_sec,
                shared.ops_per_sec
            );
            assert!(
                adaptive.hit_rate_millis > shared.hit_rate_millis,
                "adaptive cache lost on read hit rate at 256 clients: {} vs {} millis",
                adaptive.hit_rate_millis,
                shared.hit_rate_millis
            );
            println!(
                "  256-client acceptance: adaptive {:.0}/s @ {:.1}% beats shared {:.0}/s @ {:.1}%",
                adaptive.ops_per_sec,
                adaptive.hit_rate_millis as f64 / 10.0,
                shared.ops_per_sec,
                shared.hit_rate_millis as f64 / 10.0
            );
        }
    }

    // Scan resistance: victims' hit rate with a streaming scanner vs
    // without (solo), per policy.
    let mut scan_rows = Vec::new();
    let mut adaptive_ratio_millis = 0u64;
    for &policy in &policies {
        let solo = run_scan_cell(policy, false, metrics);
        let scan = run_scan_cell(policy, true, metrics);
        let ratio_millis = scan.victim_hit_rate_millis * 1000 / solo.victim_hit_rate_millis.max(1);
        if policy == CachePolicy::Adaptive {
            adaptive_ratio_millis = ratio_millis;
        }
        scan_rows.push(Row::new(
            policy.as_str(),
            vec![
                format!("{:.1}%", solo.victim_hit_rate_millis as f64 / 10.0),
                format!("{:.1}%", scan.victim_hit_rate_millis as f64 / 10.0),
                format!("{:.1}%", ratio_millis as f64 / 10.0),
            ],
        ));
    }
    print_table(
        "Streaming-scan resistance: victim hit rate with/without a scanner",
        "policy",
        &["solo", "with scan", "retained"],
        &scan_rows,
    );
    assert!(
        adaptive_ratio_millis >= 700,
        "scan resistance failed: adaptive victims retained only {:.1}% of their solo hit rate",
        adaptive_ratio_millis as f64 / 10.0
    );
}
