//! Cleaner interference — what does cleaning cost the foreground?
//!
//! The paper's §4 write-cost discussion prices cleaning in *bandwidth*:
//! every byte the cleaner reads and copies forward is a byte the log
//! cannot spend on new data. This bench measures the other half of the
//! price — *latency*: the cleaner's segment-sized reads sit in the same
//! device queues as foreground requests, so an aggressive cleaner
//! inflates foreground tail latency even when bandwidth is plentiful.
//!
//! The workload is sustained overwrite churn (a fixed live set,
//! continuously overwritten) with closed-loop clients, under four
//! cleaning modes:
//!
//! * `baseline` — a disk large enough that cleaning never activates:
//!   the no-cleaner reference (asserted: zero segments cleaned).
//! * `sync` — the original clean-on-threshold path: cleaning runs
//!   inside whichever foreground operation crosses the threshold.
//! * `aggr` — the async cleaner stepped whenever its watermarks ask,
//!   regardless of foreground queue depth.
//! * `idle` — the async cleaner additionally gated on engine queue
//!   depth (the paper's "clean during idle periods").
//!
//! In-binary assertions: (a) at 8 clients on one spindle, idle-gated
//! cleaning keeps foreground p99 within 1.5x of the no-cleaner
//! baseline; (b) on a 4-spindle segment-round-robin volume, the
//! spindle-aware async cleaner (victims preferentially off the log
//! head's spindle) recovers at least 90% of the no-cleaner foreground
//! throughput.
//!
//! Everything runs on the shared virtual clock: output (table and
//! metrics JSON) is byte-identical across runs.
//!
//! `--smoke` runs the CI-sized sweep: modes {baseline, sync, idle} x
//! clients {1, 8} x 1 spindle, with assertion (a) only.

use std::sync::Arc;

use lfs_bench::interference::{run_overwrite_churn, ChurnConfig, ChurnOutcome};
use lfs_bench::{print_table, MetricsReport, Row};
use lfs_core::{AsyncCleanerPolicy, CleanerRunMode, Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry};
use volume::{StripedVolume, VolumeConfig, VolumeDisk};

/// Modern-host CPU speed (MIPS): the disks, not the CPU, are the
/// contended resource.
const CPU_MIPS: f64 = 1000.0;
/// Size of every slot file.
const FILE_SIZE: usize = 64 * 1024;
/// Live set: 160 slots x 64 KB = 10 MB, ~42% of the churned disk.
const TOTAL_SLOTS: usize = 160;
/// Measured overwrites per cell (split across clients).
const TOTAL_OPS: usize = 768;
const TOTAL_OPS_SMOKE: usize = 384;
/// Mean think time at 1 spindle: 8 clients offer ~58% of one WREN IV's
/// sequential bandwidth, so idle periods exist for the gated cleaner.
const THINK_NS: u64 = 700_000_000;
/// Churned disk: 24 MB of log — the live set plus ~12 MB of slack, so
/// sustained overwrites force continuous cleaning.
const CHURN_SECTORS: u64 = 49_152;
/// Churned disk for the 4-spindle cell: 40 MB (~25% live). The measured
/// write volume (~58 MB) still forces the cleaner through the whole log
/// repeatedly, but victims are mostly dead — the cleaner's cost is its
/// segment *reads*, the part spindle-aware victim selection can steer
/// off the foreground's disks. (At 1-spindle utilization the cost is
/// copy-forward *writes*, which share the log head with the foreground
/// on any layout.)
const CHURN_SECTORS_4SP: u64 = 81_920;
/// Baseline disk: 96 MB — the whole run's append volume fits without
/// ever activating the cleaner.
const BASELINE_SECTORS: u64 = 196_608;
/// Queue-depth bound for the idle-gated mode.
const IDLE_GATE: u64 = 2;
/// Deterministic workload seed.
const SEED: u64 = 0x5EED;

/// Cleaning mode of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Baseline,
    Sync,
    AsyncAggr,
    AsyncIdle,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Sync => "sync",
            Mode::AsyncAggr => "aggr",
            Mode::AsyncIdle => "idle",
        }
    }

    fn run_mode(self, spindles: usize) -> CleanerRunMode {
        let policy = AsyncCleanerPolicy::default()
            .with_watermarks(9, 12)
            .with_stripe_spindles(spindles);
        match self {
            Mode::Baseline | Mode::Sync => CleanerRunMode::Sync,
            Mode::AsyncAggr => CleanerRunMode::Async(policy),
            Mode::AsyncIdle => CleanerRunMode::Async(policy.with_idle_gate(IDLE_GATE)),
        }
    }

    fn drives_cleaner(self) -> bool {
        matches!(self, Mode::AsyncAggr | Mode::AsyncIdle)
    }
}

/// One measured cell.
struct Cell {
    mode: Mode,
    outcome: ChurnOutcome,
    /// Fraction of engine-submitted bytes in the maintenance class.
    cleaner_share: f64,
    emergency_passes: u64,
    offspindle_victims: u64,
}

fn volume_rig(spindles: usize, total_sectors: u64, chunk_bytes: usize) -> (VolumeDisk, Arc<Clock>) {
    let clock = Clock::new();
    let vol = StripedVolume::new(
        DiskGeometry::wren_iv().with_sectors(total_sectors / spindles as u64),
        Arc::clone(&clock),
        VolumeConfig::rr_segment(spindles, chunk_bytes),
    );
    (VolumeDisk::new(vol.into_shared()), clock)
}

/// Sums a per-spindle engine counter across the volume.
fn engine_sum(registry: &obs::Registry, spindles: usize, suffix: &str) -> u64 {
    let snap = registry.snapshot();
    (0..spindles)
        .map(|i| snap.counter(&format!("volume.spindle.{i}.engine.{suffix}")))
        .sum()
}

fn run_cell(
    mode: Mode,
    clients: usize,
    spindles: usize,
    total_ops: usize,
    think_ns: u64,
    churn_sectors: u64,
    metrics: &mut MetricsReport,
) -> Cell {
    let mut cfg = LfsConfig::paper().with_cache_bytes(2 * 1024 * 1024);
    cfg.cleaner.run_mode = mode.run_mode(spindles);
    let total_sectors = if mode == Mode::Baseline {
        BASELINE_SECTORS
    } else {
        churn_sectors
    };
    let (dev, clock) = volume_rig(spindles, total_sectors, cfg.stripe_chunk_bytes());
    let pump = dev.clone();
    let mut fs = Lfs::format(dev, cfg, clock).expect("format LFS");
    fs.set_cpu_mips(CPU_MIPS);
    let registry = fs.obs().clone();

    let ccfg = ChurnConfig {
        clients,
        ops_per_client: total_ops / clients,
        total_slots: TOTAL_SLOTS,
        file_size: FILE_SIZE,
        think_ns,
        seed: SEED,
        drive_cleaner: mode.drives_cleaner(),
    };
    let outcome = run_overwrite_churn(&mut fs, &pump, &ccfg).expect("churn run");
    let fsck = fs.fsck().expect("fsck");
    assert!(fsck.is_clean(), "LFS inconsistent after run:\n{fsck}");

    let stats = fs.stats();
    if mode == Mode::Baseline {
        assert_eq!(
            stats.segments_cleaned, 0,
            "baseline disk must be large enough that cleaning never activates"
        );
    } else {
        assert!(
            stats.segments_cleaned > 0,
            "{} cell never cleaned: churn disk too large for the write volume",
            mode.name()
        );
    }

    let maint = engine_sum(&registry, spindles, "io_bytes.maintenance");
    let total_bytes = maint
        + engine_sum(&registry, spindles, "io_bytes.client")
        + engine_sum(&registry, spindles, "io_bytes.system");
    registry.gauge("interference.fg_p50_ns").set(outcome.p50_ns);
    registry.gauge("interference.fg_p99_ns").set(outcome.p99_ns);
    registry
        .gauge("interference.cleaner_steps")
        .set(outcome.cleaner_steps);
    metrics.add_lfs(
        &format!("lfs/{}/s{spindles}/c{clients:03}", mode.name()),
        &fs,
    );
    Cell {
        mode,
        outcome,
        cleaner_share: if total_bytes == 0 {
            0.0
        } else {
            maint as f64 / total_bytes as f64
        },
        emergency_passes: stats.async_emergency_passes,
        offspindle_victims: stats.async_offspindle_victims,
    }
}

fn print_sweep(title: &str, cells: &[Cell]) {
    let headers: Vec<&str> = cells.iter().map(|c| c.mode.name()).collect();
    print_table(
        title,
        "metric",
        &headers,
        &[
            Row::new(
                "fg p50 ms",
                cells
                    .iter()
                    .map(|c| format!("{:.3}", c.outcome.p50_ns as f64 / 1e6))
                    .collect(),
            ),
            Row::new(
                "fg p99 ms",
                cells
                    .iter()
                    .map(|c| format!("{:.3}", c.outcome.p99_ns as f64 / 1e6))
                    .collect(),
            ),
            Row::new(
                "fg ops/s",
                cells
                    .iter()
                    .map(|c| format!("{:.2}", c.outcome.ops_per_sec()))
                    .collect(),
            ),
            Row::new(
                "cleaner share %",
                cells
                    .iter()
                    .map(|c| format!("{:.1}", c.cleaner_share * 100.0))
                    .collect(),
            ),
            Row::new(
                "cleaner steps",
                cells
                    .iter()
                    .map(|c| c.outcome.cleaner_steps.to_string())
                    .collect(),
            ),
            Row::new(
                "emergency passes",
                cells.iter().map(|c| c.emergency_passes.to_string()).collect(),
            ),
        ],
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let modes: &[Mode] = if smoke {
        &[Mode::Baseline, Mode::Sync, Mode::AsyncIdle]
    } else {
        &[Mode::Baseline, Mode::Sync, Mode::AsyncAggr, Mode::AsyncIdle]
    };
    let total_ops = if smoke { TOTAL_OPS_SMOKE } else { TOTAL_OPS };

    let mut metrics = MetricsReport::new("cleaner_interference");
    let mut failures: Vec<String> = Vec::new();
    let mut p99_at_8: Vec<(Mode, u64)> = Vec::new();

    for &clients in &[1usize, 8] {
        let cells: Vec<Cell> = modes
            .iter()
            .map(|&m| run_cell(m, clients, 1, total_ops, THINK_NS, CHURN_SECTORS, &mut metrics))
            .collect();
        print_sweep(
            &format!(
                "cleaner interference, {clients} clients, 1 spindle ({total_ops} x {FILE_SIZE} B overwrites)"
            ),
            &cells,
        );
        if clients == 8 {
            p99_at_8 = cells.iter().map(|c| (c.mode, c.outcome.p99_ns)).collect();
        }
    }

    // Assertion (a): idle-gated cleaning keeps the foreground tail
    // within 1.5x of the no-cleaner baseline at 8 clients.
    let p99_of = |m: Mode| p99_at_8.iter().find(|(mode, _)| *mode == m).map(|&(_, p)| p);
    if let (Some(base), Some(idle)) = (p99_of(Mode::Baseline), p99_of(Mode::AsyncIdle)) {
        let ratio = idle as f64 / base.max(1) as f64;
        println!("\n  idle-gated p99 / baseline p99 @ 8 clients = {ratio:.2}x");
        if ratio > 1.5 {
            failures.push(format!(
                "idle-gated cleaning inflated 8-client foreground p99 {ratio:.2}x over baseline (bound: 1.5x)"
            ));
        }
    }

    if !smoke {
        // 4 spindles: the spindle-aware async cleaner vs the no-cleaner
        // baseline. Same offered load as the 1-spindle cells — there it
        // exceeds what one disk can carry alongside cleaning, so any
        // recovery here comes from cleaning overlapping foreground work
        // on other spindles.
        let cells: Vec<Cell> = [Mode::Baseline, Mode::AsyncAggr]
            .iter()
            .map(|&m| run_cell(m, 8, 4, TOTAL_OPS, THINK_NS, CHURN_SECTORS_4SP, &mut metrics))
            .collect();
        print_sweep(
            &format!(
                "cleaner interference, 8 clients, 4 spindles ({TOTAL_OPS} x {FILE_SIZE} B overwrites)"
            ),
            &cells,
        );
        println!(
            "  off-spindle victims: {}",
            cells[1].offspindle_victims
        );
        // Assertion (b): off-spindle cleaning recovers >= 90% of the
        // no-cleaner foreground throughput.
        let ratio = cells[1].outcome.ops_per_sec() / cells[0].outcome.ops_per_sec();
        println!("  async 4-spindle throughput / baseline = {ratio:.3}");
        if ratio < 0.90 {
            failures.push(format!(
                "4-spindle async cleaning kept only {:.1}% of no-cleaner throughput (need >= 90%)",
                ratio * 100.0
            ));
        }
        assert!(
            cells[1].offspindle_victims > 0,
            "spindle-aware victim selection never chose an off-spindle segment"
        );
    }

    println!(
        "\npaper (S4 write cost): cleaning's price is paid in bandwidth and \
         latency; segment-sized cleaner transfers queue ahead of foreground \
         requests unless cleaning is deferred to idle periods or steered to \
         other spindles."
    );
    metrics.emit();

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("cleaner_interference: FAILED: {f}");
        }
        std::process::exit(1);
    }
}
