//! Ablation — write-back age threshold (§4.3.5).
//!
//! "The file cache may request a segment write to start if it detects
//! modified blocks older than a certain age threshold... The current LFS
//! implementation uses a threshold of 30 seconds."
//!
//! The threshold trades durability (a crash loses at most one threshold's
//! worth of un-checkpointed work, recoverable by roll-forward only once
//! written to the log) against write efficiency (short thresholds flush
//! partial segments, wasting bandwidth on summary overhead and foregone
//! batching; overwrites absorbed by the cache would never have reached
//! the disk at all).

use std::sync::Arc;

use lfs_bench::{lfs_rig, print_table, MetricsReport, Row};
use lfs_core::LfsConfig;
use vfs::FileSystem;
use workload::office::{run as office_run, OfficeSpec};
use workload::Stopwatch;

fn main() {
    let mut rows = Vec::new();
    let mut metrics = MetricsReport::new("abl_writeback_age");
    for age_secs in [1.0f64, 5.0, 15.0, 30.0, 60.0, 120.0] {
        let mut cfg = LfsConfig::paper();
        cfg.writeback = cfg.writeback.with_age_secs(age_secs);
        // Checkpoints far apart so the age threshold is what drives I/O.
        cfg.checkpoint_interval_ns = 600 * 1_000_000_000;
        let (mut fs, clock) = lfs_rig(cfg);

        let mut spec = OfficeSpec::default_mix();
        spec.operations = 20_000;
        let watch = Stopwatch::start(Arc::clone(&clock));
        let outcome = office_run(&mut fs, &spec).unwrap();
        fs.sync().unwrap();
        let secs = watch.elapsed_secs();

        metrics.add_lfs(&format!("age_{age_secs:.0}s"), &fs);
        let stats = fs.stats();
        let written_mb = fs.device().stats().bytes_written as f64 / (1024.0 * 1024.0);
        let app_mb = outcome.bytes_written as f64 / (1024.0 * 1024.0);
        rows.push(Row::new(
            format!("{age_secs:>5.0} s"),
            vec![
                format!("{:.1}", written_mb),
                format!("{:.2}", written_mb / app_mb),
                stats.chunks_written.to_string(),
                format!("{:.1}", stats.summary_overhead() * 100.0),
                format!("{secs:.0} s"),
            ],
        ));
    }
    print_table(
        "Ablation: write-back age threshold (office workload, 20k ops)",
        "age",
        &[
            "disk MB written",
            "write amp",
            "chunks",
            "summary %",
            "elapsed",
        ],
        &rows,
    );
    println!(
        "\npaper (SS4.3.5): 30 seconds. Short thresholds push overwrites to \
         disk that the cache would have absorbed; long thresholds widen the \
         crash-loss window (see tbl_s2_recovery)."
    );
    metrics.emit();
}
