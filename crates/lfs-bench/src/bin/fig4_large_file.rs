//! Figure 4 — large-file I/O (§5.2).
//!
//! Five stages on a 100 MB file with 8 KB requests: sequential write,
//! sequential read, random write, random read, sequential reread.
//!
//! Expected shape:
//! * LFS write bandwidth near the disk maximum regardless of pattern
//!   (random writes become sequential segment writes); random write can
//!   even exceed sequential because repeated offsets are absorbed by the
//!   cache.
//! * FFS random writes collapse to seek-bound throughput.
//! * Random reads are equivalent.
//! * Sequential reread after random writes is the one case FFS wins:
//!   update-in-place keeps the file contiguous while LFS has scattered
//!   the overwritten blocks through the log.

use std::sync::Arc;

use ffs_baseline::FfsConfig;
use lfs_bench::{ffs_rig, fmt_rate, lfs_rig, print_table, MetricsReport, Row};
use lfs_core::LfsConfig;
use sim_disk::Clock;
use vfs::{FileSystem, FsResult};
use workload::large_file::{rand_read, rand_write, seq_read, seq_write, LargeFileSpec};
use workload::Stopwatch;

struct Stages {
    seq_write: f64,
    seq_read: f64,
    rand_write: f64,
    rand_read: f64,
    seq_reread: f64,
}

fn kb_per_sec(bytes: u64, secs: f64) -> f64 {
    bytes as f64 / 1024.0 / secs
}

fn run_one<F: FileSystem>(
    fs: &mut F,
    clock: &Arc<Clock>,
    spec: &LargeFileSpec,
) -> FsResult<Stages> {
    let ino = fs.create("/bigfile")?;
    let mut watch = Stopwatch::start(Arc::clone(clock));

    seq_write(fs, ino, spec)?;
    fs.sync()?;
    let seq_write_secs = watch.lap_secs();

    fs.drop_caches()?;
    watch.lap_secs();
    seq_read(fs, ino, spec)?;
    let seq_read_secs = watch.lap_secs();

    rand_write(fs, ino, spec)?;
    fs.sync()?;
    let rand_write_secs = watch.lap_secs();

    fs.drop_caches()?;
    watch.lap_secs();
    rand_read(fs, ino, spec)?;
    let rand_read_secs = watch.lap_secs();

    fs.drop_caches()?;
    watch.lap_secs();
    seq_read(fs, ino, spec)?;
    let seq_reread_secs = watch.lap_secs();

    let bytes = spec.total_bytes;
    Ok(Stages {
        seq_write: kb_per_sec(bytes, seq_write_secs),
        seq_read: kb_per_sec(bytes, seq_read_secs),
        rand_write: kb_per_sec(bytes, rand_write_secs),
        rand_read: kb_per_sec(bytes, rand_read_secs),
        seq_reread: kb_per_sec(bytes, seq_reread_secs),
    })
}

fn main() {
    let mut metrics = MetricsReport::new("fig4_large_file");
    let spec = LargeFileSpec::paper();

    let (mut lfs, clock) = lfs_rig(LfsConfig::paper());
    let lfs_rates = run_one(&mut lfs, &clock, &spec).expect("LFS run");
    let report = lfs.fsck().expect("fsck");
    assert!(report.is_clean(), "LFS inconsistent after run:\n{report}");
    metrics.add_lfs("five_stage", &lfs);

    let (mut ffs, clock) = ffs_rig(FfsConfig::paper());
    let ffs_rates = run_one(&mut ffs, &clock, &spec).expect("FFS run");
    let report = ffs.fsck().expect("fsck");
    assert!(report.is_clean(), "FFS inconsistent after run:\n{report}");
    metrics.add_ffs("five_stage", &ffs);

    let rows = [
        ("seq write", lfs_rates.seq_write, ffs_rates.seq_write),
        ("seq read", lfs_rates.seq_read, ffs_rates.seq_read),
        ("rand write", lfs_rates.rand_write, ffs_rates.rand_write),
        ("rand read", lfs_rates.rand_read, ffs_rates.rand_read),
        ("seq reread", lfs_rates.seq_reread, ffs_rates.seq_reread),
    ];
    print_table(
        "Figure 4: 100 MB file transfer rates (KB/sec)",
        "stage",
        &["LFS", "SunFFS"],
        &rows
            .iter()
            .map(|(name, l, f)| Row::new(*name, vec![fmt_rate(*l), fmt_rate(*f)]))
            .collect::<Vec<_>>(),
    );
    println!("\ndisk max bandwidth: {} KB/sec", 1_300_000 / 1024);
    metrics.emit();
}
