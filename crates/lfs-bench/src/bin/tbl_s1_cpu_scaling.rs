//! Table S1 — file creation/deletion latency vs CPU speed (§3.1).
//!
//! The paper's motivating measurement: "a .9-MIPS DEC MicroVaxII using
//! the BSD file system can create and delete an empty file in 100
//! milliseconds. A 14-MIPS DEC DecStation 3100 using the same file system
//! can create and delete an empty file in 80 milliseconds. Because of the
//! synchronous disk I/O, an order-of-magnitude increase in CPU speeds
//! causes only a 20 percent increase in program speed!"
//!
//! Expected shape: FFS latency pinned near the disk's synchronous-write
//! cost regardless of MIPS; LFS latency scaling ~1/MIPS. The ratio column
//! shows LFS's advantage growing with CPU speed — the decoupling argument
//! of §2.3.

use ffs_baseline::FfsConfig;
use lfs_bench::{ffs_rig, lfs_rig, print_table, MetricsReport, Row};
use lfs_core::LfsConfig;
use vfs::FileSystem;
use workload::Stopwatch;

/// Measures mean create+delete latency (ms) for `n` empty files.
fn measure<F: FileSystem>(fs: &mut F, clock: &std::sync::Arc<sim_disk::Clock>, n: usize) -> f64 {
    let watch = Stopwatch::start(std::sync::Arc::clone(clock));
    for i in 0..n {
        let path = format!("/empty{i:05}");
        fs.create(&path).unwrap();
        fs.unlink(&path).unwrap();
    }
    watch.elapsed_secs() * 1e3 / n as f64
}

fn main() {
    let n = 500;
    let mut rows = Vec::new();
    let mut metrics = MetricsReport::new("tbl_s1_cpu_scaling");
    for mips in [0.9f64, 2.0, 5.0, 10.0, 14.0, 25.0, 50.0, 100.0] {
        let (mut ffs, clock) = ffs_rig(FfsConfig::paper());
        ffs.set_cpu_mips(mips);
        let ffs_ms = measure(&mut ffs, &clock, n);
        metrics.add_ffs(&format!("{mips}_mips"), &ffs);

        let (mut lfs, clock) = lfs_rig(LfsConfig::paper());
        lfs.set_cpu_mips(mips);
        let lfs_ms = measure(&mut lfs, &clock, n);
        metrics.add_lfs(&format!("{mips}_mips"), &lfs);

        rows.push(Row::new(
            format!("{mips:>5.1} MIPS"),
            vec![
                format!("{ffs_ms:.2}"),
                format!("{lfs_ms:.3}"),
                format!("{:.0}x", ffs_ms / lfs_ms),
            ],
        ));
    }
    print_table(
        "Table S1: empty-file create+delete latency vs CPU speed (ms/file)",
        "CPU",
        &["FFS ms", "LFS ms", "FFS/LFS"],
        &rows,
    );
    println!(
        "\npaper (SS3.1): 0.9 -> 14 MIPS gave FFS only ~20% speedup; \
         LFS latency should instead scale with the CPU."
    );
    metrics.emit();
}
