//! Table S2 — crash-recovery cost and the loss window (§4.4).
//!
//! Two claims to verify:
//!
//! 1. "LFS never needs to scan the entire file system to recover from a
//!    crash" — mount after a crash costs a checkpoint-region read (plus a
//!    bounded log-tail replay with roll-forward), while FFS pays a
//!    whole-volume fsck scan.
//! 2. "Our current checkpointing interval of 30 seconds means that in the
//!    worst case, changes made in the thirty seconds before a crash may
//!    be lost" — the loss window tracks the checkpoint interval, and
//!    roll-forward recovers most of it.
//!
//! Method: run the office/engineering workload for a fixed virtual
//! duration, crash without unmounting, remount, and measure (a) recovery
//! I/O and virtual time, (b) how many of the files that existed at the
//! crash survive.

use std::collections::BTreeSet;
use std::sync::Arc;

use ffs_baseline::{Ffs, FfsConfig};
use lfs_bench::{ffs_rig, lfs_rig, print_table, MetricsReport, Row};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, SimDisk};
use vfs::{FileKind, FileSystem};
use workload::office::{run as office_run, OfficeSpec};

/// Collects every regular-file path in the tree.
fn live_files<F: FileSystem>(fs: &mut F) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut stack = vec![String::from("/")];
    while let Some(dir) = stack.pop() {
        for entry in fs.readdir(&dir).unwrap() {
            let path = format!(
                "{}{}",
                if dir == "/" {
                    String::from("/")
                } else {
                    format!("{dir}/")
                },
                entry.name
            );
            match entry.kind {
                FileKind::Regular => {
                    out.insert(path);
                }
                FileKind::Directory => stack.push(path),
            }
        }
    }
    out
}

struct Outcome {
    recovery_ms: f64,
    recovery_reads: u64,
    recovery_read_mb: f64,
    files_at_crash: usize,
    files_lost: usize,
}

/// A long office run: several virtual minutes, so multiple checkpoint
/// intervals elapse before the crash.
fn long_office() -> OfficeSpec {
    let mut spec = OfficeSpec::default_mix();
    spec.operations = 30_000;
    spec
}

fn run_lfs(checkpoint_secs: f64, roll_forward: bool, metrics: &mut MetricsReport) -> Outcome {
    let mut cfg = LfsConfig::paper().with_checkpoint_secs(checkpoint_secs);
    cfg.roll_forward = roll_forward;
    // A 5-second delayed-write age: data reaches the log well before the
    // next checkpoint, which is exactly the window roll-forward recovers.
    cfg.writeback = cfg.writeback.with_age_secs(5.0);
    let (mut fs, _clock) = lfs_rig(cfg.clone());
    office_run(&mut fs, &long_office()).unwrap();
    let files_at_crash = live_files(&mut fs);
    let geometry = fs.device().geometry().clone();
    // Crash: abandon all in-memory state.
    let image = fs.into_device().into_image();

    let clock = Clock::new();
    let disk = SimDisk::from_image(geometry, Arc::clone(&clock), image);
    let t0 = clock.now_ns();
    let mut fs2 = Lfs::mount(disk, cfg, Arc::clone(&clock)).expect("recovery mount");
    let recovery_ns = clock.now_ns() - t0;
    let stats = fs2.device().stats().clone();
    let report = fs2.fsck().unwrap();
    assert!(
        report.is_clean(),
        "LFS inconsistent after recovery:\n{report}"
    );
    metrics.add_lfs(
        &format!(
            "cp_{checkpoint_secs:.0}s_{}",
            if roll_forward { "rollforward" } else { "cp_only" }
        ),
        &fs2,
    );

    let survivors = live_files(&mut fs2);
    Outcome {
        recovery_ms: recovery_ns as f64 / 1e6,
        recovery_reads: stats.reads,
        recovery_read_mb: stats.bytes_read as f64 / (1024.0 * 1024.0),
        files_at_crash: files_at_crash.len(),
        files_lost: files_at_crash.difference(&survivors).count(),
    }
}

fn run_ffs(metrics: &mut MetricsReport) -> Outcome {
    let (mut fs, _clock) = ffs_rig(FfsConfig::paper());
    office_run(&mut fs, &long_office()).unwrap();
    let files_at_crash = live_files(&mut fs);
    // FFS has no checkpoints; its delayed writes are lost outright unless
    // flushed. Sync before the crash so the comparison isolates the
    // *recovery scan* cost (the loss columns compare write-back policy,
    // not fsck).
    fs.sync().unwrap();
    let geometry = fs.device().geometry().clone();
    let image = fs.into_device().into_image();

    let clock = Clock::new();
    let disk = SimDisk::from_image(geometry, Arc::clone(&clock), image);
    let t0 = clock.now_ns();
    let mut fs2 = Ffs::mount(disk, FfsConfig::paper(), Arc::clone(&clock)).expect("fsck mount");
    let recovery_ns = clock.now_ns() - t0;
    let stats = fs2.device().stats().clone();
    assert_eq!(fs2.stats().fsck_scans, 1);
    let report = fs2.fsck().unwrap();
    assert!(report.is_clean(), "FFS inconsistent after fsck:\n{report}");
    metrics.add_ffs("fsck_scan", &fs2);

    let survivors = live_files(&mut fs2);
    Outcome {
        recovery_ms: recovery_ns as f64 / 1e6,
        recovery_reads: stats.reads,
        recovery_read_mb: stats.bytes_read as f64 / (1024.0 * 1024.0),
        files_at_crash: files_at_crash.len(),
        files_lost: files_at_crash.difference(&survivors).count(),
    }
}

fn row(label: &str, o: &Outcome) -> Row {
    Row::new(
        label,
        vec![
            format!("{:.1}", o.recovery_ms),
            o.recovery_reads.to_string(),
            format!("{:.2}", o.recovery_read_mb),
            o.files_at_crash.to_string(),
            o.files_lost.to_string(),
        ],
    )
}

fn main() {
    let mut metrics = MetricsReport::new("tbl_s2_recovery");
    let mut rows = Vec::new();
    rows.push(row("FFS full fsck scan", &run_ffs(&mut metrics)));
    for interval in [15.0, 30.0, 60.0, 120.0] {
        rows.push(row(
            &format!("LFS cp={interval}s, checkpoint only"),
            &run_lfs(interval, false, &mut metrics),
        ));
    }
    for interval in [15.0, 30.0, 60.0, 120.0] {
        rows.push(row(
            &format!("LFS cp={interval}s, roll-forward"),
            &run_lfs(interval, true, &mut metrics),
        ));
    }
    print_table(
        "Table S2: crash recovery cost and loss window",
        "configuration",
        &["recovery ms", "reads", "MB read", "files at crash", "lost"],
        &rows,
    );
    println!(
        "\npaper (SS4.4): LFS recovery reads the checkpoint region (plus a \
         bounded log tail with roll-forward); FFS must scan the volume. \
         Without roll-forward, the loss window tracks the checkpoint interval."
    );
    metrics.emit();
}
