//! Crash-consistency torture sweep (§4.4).
//!
//! For every write index of a scripted workload — times three fault
//! modes (dropped write, torn write, lost reorder window) — crash, crash
//! the volume there, remount, and verify the recovered tree against the
//! durability model. Runs the sweep for both LFS and the FFS baseline.
//!
//! Everything is driven by the virtual clock and seeded fault plans, so
//! output (table and metrics JSON) is byte-identical across runs.
//!
//! Flags: `--smoke` (bounded CI-sized sweep), `--stride N` (test every
//! N-th crash index).

use lfs_bench::crash_sweep::{
    sweep, sweep_adaptive, sweep_cleaner, sweep_par_recovery, sweep_rebuild, sweep_striped,
    SweepFs, SweepMode, SweepSpec,
};
use lfs_bench::{print_table, MetricsReport, Row};

fn main() {
    let mut spec = SweepSpec::full();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => spec = SweepSpec::smoke(),
            "--stride" => {
                spec.stride = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .expect("--stride needs a positive integer");
            }
            other => {
                eprintln!("unknown flag: {other} (supported: --smoke, --stride N)");
                std::process::exit(2);
            }
        }
    }

    let mut metrics = MetricsReport::new("crash_sweep");
    let registry = obs::Registry::new();
    let mut rows = Vec::new();
    let mut all_clean = true;
    let mut samples = Vec::new();

    for fs in SweepFs::ALL {
        for mode in SweepMode::ALL {
            let out = sweep(fs, mode, &spec);
            let prefix = format!("sweep.{}.{}", fs.name(), mode.name());
            registry.counter(&format!("{prefix}.crash_points")).add(out.crash_points);
            registry.counter(&format!("{prefix}.recovered")).add(out.recovered);
            registry
                .counter(&format!("{prefix}.detected_unmountable"))
                .add(out.detected_unmountable);
            registry.counter(&format!("{prefix}.violations")).add(out.violations);
            rows.push(Row::new(
                format!("{} {}", fs.name(), mode.name()),
                vec![
                    out.crash_points.to_string(),
                    out.recovered.to_string(),
                    out.detected_unmountable.to_string(),
                    out.violations.to_string(),
                    if out.is_clean() { "yes" } else { "NO" }.to_string(),
                ],
            ));
            all_clean &= out.is_clean();
            samples.extend(out.samples);
        }
    }

    // Striped volume: the same sweep over a 2-spindle round-robin LFS
    // volume (drop + torn), proving checkpoint recovery is
    // stripe-agnostic. Reorder windows are a per-disk cache property and
    // are covered by the single-disk sweep.
    for mode in [SweepMode::Drop, SweepMode::Torn] {
        let out = sweep_striped(mode, &spec, 2);
        let prefix = format!("sweep.lfs_2spindle.{}", mode.name());
        registry.counter(&format!("{prefix}.crash_points")).add(out.crash_points);
        registry.counter(&format!("{prefix}.recovered")).add(out.recovered);
        registry
            .counter(&format!("{prefix}.detected_unmountable"))
            .add(out.detected_unmountable);
        registry.counter(&format!("{prefix}.violations")).add(out.violations);
        rows.push(Row::new(
            format!("lfs x2 {}", mode.name()),
            vec![
                out.crash_points.to_string(),
                out.recovered.to_string(),
                out.detected_unmountable.to_string(),
                out.violations.to_string(),
                if out.is_clean() { "yes" } else { "NO" }.to_string(),
            ],
        ));
        all_clean &= out.is_clean();
        samples.extend(out.samples);
    }

    // Async cleaner in the loop: the same sweep with an incremental
    // cleaning run interleaved into the workload, on 1- and 2-spindle
    // volumes, so crash indices land on mid-run states (relocations in
    // cache, victims parked clean-pending, the committing checkpoint).
    // Recovery is held to the strict standard: the crash-safety protocol
    // says a half-finished run must leave either the old copies intact
    // or the checkpoint that supersedes them.
    for spindles in [1usize, 2] {
        for mode in [SweepMode::Drop, SweepMode::Torn] {
            let out = sweep_cleaner(mode, &spec, spindles);
            let prefix = format!("sweep.lfs_cleaner_{spindles}sp.{}", mode.name());
            registry.counter(&format!("{prefix}.crash_points")).add(out.crash_points);
            registry.counter(&format!("{prefix}.recovered")).add(out.recovered);
            registry
                .counter(&format!("{prefix}.detected_unmountable"))
                .add(out.detected_unmountable);
            registry.counter(&format!("{prefix}.violations")).add(out.violations);
            rows.push(Row::new(
                format!("lfs clean x{spindles} {}", mode.name()),
                vec![
                    out.crash_points.to_string(),
                    out.recovered.to_string(),
                    out.detected_unmountable.to_string(),
                    out.violations.to_string(),
                    if out.is_clean() { "yes" } else { "NO" }.to_string(),
                ],
            ));
            all_clean &= out.is_clean();
            samples.extend(out.samples);
        }
    }

    // Parallel recovery: the striped crash runs again on a 4-spindle
    // volume, but every remount recovers with `recovery_fanout = 0`
    // (ask the device), so the roll-forward's summary sweep and tail
    // prefetch run fanned out across the spindles. The parallel scan
    // must be bit-equivalent to the sequential one, so the outcome is
    // held to the strict single-disk standard.
    for mode in [SweepMode::Drop, SweepMode::Torn] {
        let out = sweep_par_recovery(mode, &spec, 4);
        let prefix = format!("sweep.lfs_par_recovery_4sp.{}", mode.name());
        registry.counter(&format!("{prefix}.crash_points")).add(out.crash_points);
        registry.counter(&format!("{prefix}.recovered")).add(out.recovered);
        registry
            .counter(&format!("{prefix}.detected_unmountable"))
            .add(out.detected_unmountable);
        registry.counter(&format!("{prefix}.violations")).add(out.violations);
        rows.push(Row::new(
            format!("lfs par-rec x4 {}", mode.name()),
            vec![
                out.crash_points.to_string(),
                out.recovered.to_string(),
                out.detected_unmountable.to_string(),
                out.violations.to_string(),
                if out.is_clean() { "yes" } else { "NO" }.to_string(),
            ],
        ));
        all_clean &= out.is_clean();
        samples.extend(out.samples);
    }

    // Adaptive cache in the loop: the single-disk sweep with the
    // adaptive memory manager mounted and the write/read boundary
    // resized after every operation. A resize that dropped a dirty
    // block instead of flushing it shows up as lost durable data.
    for mode in [SweepMode::Drop, SweepMode::Torn] {
        let out = sweep_adaptive(mode, &spec);
        let prefix = format!("sweep.lfs_adaptive.{}", mode.name());
        registry.counter(&format!("{prefix}.crash_points")).add(out.crash_points);
        registry.counter(&format!("{prefix}.recovered")).add(out.recovered);
        registry
            .counter(&format!("{prefix}.detected_unmountable"))
            .add(out.detected_unmountable);
        registry.counter(&format!("{prefix}.violations")).add(out.violations);
        rows.push(Row::new(
            format!("lfs adaptive {}", mode.name()),
            vec![
                out.crash_points.to_string(),
                out.recovered.to_string(),
                out.detected_unmountable.to_string(),
                out.violations.to_string(),
                if out.is_clean() { "yes" } else { "NO" }.to_string(),
            ],
        ));
        all_clean &= out.is_clean();
        samples.extend(out.samples);
    }

    // Parity rebuild in the loop: a 4-spindle parity volume loses a
    // spindle mid-workload and rebuilds the replacement while writes keep
    // flowing; the crash may land before, during, or after the rebuild.
    // Remount models a dirty array assembly — drive swap, rebuild from
    // zero out of the surviving spindles' XOR (segment-aligned metadata
    // plus seal-on-flush close the write hole; no resync pass) — then
    // holds recovery to the strict single-disk standard.
    for mode in [SweepMode::Drop, SweepMode::Torn] {
        let out = sweep_rebuild(mode, &spec, 4);
        let prefix = format!("sweep.lfs_rebuild_4sp.{}", mode.name());
        registry.counter(&format!("{prefix}.crash_points")).add(out.crash_points);
        registry.counter(&format!("{prefix}.recovered")).add(out.recovered);
        registry
            .counter(&format!("{prefix}.detected_unmountable"))
            .add(out.detected_unmountable);
        registry.counter(&format!("{prefix}.violations")).add(out.violations);
        rows.push(Row::new(
            format!("lfs rebuild x4 {}", mode.name()),
            vec![
                out.crash_points.to_string(),
                out.recovered.to_string(),
                out.detected_unmountable.to_string(),
                out.violations.to_string(),
                if out.is_clean() { "yes" } else { "NO" }.to_string(),
            ],
        ));
        all_clean &= out.is_clean();
        samples.extend(out.samples);
    }

    print_table(
        "Crash-consistency torture sweep (SS4.4)",
        "fs / fault mode",
        &["crash points", "recovered", "refused", "violations", "clean"],
        &rows,
    );
    if !samples.is_empty() {
        println!("\nfirst violations:");
        for s in &samples {
            println!("  {s}");
        }
    }
    println!(
        "\npaper (SS4.4): LFS recovery = checkpoint + bounded roll-forward; a \
         crash may lose recent un-synced work (the loss window) but must \
         never silently corrupt synced state. FFS may refuse a damaged \
         mount (detected), LFS must always come back."
    );
    metrics.add_registry("sweep", 0, &registry);
    metrics.emit();

    if !all_clean {
        eprintln!("crash sweep found violations");
        std::process::exit(1);
    }
}
