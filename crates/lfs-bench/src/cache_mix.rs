//! Shared cell runner for the memory-manager arm of the `mt_scaling`
//! bench and its determinism test.
//!
//! Two cell shapes exercise the adaptive write-buffer / read-cache
//! split against the shared-LRU baseline:
//!
//! * **Mix cells** — N closed-loop clients each overwrite their files
//!   and re-read a hot subset ([`engine::run_overwrite_read_mix`]).
//!   The write stream fills the write buffer while the hot sets want
//!   read-cache residency, so the policies' boundary choices separate:
//!   a shared LRU lets dirty data squeeze the hot sets out, the
//!   adaptive manager shrinks its write target toward one segment and
//!   gives the reclaimed memory to the protected read pool.
//! * **Scan cells** — a few read-only *victim* clients with resident
//!   working sets plus one *scanner* streaming a file far larger than
//!   the cache, each block touched once. A shared LRU lets the scan
//!   evict every victim's working set; the 2Q-style read cache confines
//!   it to the probation pool. The `solo` variant drops the scanner and
//!   provides the baseline the scan cell's victim hit rate is compared
//!   against.
//!
//! Every cell publishes its outcome as `mix.*` / `scan.*` gauges before
//! snapshotting, so CI recomputes the adaptive-vs-shared and
//! scan-resistance assertions from `BENCH_mt_scaling.json` alone.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use engine::{run_overwrite_read_mix, EngineConfig, EngineCore, EngineDisk, MixConfig};
use lfs_core::{Lfs, LfsConfig};
use mem_mgr::CachePolicy;
use sim_disk::{Clock, DiskGeometry, SimDisk};

use crate::MetricsReport;

/// Modern-drive CPU speed (MIPS), matching the scaling cells.
const CPU_MIPS: f64 = 1000.0;
/// Block size for every cache cell: 1 KB, so each 1 KB file is exactly
/// one cache block and working-set arithmetic is exact.
const BLOCK_SIZE: usize = 1024;
/// Segment size: 128 blocks — the memory manager's flush unit and the
/// adaptive write target's floor.
const SEGMENT_BYTES: usize = 128 * 1024;
/// Size of each mix-client file (one block).
const FILE_SIZE: usize = 1024;
/// Files each mix client owns.
const FILES_PER_CLIENT: usize = 8;
/// Of which this many form the re-read working set.
const HOT_FILES: usize = 2;
/// Measured operations per mix client.
const OPS_PER_CLIENT: usize = 16;
/// Read share of the mix (per mille).
const READ_PERMILLE: u32 = 700;
/// Mean think time between operations.
const THINK_NS: u64 = 600_000;

/// Victim clients in a scan cell.
const SCAN_VICTIMS: usize = 8;
/// Files per victim (all hot: victims are read-only re-readers). Kept
/// small so a victim's re-touch interval fits inside the read cache's
/// ghost window even while the scanner churns the probation pool.
const SCAN_VICTIM_FILES: usize = 8;
/// Measured operations per victim.
const SCAN_VICTIM_OPS: usize = 64;
/// Scan-cell cache budget: 256 blocks — fits every victim working set
/// (128 blocks) but not the scanner's stream.
const SCAN_CACHE_BYTES: usize = 256 * 1024;
/// The scanner's file: sixteen times the cache, so the stream never
/// wraps and every block really is touched exactly once.
const SCAN_FILE_BYTES: usize = 4 * 1024 * 1024;
/// Bytes the scanner reads per operation: 64 blocks, so each scanner
/// dispatch pushes a large one-touch burst through the cache.
const SCAN_CHUNK_BYTES: usize = 64 * 1024;
/// Scanner operations: exactly one pass over the file.
const SCAN_OPS: usize = 64;

/// One mix cell's outcome.
#[derive(Debug, Clone)]
pub struct MixCellResult {
    /// `lfs/mix/<policy>/m<kib>k/c<clients>` — also the metrics label.
    pub label: String,
    /// Closed-loop throughput over the measured phase (files touched
    /// per second of virtual time).
    pub ops_per_sec: f64,
    /// Client-attributed read hit rate over the measured phase, in
    /// per-mille (setup is unattributed and excluded).
    pub hit_rate_millis: u64,
    /// The adaptive write target at the end of the run, in blocks.
    pub write_target_blocks: usize,
}

/// One scan cell's outcome.
#[derive(Debug, Clone)]
pub struct ScanCellResult {
    /// `lfs/scan/<policy>/<scan|solo>` — also the metrics label.
    pub label: String,
    /// Victim-attributed hit rate in per-mille.
    pub victim_hit_rate_millis: u64,
}

fn engine_rig() -> (Rc<RefCell<EngineCore>>, EngineDisk, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::modern(), Arc::clone(&clock));
    let core = EngineCore::new(disk, EngineConfig::default()).into_shared();
    let dev = EngineDisk::new(Rc::clone(&core));
    (core, dev, clock)
}

fn cell_fs(policy: CachePolicy, cache_bytes: usize) -> (Lfs<EngineDisk>, Rc<RefCell<EngineCore>>) {
    let (core, dev, clock) = engine_rig();
    let cfg = LfsConfig::paper()
        .with_block_size(BLOCK_SIZE)
        .with_segment_bytes(SEGMENT_BYTES)
        .with_cache_bytes(cache_bytes)
        .with_cache_policy(policy);
    let mut fs = Lfs::format(dev, cfg, clock).expect("format LFS");
    fs.set_cpu_mips(CPU_MIPS);
    (fs, core)
}

/// Sums client-attributed hits and misses over a range of client ids.
fn attributed_rate(fs: &Lfs<EngineDisk>, ids: impl Iterator<Item = u32>) -> u64 {
    let report = fs.cache_report();
    let (mut hits, mut misses) = (0u64, 0u64);
    for id in ids {
        if let Some((_, u)) = report.clients.iter().find(|(c, _)| *c == id) {
            hits += u.hits;
            misses += u.misses;
        }
    }
    hits * 1000 / (hits + misses).max(1)
}

/// Runs one overwrite+read mix cell and snapshots it into `metrics`.
pub fn run_mix_cell(
    policy: CachePolicy,
    clients: usize,
    cache_bytes: usize,
    metrics: &mut MetricsReport,
) -> MixCellResult {
    let (mut fs, core) = cell_fs(policy, cache_bytes);
    let registry = fs.obs().clone();
    let cfg = MixConfig::new(clients, FILES_PER_CLIENT, FILE_SIZE)
        .with_read_permille(READ_PERMILLE)
        .with_hot_files(HOT_FILES)
        .with_think_ns(THINK_NS);
    let mix = {
        let mut cfg = cfg;
        cfg.ops_per_client = OPS_PER_CLIENT;
        run_overwrite_read_mix(&mut fs, &core, &registry, &cfg).expect("mix run")
    };
    let fsck = fs.fsck().expect("fsck");
    assert!(fsck.is_clean(), "LFS inconsistent after mix run:\n{fsck}");

    let ops_per_sec = mix.multi.throughput_ops_per_sec();
    let hit_rate_millis = attributed_rate(&fs, 0..clients as u32);
    let report = fs.cache_report();
    registry
        .gauge("mix.ops_per_sec_milli")
        .set((ops_per_sec * 1000.0) as u64);
    registry.gauge("mix.read_hit_rate_millis").set(hit_rate_millis);
    registry.gauge("mix.read_ops").set(mix.read_ops);
    registry.gauge("mix.write_ops").set(mix.write_ops);

    let label = format!(
        "lfs/mix/{}/m{}k/c{clients:04}",
        policy.as_str(),
        cache_bytes / 1024
    );
    metrics.add_lfs(&label, &fs);
    MixCellResult {
        label,
        ops_per_sec,
        hit_rate_millis,
        write_target_blocks: report.write_target_blocks,
    }
}

/// Runs one streaming-scan cell (`scanner = true`) or its scanner-free
/// baseline (`scanner = false`) and snapshots it into `metrics`.
pub fn run_scan_cell(
    policy: CachePolicy,
    scanner: bool,
    metrics: &mut MetricsReport,
) -> ScanCellResult {
    let (mut fs, core) = cell_fs(policy, SCAN_CACHE_BYTES);
    let registry = fs.obs().clone();
    let mut cfg = MixConfig::new(SCAN_VICTIMS, SCAN_VICTIM_FILES, FILE_SIZE)
        .with_read_permille(1000)
        .with_hot_files(SCAN_VICTIM_FILES)
        .with_think_ns(THINK_NS);
    cfg.ops_per_client = SCAN_VICTIM_OPS;
    if scanner {
        cfg = cfg.with_scanners(1, SCAN_FILE_BYTES, SCAN_CHUNK_BYTES, SCAN_OPS);
    }
    run_overwrite_read_mix(&mut fs, &core, &registry, &cfg).expect("scan run");
    let fsck = fs.fsck().expect("fsck");
    assert!(fsck.is_clean(), "LFS inconsistent after scan run:\n{fsck}");

    if std::env::var("CACHE_MIX_DEBUG").is_ok() {
        println!("--- {} scanner={}\n{}", policy.as_str(), scanner, fs.cache_report().render());
    }
    let victim_hit_rate_millis = attributed_rate(&fs, 0..SCAN_VICTIMS as u32);
    registry
        .gauge("scan.victim_hit_rate_millis")
        .set(victim_hit_rate_millis);

    let label = format!(
        "lfs/scan/{}/{}",
        policy.as_str(),
        if scanner { "scan" } else { "solo" }
    );
    metrics.add_lfs(&label, &fs);
    ScanCellResult {
        label,
        victim_hit_rate_millis,
    }
}
