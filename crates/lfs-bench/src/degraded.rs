//! Foreground service through a spindle death and online rebuild.
//!
//! The driver runs one closed-loop read+overwrite workload on an LFS
//! over a parity volume, in three measured phases on the *same* file
//! system instance: healthy, degraded (one spindle killed mid-run),
//! and rebuilding (a blank replacement installed, the idle-gated
//! rebuild offered steps between foreground dispatches exactly as the
//! async cleaner is). Per-operation latencies are collected exactly,
//! so phase percentiles carry no bucketing error, and everything runs
//! on the shared virtual clock — output is byte-identical across runs.
//!
//! Each operation reads one slot file (a degraded read fans out to
//! every surviving spindle and XOR-reconstructs) and overwrites
//! another (a full-segment log write computes parity from the buffer —
//! the no-read fast path). Slots are partitioned per client, so the
//! final namespace is independent of dispatch interleaving: a faulted
//! run and a never-faulted control run must produce byte-identical
//! namespace digests, which is the bench's end-to-end correctness
//! assertion.

use engine::RequestEngine;
use lfs_core::Lfs;
use sim_disk::BlockDevice;
use vfs::{FileSystem, FsResult};
use volume::{RebuildProgress, VolumeDisk};
use workload::payload;

use crate::interference::percentile_ns;

/// Parameters shared by every phase of one run.
#[derive(Debug, Clone)]
pub struct RebuildBenchConfig {
    /// Closed-loop foreground clients.
    pub clients: usize,
    /// Measured operations per phase (split across clients).
    pub ops_per_phase: usize,
    /// Slot files per client.
    pub slots_per_client: usize,
    /// Size of every slot file in bytes.
    pub file_size: usize,
    /// Mean think time between a client's operations (±25% jitter).
    pub think_ns: u64,
    /// Seed for the deterministic jitter and payloads.
    pub seed: u64,
}

/// Exact latency statistics of one measured phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseOutcome {
    /// Foreground operations completed.
    pub ops: u64,
    /// Virtual time the phase spanned, in nanoseconds.
    pub elapsed_ns: u64,
    /// Exact median foreground operation latency.
    pub p50_ns: u64,
    /// Exact 99th-percentile foreground operation latency.
    pub p99_ns: u64,
    /// Exact median of the operations' *read* portion alone.
    pub read_p50_ns: u64,
    /// Exact 99th percentile of the operations' *read* portion alone —
    /// the half of the op a hedged reconstruction can shield from a
    /// fail-slow spindle (writes land on every spindle and cannot be
    /// served from the survivors).
    pub read_p99_ns: u64,
    /// Rebuild steps the driver's offers landed during the phase.
    pub rebuild_steps: u64,
}

impl PhaseOutcome {
    /// Foreground throughput in operations per second of virtual time.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.ops as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// Deterministic jittered think time: `mean` ±25%, keyed by
/// `(seed, client, op)` — the same generator the interference bench
/// uses, so phase comparisons see identical offered load.
fn jittered_think_ns(seed: u64, client: usize, op: usize, mean: u64) -> u64 {
    let mut x = seed
        ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (op as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    mean * (75 + x % 51) / 100
}

fn slot_path(client: usize, slot: usize) -> String {
    format!("/d{client:02}/s{slot:04}")
}

/// The slot content after `client` overwrites `slot` on global op
/// counter `epoch` — a pure function of the keys, so the faulted and
/// control runs converge to the same bytes regardless of interleaving.
fn slot_payload(cfg: &RebuildBenchConfig, client: usize, epoch: usize) -> Vec<u8> {
    payload(
        cfg.seed ^ ((client as u64) << 8) ^ ((epoch as u64) << 20),
        cfg.file_size,
    )
}

/// Creates every slot (system-attributed) and syncs, so measurement
/// starts from a durable, fully populated namespace.
pub fn fill<D: BlockDevice>(
    fs: &mut Lfs<D>,
    core: &impl RequestEngine,
    cfg: &RebuildBenchConfig,
) -> FsResult<()> {
    core.set_client(None);
    core.register_clients(cfg.clients);
    for c in 0..cfg.clients {
        fs.mkdir(&format!("/d{c:02}"))?;
        for s in 0..cfg.slots_per_client {
            fs.write_file(&slot_path(c, s), &slot_payload(cfg, c, s))?;
        }
    }
    fs.sync()
}

/// Runs one measured phase: `ops_per_phase` read+overwrite operations
/// dispatched earliest-ready-first across the clients. When
/// `drive_rebuild` is set, the volume's rebuild is offered a step
/// before every foreground dispatch (so a backlogged foreground cannot
/// starve it) plus as many as policy accepts — the idle gate sees the
/// live queue depth, exactly the async cleaner's contract.
///
/// `phase` keys the payload epoch so each phase's overwrites really
/// change bytes (parity must track them), and the final state is a
/// pure function of (config, phase count) — never of timing.
pub fn run_phase(
    fs: &mut Lfs<VolumeDisk>,
    core: &VolumeDisk,
    cfg: &RebuildBenchConfig,
    phase: usize,
    drive_rebuild: bool,
) -> FsResult<PhaseOutcome> {
    assert!(cfg.clients > 0, "at least one client");
    let clock = core.clock();
    let start_ns = clock.now_ns();
    let ops_per_client = cfg.ops_per_phase / cfg.clients;
    let mut next_ready: Vec<u64> = (0..cfg.clients)
        .map(|c| start_ns + jittered_think_ns(cfg.seed, c, phase << 16, cfg.think_ns))
        .collect();
    let mut done_ops: Vec<usize> = vec![0; cfg.clients];
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.clients * ops_per_client);
    let mut read_latencies: Vec<u64> = Vec::with_capacity(cfg.clients * ops_per_client);
    let mut rebuild_steps = 0u64;

    let total_ops = cfg.clients * ops_per_client;
    for _ in 0..total_ops {
        let c = (0..cfg.clients)
            .filter(|&c| done_ops[c] < ops_per_client)
            .min_by_key(|&c| (next_ready[c], c))
            .expect("a client still has work");

        // Offer the rebuild dispatch slots ahead of the foreground op:
        // one forced offer (its policy still decides), then more only
        // while virtual time has not reached the next client's turn.
        if drive_rebuild {
            let mut forced = false;
            loop {
                core.pump()?;
                if !core.rebuild_wants_step() {
                    break;
                }
                if forced && clock.now_ns() >= next_ready[c] {
                    break;
                }
                match core.rebuild_step()? {
                    RebuildProgress::Idle => break,
                    RebuildProgress::Completed => {
                        rebuild_steps += 1;
                        break;
                    }
                    RebuildProgress::Progress { .. } => rebuild_steps += 1,
                }
                forced = true;
            }
        }

        clock.advance_to_ns(next_ready[c]);
        core.pump()?;
        core.set_client(Some(c));
        let op = done_ops[c];
        // Cold reads: without this the paper-sized cache absorbs the
        // whole live set and no phase would ever touch the media's
        // read path — the very path whose degradation is measured.
        fs.drop_caches()?;
        let before_ns = clock.now_ns();
        // Read one slot end-to-end (degraded: XOR reconstruction)...
        let read_slot = (op + 1) % cfg.slots_per_client;
        let data = fs.read_file(&slot_path(c, read_slot))?;
        read_latencies.push(clock.now_ns() - before_ns);
        assert_eq!(data.len(), cfg.file_size, "slot changed size");
        // ...then overwrite another (parity from the write buffer).
        let write_slot = op % cfg.slots_per_client;
        let epoch = cfg.slots_per_client + phase * ops_per_client + op;
        let body = slot_payload(cfg, c, epoch);
        let ino = fs.lookup(&slot_path(c, write_slot))?;
        fs.truncate(ino, 0)?;
        let mut written = 0;
        while written < cfg.file_size {
            written += fs.write_at(ino, written as u64, &body[written..])?;
        }
        let latency_ns = clock.now_ns() - before_ns;
        latencies.push(latency_ns);
        done_ops[c] += 1;
        next_ready[c] = clock.now_ns()
            + jittered_think_ns(cfg.seed, c, (phase << 16) | (op + 1), cfg.think_ns);
        core.set_client(None);
    }

    let elapsed_ns = clock.now_ns() - start_ns;
    latencies.sort_unstable();
    read_latencies.sort_unstable();
    Ok(PhaseOutcome {
        ops: total_ops as u64,
        elapsed_ns,
        p50_ns: percentile_ns(&latencies, 50.0),
        p99_ns: percentile_ns(&latencies, 99.0),
        read_p50_ns: percentile_ns(&read_latencies, 50.0),
        read_p99_ns: percentile_ns(&read_latencies, 99.0),
        rebuild_steps,
    })
}

/// Drains an in-flight rebuild to completion (no idle gating — the
/// measured phase is over) and syncs, leaving the volume healthy.
pub fn drain_rebuild(fs: &mut Lfs<VolumeDisk>, core: &VolumeDisk) -> FsResult<u64> {
    core.set_client(None);
    let mut steps = 0u64;
    while core.rebuild_remaining_rows().is_some() {
        match core.rebuild_step()? {
            RebuildProgress::Progress { .. } => steps += 1,
            RebuildProgress::Completed => {
                steps += 1;
                break;
            }
            RebuildProgress::Idle => break,
        }
    }
    fs.sync()?;
    Ok(steps)
}
