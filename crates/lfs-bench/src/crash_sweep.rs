//! Exhaustive crash-consistency torture harness (§4.4).
//!
//! A scripted workload with periodic `sync` barriers runs once cleanly to
//! build a **durability model**: after each barrier, which files (and
//! which contents) the file system has promised to keep. Then, for every
//! write index the workload issues — and for each fault mode (dropped
//! trigger, torn trigger, lost reorder window) — the run is repeated
//! with a crash armed at that write, the surviving image is remounted,
//! and the recovered tree is checked against the model:
//!
//! * the volume must mount (LFS always; FFS may refuse loudly, which
//!   counts as *detected*, never as silent corruption),
//! * `fsck` must report a consistent volume after recovery,
//! * every file durable at the last barrier at-or-before the crash and
//!   untouched afterwards must come back byte-identical,
//! * every recovered file must be a path the workload actually created,
//!   holding (for LFS) bytes some version of that file actually held —
//!   stale data is an allowed outcome of a crash, fabricated data never.
//!
//! All runs use the virtual clock and seeded fault plans, so a sweep's
//! output is byte-identical across invocations.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use ffs_baseline::{Ffs, FfsConfig};
use lfs_core::{AsyncCleanerPolicy, CleanerRunMode, Lfs, LfsConfig};
use mem_mgr::CachePolicy;
use sim_disk::{Clock, CrashPlan, DiskGeometry, SimDisk};
use vfs::{FileKind, FileSystem, FsError};
use volume::{RebuildPolicy, RebuildProgress, StripedVolume, VolumeConfig, VolumeDisk};

/// 8 MB tiny-test volume: big enough for the scripted tree, small enough
/// that thousands of format+replay+remount cycles stay fast.
const DISK_SECTORS: u64 = 16_384;

/// 2 MB volume for the async-cleaner sweep: small enough that the
/// incremental cleaner finds real victims during the scripted churn, so
/// crash points land inside active [`lfs_core::CleanerRun`]s.
const CLEANER_DISK_SECTORS: u64 = 4_096;

/// How a crash treats the triggering write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// The triggering write is dropped entirely.
    Drop,
    /// Only a sector prefix of the triggering write persists.
    Torn,
    /// The triggering write and a volatile reorder window are lost.
    Reorder,
}

impl SweepMode {
    /// All modes, in sweep order.
    pub const ALL: [SweepMode; 3] = [SweepMode::Drop, SweepMode::Torn, SweepMode::Reorder];

    /// Stable lowercase name (table rows, metric names).
    pub fn name(self) -> &'static str {
        match self {
            SweepMode::Drop => "drop",
            SweepMode::Torn => "torn",
            SweepMode::Reorder => "reorder",
        }
    }

    /// The crash plan for this mode at workload write `idx` (an absolute
    /// device write index). Torn prefixes and window sizes vary
    /// deterministically with the index so the sweep covers several
    /// tear/window shapes.
    fn plan(self, idx: u64) -> CrashPlan {
        match self {
            SweepMode::Drop => CrashPlan::drop_at(idx),
            SweepMode::Torn => CrashPlan::tear_at(idx, idx % 4),
            SweepMode::Reorder => CrashPlan::reorder_at(idx, 2 + (idx % 7) as usize),
        }
    }
}

/// Which file system a sweep targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepFs {
    /// The log-structured file system.
    Lfs,
    /// The FFS baseline.
    Ffs,
}

impl SweepFs {
    /// Both file systems, in sweep order.
    pub const ALL: [SweepFs; 2] = [SweepFs::Lfs, SweepFs::Ffs];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SweepFs::Lfs => "lfs",
            SweepFs::Ffs => "ffs",
        }
    }
}

/// Sweep shape: workload size and crash-index stride.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Number of write/sync phases in the scripted workload.
    pub phases: usize,
    /// Files created per phase.
    pub files_per_phase: usize,
    /// Crash-index stride. 1 = exhaustive (every write index).
    pub stride: u64,
}

impl SweepSpec {
    /// The full torture sweep: every crash index of a multi-phase run.
    pub fn full() -> Self {
        Self {
            phases: 6,
            files_per_phase: 8,
            stride: 1,
        }
    }

    /// A bounded smoke sweep for CI: a smaller script, still exhaustive
    /// over its (fewer) write indices. LFS batches a whole phase into a
    /// few segment writes, so it needs several phases to produce a
    /// meaningful number of crash points.
    pub fn smoke() -> Self {
        Self {
            phases: 4,
            files_per_phase: 4,
            stride: 1,
        }
    }
}

/// One scripted operation. The script is pure data so the clean modelling
/// run and every crash run replay exactly the same sequence.
#[derive(Debug, Clone)]
enum Op {
    Mkdir(String),
    Write(String, Vec<u8>),
    Unlink(String),
    Sync,
}

/// Deterministic file contents: phase/index-seeded length and byte fill.
fn payload(phase: usize, i: usize, salt: usize) -> Vec<u8> {
    let len = 120 + (phase * 977 + i * 131 + salt * 53) % 3400;
    let fill = (0x20 + (phase * 31 + i * 7 + salt) % 200) as u8;
    let mut data = vec![fill; len];
    // A non-uniform head so torn/rotted prefixes can't masquerade as a
    // legitimate version of some other file.
    for (k, b) in data.iter_mut().take(16).enumerate() {
        *b = b.wrapping_add((k * 17 + phase * 5 + i) as u8);
    }
    data
}

/// Builds the scripted workload: per phase, create a directory of files,
/// overwrite half of the previous phase's files, delete one, then sync.
fn script(spec: &SweepSpec) -> Vec<Op> {
    let mut ops = Vec::new();
    for p in 0..spec.phases {
        ops.push(Op::Mkdir(format!("/d{p}")));
        for i in 0..spec.files_per_phase {
            ops.push(Op::Write(format!("/d{p}/f{i}"), payload(p, i, 0)));
        }
        if p > 0 {
            for i in 0..spec.files_per_phase / 2 {
                ops.push(Op::Write(format!("/d{}/f{i}", p - 1), payload(p, i, 1)));
            }
            ops.push(Op::Unlink(format!(
                "/d{}/f{}",
                p - 1,
                spec.files_per_phase - 1
            )));
        }
        ops.push(Op::Sync);
    }
    ops
}

/// A durability barrier: the device write count when a `sync` returned,
/// and the file state the file system promised to keep at that point.
#[derive(Debug, Clone)]
struct Barrier {
    writes_done: u64,
    durable: BTreeMap<String, Vec<u8>>,
}

/// The durability model a clean run produces.
struct Model {
    /// Device write count after format, before the workload.
    format_writes: u64,
    /// Device write count after the whole workload.
    total_writes: u64,
    barriers: Vec<Barrier>,
    /// Every content each path ever held, in write order.
    history: BTreeMap<String, Vec<Vec<u8>>>,
    /// Paths the workload unlinked at some point.
    deleted: BTreeSet<String>,
    /// Per path: `barriers.len()` at the moment of its last mutation —
    /// the first barrier index that fully covers the path's final state.
    touch: BTreeMap<String, usize>,
}

/// The little extra the sweep needs beyond [`FileSystem`]: the device
/// write counter (crash indices) and a mount-consistency check.
trait Rig: FileSystem {
    fn disk_writes(&self) -> u64;
    /// Runs the fs's own consistency check; `Ok(None)` = clean,
    /// `Ok(Some(report))` = problems found.
    fn check_consistency(&mut self) -> Result<Option<String>, FsError>;
}

impl Rig for Lfs<SimDisk> {
    fn disk_writes(&self) -> u64 {
        self.device().stats().writes
    }
    fn check_consistency(&mut self) -> Result<Option<String>, FsError> {
        let report = self.fsck()?;
        Ok((!report.is_clean()).then(|| report.to_string()))
    }
}

impl Rig for Ffs<SimDisk> {
    fn disk_writes(&self) -> u64 {
        self.device().stats().writes
    }
    fn check_consistency(&mut self) -> Result<Option<String>, FsError> {
        let report = self.fsck()?;
        Ok((!report.is_clean()).then(|| report.to_string()))
    }
}

impl Rig for Lfs<VolumeDisk> {
    /// Writes persisted across all spindles in global persist order —
    /// the same index space the volume's shared crash plan triggers on,
    /// so barrier bookkeeping is stripe-agnostic.
    fn disk_writes(&self) -> u64 {
        self.device().global_writes()
    }
    fn check_consistency(&mut self) -> Result<Option<String>, FsError> {
        let report = self.fsck()?;
        Ok((!report.is_clean()).then(|| report.to_string()))
    }
}

/// Create-or-overwrite: the trait's `write_file` refuses existing paths.
fn upsert<F: Rig>(fs: &mut F, path: &str, data: &[u8]) -> Result<(), FsError> {
    let ino = match fs.lookup(path) {
        Ok(ino) => {
            fs.truncate(ino, 0)?;
            ino
        }
        Err(FsError::NotFound) => fs.create(path)?,
        Err(e) => return Err(e),
    };
    let mut written = 0;
    while written < data.len() {
        written += fs.write_at(ino, written as u64, &data[written..])?;
    }
    Ok(())
}

/// Executes the script cleanly and records the durability model.
fn dry_run<F: Rig>(fs: &mut F, ops: &[Op], format_writes: u64) -> Model {
    let mut model = Model {
        format_writes,
        total_writes: 0,
        barriers: Vec::new(),
        history: BTreeMap::new(),
        deleted: BTreeSet::new(),
        touch: BTreeMap::new(),
    };
    let mut state: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Mkdir(path) => {
                fs.mkdir(path).expect("model run mkdir");
            }
            Op::Write(path, data) => {
                upsert(fs, path, data).expect("model run write");
                state.insert(path.clone(), data.clone());
                model.history.entry(path.clone()).or_default().push(data.clone());
                model.touch.insert(path.clone(), model.barriers.len());
            }
            Op::Unlink(path) => {
                fs.unlink(path).expect("model run unlink");
                state.remove(path);
                model.deleted.insert(path.clone());
                model.touch.insert(path.clone(), model.barriers.len());
            }
            Op::Sync => {
                fs.sync().expect("model run sync");
                model.barriers.push(Barrier {
                    writes_done: fs.disk_writes(),
                    durable: state.clone(),
                });
            }
        }
    }
    model.total_writes = fs.disk_writes();
    model
}

/// Replays the script over a crash-armed volume, stopping at the first
/// error (the crash). Later ops would all fail against a crashed device.
fn crash_run<F: Rig>(fs: &mut F, ops: &[Op]) {
    for op in ops {
        let r = match op {
            Op::Mkdir(path) => fs.mkdir(path).map(|_| ()),
            Op::Write(path, data) => upsert(fs, path, data),
            Op::Unlink(path) => fs.unlink(path).map(|_| ()),
            Op::Sync => fs.sync(),
        };
        if r.is_err() {
            return;
        }
    }
}

/// Collects every regular-file path in the recovered tree.
fn live_files<F: FileSystem>(fs: &mut F) -> Result<BTreeSet<String>, FsError> {
    let mut out = BTreeSet::new();
    let mut stack = vec![String::from("/")];
    while let Some(dir) = stack.pop() {
        for entry in fs.readdir(&dir)? {
            let path = if dir == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{dir}/{}", entry.name)
            };
            match entry.kind {
                FileKind::Regular => {
                    out.insert(path);
                }
                FileKind::Directory => stack.push(path),
            }
        }
    }
    Ok(out)
}

/// Checks a recovered volume against the model. `strict_content` demands
/// every recovered file hold bytes from its real version history (sound
/// for LFS, whose log never overwrites data in place; FFS in-place
/// overwrites legitimately tear, so only its untouched-since-barrier
/// files are content-checked). Returns human-readable violations.
fn check_recovery<F: Rig>(
    fs: &mut F,
    model: &Model,
    crash_idx: u64,
    strict_content: bool,
) -> Vec<String> {
    let mut problems = Vec::new();
    match fs.check_consistency() {
        Ok(None) => {}
        Ok(Some(report)) => problems.push(format!("fsck unclean: {}", report.trim())),
        Err(e) => {
            problems.push(format!("fsck failed: {e}"));
            return problems;
        }
    }

    // The newest barrier wholly persisted before the crash: writes with
    // index < crash_idx reached the platter, the triggering write did not.
    let guaranteed = model
        .barriers
        .iter()
        .enumerate()
        .rev()
        .find(|(_, b)| b.writes_done <= crash_idx);
    if let Some((g, barrier)) = guaranteed {
        for (path, content) in &barrier.durable {
            let untouched_since = model.touch.get(path).copied().unwrap_or(0) <= g;
            match fs.read_file(path) {
                Ok(found) => {
                    if untouched_since {
                        if &found != content {
                            problems.push(format!(
                                "durability: {path} synced at barrier {g} and never \
                                 touched again, but came back with {} bytes instead of {}",
                                found.len(),
                                content.len()
                            ));
                        }
                    } else if strict_content
                        && !model.history[path].iter().any(|v| v == &found)
                    {
                        problems.push(format!(
                            "integrity: {path} recovered with bytes matching no \
                             version the workload ever wrote"
                        ));
                    }
                }
                Err(FsError::NotFound) => {
                    let legitimately_gone = !untouched_since && model.deleted.contains(path);
                    if !legitimately_gone {
                        problems.push(format!(
                            "durability: {path} synced at barrier {g} is missing"
                        ));
                    }
                }
                Err(e) => problems.push(format!("durability: reading {path}: {e}")),
            }
        }
    }

    // No fabricated state: every recovered path must be one the workload
    // created, and (strict mode) hold a content version it really wrote.
    match live_files(fs) {
        Ok(found) => {
            for path in found {
                match model.history.get(&path) {
                    None => problems.push(format!("phantom: {path} was never created")),
                    Some(versions) if strict_content => match fs.read_file(&path) {
                        Ok(bytes) => {
                            if !versions.iter().any(|v| v == &bytes) {
                                problems.push(format!(
                                    "integrity: {path} holds bytes matching no real version"
                                ));
                            }
                        }
                        Err(e) => problems.push(format!("integrity: reading {path}: {e}")),
                    },
                    Some(_) => {}
                }
            }
        }
        Err(e) => problems.push(format!("tree walk failed: {e}")),
    }
    problems
}

/// Aggregated result of one (file system × fault mode) sweep.
#[derive(Debug, Clone)]
pub struct ModeOutcome {
    /// Which file system was swept.
    pub fs: SweepFs,
    /// Which fault mode was applied.
    pub mode: SweepMode,
    /// Crash indices exercised.
    pub crash_points: u64,
    /// Remounts that succeeded and recovered to a consistent volume.
    pub recovered: u64,
    /// Mounts the file system *refused* with a typed error (detected,
    /// loud, acceptable for FFS; always a violation for LFS).
    pub detected_unmountable: u64,
    /// Model-equivalence violations (silent corruption, lost durable
    /// data, phantom files). Must be zero.
    pub violations: u64,
    /// First few violation descriptions, for the report.
    pub samples: Vec<String>,
}

impl ModeOutcome {
    /// True when the sweep found no silent-corruption or durability
    /// violations (LFS additionally must never refuse to mount).
    pub fn is_clean(&self) -> bool {
        self.violations == 0 && (self.fs == SweepFs::Ffs || self.detected_unmountable == 0)
    }
}

fn fresh_disk() -> (SimDisk, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
    (disk, clock)
}

fn remount_image(image: Vec<u8>) -> (SimDisk, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::from_image(
        DiskGeometry::tiny_test(DISK_SECTORS),
        Arc::clone(&clock),
        image,
    );
    (disk, clock)
}

/// Same total logical capacity as the single-disk sweep, cut evenly
/// across spindles with segment-granular round-robin striping, so the
/// scripted workload and its durability model are identical.
fn fresh_volume(spindles: usize) -> (StripedVolume, Arc<Clock>) {
    assert!(
        spindles >= 1 && DISK_SECTORS.is_multiple_of(spindles as u64),
        "spindle count must divide the test capacity"
    );
    let clock = Clock::new();
    let cfg = VolumeConfig::rr_segment(spindles, LfsConfig::small_test().segment_bytes);
    let vol = StripedVolume::new(
        DiskGeometry::tiny_test(DISK_SECTORS / spindles as u64),
        Arc::clone(&clock),
        cfg,
    );
    (vol, clock)
}

fn remount_volume(spindles: usize, images: Vec<Vec<u8>>) -> (StripedVolume, Arc<Clock>) {
    let clock = Clock::new();
    let cfg = VolumeConfig::rr_segment(spindles, LfsConfig::small_test().segment_bytes);
    let vol = StripedVolume::from_images(
        DiskGeometry::tiny_test(DISK_SECTORS / spindles as u64),
        Arc::clone(&clock),
        cfg,
        images,
    );
    (vol, clock)
}

/// Sweeps LFS on a multi-spindle round-robin volume under one fault
/// mode: the same crash plan is armed on every spindle with a shared
/// write index, so power fails at the globally N-th write wherever it
/// lands. Checkpoint recovery must be stripe-agnostic: the outcome is
/// held to exactly the single-disk standard (always mounts, never
/// silently corrupts, strict content checks).
pub fn sweep_striped(mode: SweepMode, spec: &SweepSpec, spindles: usize) -> ModeOutcome {
    let ops = script(spec);

    let model = {
        let (vol, clock) = fresh_volume(spindles);
        let dev = VolumeDisk::new(vol.into_shared());
        let mut fs = Lfs::format(dev, LfsConfig::small_test(), clock).expect("format");
        let format_writes = fs.disk_writes();
        dry_run(&mut fs, &ops, format_writes)
    };

    let mut out = ModeOutcome {
        fs: SweepFs::Lfs,
        mode,
        crash_points: 0,
        recovered: 0,
        detected_unmountable: 0,
        violations: 0,
        samples: Vec::new(),
    };

    let mut idx = model.format_writes;
    while idx < model.total_writes {
        out.crash_points += 1;
        let (mut vol, clock) = fresh_volume(spindles);
        vol.arm_crash_all(mode.plan(idx));
        let dev = VolumeDisk::new(vol.into_shared());
        let mut fs = Lfs::format(dev, LfsConfig::small_test(), clock).expect("format");
        crash_run(&mut fs, &ops);
        let images = fs.into_device().into_images();

        let (vol, clock) = remount_volume(spindles, images);
        let dev = VolumeDisk::new(vol.into_shared());
        let problems = match Lfs::mount(dev, LfsConfig::small_test(), clock) {
            Ok(mut fs) => {
                out.recovered += 1;
                check_recovery(&mut fs, &model, idx, true)
            }
            Err(e) => {
                out.detected_unmountable += 1;
                vec![format!("LFS mount refused after striped crash: {e}")]
            }
        };
        for p in problems {
            out.violations += 1;
            if out.samples.len() < 5 {
                out.samples
                    .push(format!("{}x{spindles} @{idx}: {p}", mode.name()));
            }
        }
        idx += spec.stride;
    }
    out
}

/// Sweeps LFS on a multi-spindle volume with **parallel recovery** at
/// the remount: the crash runs are identical to [`sweep_striped`]'s,
/// but the surviving image is remounted with `recovery_fanout = 0`
/// (ask the device), so the roll-forward's summary sweep and tail
/// prefetch run fanned out across the spindles. Recovery must be
/// bit-equivalent to the sequential scan, so the outcome is held to
/// exactly the single-disk standard: always mounts, never silently
/// corrupts, strict content checks. Panics if no remount actually
/// partitioned its scan across more than one spindle — the sweep
/// exists to cover the parallel path, so a config change that routes
/// every remount through the sequential scan must fail loudly, not
/// pass vacuously.
pub fn sweep_par_recovery(mode: SweepMode, spec: &SweepSpec, spindles: usize) -> ModeOutcome {
    assert!(spindles >= 2, "a parallel-recovery sweep needs >= 2 spindles");
    let ops = script(spec);

    let model = {
        let (vol, clock) = fresh_volume(spindles);
        let dev = VolumeDisk::new(vol.into_shared());
        let mut fs = Lfs::format(dev, LfsConfig::small_test(), clock).expect("format");
        let format_writes = fs.disk_writes();
        dry_run(&mut fs, &ops, format_writes)
    };

    let mut out = ModeOutcome {
        fs: SweepFs::Lfs,
        mode,
        crash_points: 0,
        recovered: 0,
        detected_unmountable: 0,
        violations: 0,
        samples: Vec::new(),
    };

    let mut max_partitions = 0u64;
    let mut idx = model.format_writes;
    while idx < model.total_writes {
        out.crash_points += 1;
        let (mut vol, clock) = fresh_volume(spindles);
        vol.arm_crash_all(mode.plan(idx));
        let dev = VolumeDisk::new(vol.into_shared());
        let mut fs = Lfs::format(dev, LfsConfig::small_test(), clock).expect("format");
        crash_run(&mut fs, &ops);
        let images = fs.into_device().into_images();

        let (vol, clock) = remount_volume(spindles, images);
        let dev = VolumeDisk::new(vol.into_shared());
        let remount_cfg = LfsConfig::small_test().with_recovery_fanout(0);
        let problems = match Lfs::mount(dev, remount_cfg, clock) {
            Ok(mut fs) => {
                out.recovered += 1;
                max_partitions = max_partitions.max(fs.stats().recovery_partitions);
                check_recovery(&mut fs, &model, idx, true)
            }
            Err(e) => {
                out.detected_unmountable += 1;
                vec![format!("LFS mount refused after parallel-recovery crash: {e}")]
            }
        };
        for p in problems {
            out.violations += 1;
            if out.samples.len() < 5 {
                out.samples
                    .push(format!("par-recovery {}x{spindles} @{idx}: {p}", mode.name()));
            }
        }
        idx += spec.stride;
    }
    assert!(
        max_partitions > 1,
        "parallel-recovery sweep is vacuous: no remount partitioned its \
         scan across more than one spindle ({} points swept)",
        out.crash_points
    );
    out
}

/// The small_test config with the incremental cleaner always eager:
/// watermarks far above any reachable clean count and minimal step caps,
/// so the scripted churn keeps a [`lfs_core::CleanerRun`] in flight for
/// most of the workload and crash indices land in every mid-run state.
fn async_cleaner_cfg() -> LfsConfig {
    let mut cfg = LfsConfig::small_test();
    cfg.cleaner.run_mode = CleanerRunMode::Async(
        AsyncCleanerPolicy::default()
            .with_watermarks(1 << 16, 1 << 17)
            .with_step_caps(2, 4),
    );
    cfg
}

fn fresh_cleaner_volume(spindles: usize) -> (StripedVolume, Arc<Clock>) {
    assert!(
        spindles >= 1 && CLEANER_DISK_SECTORS.is_multiple_of(spindles as u64),
        "spindle count must divide the cleaner-sweep capacity"
    );
    let clock = Clock::new();
    let cfg = VolumeConfig::rr_segment(spindles, LfsConfig::small_test().segment_bytes);
    let vol = StripedVolume::new(
        DiskGeometry::tiny_test(CLEANER_DISK_SECTORS / spindles as u64),
        Arc::clone(&clock),
        cfg,
    );
    (vol, clock)
}

fn remount_cleaner_volume(spindles: usize, images: Vec<Vec<u8>>) -> (StripedVolume, Arc<Clock>) {
    let clock = Clock::new();
    let cfg = VolumeConfig::rr_segment(spindles, LfsConfig::small_test().segment_bytes);
    let vol = StripedVolume::from_images(
        DiskGeometry::tiny_test(CLEANER_DISK_SECTORS / spindles as u64),
        Arc::clone(&clock),
        cfg,
        images,
    );
    (vol, clock)
}

/// Offers the incremental cleaner a bounded burst of steps, exactly as
/// an event-loop host would between foreground dispatches. Both the
/// model run and every crash run use this same rule, so their device
/// write sequences are identical up to the crash.
fn pump_cleaner(fs: &mut Lfs<VolumeDisk>) -> Result<(), FsError> {
    for _ in 0..4 {
        if !fs.cleaner_wants_step(0) {
            return Ok(());
        }
        fs.cleaner_step()?;
    }
    Ok(())
}

/// Executes the script cleanly with the cleaner interleaved, recording
/// the durability model plus the device-write spans during which a
/// cleaning run was active (so the sweep can prove crash points really
/// landed mid-run).
fn dry_run_cleaner(
    fs: &mut Lfs<VolumeDisk>,
    ops: &[Op],
    format_writes: u64,
) -> (Model, Vec<(u64, u64)>) {
    let mut model = Model {
        format_writes,
        total_writes: 0,
        barriers: Vec::new(),
        history: BTreeMap::new(),
        deleted: BTreeSet::new(),
        touch: BTreeMap::new(),
    };
    let mut spans: Vec<(u64, u64)> = Vec::new();
    let mut state: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for op in ops {
        let w0 = fs.disk_writes();
        let active_before = fs.cleaner_run_active();
        match op {
            Op::Mkdir(path) => {
                fs.mkdir(path).expect("model run mkdir");
            }
            Op::Write(path, data) => {
                upsert(fs, path, data).expect("model run write");
                state.insert(path.clone(), data.clone());
                model.history.entry(path.clone()).or_default().push(data.clone());
                model.touch.insert(path.clone(), model.barriers.len());
            }
            Op::Unlink(path) => {
                fs.unlink(path).expect("model run unlink");
                state.remove(path);
                model.deleted.insert(path.clone());
                model.touch.insert(path.clone(), model.barriers.len());
            }
            Op::Sync => {
                fs.sync().expect("model run sync");
                model.barriers.push(Barrier {
                    writes_done: fs.disk_writes(),
                    durable: state.clone(),
                });
            }
        }
        pump_cleaner(fs).expect("model run cleaner step");
        if active_before || fs.cleaner_run_active() {
            let w1 = fs.disk_writes();
            if w1 > w0 {
                spans.push((w0, w1));
            }
        }
    }
    // Drain: finish the in-flight run so its committing checkpoint (and
    // the crash points inside it) are part of the swept write range.
    let w0 = fs.disk_writes();
    let was_active = fs.cleaner_run_active();
    while fs.cleaner_run_active() {
        fs.cleaner_step().expect("model run drain");
    }
    if was_active && fs.disk_writes() > w0 {
        spans.push((w0, fs.disk_writes()));
    }
    model.total_writes = fs.disk_writes();
    (model, spans)
}

/// Replays the script with the cleaner interleaved over a crash-armed
/// volume, stopping at the first error (the crash).
fn crash_run_cleaner(fs: &mut Lfs<VolumeDisk>, ops: &[Op]) {
    for op in ops {
        let r = match op {
            Op::Mkdir(path) => fs.mkdir(path).map(|_| ()),
            Op::Write(path, data) => upsert(fs, path, data),
            Op::Unlink(path) => fs.unlink(path).map(|_| ()),
            Op::Sync => fs.sync(),
        };
        if r.is_err() || pump_cleaner(fs).is_err() {
            return;
        }
    }
    while fs.cleaner_run_active() {
        if fs.cleaner_step().is_err() {
            return;
        }
    }
}

/// Sweeps LFS with the incremental async cleaner interleaved into the
/// workload: crash at every `stride`-th write index — including the
/// writes a [`lfs_core::CleanerRun`] issues mid-flight (segment
/// relocations, parked clean-pending promotions, the committing
/// checkpoint) — remount, and hold recovery to the strict single-disk
/// standard. Panics if no crash point landed inside an active run: the
/// sweep exists to cover exactly those states, so a workload change that
/// stops the cleaner from running must fail loudly, not pass vacuously.
pub fn sweep_cleaner(mode: SweepMode, spec: &SweepSpec, spindles: usize) -> ModeOutcome {
    let ops = script(spec);

    let (model, run_spans) = {
        let (vol, clock) = fresh_cleaner_volume(spindles);
        let dev = VolumeDisk::new(vol.into_shared());
        let mut fs = Lfs::format(dev, async_cleaner_cfg(), clock).expect("format");
        let format_writes = fs.disk_writes();
        dry_run_cleaner(&mut fs, &ops, format_writes)
    };

    let mut out = ModeOutcome {
        fs: SweepFs::Lfs,
        mode,
        crash_points: 0,
        recovered: 0,
        detected_unmountable: 0,
        violations: 0,
        samples: Vec::new(),
    };

    let mut mid_run_points = 0u64;
    let mut idx = model.format_writes;
    while idx < model.total_writes {
        out.crash_points += 1;
        if run_spans.iter().any(|&(lo, hi)| idx >= lo && idx < hi) {
            mid_run_points += 1;
        }
        let (mut vol, clock) = fresh_cleaner_volume(spindles);
        vol.arm_crash_all(mode.plan(idx));
        let dev = VolumeDisk::new(vol.into_shared());
        let mut fs = Lfs::format(dev, async_cleaner_cfg(), clock).expect("format");
        crash_run_cleaner(&mut fs, &ops);
        let images = fs.into_device().into_images();

        let (vol, clock) = remount_cleaner_volume(spindles, images);
        let dev = VolumeDisk::new(vol.into_shared());
        let problems = match Lfs::mount(dev, async_cleaner_cfg(), clock) {
            Ok(mut fs) => {
                out.recovered += 1;
                check_recovery(&mut fs, &model, idx, true)
            }
            Err(e) => {
                out.detected_unmountable += 1;
                vec![format!("LFS mount refused after mid-clean crash: {e}")]
            }
        };
        for p in problems {
            out.violations += 1;
            if out.samples.len() < 5 {
                out.samples
                    .push(format!("cleaner {}x{spindles} @{idx}: {p}", mode.name()));
            }
        }
        idx += spec.stride;
    }
    assert!(
        mid_run_points > 0,
        "async-cleaner sweep is vacuous: no crash index landed inside an \
         active cleaning run ({} points swept)",
        out.crash_points
    );
    out
}

/// The small_test config with the adaptive memory manager in place of
/// the shared LRU: crash recovery must be policy-agnostic, because the
/// manager only decides *when* dirty blocks flush, never what the log
/// contains once they do.
fn adaptive_cfg() -> LfsConfig {
    LfsConfig::small_test().with_cache_policy(CachePolicy::Adaptive)
}

/// Deterministic boundary wobble applied after op `i` of the adaptive
/// sweep: marches the write target across its clamp range so
/// resize-triggered flushes and evictions fall throughout the script.
/// The model run and every crash run apply the identical schedule, so
/// their device write sequences match up to the crash.
fn wobble_boundary(fs: &mut Lfs<SimDisk>, i: usize) {
    fs.set_cache_boundary(4 + (i * 13) % 61);
}

/// Executes the script cleanly under the adaptive cache with the
/// boundary wobbled after every op, recording the durability model.
fn dry_run_adaptive(fs: &mut Lfs<SimDisk>, ops: &[Op], format_writes: u64) -> Model {
    let mut model = Model {
        format_writes,
        total_writes: 0,
        barriers: Vec::new(),
        history: BTreeMap::new(),
        deleted: BTreeSet::new(),
        touch: BTreeMap::new(),
    };
    let mut state: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Mkdir(path) => {
                fs.mkdir(path).expect("model run mkdir");
            }
            Op::Write(path, data) => {
                upsert(fs, path, data).expect("model run write");
                state.insert(path.clone(), data.clone());
                model.history.entry(path.clone()).or_default().push(data.clone());
                model.touch.insert(path.clone(), model.barriers.len());
            }
            Op::Unlink(path) => {
                fs.unlink(path).expect("model run unlink");
                state.remove(path);
                model.deleted.insert(path.clone());
                model.touch.insert(path.clone(), model.barriers.len());
            }
            Op::Sync => {
                fs.sync().expect("model run sync");
                model.barriers.push(Barrier {
                    writes_done: fs.disk_writes(),
                    durable: state.clone(),
                });
            }
        }
        wobble_boundary(fs, i);
    }
    model.total_writes = fs.disk_writes();
    model
}

/// Replays the script (with the identical boundary wobble) over a
/// crash-armed volume, stopping at the first error (the crash).
fn crash_run_adaptive(fs: &mut Lfs<SimDisk>, ops: &[Op]) {
    for (i, op) in ops.iter().enumerate() {
        let r = match op {
            Op::Mkdir(path) => fs.mkdir(path).map(|_| ()),
            Op::Write(path, data) => upsert(fs, path, data),
            Op::Unlink(path) => fs.unlink(path).map(|_| ()),
            Op::Sync => fs.sync(),
        };
        if r.is_err() {
            return;
        }
        wobble_boundary(fs, i);
    }
}

/// Sweeps LFS with the adaptive memory manager and a boundary resize
/// after every operation: crash at every `stride`-th write index,
/// remount (with the adaptive config again), and hold recovery to the
/// strict single-disk standard. A resize that dropped a dirty block
/// instead of flushing it surfaces here as lost durable data. Panics if
/// the boundary never actually moved during the model run — the sweep
/// exists to cover resize-triggered flushes, so it must not pass
/// vacuously.
pub fn sweep_adaptive(mode: SweepMode, spec: &SweepSpec) -> ModeOutcome {
    let ops = script(spec);

    let model = {
        let (disk, clock) = fresh_disk();
        let mut fs = Lfs::format(disk, adaptive_cfg(), clock).expect("format");
        let format_writes = fs.disk_writes();
        let model = dry_run_adaptive(&mut fs, &ops, format_writes);
        assert!(
            fs.cache_report().boundary_moves > 0,
            "adaptive sweep is vacuous: the boundary never moved"
        );
        model
    };

    let mut out = ModeOutcome {
        fs: SweepFs::Lfs,
        mode,
        crash_points: 0,
        recovered: 0,
        detected_unmountable: 0,
        violations: 0,
        samples: Vec::new(),
    };

    let mut idx = model.format_writes;
    while idx < model.total_writes {
        out.crash_points += 1;
        let (mut disk, clock) = fresh_disk();
        disk.arm_crash(mode.plan(idx));
        let mut fs = Lfs::format(disk, adaptive_cfg(), clock).expect("format");
        crash_run_adaptive(&mut fs, &ops);
        let image = fs.into_device().into_image();

        let (disk, clock) = remount_image(image);
        let problems = match Lfs::mount(disk, adaptive_cfg(), clock) {
            Ok(mut fs) => {
                out.recovered += 1;
                check_recovery(&mut fs, &model, idx, true)
            }
            Err(e) => {
                out.detected_unmountable += 1;
                vec![format!("LFS mount refused after adaptive-cache crash: {e}")]
            }
        };
        for p in problems {
            out.violations += 1;
            if out.samples.len() < 5 {
                out.samples
                    .push(format!("adaptive {} @{idx}: {p}", mode.name()));
            }
        }
        idx += spec.stride;
    }
    out
}

/// Per-spindle capacity of the rebuild sweep's parity volume: small so
/// the online rebuild's row writes are a large share of the swept write
/// range, putting many crash indices mid-rebuild.
const REBUILD_SPINDLE_SECTORS: u64 = 1_024;

/// The spindle the rebuild sweep kills. Fixed, so the model run and
/// every crash run issue identical device-write sequences.
const REBUILD_DEAD_SPINDLE: usize = 1;

/// Data chunk under the rebuild sweep's parity-segment policy: 8 KB.
const REBUILD_CHUNK_BYTES: usize = 8 * 1024;

/// LFS sized so one segment covers exactly one parity row: full-segment
/// writes take the no-read parity fast path, as the storage manager
/// intends. Metadata regions are segment-aligned so each in-place
/// rewrite target (superblock, checkpoint A, checkpoint B) owns its
/// stripe rows outright, and flushes seal their segment so no parity
/// row ever mixes committed chunks with a later append — together the
/// layout rules that close the degraded-array write hole (see
/// `sweep_rebuild`).
fn rebuild_lfs_cfg(spindles: usize) -> LfsConfig {
    LfsConfig::small_test()
        .with_segment_bytes((spindles - 1) * REBUILD_CHUNK_BYTES)
        .with_segment_aligned_metadata()
        .with_seal_on_flush()
}

fn rebuild_volume_cfg(spindles: usize) -> VolumeConfig {
    VolumeConfig::parity_segment(spindles, (spindles - 1) * REBUILD_CHUNK_BYTES)
}

/// Eager, small-step pacing: no idle gate (crash runs must be
/// deterministic, and queue depths vary with where the crash landed)
/// and two rows per step, so rebuild writes interleave with most of the
/// remaining workload.
fn rebuild_policy() -> RebuildPolicy {
    RebuildPolicy::default()
        .with_idle_queue_depth(None)
        .with_max_step_rows(2)
}

fn fresh_rebuild_volume(spindles: usize) -> (StripedVolume, Arc<Clock>) {
    let clock = Clock::new();
    let vol = StripedVolume::new(
        DiskGeometry::tiny_test(REBUILD_SPINDLE_SECTORS),
        Arc::clone(&clock),
        rebuild_volume_cfg(spindles),
    );
    (vol, clock)
}

fn remount_rebuild_volume(spindles: usize, images: Vec<Vec<u8>>) -> (StripedVolume, Arc<Clock>) {
    let clock = Clock::new();
    let vol = StripedVolume::from_images(
        DiskGeometry::tiny_test(REBUILD_SPINDLE_SECTORS),
        Arc::clone(&clock),
        rebuild_volume_cfg(spindles),
        images,
    );
    (vol, clock)
}

/// Offers the rebuild a bounded burst of steps between ops, as an
/// event-loop host would. Used identically by the model run and every
/// crash run so their write sequences match up to the crash.
fn pump_rebuild(fs: &Lfs<VolumeDisk>) -> Result<(), vfs::FsError> {
    for _ in 0..2 {
        if !fs.device().rebuild_wants_step() {
            return Ok(());
        }
        fs.device().rebuild_step().map_err(FsError::Io)?;
    }
    Ok(())
}

/// Executes the rebuild script — workload with a spindle killed a third
/// of the way in and a replacement swapped in at two thirds — recording
/// the durability model plus the device-write spans during which the
/// online rebuild was copying rows.
fn dry_run_rebuild(
    fs: &mut Lfs<VolumeDisk>,
    ops: &[Op],
    format_writes: u64,
) -> (Model, Vec<(u64, u64)>) {
    let mut model = Model {
        format_writes,
        total_writes: 0,
        barriers: Vec::new(),
        history: BTreeMap::new(),
        deleted: BTreeSet::new(),
        touch: BTreeMap::new(),
    };
    let mut spans: Vec<(u64, u64)> = Vec::new();
    let mut state: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let (kill_at, replace_at) = (ops.len() / 3, 2 * ops.len() / 3);
    for (i, op) in ops.iter().enumerate() {
        if i == kill_at {
            fs.device().kill_spindle(REBUILD_DEAD_SPINDLE);
        }
        if i == replace_at {
            fs.device()
                .replace_spindle(REBUILD_DEAD_SPINDLE, rebuild_policy())
                .expect("replace a dead spindle");
        }
        let w0 = fs.disk_writes();
        match op {
            Op::Mkdir(path) => {
                fs.mkdir(path).expect("model run mkdir");
            }
            Op::Write(path, data) => {
                upsert(fs, path, data).expect("model run write");
                state.insert(path.clone(), data.clone());
                model.history.entry(path.clone()).or_default().push(data.clone());
                model.touch.insert(path.clone(), model.barriers.len());
            }
            Op::Unlink(path) => {
                fs.unlink(path).expect("model run unlink");
                state.remove(path);
                model.deleted.insert(path.clone());
                model.touch.insert(path.clone(), model.barriers.len());
            }
            Op::Sync => {
                fs.sync().expect("model run sync");
                model.barriers.push(Barrier {
                    writes_done: fs.disk_writes(),
                    durable: state.clone(),
                });
            }
        }
        let active = fs.device().rebuild_remaining_rows().is_some();
        pump_rebuild(fs).expect("model run rebuild step");
        if active {
            let w1 = fs.disk_writes();
            if w1 > w0 {
                spans.push((w0, w1));
            }
        }
    }
    // Drain: finish the rebuild so its tail (and the crash points inside
    // it) are part of the swept write range.
    let w0 = fs.disk_writes();
    let was_active = fs.device().rebuild_remaining_rows().is_some();
    while fs.device().rebuild_remaining_rows().is_some() {
        fs.device().rebuild_step().expect("model run drain");
    }
    if was_active && fs.disk_writes() > w0 {
        spans.push((w0, fs.disk_writes()));
    }
    model.total_writes = fs.disk_writes();
    (model, spans)
}

/// Replays the rebuild script over a crash-armed volume, stopping at
/// the first error (the crash).
fn crash_run_rebuild(fs: &mut Lfs<VolumeDisk>, ops: &[Op]) {
    let (kill_at, replace_at) = (ops.len() / 3, 2 * ops.len() / 3);
    for (i, op) in ops.iter().enumerate() {
        if i == kill_at {
            fs.device().kill_spindle(REBUILD_DEAD_SPINDLE);
        }
        if i == replace_at {
            fs.device()
                .replace_spindle(REBUILD_DEAD_SPINDLE, rebuild_policy())
                .expect("replace a dead spindle");
        }
        let r = match op {
            Op::Mkdir(path) => fs.mkdir(path).map(|_| ()),
            Op::Write(path, data) => upsert(fs, path, data),
            Op::Unlink(path) => fs.unlink(path).map(|_| ()),
            Op::Sync => fs.sync(),
        };
        if r.is_err() || pump_rebuild(fs).is_err() {
            return;
        }
    }
    while fs.device().rebuild_remaining_rows().is_some() {
        if fs.device().rebuild_step().is_err() {
            return;
        }
    }
}

/// Sweeps LFS on a parity volume through a mid-life spindle death and
/// online rebuild: crash at every `stride`-th write index — healthy
/// phase, degraded phase, and *inside the rebuild's own row writes* —
/// then remount with the bay's drive swapped for a blank, re-run the
/// rebuild to completion, and hold recovery to the strict single-disk
/// standard with every read served from the rebuilt platter.
///
/// The remount models a dirty array assembly: the suspect drive is
/// swapped for a blank and rebuilt from the surviving spindles' XOR,
/// whatever instant the crash hit. No parity resync is run first — and
/// none would be sound: if the crash landed after the in-workload
/// spindle death, the dead spindle's latest contents exist *only* in
/// the parity encoding, so "resyncing" parity from the surviving media
/// would destroy exactly the bytes the rebuild must reproduce. Instead
/// the layout itself closes the write hole, by two rules. In-place
/// rows (`segment_align_metadata`): the only rows LFS ever rewrites in
/// place are the superblock and the two checkpoint regions, and each
/// owns its stripe rows outright, so a torn rewrite can stale only the
/// parity of the region being written — garbling, at worst, that
/// region's own reconstruction, which its checksum rejects in favour
/// of the sibling checkpoint. Log rows (`seal_on_flush`): every flush
/// seals its segment, so no append ever shares a parity row with a
/// previously committed chunk — a torn row holds only the torn flush's
/// own uncommitted tail, which roll-forward's per-chunk CRCs and
/// self-addresses fence. Without the second rule the sweep fails: a
/// sync that appends into the format flush's still-open segment, torn
/// at its parity write, leaves the row's XOR stale across the
/// *committed* inode-map blocks sharing the row, and the rebuild
/// faithfully reconstructs the lost spindle's garble.
///
/// Panics if no crash index landed inside a rebuild write span — the
/// sweep exists to cover exactly those states, so a workload change
/// that finishes the rebuild instantly must fail loudly, not pass
/// vacuously.
pub fn sweep_rebuild(mode: SweepMode, spec: &SweepSpec, spindles: usize) -> ModeOutcome {
    assert!(spindles >= 2, "a parity rebuild needs at least 2 spindles");
    let ops = script(spec);

    let (model, rebuild_spans) = {
        let (vol, clock) = fresh_rebuild_volume(spindles);
        let dev = VolumeDisk::new(vol.into_shared());
        let mut fs = Lfs::format(dev, rebuild_lfs_cfg(spindles), clock).expect("format");
        let format_writes = fs.disk_writes();
        dry_run_rebuild(&mut fs, &ops, format_writes)
    };

    let mut out = ModeOutcome {
        fs: SweepFs::Lfs,
        mode,
        crash_points: 0,
        recovered: 0,
        detected_unmountable: 0,
        violations: 0,
        samples: Vec::new(),
    };

    let mut mid_rebuild_points = 0u64;
    let mut idx = model.format_writes;
    while idx < model.total_writes {
        out.crash_points += 1;
        if rebuild_spans.iter().any(|&(lo, hi)| idx >= lo && idx < hi) {
            mid_rebuild_points += 1;
        }
        let (mut vol, clock) = fresh_rebuild_volume(spindles);
        vol.arm_crash_all(mode.plan(idx));
        let dev = VolumeDisk::new(vol.into_shared());
        let mut fs = Lfs::format(dev, rebuild_lfs_cfg(spindles), clock).expect("format");
        crash_run_rebuild(&mut fs, &ops);
        let images = fs.into_device().into_images();

        let (vol, clock) = remount_rebuild_volume(spindles, images);
        let dev = VolumeDisk::new(vol.into_shared());
        // Dirty assembly: the operator swaps the suspect drive for a
        // blank and the volume rebuilds it from parity while mounting
        // degraded. The dead spindle's media is stale (it stopped
        // persisting at the in-workload kill), so it is never read —
        // its logical contents are reconstructed from the survivors.
        dev.kill_spindle(REBUILD_DEAD_SPINDLE);
        dev.replace_spindle(REBUILD_DEAD_SPINDLE, rebuild_policy())
            .expect("replace a dead spindle");
        let problems = match Lfs::mount(dev, rebuild_lfs_cfg(spindles), clock) {
            Ok(mut fs) => {
                out.recovered += 1;
                let mut problems = Vec::new();
                loop {
                    match fs.device().rebuild_step() {
                        Ok(RebuildProgress::Completed) | Ok(RebuildProgress::Idle) => break,
                        Ok(RebuildProgress::Progress { .. }) => {}
                        Err(e) => {
                            problems.push(format!("post-crash rebuild failed: {e:?}"));
                            break;
                        }
                    }
                }
                problems.extend(check_recovery(&mut fs, &model, idx, true));
                problems
            }
            Err(e) => {
                out.detected_unmountable += 1;
                vec![format!("LFS mount refused after rebuild-sweep crash: {e}")]
            }
        };
        for p in problems {
            out.violations += 1;
            if out.samples.len() < 5 {
                out.samples
                    .push(format!("rebuild {}x{spindles} @{idx}: {p}", mode.name()));
            }
        }
        idx += spec.stride;
    }
    assert!(
        mid_rebuild_points > 0,
        "rebuild sweep is vacuous: no crash index landed inside a rebuild \
         write span ({} points swept)",
        out.crash_points
    );
    out
}

/// Sweeps one file system under one fault mode: crash at every
/// `stride`-th workload write index, remount, check against the model.
pub fn sweep(fs_kind: SweepFs, mode: SweepMode, spec: &SweepSpec) -> ModeOutcome {
    let ops = script(spec);

    // Clean pass: build the durability model for this file system.
    let model = match fs_kind {
        SweepFs::Lfs => {
            let (disk, clock) = fresh_disk();
            let mut fs = Lfs::format(disk, LfsConfig::small_test(), clock).expect("format");
            let format_writes = fs.disk_writes();
            dry_run(&mut fs, &ops, format_writes)
        }
        SweepFs::Ffs => {
            let (disk, clock) = fresh_disk();
            let mut fs = Ffs::format(disk, FfsConfig::small_test(), clock).expect("format");
            let format_writes = fs.disk_writes();
            dry_run(&mut fs, &ops, format_writes)
        }
    };

    let mut out = ModeOutcome {
        fs: fs_kind,
        mode,
        crash_points: 0,
        recovered: 0,
        detected_unmountable: 0,
        violations: 0,
        samples: Vec::new(),
    };

    let mut idx = model.format_writes;
    while idx < model.total_writes {
        out.crash_points += 1;
        let plan = mode.plan(idx);
        let image = match fs_kind {
            SweepFs::Lfs => {
                let (mut disk, clock) = fresh_disk();
                disk.arm_crash(plan);
                let mut fs = Lfs::format(disk, LfsConfig::small_test(), clock).expect("format");
                crash_run(&mut fs, &ops);
                fs.into_device().into_image()
            }
            SweepFs::Ffs => {
                let (mut disk, clock) = fresh_disk();
                disk.arm_crash(plan);
                let mut fs = Ffs::format(disk, FfsConfig::small_test(), clock).expect("format");
                crash_run(&mut fs, &ops);
                fs.into_device().into_image()
            }
        };

        let problems = match fs_kind {
            SweepFs::Lfs => {
                let (disk, clock) = remount_image(image);
                match Lfs::mount(disk, LfsConfig::small_test(), clock) {
                    Ok(mut fs) => {
                        out.recovered += 1;
                        check_recovery(&mut fs, &model, idx, true)
                    }
                    Err(e) => {
                        // The dual checkpoint regions mean an LFS volume
                        // must always come back.
                        out.detected_unmountable += 1;
                        vec![format!("LFS mount refused after crash: {e}")]
                    }
                }
            }
            SweepFs::Ffs => {
                let (disk, clock) = remount_image(image);
                match Ffs::mount(disk, FfsConfig::small_test(), clock) {
                    Ok(mut fs) => {
                        out.recovered += 1;
                        check_recovery(&mut fs, &model, idx, false)
                    }
                    Err(_) => {
                        // FFS failing loudly is detection, not silence.
                        out.detected_unmountable += 1;
                        Vec::new()
                    }
                }
            }
        };
        for p in problems {
            out.violations += 1;
            if out.samples.len() < 5 {
                out.samples.push(format!("{} @{idx}: {p}", mode.name()));
            }
        }
        idx += spec.stride;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_is_deterministic() {
        let a = script(&SweepSpec::smoke());
        let b = script(&SweepSpec::smoke());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            if let (Op::Write(p1, d1), Op::Write(p2, d2)) = (x, y) {
                assert_eq!(p1, p2);
                assert_eq!(d1, d2);
            }
        }
    }

    #[test]
    fn models_agree_on_barrier_count_across_file_systems() {
        let spec = SweepSpec::smoke();
        let ops = script(&spec);
        let (disk, clock) = fresh_disk();
        let mut lfs = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
        let w = lfs.disk_writes();
        let lfs_model = dry_run(&mut lfs, &ops, w);
        let (disk, clock) = fresh_disk();
        let mut ffs = Ffs::format(disk, FfsConfig::small_test(), clock).unwrap();
        let w = ffs.disk_writes();
        let ffs_model = dry_run(&mut ffs, &ops, w);
        assert_eq!(lfs_model.barriers.len(), spec.phases);
        assert_eq!(ffs_model.barriers.len(), spec.phases);
        // Both runs actually wrote something to crash into.
        assert!(lfs_model.total_writes > lfs_model.format_writes);
        assert!(ffs_model.total_writes > ffs_model.format_writes);
    }
}
