//! Closed-loop overwrite churn with the cleaner as another engine
//! client.
//!
//! The workload keeps a fixed set of live files (slots) and overwrites
//! them continuously, so dead blocks accumulate in old segments exactly
//! as in the paper's sustained-use scenario (§4.3) and the cleaner must
//! keep reclaiming space for the log to survive. The driver extends the
//! `mt_scaling` closed-loop client model with one extra dispatchable
//! actor: when the file system's cleaner runs in async mode, the loop
//! offers it a [`lfs_core::Lfs::cleaner_step`] whenever its policy asks
//! for one ([`lfs_core::Lfs::cleaner_wants_step`], fed the live engine
//! queue depth so idle-gated policies see foreground pressure), before
//! the next foreground client becomes ready. Cleaner I/O therefore
//! competes in the same request queues as the foreground clients, and
//! per-operation foreground latencies — collected exactly, for precise
//! percentiles — expose the interference.

use engine::RequestEngine;
use lfs_core::Lfs;
use sim_disk::BlockDevice;
use vfs::{FileSystem, FsResult};
use workload::payload;

/// Parameters of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Number of closed-loop foreground clients.
    pub clients: usize,
    /// Overwrites each client performs in the measured phase.
    pub ops_per_client: usize,
    /// Total live files, distributed round-robin across clients. The
    /// live set (`total_slots * file_size`) is what the cleaner must
    /// copy forward, so it sets the disk's steady-state utilization.
    pub total_slots: usize,
    /// Size of every slot file in bytes.
    pub file_size: usize,
    /// Mean think time between a client's operations (±25% jitter).
    pub think_ns: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
    /// Offer the async cleaner steps between foreground dispatches.
    /// Leave false for sync-mode and no-cleaner baselines.
    pub drive_cleaner: bool,
}

/// Outcome of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Foreground operations completed in the measured phase.
    pub total_ops: u64,
    /// Virtual time of the measured phase, in nanoseconds.
    pub elapsed_ns: u64,
    /// Exact median foreground operation latency.
    pub p50_ns: u64,
    /// Exact 99th-percentile foreground operation latency.
    pub p99_ns: u64,
    /// Worst foreground operation latency.
    pub max_ns: u64,
    /// Cleaner steps taken by the driver during the measured phase.
    pub cleaner_steps: u64,
}

impl ChurnOutcome {
    /// Foreground throughput in operations per second of virtual time.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.total_ops as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Foreground payload bandwidth in MB/s of virtual time.
    pub fn fg_mb_per_sec(&self, file_size: usize) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        (self.total_ops * file_size as u64) as f64 / 1e6 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// Idle time granted to an in-flight cleaner segment read before the
/// claiming step: roughly one policy-default read span (32 KB) at WREN
/// IV sequential bandwidth, plus slack for the occasional seek.
const CLEANER_READ_SERVICE_NS: u64 = 30_000_000;

/// Deterministic jittered think time (same generator as the engine's
/// multi-client loop): `mean` ±25%, keyed by `(seed, client, op)`.
fn jittered_think_ns(seed: u64, client: usize, op: usize, mean: u64) -> u64 {
    let mut x = seed
        ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (op as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    mean * (75 + x % 51) / 100
}

/// The slot path overwritten by `client` on its `op`-th operation.
fn slot_path(cfg: &ChurnConfig, client: usize, op: usize) -> String {
    let owned = cfg.total_slots.div_ceil(cfg.clients);
    let slot = client + (op % owned) * cfg.clients;
    format!("/d{:02}/s{:04}", client, slot.min(cfg.total_slots - 1))
}

/// Exact percentile of a latency sample (nearest-rank on the sorted
/// sample — deterministic, no histogram bucketing error).
pub fn percentile_ns(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * pct / 100.0).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs the overwrite-churn workload: a fill phase creating every slot
/// (system-attributed, unmeasured), then `clients * ops_per_client`
/// measured overwrites dispatched earliest-ready-first, with the async
/// cleaner offered steps as client id `cfg.clients` whenever its policy
/// wants one. Ends by draining any in-progress cleaner run and syncing.
pub fn run_overwrite_churn<D: BlockDevice>(
    fs: &mut Lfs<D>,
    core: &impl RequestEngine,
    cfg: &ChurnConfig,
) -> FsResult<ChurnOutcome> {
    assert!(cfg.clients > 0, "at least one client");
    assert!(cfg.total_slots >= cfg.clients, "a slot per client");
    let clock = core.clock();
    let payloads: Vec<Vec<u8>> = (0..cfg.clients)
        .map(|c| payload(cfg.seed ^ ((c as u64) << 8), cfg.file_size))
        .collect();

    // Fill: every slot exists and is live before measurement starts.
    core.set_client(None);
    core.register_clients(cfg.clients + 1);
    for c in 0..cfg.clients {
        match fs.mkdir(&format!("/d{c:02}")) {
            Ok(_) | Err(vfs::FsError::AlreadyExists) => {}
            Err(e) => return Err(e),
        }
    }
    for slot in 0..cfg.total_slots {
        let c = slot % cfg.clients;
        fs.write_file(&format!("/d{c:02}/s{slot:04}"), &payloads[c])?;
    }
    fs.sync()?;

    let agg_hist = fs.obs().hist("interference.fg_op_ns");
    let start_ns = clock.now_ns();
    let mut next_ready: Vec<u64> = (0..cfg.clients)
        .map(|c| start_ns + jittered_think_ns(cfg.seed, c, 0, cfg.think_ns))
        .collect();
    let mut done_ops: Vec<usize> = vec![0; cfg.clients];
    let mut cleaner_ready_ns: u64 = start_ns;
    let mut step_busy_ns: u64 = 0;
    let mut fg_busy_ns: u64 = 0;
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.clients * cfg.ops_per_client);
    let mut cleaner_steps = 0u64;

    let total_ops = cfg.clients * cfg.ops_per_client;
    for _ in 0..total_ops {
        let c = (0..cfg.clients)
            .filter(|&c| done_ops[c] < cfg.ops_per_client)
            .min_by_key(|&c| (next_ready[c], c))
            .expect("a client still has work");

        // The cleaner competes for dispatch: it is offered one step
        // ahead of every foreground operation (so a backlogged
        // foreground cannot starve it), plus as many steps as fit in
        // genuinely idle time before the next client is due. Its policy
        // decides whether to take each offer — idle gating sees the
        // live queue depth. A step that leaves a segment read in flight
        // sets the cleaner's own ready time: it is not offered another
        // step until virtual time has covered the read's service, so
        // the claiming step finds the data complete instead of stalling
        // dispatch synchronously — the read overlaps foreground work,
        // as a real async cleaner's would.
        if cfg.drive_cleaner {
            let mut forced = false;
            loop {
                core.pump()?;
                if !fs.cleaner_wants_step(core.queue_depth()) {
                    break;
                }
                let now = clock.now_ns();
                if now < cleaner_ready_ns {
                    // In-flight read still being serviced: spend idle
                    // time (never foreground time) waiting on it.
                    let target = cleaner_ready_ns.min(next_ready[c]);
                    if target <= now {
                        break;
                    }
                    clock.advance_to_ns(target);
                    continue;
                }
                if forced && now >= next_ready[c] {
                    break;
                }
                core.set_client(Some(cfg.clients));
                let t0 = clock.now_ns();
                fs.cleaner_step()?;
                step_busy_ns += clock.now_ns() - t0;
                cleaner_steps += 1;
                forced = true;
                if fs.cleaner_read_pending() {
                    cleaner_ready_ns = clock.now_ns() + CLEANER_READ_SERVICE_NS;
                }
            }
        }

        clock.advance_to_ns(next_ready[c]);
        core.pump()?;
        core.set_client(Some(c));
        let op = done_ops[c];
        let before_ns = clock.now_ns();
        // Overwrite in place: truncate kills every old block (they become
        // cleanable garbage), the rewrite appends fresh ones at the head.
        let path = slot_path(cfg, c, op);
        let ino = fs.lookup(&path)?;
        fs.truncate(ino, 0)?;
        let mut written = 0;
        while written < cfg.file_size {
            written += fs.write_at(ino, written as u64, &payloads[c][written..])?;
        }
        let latency_ns = clock.now_ns() - before_ns;
        fg_busy_ns += latency_ns;
        agg_hist.record(latency_ns);
        latencies.push(latency_ns);
        done_ops[c] += 1;
        next_ready[c] = clock.now_ns() + jittered_think_ns(cfg.seed, c, op + 1, cfg.think_ns);
    }

    // Close the measurement: finish the cleaner's in-progress run (so
    // its relocations are committed, not parked), then drain every
    // queued write.
    core.set_client(None);
    if cfg.drive_cleaner {
        let mut guard = 0u64;
        while fs.cleaner_run_active() {
            fs.cleaner_step()?;
            cleaner_steps += 1;
            guard += 1;
            assert!(guard < 1_000_000, "cleaner run failed to terminate");
        }
    }
    fs.sync()?;
    let elapsed_ns = clock.now_ns() - start_ns;
    if std::env::var("CHURN_DEBUG").is_ok() {
        eprintln!(
            "churn debug: elapsed {:.1}s fg_busy {:.1}s step_busy {:.1}s",
            elapsed_ns as f64 / 1e9,
            fg_busy_ns as f64 / 1e9,
            step_busy_ns as f64 / 1e9
        );
    }

    latencies.sort_unstable();
    Ok(ChurnOutcome {
        total_ops: total_ops as u64,
        elapsed_ns,
        p50_ns: percentile_ns(&latencies, 50.0),
        p99_ns: percentile_ns(&latencies, 99.0),
        max_ns: *latencies.last().unwrap_or(&0),
        cleaner_steps,
    })
}
