//! Recovery scaling — does crash recovery speed up with spindle count?
//!
//! The paper's recovery story (§4.4) is about *work*: LFS reads a
//! bounded log tail where FFS scans the whole volume. This bench asks
//! the follow-up question for arrays: once the work is fixed, does
//! recovery *time* shrink when the reads fan out across spindles?
//!
//! Method: build one crash image per spindle count — a round-robin
//! striped volume, a checkpoint taken only at format, then a workload
//! whose entire output is un-checkpointed log tail — and remount it
//! twice from identical images: once with `recovery_fanout = 1` (the
//! classic sequential scan) and once with `recovery_fanout = 0` (ask
//! the device, i.e. one read in flight per spindle). Both remounts
//! must recover the identical tree; the virtual-clock mount times give
//! the speedup. The FFS baseline gets the same treatment through its
//! `fsck_fanout` knob, fanning the whole-volume inode-table scan out
//! per cylinder group.

use std::collections::BTreeSet;
use std::sync::Arc;

use ffs_baseline::{Ffs, FfsConfig};
use lfs_core::{Lfs, LfsConfig, LfsStats};
use sim_disk::{Clock, DiskGeometry};
use vfs::{FileKind, FileSystem};
use volume::{StripedVolume, VolumeConfig, VolumeDisk};

/// Sectors per spindle (64 MB each, WREN IV mechanics).
pub const SPINDLE_SECTORS: u64 = 131_072;

/// Shape of the pre-crash workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of directories.
    pub dirs: usize,
    /// Files per directory.
    pub files_per_dir: usize,
    /// Bytes per file.
    pub file_bytes: usize,
}

impl WorkloadSpec {
    /// The full workload: ~40 MB of data, ~50 segments of
    /// un-checkpointed tail with flushed metadata included — near the
    /// ceiling of a one-spindle volume, where segments can never be
    /// reclaimed (cleaned segments stay clean-pending until a
    /// checkpoint, and this log never checkpoints after format). The
    /// tail has to dominate the summary sweep's fixed cost (one header
    /// read per segment of the *whole* volume, overlapped across arms)
    /// for the scaling assertions to have room.
    pub fn full() -> Self {
        Self {
            dirs: 10,
            files_per_dir: 16,
            file_bytes: 256 * 1024,
        }
    }

    /// The CI-sized workload: the 4-spindle speedup assertion needs the
    /// same tail-dominates-sweep regime as the full run, so only the
    /// sweep itself shrinks (spindle count x cells, not bytes).
    pub fn smoke() -> Self {
        Self::full()
    }
}

/// The LFS configuration under test: paper geometry with checkpoints
/// effectively disabled after format (so the whole workload is
/// roll-forward tail) and a small inode map (so the serial
/// checkpoint-load at mount stays a footnote next to the scan).
fn lfs_cfg(fanout: usize) -> LfsConfig {
    let mut cfg = LfsConfig::paper()
        .with_checkpoint_secs(1e9)
        .with_recovery_fanout(fanout);
    cfg.max_inodes = 4096;
    // Align the log to the stripe so each segment is exactly one chunk:
    // a tail-segment read then lands on a single spindle and the
    // prefetch window overlaps whole segments across arms (an unaligned
    // segment straddles two chunks in a ~1 MB + ~12 KB split — the
    // async facade falls back to the synchronous path and recovery
    // serializes on the big half).
    cfg.segment_align_metadata = true;
    cfg
}

fn volume_cfg(spindles: usize) -> VolumeConfig {
    VolumeConfig::rr_segment(spindles, LfsConfig::paper().segment_bytes)
}

fn fresh_volume(spindles: usize) -> (VolumeDisk, Arc<Clock>) {
    let clock = Clock::new();
    let vol = StripedVolume::new(
        DiskGeometry::wren_iv().with_sectors(SPINDLE_SECTORS),
        Arc::clone(&clock),
        volume_cfg(spindles),
    );
    (VolumeDisk::new(vol.into_shared()), clock)
}

fn remount_volume(spindles: usize, images: Vec<Vec<u8>>) -> (VolumeDisk, Arc<Clock>) {
    let clock = Clock::new();
    let vol = StripedVolume::from_images(
        DiskGeometry::wren_iv().with_sectors(SPINDLE_SECTORS),
        Arc::clone(&clock),
        volume_cfg(spindles),
        images,
    );
    (VolumeDisk::new(vol.into_shared()), clock)
}

/// Runs the scripted workload: `dirs` directories of `files_per_dir`
/// files, each `file_bytes` of position-seeded bytes, with an fsync per
/// directory. For LFS (with `fsync_checkpoints` off, the paper default)
/// fsync pushes the dirty blocks into sealed log segments *without*
/// checkpointing — `sync` would checkpoint and leave roll-forward
/// nothing to do — so the whole workload stays recoverable tail.
fn run_workload<F: FileSystem>(fs: &mut F, spec: &WorkloadSpec) {
    for d in 0..spec.dirs {
        fs.mkdir(&format!("/d{d}")).expect("mkdir");
        for f in 0..spec.files_per_dir {
            let fill = (0x21 + (d * 31 + f * 7) % 200) as u8;
            let mut data = vec![fill; spec.file_bytes];
            for (k, b) in data.iter_mut().take(32).enumerate() {
                *b = b.wrapping_add((k * 13 + d * 5 + f) as u8);
            }
            fs.write_file(&format!("/d{d}/f{f}"), &data).expect("write");
        }
        let ino = fs.lookup(&format!("/d{d}/f0")).expect("lookup");
        fs.fsync(ino).expect("fsync");
    }
}

/// Collects every regular-file path in the tree.
fn live_files<F: FileSystem>(fs: &mut F) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut stack = vec![String::from("/")];
    while let Some(dir) = stack.pop() {
        for entry in fs.readdir(&dir).expect("readdir") {
            let path = if dir == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{dir}/{}", entry.name)
            };
            match entry.kind {
                FileKind::Regular => {
                    out.insert(path);
                }
                FileKind::Directory => stack.push(path),
            }
        }
    }
    out
}

/// One measured remount of a crash image.
pub struct Recovery {
    /// Virtual nanoseconds from power-on to a mounted volume.
    pub mount_ns: u64,
    /// The recovered regular-file set (for cross-cell equivalence).
    pub files: BTreeSet<String>,
    /// LFS counters after the mount (zeroed struct for FFS cells).
    pub stats: LfsStats,
}

/// Builds the LFS crash image for `spindles`: format, workload, crash
/// (abandon all in-memory state). Returns the per-spindle images and
/// the file set at the crash.
pub fn build_lfs_crash(spindles: usize, spec: &WorkloadSpec) -> (Vec<Vec<u8>>, BTreeSet<String>) {
    let (dev, clock) = fresh_volume(spindles);
    let mut fs = Lfs::format(dev, lfs_cfg(1), clock).expect("format LFS");
    run_workload(&mut fs, spec);
    let at_crash = live_files(&mut fs);
    (fs.into_device().into_images(), at_crash)
}

/// Remounts an LFS crash image with the given recovery fan-out
/// (`1` sequential, `0` ask the device) and measures the mount.
pub fn recover_lfs(spindles: usize, images: Vec<Vec<u8>>, fanout: usize) -> Recovery {
    let (dev, clock) = remount_volume(spindles, images);
    let t0 = clock.now_ns();
    let mut fs = Lfs::mount(dev, lfs_cfg(fanout), Arc::clone(&clock)).expect("recovery mount");
    let mount_ns = clock.now_ns() - t0;
    let report = fs.fsck().expect("fsck");
    assert!(report.is_clean(), "LFS inconsistent after recovery:\n{report}");
    Recovery {
        mount_ns,
        files: live_files(&mut fs),
        stats: fs.stats(),
    }
}

/// The FFS configuration under test, striped one cylinder group per
/// chunk so groups rotate round-robin across the array.
fn ffs_cfg(fanout: usize) -> FfsConfig {
    FfsConfig::paper().with_fsck_fanout(fanout)
}

/// Builds the FFS crash image for `spindles`: format, workload, crash.
/// The delayed writes lost at the crash are FFS's loss-window story
/// (measured by `tbl_s2_recovery`); here only the mount-time scan cost
/// matters, so the workload fsyncs per directory just like the LFS run.
pub fn build_ffs_crash(spindles: usize, spec: &WorkloadSpec) -> Vec<Vec<u8>> {
    let clock = Clock::new();
    let cfg = VolumeConfig::rr_segment(spindles, ffs_cfg(1).stripe_chunk_bytes());
    let vol = StripedVolume::new(
        DiskGeometry::wren_iv().with_sectors(SPINDLE_SECTORS),
        Arc::clone(&clock),
        cfg,
    );
    let dev = VolumeDisk::new(vol.into_shared());
    let mut fs = Ffs::format(dev, ffs_cfg(1), clock).expect("format FFS");
    run_workload(&mut fs, spec);
    fs.into_device().into_images()
}

/// Remounts an FFS crash image with the given fsck fan-out and
/// measures the mount (which runs the whole-volume `fsck_scan`).
pub fn recover_ffs(spindles: usize, images: Vec<Vec<u8>>, fanout: usize) -> Recovery {
    let clock = Clock::new();
    let cfg = VolumeConfig::rr_segment(spindles, ffs_cfg(1).stripe_chunk_bytes());
    let vol = StripedVolume::from_images(
        DiskGeometry::wren_iv().with_sectors(SPINDLE_SECTORS),
        Arc::clone(&clock),
        cfg,
        images,
    );
    let dev = VolumeDisk::new(vol.into_shared());
    let t0 = clock.now_ns();
    let mut fs = Ffs::mount(dev, ffs_cfg(fanout), Arc::clone(&clock)).expect("fsck mount");
    let mount_ns = clock.now_ns() - t0;
    assert_eq!(fs.stats().fsck_scans, 1, "FFS mount must run the scan");
    let report = fs.fsck().expect("fsck");
    assert!(report.is_clean(), "FFS inconsistent after fsck:\n{report}");
    Recovery {
        mount_ns,
        files: live_files(&mut fs),
        stats: LfsStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_recover_the_same_tree() {
        // ~4 MB of tail: several 1 MB segments, so the scan really
        // spans both spindles.
        let spec = WorkloadSpec {
            dirs: 4,
            files_per_dir: 8,
            file_bytes: 128 * 1024,
        };
        let (images, at_crash) = build_lfs_crash(2, &spec);
        let seq = recover_lfs(2, images.clone(), 1);
        let par = recover_lfs(2, images, 0);
        assert_eq!(seq.files, at_crash, "sequential recovery lost files");
        assert_eq!(seq.files, par.files, "parallel recovery diverged");
        assert!(
            par.stats.recovery_partitions > 1,
            "parallel cell never partitioned ({} partitions)",
            par.stats.recovery_partitions
        );
        assert_eq!(seq.stats.recovery_partitions, 0);
    }
}
