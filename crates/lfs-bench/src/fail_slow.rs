//! Fail-slow tolerance under a limping spindle: hedged reconstruction
//! reads, health-monitor eviction, and hot-spare failover.
//!
//! One closed-loop read+overwrite workload (the degraded-rebuild
//! driver's) runs on an LFS over a 4-spindle parity volume in two
//! measured phases — `healthy`, then `failslow` after one spindle's
//! service times degrade 10x mid-run — across three arms:
//!
//! * `hedged` — hedge deadline armed, health monitor watching, one hot
//!   spare stocked. Late reads race XOR reconstruction, the monitor
//!   evicts the limping spindle, the spare swaps in and rebuilds
//!   online, all with zero operator actions.
//! * `nohedge` — same fault, no hedge, no monitor: every read through
//!   the slow spindle pays the full degraded service time. The
//!   fail-slow literature's baseline.
//! * `control` — hedge and monitor armed but no fault, for the
//!   namespace digest and for vacuity (a healthy array must never be
//!   evicted).
//!
//! The driver here sets up an arm, injects the fault between phases,
//! and audits the end state; the bench binary asserts over the
//! [`ArmResult`]s (and CI recomputes every assertion from
//! `BENCH_fail_slow.json`).

use std::sync::Arc;

use engine::{EngineConfig, RequestEngine};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, FailSlowProfile, MediaFaultPlan};
use volume::{HealthPolicy, RebuildPolicy, StripedVolume, VolumeConfig, VolumeDisk};

use crate::degraded::{drain_rebuild, fill, run_phase, PhaseOutcome, RebuildBenchConfig};
use crate::trace_replay::snapshot_digest;
use crate::MetricsReport;
use trace::replay::snapshot;

/// Spindles in the array (one of which limps).
pub const SPINDLES: usize = 4;
/// The spindle whose service times degrade mid-run.
pub const SLOW_SPINDLE: usize = 1;
/// Fail-slow service-time multiplier, in percent (1000 = 10x).
pub const MULTIPLIER_PCT: u64 = 1000;
/// Hedge deadline: when a read's predicted latency (queue wait plus
/// service) exceeds this, the volume races a reconstruction against it.
/// Sized several times the WREN IV's worst healthy chunk service
/// (~75 ms) and well under one 10x-degraded service.
pub const HEDGE_DEADLINE_NS: u64 = 150_000_000;
/// Health SLO on service-time inflation, in per-mille of the drive's
/// mechanical model: sustained 2x is a breach. Healthy media sits at
/// exactly 1000 whatever the access pattern; the 10x fault sits at
/// 10000.
pub const SLO_INFLATION_MILLIS: u64 = 2000;
/// LFS segment size; parity chunk is `SEGMENT / (SPINDLES - 1)`.
const SEGMENT_BYTES: usize = 192 * 1024;
/// Per-spindle size: 16 MB (logical 48 MB).
const SPINDLE_SECTORS: u64 = 32_768;
/// Modern-host CPU: the disks are the contended resource.
const CPU_MIPS: f64 = 1000.0;
/// Deterministic workload seed (distinct from the rebuild bench's).
const SEED: u64 = 0x51_0E;

/// Shape of one arm of the bench.
#[derive(Debug, Clone, Copy)]
pub struct ArmSpec {
    /// Label for tables, gauges, and the metrics report.
    pub name: &'static str,
    /// Inject the fail-slow fault between the phases.
    pub fault: bool,
    /// Arm the hedge deadline on every spindle's engine.
    pub hedge: bool,
    /// Arm the health monitor and stock one hot spare.
    pub monitor: bool,
}

/// The three arms, in reporting order.
pub const ARMS: [ArmSpec; 3] = [
    ArmSpec {
        name: "hedged",
        fault: true,
        hedge: true,
        monitor: true,
    },
    ArmSpec {
        name: "nohedge",
        fault: true,
        hedge: false,
        monitor: false,
    },
    ArmSpec {
        name: "control",
        fault: false,
        hedge: true,
        monitor: true,
    },
];

/// Workload parameters shared by every arm.
pub fn bench_cfg(smoke: bool) -> RebuildBenchConfig {
    RebuildBenchConfig {
        clients: if smoke { 2 } else { 4 },
        ops_per_phase: if smoke { 48 } else { 96 },
        slots_per_client: 8,
        file_size: 64 * 1024,
        think_ns: 700_000_000,
        seed: SEED,
    }
}

fn lfs_cfg() -> LfsConfig {
    // The checkpoint interval is pushed past the run length: the
    // paper's 30 s periodic checkpoint would land inside exactly one
    // measured phase (a multi-second foreground stall on whichever arm
    // it hits), and this bench isolates the *read* tail.
    LfsConfig::paper()
        .with_segment_bytes(SEGMENT_BYTES)
        .with_segment_aligned_metadata()
        .with_seal_on_flush()
        .with_checkpoint_secs(600.0)
}

/// The health policy every monitored arm runs: sustained evidence
/// before the drastic step, conservative enough that the control arm
/// never trips it. Eviction needs more breaches than one segment
/// flush contributes (a flush feeds the monitor one write piece per
/// sealed segment, ~a dozen at once), so the verdict must include
/// faulted *reads* — the window between first breach and eviction is
/// exactly the window the hedge protects, and this keeps it open long
/// enough to matter.
pub fn health_policy() -> HealthPolicy {
    HealthPolicy::default()
        .with_slo_inflation_millis(SLO_INFLATION_MILLIS)
        .with_suspect_after(3)
        .with_evict_after(16)
}

fn rig(spec: &ArmSpec) -> (VolumeDisk, Arc<Clock>) {
    let clock = Clock::new();
    let mut cfg = VolumeConfig::parity_segment(SPINDLES, SEGMENT_BYTES);
    if spec.hedge {
        cfg = cfg.with_engine(EngineConfig::default().with_hedge_deadline_ns(HEDGE_DEADLINE_NS));
    }
    let vol = StripedVolume::new(
        DiskGeometry::wren_iv().with_sectors(SPINDLE_SECTORS),
        Arc::clone(&clock),
        cfg,
    );
    let dev = VolumeDisk::new(vol.into_shared());
    if spec.monitor {
        dev.set_health_policy(health_policy());
        dev.set_hot_spares(1);
        // Small rebuild steps: the default 8-row step parks ~0.5 MB of
        // maintenance I/O on every survivor, and a foreground read that
        // lands behind one pays most of it — which would hand the tail
        // the bench just rescued from the slow spindle straight to the
        // rebuild. Two rows keeps the spare filling between ops without
        // owning the read path.
        dev.set_spare_rebuild_policy(RebuildPolicy::default().with_max_step_rows(2));
    }
    (dev, clock)
}

/// Arms the fail-slow schedule on `spindle` with onset now: every
/// request serviced from this virtual instant on pays
/// [`MULTIPLIER_PCT`] of its healthy service time.
pub fn inject_fail_slow(core: &VolumeDisk, spindle: usize, now_ns: u64) {
    core.volume()
        .borrow_mut()
        .spindle_mut(spindle)
        .disk_mut()
        .inject_media_faults(MediaFaultPlan::new(0xFA11).fail_slow(
            FailSlowProfile::at(now_ns).with_multiplier_pct(MULTIPLIER_PCT),
        ));
}

/// Sums a per-spindle engine counter across the array.
pub fn spindle_counter_total(snap: &obs::Snapshot, metric: &str) -> u64 {
    (0..SPINDLES)
        .map(|s| snap.counter(&format!("volume.spindle.{s}.engine.{metric}")))
        .sum()
}

/// One arm's phase outcomes plus its end-state audit.
pub struct ArmResult {
    /// Which arm this is.
    pub spec: ArmSpec,
    /// `(phase name, outcome)` in execution order.
    pub phases: Vec<(&'static str, PhaseOutcome)>,
    /// Rebuild steps drained after the measured phases.
    pub drain_steps: u64,
    /// Post-run scrub found no damage.
    pub scrub_clean: bool,
    /// Namespace digest after the run.
    pub digest: u64,
    /// Hedge races reported overdue across all spindles.
    pub hedges: u64,
    /// Hedge races reconstruction won.
    pub hedge_wins: u64,
    /// `volume.health.evictions` at the end of the run.
    pub evictions: u64,
    /// `volume.health.spares_used` at the end of the run.
    pub spares_used: u64,
    /// `volume.rebuild.runs_completed` at the end of the run.
    pub rebuilds_completed: u64,
    /// `volume.degraded_reads` at the end of the run.
    pub degraded_reads: u64,
}

impl ArmResult {
    /// Outcome of the named phase.
    pub fn phase(&self, name: &str) -> PhaseOutcome {
        self.phases
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, o)| o)
            .expect("phase present")
    }
}

/// Publishes a phase's statistics as gauges so CI can recompute every
/// assertion from the JSON artifact alone.
fn publish_phase(registry: &obs::Registry, arm: &str, name: &str, out: &PhaseOutcome) {
    let g = |k: &str, v: u64| registry.gauge(&format!("fail_slow.{arm}.{name}.{k}")).set(v);
    g("ops", out.ops);
    g("elapsed_ns", out.elapsed_ns);
    g("p50_ns", out.p50_ns);
    g("p99_ns", out.p99_ns);
    g("read_p50_ns", out.read_p50_ns);
    g("read_p99_ns", out.read_p99_ns);
    g("rebuild_steps", out.rebuild_steps);
}

/// Runs one arm end to end: fill, healthy phase, (optionally) inject
/// the fail-slow fault, failslow phase with idle-gated rebuild offers,
/// drain any rebuild, scrub, snapshot.
pub fn run_arm(spec: &ArmSpec, smoke: bool, metrics: &mut MetricsReport) -> ArmResult {
    let cfg = bench_cfg(smoke);
    let (dev, clock) = rig(spec);
    let pump = dev.clone();
    let mut fs = Lfs::format(dev, lfs_cfg(), clock).expect("format LFS");
    fs.set_cpu_mips(CPU_MIPS);
    let registry = fs.obs().clone();
    fill(&mut fs, &pump, &cfg).expect("fill");

    let mut phases: Vec<(&'static str, PhaseOutcome)> = Vec::new();
    let healthy = run_phase(&mut fs, &pump, &cfg, 0, false).expect("healthy phase");
    phases.push(("healthy", healthy));

    if spec.fault {
        let now = pump.clock().now_ns();
        inject_fail_slow(&pump, SLOW_SPINDLE, now);
    }
    // The eviction + hot-spare swap (if any) happens mid-phase, driven
    // purely by the monitor; the driver only offers idle-gated rebuild
    // steps, exactly as the degraded-rebuild bench does.
    let failslow = run_phase(&mut fs, &pump, &cfg, 1, spec.fault).expect("failslow phase");
    phases.push(("failslow", failslow));

    let drain_steps = drain_rebuild(&mut fs, &pump).expect("drain rebuild");
    let scrub = fs.scrub().expect("scrub");
    let snap = snapshot(&mut fs).expect("namespace snapshot");
    let digest = snapshot_digest(&snap);

    for (name, out) in &phases {
        publish_phase(&registry, spec.name, name, out);
    }
    let arm = spec.name;
    registry
        .gauge(&format!("fail_slow.{arm}.drain_steps"))
        .set(drain_steps);
    registry
        .gauge(&format!("fail_slow.{arm}.scrub_clean"))
        .set(u64::from(scrub.is_clean()));
    registry
        .gauge(&format!("fail_slow.{arm}.namespace_digest"))
        .set(digest);
    metrics.add_lfs(&format!("lfs/{arm}/s{SPINDLES}"), &fs);

    let snap = registry.snapshot();
    ArmResult {
        spec: *spec,
        phases,
        drain_steps,
        scrub_clean: scrub.is_clean(),
        digest,
        hedges: spindle_counter_total(&snap, "hedges"),
        hedge_wins: spindle_counter_total(&snap, "hedge_wins"),
        evictions: snap.counter("volume.health.evictions"),
        spares_used: snap.counter("volume.health.spares_used"),
        rebuilds_completed: snap.counter("volume.rebuild.runs_completed"),
        degraded_reads: snap.counter("volume.degraded_reads"),
    }
}
