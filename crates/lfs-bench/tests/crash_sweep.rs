//! The crash-consistency torture sweep as a test: every crash index of
//! the smoke workload, under all three fault modes, for both file
//! systems. Any silent corruption, lost durable data, or phantom file is
//! a failure.

use ffs_baseline::{Ffs, FfsConfig};
use lfs_bench::crash_sweep::{sweep, sweep_rebuild, sweep_striped, SweepFs, SweepMode, SweepSpec};
use sim_disk::{Clock, CrashPlan, DiskGeometry, SimDisk};
use std::sync::Arc;
use vfs::FileSystem;

#[test]
fn lfs_survives_every_crash_point_in_all_modes() {
    for mode in SweepMode::ALL {
        let out = sweep(SweepFs::Lfs, mode, &SweepSpec::smoke());
        assert!(out.crash_points > 10, "{}: too few crash points", mode.name());
        assert_eq!(
            out.recovered,
            out.crash_points,
            "{}: LFS must remount at every crash point",
            mode.name()
        );
        assert!(
            out.is_clean(),
            "{}: {} violations, e.g. {:?}",
            mode.name(),
            out.violations,
            out.samples
        );
    }
}

#[test]
fn ffs_never_corrupts_silently_in_any_mode() {
    for mode in SweepMode::ALL {
        let out = sweep(SweepFs::Ffs, mode, &SweepSpec::smoke());
        assert!(out.crash_points > 20, "{}: too few crash points", mode.name());
        // FFS may refuse a destroyed volume (detection), but any mount it
        // accepts must be consistent and model-equivalent.
        assert!(
            out.is_clean(),
            "{}: {} violations, e.g. {:?}",
            mode.name(),
            out.violations,
            out.samples
        );
        assert!(
            out.recovered + out.detected_unmountable == out.crash_points,
            "{}: every crash point must recover or be detected",
            mode.name()
        );
    }
}

/// Checkpoint recovery is stripe-agnostic: the same sweep over a
/// 2-spindle round-robin volume — where the globally N-th write may
/// land on either spindle — recovers at every crash point.
#[test]
fn lfs_survives_every_crash_point_on_a_striped_volume() {
    for mode in [SweepMode::Drop, SweepMode::Torn] {
        let out = sweep_striped(mode, &SweepSpec::smoke(), 2);
        assert!(out.crash_points > 10, "{}: too few crash points", mode.name());
        assert_eq!(
            out.recovered,
            out.crash_points,
            "{}: striped LFS must remount at every crash point",
            mode.name()
        );
        assert!(
            out.is_clean(),
            "{}: {} violations, e.g. {:?}",
            mode.name(),
            out.violations,
            out.samples
        );
    }
}

/// Crashes before, during, and after an online parity rebuild never
/// violate the durability model: remount replaces the dead spindle,
/// restarts the rebuild from zero, and must land on exactly the
/// model-equivalent tree (satellite: mid-rebuild crash points).
#[test]
fn lfs_survives_every_crash_point_during_a_parity_rebuild() {
    for mode in [SweepMode::Drop, SweepMode::Torn] {
        let out = sweep_rebuild(mode, &SweepSpec::smoke(), 4);
        assert!(out.crash_points > 10, "{}: too few crash points", mode.name());
        assert_eq!(
            out.recovered,
            out.crash_points,
            "{}: degraded LFS must remount at every crash point",
            mode.name()
        );
        assert!(
            out.is_clean(),
            "{}: {} violations, e.g. {:?}",
            mode.name(),
            out.violations,
            out.samples
        );
    }
}

/// Rebuild sweeps are as deterministic as the others.
#[test]
fn rebuild_sweep_outcomes_are_reproducible() {
    let a = sweep_rebuild(SweepMode::Torn, &SweepSpec::smoke(), 4);
    let b = sweep_rebuild(SweepMode::Torn, &SweepSpec::smoke(), 4);
    assert_eq!(a.crash_points, b.crash_points);
    assert_eq!(a.recovered, b.recovered);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.samples, b.samples);
}

/// Striped sweeps are as deterministic as single-disk ones.
#[test]
fn striped_sweep_outcomes_are_reproducible() {
    let a = sweep_striped(SweepMode::Torn, &SweepSpec::smoke(), 2);
    let b = sweep_striped(SweepMode::Torn, &SweepSpec::smoke(), 2);
    assert_eq!(a.crash_points, b.crash_points);
    assert_eq!(a.recovered, b.recovered);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.samples, b.samples);
}

/// Sweeps are deterministic: the same spec yields identical outcomes.
#[test]
fn sweep_outcomes_are_reproducible() {
    let a = sweep(SweepFs::Lfs, SweepMode::Torn, &SweepSpec::smoke());
    let b = sweep(SweepFs::Lfs, SweepMode::Torn, &SweepSpec::smoke());
    assert_eq!(a.crash_points, b.crash_points);
    assert_eq!(a.recovered, b.recovered);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.samples, b.samples);
}

/// FFS parity: a crash inside the lossy window is *detected* — the dirty
/// mount pays a whole-volume fsck scan (nonzero blocks scanned), never a
/// silent skip.
#[test]
fn ffs_dirty_mounts_always_pay_the_fsck_scan() {
    let geometry = DiskGeometry::tiny_test(16_384);
    let clock = Clock::new();
    let mut disk = SimDisk::new(geometry.clone(), Arc::clone(&clock));
    // Crash mid-workload: a couple hundred writes past format.
    disk.arm_crash(CrashPlan::drop_at(200));
    let mut fs = Ffs::format(disk, FfsConfig::small_test(), clock).unwrap();
    for i in 0..64 {
        if fs.write_file(&format!("/f{i}"), &vec![i as u8; 2000]).is_err() {
            break;
        }
        if i % 8 == 7 && fs.sync().is_err() {
            break;
        }
    }
    let image = fs.into_device().into_image();

    let disk = SimDisk::from_image(geometry, Clock::new(), image);
    let clock = disk.clock().clone();
    let mut fs2 = Ffs::mount(disk, FfsConfig::small_test(), clock).expect("dirty mount");
    assert_eq!(fs2.stats().fsck_scans, 1, "dirty volume must trigger a scan");
    assert!(
        fs2.stats().fsck_blocks_scanned > 0,
        "the scan must actually read the volume"
    );
    assert!(fs2.fsck().unwrap().is_clean());
}
