//! Determinism of the `mt_scaling` cache arm: two identical runs of the
//! mix and scan cells must produce byte-identical metrics JSON, and the
//! gauges CI recomputes the adaptive-vs-shared and scan-resistance
//! assertions from must be present. Everything is virtual time, so any
//! divergence is a real nondeterminism bug, not noise.

use lfs_bench::cache_mix::{run_mix_cell, run_scan_cell};
use lfs_bench::MetricsReport;
use mem_mgr::CachePolicy;

fn one_run() -> (String, Vec<u64>) {
    let mut metrics = MetricsReport::new("mt_scaling");
    let mut digests = Vec::new();
    for policy in [CachePolicy::SharedLru, CachePolicy::Adaptive] {
        let mix = run_mix_cell(policy, 16, 1 << 20, &mut metrics);
        digests.push(mix.hit_rate_millis);
        digests.push((mix.ops_per_sec * 1000.0) as u64);
        let scan = run_scan_cell(policy, true, &mut metrics);
        digests.push(scan.victim_hit_rate_millis);
    }
    (metrics.to_json(), digests)
}

#[test]
fn cache_cells_are_byte_identical_across_runs() {
    let (json_a, digests_a) = one_run();
    let (json_b, digests_b) = one_run();
    assert_eq!(json_a, json_b, "two identical cache-cell runs diverged");
    assert_eq!(digests_a, digests_b);

    // The labels and keys CI recomputes the assertions from.
    for needle in [
        "lfs/mix/shared/m1024k/c0016",
        "lfs/mix/adaptive/m1024k/c0016",
        "lfs/scan/shared/scan",
        "lfs/scan/adaptive/scan",
        "mix.ops_per_sec_milli",
        "mix.read_hit_rate_millis",
        "scan.victim_hit_rate_millis",
        "cache.ghost_hits",
        "cache.write_target_blocks",
        "cache.client.000.hits",
    ] {
        assert!(
            json_a.contains(needle),
            "metrics JSON lost '{needle}'"
        );
    }
}
