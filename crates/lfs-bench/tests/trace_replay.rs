//! Determinism of the `trace_replay` bench: two identical runs must
//! produce byte-identical metrics JSON (the `BENCH_trace_replay.json`
//! payload) and identical namespace digests. Everything is virtual
//! time, so any divergence is a real nondeterminism bug, not noise.

use lfs_bench::trace_replay::{run_cell, FsKind};
use lfs_bench::MetricsReport;
use trace::{by_name, GenSpec};

fn one_run() -> (String, Vec<u64>) {
    let trace = by_name("office", &GenSpec::small(4)).expect("office");
    let mut metrics = MetricsReport::new("trace_replay");
    let mut digests = Vec::new();
    for qos in [false, true] {
        let cell = run_cell(FsKind::Lfs, "office", &trace, 1, qos, &mut metrics);
        digests.push(cell.snapshot_hash);
    }
    (metrics.to_json(), digests)
}

#[test]
fn bench_json_is_byte_identical_across_runs() {
    let (json_a, digests_a) = one_run();
    let (json_b, digests_b) = one_run();
    assert_eq!(json_a, json_b, "two identical bench runs diverged");
    assert_eq!(digests_a, digests_b);

    // The keys CI recomputes the QoS assertions from must be present.
    for key in [
        "trace.t00.weight",
        "trace.t00.contended_bytes",
        "trace.t00.p99_ns",
        "replay.ops_per_sec_milli",
        "replay.snapshot_hash",
        "trace.dep_violations",
    ] {
        assert!(json_a.contains(key), "metrics JSON lost the '{key}' gauge");
    }
}
