//! Determinism of the recovery-scaling bench: everything runs on the
//! shared virtual clock, so two sweeps over the same spec must measure
//! identical mount times and render byte-identical metrics JSON — the
//! property CI relies on when it recomputes the speedup assertion from
//! `BENCH_recovery_scaling.json`.

use lfs_bench::recovery_scaling::{build_lfs_crash, recover_lfs, WorkloadSpec};
use lfs_bench::MetricsReport;

/// One miniature sweep (the bench's registry-population logic over a
/// CI-friendly spec), rendered to the JSON document `emit` would write.
fn sweep_json() -> String {
    let spec = WorkloadSpec {
        dirs: 2,
        files_per_dir: 4,
        file_bytes: 64 * 1024,
    };
    let registry = obs::Registry::new();
    for n in [1usize, 2] {
        let (images, at_crash) = build_lfs_crash(n, &spec);
        let seq = recover_lfs(n, images.clone(), 1);
        let par = recover_lfs(n, images, 0);
        assert_eq!(seq.files, at_crash, "s{n}: sequential recovery lost files");
        assert_eq!(seq.files, par.files, "s{n}: parallel recovery diverged");
        let prefix = format!("recovery_scaling.lfs.large.s{n}");
        registry.counter(&format!("{prefix}.seq_ns")).add(seq.mount_ns);
        registry.counter(&format!("{prefix}.par_ns")).add(par.mount_ns);
        registry
            .counter(&format!("{prefix}.partitions"))
            .add(par.stats.recovery_partitions);
        registry
            .counter(&format!("{prefix}.parallel_reads"))
            .add(par.stats.recovery_parallel_reads);
        registry
            .counter(&format!("{prefix}.prefetched_blocks"))
            .add(par.stats.recovery_prefetched_blocks);
    }
    let mut metrics = MetricsReport::new("recovery_scaling");
    metrics.add_registry("scaling", 0, &registry);
    metrics.to_json()
}

#[test]
fn recovery_scaling_metrics_json_is_byte_identical_across_runs() {
    let a = sweep_json();
    let b = sweep_json();
    assert_eq!(a, b, "two identical sweeps rendered different JSON");
    // The schema CI's recompute step reads must be present.
    for key in [
        "recovery_scaling.lfs.large.s1.seq_ns",
        "recovery_scaling.lfs.large.s2.par_ns",
        "recovery_scaling.lfs.large.s2.partitions",
    ] {
        assert!(a.contains(key), "metrics JSON lost the {key} key");
    }
}
