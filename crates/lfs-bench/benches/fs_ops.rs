//! Criterion benchmarks for whole file-system operations on both
//! implementations (host wall time per operation, small simulated disks).
//! These catch algorithmic regressions in the operation paths — e.g. a
//! directory update accidentally becoming quadratic.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use ffs_baseline::{Ffs, FfsConfig};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::FileSystem;

fn fresh_lfs() -> Lfs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    Lfs::format(disk, LfsConfig::small_test(), clock).unwrap()
}

fn fresh_ffs() -> Ffs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    Ffs::format(disk, FfsConfig::small_test(), clock).unwrap()
}

fn bench_create(c: &mut Criterion) {
    let mut group = c.benchmark_group("create_1k_file");
    let data = vec![7u8; 1024];
    group.bench_function("lfs", |b| {
        b.iter_batched_ref(
            fresh_lfs,
            |fs| {
                for i in 0..50 {
                    fs.write_file(&format!("/f{i}"), black_box(&data)).unwrap();
                }
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("ffs", |b| {
        b.iter_batched_ref(
            fresh_ffs,
            |fs| {
                for i in 0..50 {
                    fs.write_file(&format!("/f{i}"), black_box(&data)).unwrap();
                }
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_read_cached(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_cached_4k");
    let mut lfs = fresh_lfs();
    let ino = lfs.write_file("/r", &vec![1u8; 4096]).unwrap();
    let mut buf = vec![0u8; 4096];
    group.bench_function("lfs", |b| {
        b.iter(|| lfs.read_at(ino, 0, black_box(&mut buf)).unwrap());
    });
    let mut ffs = fresh_ffs();
    let ino = ffs.write_file("/r", &vec![1u8; 4096]).unwrap();
    group.bench_function("ffs", |b| {
        b.iter(|| ffs.read_at(ino, 0, black_box(&mut buf)).unwrap());
    });
    group.finish();
}

fn bench_sync(c: &mut Criterion) {
    // One dirty file, then sync: measures the segment-write path for LFS
    // and the scattered write-back for FFS.
    let mut group = c.benchmark_group("write_plus_sync_64k");
    let data = vec![9u8; 64 * 1024];
    group.bench_function("lfs", |b| {
        b.iter_batched_ref(
            fresh_lfs,
            |fs| {
                fs.write_file("/s", black_box(&data)).unwrap();
                fs.sync().unwrap();
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("ffs", |b| {
        b.iter_batched_ref(
            fresh_ffs,
            |fs| {
                fs.write_file("/s", black_box(&data)).unwrap();
                fs.sync().unwrap();
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_cleaner(c: &mut Criterion) {
    // Host cost of cleaning one segment full of dead+live 512 B blocks.
    c.bench_function("clean_one_segment", |b| {
        b.iter_batched_ref(
            || {
                let mut fs = fresh_lfs();
                for i in 0..40 {
                    fs.write_file(&format!("/v{i}"), &vec![3u8; 2048]).unwrap();
                }
                fs.sync().unwrap();
                for i in 0..40 {
                    if i % 2 == 0 {
                        fs.unlink(&format!("/v{i}")).unwrap();
                    }
                }
                fs
            },
            |fs| {
                let victims = fs
                    .usage_table()
                    .segments_in_state(lfs_core::layout::usage_block::SegState::Dirty);
                if let Some(&seg) = victims.first() {
                    black_box(fs.clean_segment(seg).unwrap());
                }
            },
            BatchSize::LargeInput,
        );
    });
}

criterion_group!(
    benches,
    bench_create,
    bench_read_cached,
    bench_sync,
    bench_cleaner
);
criterion_main!(benches);
