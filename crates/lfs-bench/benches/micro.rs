//! Criterion micro-benchmarks for the hot data structures: segment
//! packing, summary encode/decode, CRC, inode-map operations, and the
//! block cache. These measure *host* wall time (the virtual clock is
//! irrelevant here) and guard against regressions in the simulator's own
//! overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use block_cache::{BlockCache, BlockKey, WritebackPolicy};
use lfs_core::layout::summary::{BlockKind, ChunkSummary};
use lfs_core::log::ChunkBuilder;
use lfs_core::types::{BlockAddr, SegNo};
use vfs::wire::crc32;
use vfs::Ino;

fn bench_crc32(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32");
    for size in [4096usize, 1 << 20] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| crc32(black_box(&data)));
        });
    }
    group.finish();
}

fn bench_segment_packing(c: &mut Criterion) {
    // Pack a full paper-configuration segment: 254 x 4 KB blocks.
    let block = vec![0x5Au8; 4096];
    let mut group = c.benchmark_group("segment");
    group.throughput(Throughput::Bytes(254 * 4096));
    group.bench_function("pack_1mb_chunk", |b| {
        b.iter(|| {
            let mut builder = ChunkBuilder::new(SegNo(0), BlockAddr(100), 0, 256, 4096).unwrap();
            for bno in 0..254u32 {
                builder.add(BlockKind::Data { ino: Ino(7), bno }, 1, black_box(&block));
            }
            black_box(builder.finish(1, 0, 0, SegNo::NIL))
        });
    });
    group.finish();
}

fn bench_summary_codec(c: &mut Criterion) {
    let summary = ChunkSummary {
        addr: lfs_core::types::BlockAddr(256),
        seq: 9,
        partial: 0,
        timestamp_ns: 123,
        next_seg: SegNo::NIL,
        data_crc: 0xABCD,
        reserved_blocks: 2,
        entries: (0..254)
            .map(|bno| lfs_core::layout::summary::SummaryEntry {
                kind: BlockKind::Data { ino: Ino(3), bno },
                version: 4,
                crc: 0x5EED_C0DE ^ bno,
            })
            .collect(),
    };
    let encoded = summary.encode(4096);
    c.bench_function("summary_encode_254", |b| {
        b.iter(|| black_box(summary.encode(4096)));
    });
    c.bench_function("summary_decode_254", |b| {
        b.iter(|| ChunkSummary::decode(black_box(&encoded)).unwrap());
    });
}

fn bench_imap(c: &mut Criterion) {
    use lfs_core::imap::Imap;
    c.bench_function("imap_alloc_free_cycle", |b| {
        let mut imap = Imap::new(65_536, 170);
        b.iter(|| {
            let ino = imap.allocate().unwrap();
            imap.set_location(ino, BlockAddr(42), 3).unwrap();
            imap.free(ino).unwrap();
        });
    });
    c.bench_function("imap_encode_block", |b| {
        let mut imap = Imap::new(65_536, 170);
        for _ in 0..170 {
            let ino = imap.allocate().unwrap();
            imap.set_location(ino, BlockAddr(7), 0).unwrap();
        }
        b.iter(|| black_box(imap.encode_block(0, 4096)));
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_hit", |b| {
        let mut cache = BlockCache::new(4096, 1024, WritebackPolicy::paper());
        let key = BlockKey::file(Ino(1), 0);
        cache.insert_clean(key, vec![0u8; 4096].into_boxed_slice());
        b.iter(|| {
            black_box(cache.get(black_box(key)));
        });
    });
    c.bench_function("cache_insert_evict", |b| {
        let mut cache = BlockCache::new(4096, 64, WritebackPolicy::paper());
        let block = vec![0u8; 4096].into_boxed_slice();
        let mut index = 0u64;
        b.iter(|| {
            cache.insert_clean(BlockKey::file(Ino(1), index), block.clone());
            index += 1;
        });
    });
}

criterion_group!(
    benches,
    bench_crc32,
    bench_segment_packing,
    bench_summary_codec,
    bench_imap,
    bench_cache
);
criterion_main!(benches);
