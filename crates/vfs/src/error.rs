//! File-system error type.

use std::fmt;

use sim_disk::DiskError;

/// Errors returned by [`crate::FileSystem`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// A path component does not exist.
    NotFound,
    /// Creation target already exists.
    AlreadyExists,
    /// A non-final path component (or an operation target) is not a directory.
    NotADirectory,
    /// The operation requires a regular file but found a directory.
    IsADirectory,
    /// `rmdir` of a directory that still has entries.
    DirectoryNotEmpty,
    /// The device is out of usable space.
    NoSpace,
    /// All inode numbers are allocated.
    NoInodes,
    /// A file name is empty, too long, or contains `/` or NUL.
    InvalidName,
    /// A path is not absolute or is otherwise malformed.
    InvalidPath,
    /// A write or truncate would exceed the maximum mappable file size.
    FileTooLarge,
    /// The underlying device failed.
    ///
    /// This is the single mapping point from [`DiskError`] (via `From`),
    /// so per-request device failures — including
    /// [`DiskError::Unreadable`] media errors — survive unchanged to the
    /// VFS boundary instead of collapsing into a generic error.
    Io(DiskError),
    /// On-disk state failed a validity check (bad magic, checksum, ...).
    Corrupt(&'static str),
    /// A block's content failed its end-to-end checksum: the device
    /// returned bytes without error, but they are not the bytes that
    /// were written (silent corruption). Never returned silently to the
    /// caller as data.
    Corruption {
        /// What kind of block failed verification.
        what: &'static str,
        /// The failing block address (file-system block number).
        addr: u64,
    },
    /// The file system is mounted read-only (degraded after unrecoverable
    /// corruption of critical metadata); mutating operations are refused.
    ReadOnly,
    /// The operation is not supported by this file system.
    Unsupported(&'static str),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::AlreadyExists => write!(f, "file exists"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::IsADirectory => write!(f, "is a directory"),
            FsError::DirectoryNotEmpty => write!(f, "directory not empty"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoInodes => write!(f, "no free inodes"),
            FsError::InvalidName => write!(f, "invalid file name"),
            FsError::InvalidPath => write!(f, "invalid path"),
            FsError::FileTooLarge => write!(f, "file too large"),
            FsError::Io(e) => write!(f, "disk error: {e}"),
            FsError::Corrupt(what) => write!(f, "file system corrupt: {what}"),
            FsError::Corruption { what, addr } => {
                write!(f, "checksum mismatch: {what} at block {addr}")
            }
            FsError::ReadOnly => write!(f, "file system is read-only"),
            FsError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for FsError {
    fn from(e: DiskError) -> Self {
        FsError::Io(e)
    }
}

/// Result alias for file-system operations.
pub type FsResult<T> = Result<T, FsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_errors_convert() {
        let err: FsError = DiskError::Crashed.into();
        assert_eq!(err, FsError::Io(DiskError::Crashed));
        assert!(err.to_string().contains("disk error"));
        // Media errors survive the conversion typed, not collapsed.
        let err: FsError = DiskError::Unreadable { sector: 42 }.into();
        assert_eq!(err, FsError::Io(DiskError::Unreadable { sector: 42 }));
        assert!(err.to_string().contains("sector 42"));
    }

    #[test]
    fn corruption_is_typed_and_addressed() {
        let err = FsError::Corruption {
            what: "data block",
            addr: 123,
        };
        let msg = err.to_string();
        assert!(msg.contains("checksum mismatch"), "{msg}");
        assert!(msg.contains("123"), "{msg}");
        assert_eq!(FsError::ReadOnly.to_string(), "file system is read-only");
    }

    #[test]
    fn display_is_unix_flavoured() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert_eq!(FsError::NoSpace.to_string(), "no space left on device");
    }

    #[test]
    fn source_chains_to_disk_error() {
        use std::error::Error;
        let err = FsError::Io(DiskError::Crashed);
        assert!(err.source().is_some());
        assert!(FsError::NotFound.source().is_none());
    }
}
