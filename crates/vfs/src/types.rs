//! Shared file-system value types.

use std::fmt;

/// An inode number.
///
/// Inode 0 is reserved as "invalid"; the root directory is always
/// [`Ino::ROOT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ino(pub u32);

impl Ino {
    /// The invalid inode number.
    pub const INVALID: Ino = Ino(0);
    /// The root directory's inode number.
    pub const ROOT: Ino = Ino(1);

    /// Returns true if this is a usable inode number.
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino{}", self.0)
    }
}

/// The kind of object an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FileKind {
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
}

impl fmt::Display for FileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileKind::Regular => write!(f, "file"),
            FileKind::Directory => write!(f, "dir"),
        }
    }
}

/// File attributes, as returned by [`crate::FileSystem::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metadata {
    /// Inode number.
    pub ino: Ino,
    /// File or directory.
    pub kind: FileKind,
    /// Length in bytes.
    pub size: u64,
    /// Number of directory entries referring to this inode.
    pub nlink: u32,
    /// Last modification time, virtual nanoseconds.
    pub mtime_ns: u64,
    /// Last access time, virtual nanoseconds.
    ///
    /// In LFS this attribute lives in the inode map, not the inode
    /// (paper footnote 2), so that reading a file never rewrites its inode.
    pub atime_ns: u64,
}

/// One entry returned by [`crate::FileSystem::readdir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (no slashes).
    pub name: String,
    /// Target inode.
    pub ino: Ino,
    /// Target kind.
    pub kind: FileKind,
}

/// Aggregate file-system statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsStats {
    /// Total data capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes currently occupied by live data and metadata.
    pub used_bytes: u64,
    /// Number of live (allocated) inodes.
    pub live_inodes: u64,
}

impl FsStats {
    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_bytes == 0 {
            0.0
        } else {
            self.used_bytes as f64 / self.capacity_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ino_validity() {
        assert!(!Ino::INVALID.is_valid());
        assert!(Ino::ROOT.is_valid());
        assert_eq!(Ino::ROOT, Ino(1));
    }

    #[test]
    fn ino_displays() {
        assert_eq!(Ino(42).to_string(), "ino42");
    }

    #[test]
    fn utilization_handles_empty() {
        assert_eq!(FsStats::default().utilization(), 0.0);
        let stats = FsStats {
            capacity_bytes: 100,
            used_bytes: 25,
            live_inodes: 1,
        };
        assert!((stats.utilization() - 0.25).abs() < 1e-12);
    }
}
