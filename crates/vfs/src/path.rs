//! Absolute-path parsing and name validation.

use crate::error::{FsError, FsResult};

/// Maximum length of a single file name, in bytes (as in BSD).
pub const MAX_NAME_LEN: usize = 255;

/// Validates a single directory-entry name.
///
/// Names must be non-empty, at most [`MAX_NAME_LEN`] bytes, must not
/// contain `/` or NUL, and must not be the reserved `.` / `..`.
pub fn validate_name(name: &str) -> FsResult<()> {
    if name.is_empty() || name.len() > MAX_NAME_LEN {
        return Err(FsError::InvalidName);
    }
    if name == "." || name == ".." {
        return Err(FsError::InvalidName);
    }
    if name.bytes().any(|b| b == b'/' || b == 0) {
        return Err(FsError::InvalidName);
    }
    Ok(())
}

/// Splits an absolute path into validated components.
///
/// `"/"` yields an empty component list (the root itself). Repeated
/// slashes and a trailing slash are tolerated, as in UNIX.
///
/// # Examples
///
/// ```
/// use vfs::path::split;
///
/// assert_eq!(split("/a/b").unwrap(), vec!["a", "b"]);
/// assert_eq!(split("/").unwrap(), Vec::<&str>::new());
/// assert!(split("relative").is_err());
/// ```
pub fn split(path: &str) -> FsResult<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidPath);
    }
    let mut components = Vec::new();
    for part in path.split('/') {
        if part.is_empty() {
            continue;
        }
        validate_name(part)?;
        components.push(part);
    }
    Ok(components)
}

/// Splits an absolute path into `(parent components, final name)`.
///
/// Fails on `"/"` since the root has no parent entry.
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    let mut components = split(path)?;
    let name = components.pop().ok_or(FsError::InvalidPath)?;
    Ok((components, name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_handles_normal_paths() {
        assert_eq!(split("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split("//a///b/").unwrap(), vec!["a", "b"]);
        assert_eq!(split("/").unwrap(), Vec::<&str>::new());
    }

    #[test]
    fn split_rejects_relative_and_dot_components() {
        assert_eq!(split("a/b"), Err(FsError::InvalidPath));
        assert_eq!(split(""), Err(FsError::InvalidPath));
        assert_eq!(split("/a/./b"), Err(FsError::InvalidName));
        assert_eq!(split("/a/../b"), Err(FsError::InvalidName));
    }

    #[test]
    fn split_parent_returns_final_name() {
        let (parent, name) = split_parent("/x/y/z").unwrap();
        assert_eq!(parent, vec!["x", "y"]);
        assert_eq!(name, "z");
        assert_eq!(split_parent("/").unwrap_err(), FsError::InvalidPath);
    }

    #[test]
    fn validate_name_enforces_limits() {
        assert!(validate_name("ok").is_ok());
        assert_eq!(validate_name(""), Err(FsError::InvalidName));
        assert_eq!(validate_name("."), Err(FsError::InvalidName));
        assert_eq!(validate_name(".."), Err(FsError::InvalidName));
        assert_eq!(validate_name("a/b"), Err(FsError::InvalidName));
        assert_eq!(validate_name("a\0b"), Err(FsError::InvalidName));
        let long = "x".repeat(MAX_NAME_LEN + 1);
        assert_eq!(validate_name(&long), Err(FsError::InvalidName));
        let exactly = "x".repeat(MAX_NAME_LEN);
        assert!(validate_name(&exactly).is_ok());
    }
}
