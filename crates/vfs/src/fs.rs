//! The `FileSystem` trait every storage manager in this workspace exposes.

use crate::error::FsResult;
use crate::types::{DirEntry, FsStats, Ino, Metadata};

/// A mounted file system.
///
/// Paths are absolute (`/a/b/c`). Data operations take an [`Ino`] obtained
/// from [`lookup`](FileSystem::lookup) or [`create`](FileSystem::create) so
/// benchmark inner loops do not pay path resolution per request.
///
/// Durability semantics follow the paper:
///
/// * Plain writes are absorbed by the file cache and reach disk when the
///   write-back policy fires (age threshold, cache pressure) or on
///   [`sync`](FileSystem::sync) / [`fsync`](FileSystem::fsync).
/// * The FFS baseline additionally performs *synchronous* metadata writes
///   inside [`create`](FileSystem::create) and
///   [`unlink`](FileSystem::unlink), which is exactly the behaviour §3.1
///   identifies as the scaling bottleneck. LFS performs none.
pub trait FileSystem {
    /// Resolves an absolute path to an inode.
    fn lookup(&mut self, path: &str) -> FsResult<Ino>;

    /// Creates a regular file. Fails if the path already exists.
    fn create(&mut self, path: &str) -> FsResult<Ino>;

    /// Creates a directory. Fails if the path already exists.
    fn mkdir(&mut self, path: &str) -> FsResult<Ino>;

    /// Removes a regular file (one link to it).
    fn unlink(&mut self, path: &str) -> FsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&mut self, path: &str) -> FsResult<()>;

    /// Renames a file or directory. An existing regular file at `to` is
    /// replaced; an existing directory at `to` is an error.
    fn rename(&mut self, from: &str, to: &str) -> FsResult<()>;

    /// Creates a hard link to an existing regular file.
    fn link(&mut self, existing: &str, new: &str) -> FsResult<()>;

    /// Reads up to `buf.len()` bytes at `offset`. Returns bytes read
    /// (short only at end of file).
    fn read_at(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize>;

    /// Writes `data` at `offset`, extending the file if needed. Returns
    /// bytes written.
    fn write_at(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize>;

    /// Sets the file length, zero-filling on extension.
    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()>;

    /// Returns file attributes.
    fn stat(&mut self, ino: Ino) -> FsResult<Metadata>;

    /// Lists a directory.
    fn readdir(&mut self, path: &str) -> FsResult<Vec<DirEntry>>;

    /// Forces one file's dirty state to disk and waits for it.
    fn fsync(&mut self, ino: Ino) -> FsResult<()>;

    /// Forces all dirty state to disk and waits for it.
    fn sync(&mut self) -> FsResult<()>;

    /// Drops all *clean* cached blocks, so subsequent reads hit the disk.
    ///
    /// Used by the Figure 3 experiment, which flushes the file cache
    /// between its create and read phases. Implementations should sync
    /// first if they need to preserve dirty data.
    fn drop_caches(&mut self) -> FsResult<()>;

    /// Returns aggregate statistics.
    fn fs_stats(&mut self) -> FsResult<FsStats>;

    /// Tags subsequent operations as issued on behalf of a client, so
    /// implementations with per-client accounting (e.g. cache residency
    /// attribution) can charge the right tenant. `None` clears the tag.
    /// The default is a no-op for file systems without such accounting.
    fn set_active_client(&mut self, _client: Option<u32>) {}

    /// Creates a file at `path` and writes `data` to it. Convenience for
    /// tests and workloads.
    fn write_file(&mut self, path: &str, data: &[u8]) -> FsResult<Ino> {
        let ino = self.create(path)?;
        let mut written = 0;
        while written < data.len() {
            written += self.write_at(ino, written as u64, &data[written..])?;
        }
        Ok(ino)
    }

    /// Reads the full contents of the regular file at `path`.
    fn read_file(&mut self, path: &str) -> FsResult<Vec<u8>> {
        let ino = self.lookup(path)?;
        let meta = self.stat(ino)?;
        if meta.kind == crate::types::FileKind::Directory {
            return Err(crate::error::FsError::IsADirectory);
        }
        let size = meta.size as usize;
        let mut data = vec![0u8; size];
        let mut read = 0;
        while read < size {
            let n = self.read_at(ino, read as u64, &mut data[read..])?;
            if n == 0 {
                break;
            }
            read += n;
        }
        data.truncate(read);
        Ok(data)
    }
}
