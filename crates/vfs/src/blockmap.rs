//! UNIX-style inode block-mapping arithmetic.
//!
//! Both file systems in this workspace use the classic inode layout:
//! [`NDIRECT`] direct block pointers, one single-indirect pointer, and one
//! double-indirect pointer. The paper keeps this format unchanged in LFS
//! ("the format of inodes and indirect blocks is unchanged", §4.2.1), so the
//! index arithmetic is shared here.

/// Number of direct block pointers in an inode.
pub const NDIRECT: usize = 12;

/// Where a file block index lands in the inode's pointer tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockPath {
    /// Direct pointer `i` in the inode.
    Direct {
        /// Index into the inode's direct-pointer array.
        slot: usize,
    },
    /// Slot `slot` of the single-indirect block.
    Single {
        /// Index into the single-indirect pointer block.
        slot: usize,
    },
    /// Slot `inner` of the `outer`-th second-level indirect block.
    Double {
        /// Index into the double-indirect (top) block.
        outer: usize,
        /// Index into the selected second-level block.
        inner: usize,
    },
}

/// Maps a file block index to its position in the pointer tree.
///
/// `ptrs_per_block` is `block_size / 4` for 32-bit block addresses.
/// Returns `None` if the index exceeds the double-indirect range.
pub fn resolve(block_index: u64, ptrs_per_block: usize) -> Option<BlockPath> {
    let ppb = ptrs_per_block as u64;
    if block_index < NDIRECT as u64 {
        return Some(BlockPath::Direct {
            slot: block_index as usize,
        });
    }
    let after_direct = block_index - NDIRECT as u64;
    if after_direct < ppb {
        return Some(BlockPath::Single {
            slot: after_direct as usize,
        });
    }
    let after_single = after_direct - ppb;
    if after_single < ppb * ppb {
        return Some(BlockPath::Double {
            outer: (after_single / ppb) as usize,
            inner: (after_single % ppb) as usize,
        });
    }
    None
}

/// Maximum file size in bytes for the given geometry.
pub fn max_file_size(block_size: usize, ptrs_per_block: usize) -> u64 {
    let ppb = ptrs_per_block as u64;
    (NDIRECT as u64 + ppb + ppb * ppb) * block_size as u64
}

/// Number of file blocks needed to hold `size` bytes.
pub fn blocks_for_size(size: u64, block_size: usize) -> u64 {
    size.div_ceil(block_size as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PPB: usize = 1024; // 4 KB blocks, 4-byte pointers.

    #[test]
    fn direct_range() {
        assert_eq!(resolve(0, PPB), Some(BlockPath::Direct { slot: 0 }));
        assert_eq!(resolve(11, PPB), Some(BlockPath::Direct { slot: 11 }));
    }

    #[test]
    fn single_indirect_range() {
        assert_eq!(resolve(12, PPB), Some(BlockPath::Single { slot: 0 }));
        assert_eq!(
            resolve(12 + 1023, PPB),
            Some(BlockPath::Single { slot: 1023 })
        );
    }

    #[test]
    fn double_indirect_range() {
        let first_double = 12 + 1024;
        assert_eq!(
            resolve(first_double as u64, PPB),
            Some(BlockPath::Double { outer: 0, inner: 0 })
        );
        assert_eq!(
            resolve(first_double as u64 + 1024, PPB),
            Some(BlockPath::Double { outer: 1, inner: 0 })
        );
        assert_eq!(
            resolve(first_double as u64 + 1024 * 1024 - 1, PPB),
            Some(BlockPath::Double {
                outer: 1023,
                inner: 1023
            })
        );
        assert_eq!(resolve(first_double as u64 + 1024 * 1024, PPB), None);
    }

    #[test]
    fn max_file_size_covers_the_paper_workloads() {
        // 4 KB blocks: must comfortably exceed the 100 MB large-file test.
        let max = max_file_size(4096, PPB);
        assert!(max > 4 * 1024 * 1024 * 1024u64);
    }

    #[test]
    fn blocks_for_size_rounds_up() {
        assert_eq!(blocks_for_size(0, 4096), 0);
        assert_eq!(blocks_for_size(1, 4096), 1);
        assert_eq!(blocks_for_size(4096, 4096), 1);
        assert_eq!(blocks_for_size(4097, 4096), 2);
    }
}
