#![warn(missing_docs)]

//! Common file-system interface for the LFS reproduction.
//!
//! The paper compares two storage managers — the log-structured LFS and the
//! update-in-place SunOS/BSD FFS — under identical workloads. This crate
//! defines the [`FileSystem`] trait both implementations expose so every
//! benchmark, example, and test can be written once and run against either.
//!
//! It also hosts the pieces the two file systems genuinely share:
//!
//! * [`dirent`] — the directory-entry wire format (the paper notes LFS
//!   keeps "the formats of directories and inodes ... the same as in the
//!   BSD example").
//! * [`blockmap`] — direct/single-indirect/double-indirect block-index
//!   arithmetic for UNIX-style inodes.
//! * [`path`] — absolute-path parsing and validation.
//! * [`model::ModelFs`] — an in-memory reference implementation used as the
//!   oracle in property-based tests.

pub mod blockmap;
pub mod dirent;
pub mod error;
pub mod fs;
pub mod model;
pub mod path;
pub mod types;
pub mod wire;

pub use error::{FsError, FsResult};
pub use fs::FileSystem;
pub use types::{DirEntry, FileKind, FsStats, Ino, Metadata};
