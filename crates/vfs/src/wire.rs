//! Little-endian serialisation helpers and CRC-32.
//!
//! Both file systems hand-serialise their on-disk formats (fixed
//! little-endian layouts); these cursors keep the layout code short and
//! panic-free on truncated input.

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader at offset zero.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        self.take(n)
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) -> Option<()> {
        self.take(n).map(|_| ())
    }
}

/// A little-endian writer appending to a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns true if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends `n` zero bytes.
    pub fn pad(&mut self, n: usize) {
        self.buf.resize(self.buf.len() + n, 0);
    }

    /// Pads with zeros up to `len` bytes total.
    ///
    /// # Panics
    ///
    /// Panics if the writer already exceeds `len`.
    pub fn pad_to(&mut self, len: usize) {
        assert!(
            self.buf.len() <= len,
            "writer length {} exceeds target {len}",
            self.buf.len()
        );
        self.buf.resize(len, 0);
    }

    /// Borrows the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer and returns the bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 update over `data` given a running register value.
///
/// Start from `0xFFFF_FFFF` and XOR the final register with `0xFFFF_FFFF`
/// (or just call [`crc32`] for one-shot use).
pub fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    for &byte in data {
        crc = table[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC-32C (Castagnoli polynomial, reflected), table-driven.
///
/// Used for the per-block checksums in LFS segment summaries; kept
/// distinct from [`crc32`] so a block checksum can never be confused
/// with a header/payload checksum computed over the same bytes.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental CRC-32C update over `data` given a running register value.
///
/// Start from `0xFFFF_FFFF` and XOR the final register with `0xFFFF_FFFF`
/// (or just call [`crc32c`] for one-shot use).
pub fn crc32c_update(mut crc: u32, data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0x82F6_3B78 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    for &byte in data {
        crc = table[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_round_trips_writer() {
        let mut w = ByteWriter::new();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0102_0304_0506_0708);
        w.bytes(b"xyz");
        let data = w.into_vec();

        let mut r = ByteReader::new(&data);
        assert_eq!(r.u8(), Some(0xAB));
        assert_eq!(r.u16(), Some(0x1234));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(0x0102_0304_0506_0708));
        assert_eq!(r.bytes(3), Some(&b"xyz"[..]));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), None);
    }

    #[test]
    fn reader_rejects_truncated_reads() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.u32(), None);
        // A failed read consumes nothing.
        assert_eq!(r.u16(), Some(0x0201));
    }

    #[test]
    fn writer_padding() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.pad(3);
        w.pad_to(8);
        assert_eq!(w.into_vec(), vec![1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds target")]
    fn pad_to_rejects_shrinking() {
        let mut w = ByteWriter::new();
        w.u64(0);
        w.pad_to(4);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Different data, different CRC.
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn crc32c_matches_known_vectors() {
        // Standard test vector for CRC-32C (Castagnoli).
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // The two polynomials disagree on the same input.
        assert_ne!(crc32c(b"123456789"), crc32(b"123456789"));
    }

    #[test]
    fn crc32c_incremental_matches_oneshot() {
        let data = b"lazy dogs and rotten sectors";
        let oneshot = crc32c(data);
        let mut crc = 0xFFFF_FFFF;
        crc = crc32c_update(crc, &data[..9]);
        crc = crc32c_update(crc, &data[9..]);
        assert_eq!(crc ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn crc32_incremental_matches_oneshot() {
        let data = b"the quick brown fox";
        let oneshot = crc32(data);
        let mut crc = 0xFFFF_FFFF;
        crc = crc32_update(crc, &data[..7]);
        crc = crc32_update(crc, &data[7..]);
        assert_eq!(crc ^ 0xFFFF_FFFF, oneshot);
    }
}
