//! Directory-entry wire format, shared by LFS and the FFS baseline.
//!
//! The paper (Figure 2 caption) notes that "the formats of directories and
//! inodes are the same as in the BSD example". Directory content is a flat
//! byte stream of variable-length records:
//!
//! ```text
//! +--------+------+----------+--------------+
//! | ino u32| kind | nlen u16 | name (nlen B)|
//! +--------+------+----------+--------------+
//! ```
//!
//! All integers are little-endian. A directory is read and parsed in its
//! entirety (office/engineering directories are small, per §3), and
//! modifications rewrite the suffix of the stream from the edit point, so
//! an append dirties only the directory's final block.

use crate::error::{FsError, FsResult};
use crate::types::{FileKind, Ino};

/// Fixed header bytes per entry (ino + kind + name length).
pub const ENTRY_HEADER_LEN: usize = 4 + 1 + 2;

/// A parsed directory entry plus its byte offset within the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEntry {
    /// Byte offset of this entry's header in the directory stream.
    pub offset: usize,
    /// Target inode.
    pub ino: Ino,
    /// Target kind.
    pub kind: FileKind,
    /// Entry name.
    pub name: String,
}

impl RawEntry {
    /// Total encoded length of this entry in bytes.
    pub fn encoded_len(&self) -> usize {
        ENTRY_HEADER_LEN + self.name.len()
    }
}

fn kind_to_byte(kind: FileKind) -> u8 {
    match kind {
        FileKind::Regular => 1,
        FileKind::Directory => 2,
    }
}

fn kind_from_byte(byte: u8) -> FsResult<FileKind> {
    match byte {
        1 => Ok(FileKind::Regular),
        2 => Ok(FileKind::Directory),
        _ => Err(FsError::Corrupt("bad dirent kind byte")),
    }
}

/// Appends one encoded entry to `out`.
pub fn encode_entry(out: &mut Vec<u8>, ino: Ino, kind: FileKind, name: &str) {
    out.extend_from_slice(&ino.0.to_le_bytes());
    out.push(kind_to_byte(kind));
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
}

/// Parses a full directory stream into entries.
///
/// Returns [`FsError::Corrupt`] on truncated or malformed records.
pub fn parse(stream: &[u8]) -> FsResult<Vec<RawEntry>> {
    let mut entries = Vec::new();
    let mut pos = 0;
    while pos < stream.len() {
        if stream.len() - pos < ENTRY_HEADER_LEN {
            return Err(FsError::Corrupt("truncated dirent header"));
        }
        let ino = Ino(u32::from_le_bytes(stream[pos..pos + 4].try_into().unwrap()));
        let kind = kind_from_byte(stream[pos + 4])?;
        let nlen = u16::from_le_bytes(stream[pos + 5..pos + 7].try_into().unwrap()) as usize;
        let name_start = pos + ENTRY_HEADER_LEN;
        if stream.len() - name_start < nlen {
            return Err(FsError::Corrupt("truncated dirent name"));
        }
        let name = std::str::from_utf8(&stream[name_start..name_start + nlen])
            .map_err(|_| FsError::Corrupt("dirent name is not UTF-8"))?
            .to_string();
        entries.push(RawEntry {
            offset: pos,
            ino,
            kind,
            name,
        });
        pos = name_start + nlen;
    }
    Ok(entries)
}

/// Parses as many whole entries as possible, returning them along with
/// the number of stream bytes they cover. Used by repair code to salvage
/// a directory whose tail was corrupted by a crash.
pub fn parse_prefix(stream: &[u8]) -> (Vec<RawEntry>, usize) {
    let mut entries = Vec::new();
    let mut pos = 0;
    while pos < stream.len() {
        if stream.len() - pos < ENTRY_HEADER_LEN {
            break;
        }
        let ino = Ino(u32::from_le_bytes(stream[pos..pos + 4].try_into().unwrap()));
        let Ok(kind) = kind_from_byte(stream[pos + 4]) else {
            break;
        };
        let nlen = u16::from_le_bytes(stream[pos + 5..pos + 7].try_into().unwrap()) as usize;
        let name_start = pos + ENTRY_HEADER_LEN;
        if stream.len() - name_start < nlen {
            break;
        }
        let Ok(name) = std::str::from_utf8(&stream[name_start..name_start + nlen]) else {
            break;
        };
        entries.push(RawEntry {
            offset: pos,
            ino,
            kind,
            name: name.to_string(),
        });
        pos = name_start + nlen;
    }
    (entries, pos)
}

/// Finds the entry with `name`, if present.
pub fn find<'a>(entries: &'a [RawEntry], name: &str) -> Option<&'a RawEntry> {
    entries.iter().find(|e| e.name == name)
}

/// Serialises a list of entries back into a stream.
pub fn encode_all(entries: &[RawEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.iter().map(RawEntry::encoded_len).sum());
    for entry in entries {
        encode_entry(&mut out, entry.ino, entry.kind, &entry.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut stream = Vec::new();
        encode_entry(&mut stream, Ino(2), FileKind::Regular, "alpha");
        encode_entry(&mut stream, Ino(3), FileKind::Directory, "beta");
        encode_entry(&mut stream, Ino(4), FileKind::Regular, "");
        stream
    }

    #[test]
    fn round_trips() {
        let entries = parse(&sample()).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].name, "alpha");
        assert_eq!(entries[0].ino, Ino(2));
        assert_eq!(entries[1].kind, FileKind::Directory);
        assert_eq!(entries[2].name, "");
        assert_eq!(encode_all(&entries), sample());
    }

    #[test]
    fn offsets_are_cumulative() {
        let entries = parse(&sample()).unwrap();
        assert_eq!(entries[0].offset, 0);
        assert_eq!(entries[1].offset, ENTRY_HEADER_LEN + 5);
        assert_eq!(entries[2].offset, 2 * ENTRY_HEADER_LEN + 5 + 4);
    }

    #[test]
    fn find_locates_by_name() {
        let entries = parse(&sample()).unwrap();
        assert_eq!(find(&entries, "beta").unwrap().ino, Ino(3));
        assert!(find(&entries, "gamma").is_none());
    }

    #[test]
    fn rejects_truncated_streams() {
        let stream = sample();
        assert_eq!(
            parse(&stream[..3]),
            Err(FsError::Corrupt("truncated dirent header"))
        );
        assert_eq!(
            parse(&stream[..ENTRY_HEADER_LEN + 2]),
            Err(FsError::Corrupt("truncated dirent name"))
        );
    }

    #[test]
    fn rejects_bad_kind() {
        let mut stream = sample();
        stream[4] = 99;
        assert_eq!(
            parse(&stream),
            Err(FsError::Corrupt("bad dirent kind byte"))
        );
    }

    #[test]
    fn parse_prefix_salvages_valid_head() {
        let mut stream = sample();
        let full_len = stream.len();
        // Corrupt the last entry's kind byte.
        let entries = parse(&stream).unwrap();
        let last = entries.last().unwrap().offset;
        stream[last + 4] = 99;
        let (salvaged, valid) = parse_prefix(&stream);
        assert_eq!(salvaged.len(), entries.len() - 1);
        assert_eq!(valid, last);
        assert!(valid < full_len);
        // A fully valid stream salvages completely.
        let clean = sample();
        let (all, len) = parse_prefix(&clean);
        assert_eq!(all.len(), 3);
        assert_eq!(len, clean.len());
    }

    #[test]
    fn empty_stream_is_empty_directory() {
        assert!(parse(&[]).unwrap().is_empty());
    }
}
