//! An in-memory reference file system.
//!
//! `ModelFs` implements [`FileSystem`] with plain `HashMap`s and `Vec`s and
//! no caching, no disk, and no failure modes. Property-based tests run
//! random operation sequences against `ModelFs` and a real file system
//! (LFS or FFS) and require identical observable behaviour — the classic
//! model-checking oracle pattern.

use std::collections::{BTreeMap, HashMap};

use crate::error::{FsError, FsResult};
use crate::fs::FileSystem;
use crate::path::{split, split_parent, validate_name};
use crate::types::{DirEntry, FileKind, FsStats, Ino, Metadata};

#[derive(Debug, Clone)]
enum Node {
    File {
        data: Vec<u8>,
        nlink: u32,
        mtime: u64,
        atime: u64,
    },
    Dir {
        entries: BTreeMap<String, Ino>,
        mtime: u64,
        atime: u64,
    },
}

impl Node {
    fn kind(&self) -> FileKind {
        match self {
            Node::File { .. } => FileKind::Regular,
            Node::Dir { .. } => FileKind::Directory,
        }
    }
}

/// The in-memory reference implementation of [`FileSystem`].
#[derive(Debug, Clone)]
pub struct ModelFs {
    nodes: HashMap<Ino, Node>,
    next_ino: u32,
    /// A logical tick counter standing in for time.
    now: u64,
}

impl ModelFs {
    /// Creates an empty file system containing only the root directory.
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(
            Ino::ROOT,
            Node::Dir {
                entries: BTreeMap::new(),
                mtime: 0,
                atime: 0,
            },
        );
        Self {
            nodes,
            next_ino: Ino::ROOT.0 + 1,
            now: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    fn alloc_ino(&mut self) -> Ino {
        let ino = Ino(self.next_ino);
        self.next_ino += 1;
        ino
    }

    fn node(&self, ino: Ino) -> FsResult<&Node> {
        self.nodes.get(&ino).ok_or(FsError::NotFound)
    }

    fn resolve_components(&self, components: &[&str]) -> FsResult<Ino> {
        let mut current = Ino::ROOT;
        for part in components {
            match self.node(current)? {
                Node::Dir { entries, .. } => {
                    current = *entries.get(*part).ok_or(FsError::NotFound)?;
                }
                Node::File { .. } => return Err(FsError::NotADirectory),
            }
        }
        Ok(current)
    }

    /// Resolves the parent directory of `path` and returns `(parent, name)`.
    fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(Ino, &'p str)> {
        let (parent_parts, name) = split_parent(path)?;
        let parent = self.resolve_components(&parent_parts)?;
        if self.node(parent)?.kind() != FileKind::Directory {
            return Err(FsError::NotADirectory);
        }
        Ok((parent, name))
    }

    fn dir_entries_mut(&mut self, ino: Ino) -> FsResult<&mut BTreeMap<String, Ino>> {
        match self.nodes.get_mut(&ino).ok_or(FsError::NotFound)? {
            Node::Dir { entries, .. } => Ok(entries),
            Node::File { .. } => Err(FsError::NotADirectory),
        }
    }

    fn insert_entry(&mut self, parent: Ino, name: &str, child: Ino) -> FsResult<()> {
        validate_name(name)?;
        let entries = self.dir_entries_mut(parent)?;
        if entries.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        entries.insert(name.to_string(), child);
        let now = self.tick();
        if let Some(Node::Dir { mtime, .. }) = self.nodes.get_mut(&parent) {
            *mtime = now;
        }
        Ok(())
    }

    fn drop_link(&mut self, ino: Ino) {
        let remove = match self.nodes.get_mut(&ino) {
            Some(Node::File { nlink, .. }) => {
                *nlink -= 1;
                *nlink == 0
            }
            _ => true,
        };
        if remove {
            self.nodes.remove(&ino);
        }
    }
}

impl Default for ModelFs {
    fn default() -> Self {
        Self::new()
    }
}

impl FileSystem for ModelFs {
    fn lookup(&mut self, path: &str) -> FsResult<Ino> {
        let components = split(path)?;
        self.resolve_components(&components)
    }

    fn create(&mut self, path: &str) -> FsResult<Ino> {
        let (parent, name) = self.resolve_parent(path)?;
        let ino = self.alloc_ino();
        let now = self.tick();
        self.nodes.insert(
            ino,
            Node::File {
                data: Vec::new(),
                nlink: 1,
                mtime: now,
                atime: now,
            },
        );
        if let Err(e) = self.insert_entry(parent, name, ino) {
            self.nodes.remove(&ino);
            return Err(e);
        }
        Ok(ino)
    }

    fn mkdir(&mut self, path: &str) -> FsResult<Ino> {
        let (parent, name) = self.resolve_parent(path)?;
        let ino = self.alloc_ino();
        let now = self.tick();
        self.nodes.insert(
            ino,
            Node::Dir {
                entries: BTreeMap::new(),
                mtime: now,
                atime: now,
            },
        );
        if let Err(e) = self.insert_entry(parent, name, ino) {
            self.nodes.remove(&ino);
            return Err(e);
        }
        Ok(ino)
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let entries = self.dir_entries_mut(parent)?;
        let &ino = entries.get(name).ok_or(FsError::NotFound)?;
        if self.node(ino)?.kind() == FileKind::Directory {
            return Err(FsError::IsADirectory);
        }
        self.dir_entries_mut(parent)?.remove(name);
        self.drop_link(ino);
        let now = self.tick();
        if let Some(Node::Dir { mtime, .. }) = self.nodes.get_mut(&parent) {
            *mtime = now;
        }
        Ok(())
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let entries = self.dir_entries_mut(parent)?;
        let &ino = entries.get(name).ok_or(FsError::NotFound)?;
        match self.node(ino)? {
            Node::File { .. } => return Err(FsError::NotADirectory),
            Node::Dir { entries, .. } => {
                if !entries.is_empty() {
                    return Err(FsError::DirectoryNotEmpty);
                }
            }
        }
        self.dir_entries_mut(parent)?.remove(name);
        self.nodes.remove(&ino);
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        let from_parts = split(from)?;
        let to_parts = split(to)?;
        if from_parts == to_parts {
            // Renaming a path onto itself is a successful no-op, but the
            // source must exist.
            self.resolve_components(&from_parts)?;
            return Ok(());
        }
        if !from_parts.is_empty() && to_parts.starts_with(&from_parts) {
            // Would move a directory underneath itself.
            return Err(FsError::InvalidPath);
        }
        let (from_parent, from_name) = self.resolve_parent(from)?;
        let (to_parent, to_name) = self.resolve_parent(to)?;
        validate_name(to_name)?;

        let &src = self
            .dir_entries_mut(from_parent)?
            .get(from_name)
            .ok_or(FsError::NotFound)?;
        if let Some(&existing) = self.dir_entries_mut(to_parent)?.get(to_name) {
            match self.node(existing)?.kind() {
                FileKind::Directory => return Err(FsError::AlreadyExists),
                FileKind::Regular => {
                    if self.node(src)?.kind() == FileKind::Directory {
                        return Err(FsError::NotADirectory);
                    }
                    self.dir_entries_mut(to_parent)?.remove(to_name);
                    self.drop_link(existing);
                }
            }
        }
        self.dir_entries_mut(from_parent)?.remove(from_name);
        self.dir_entries_mut(to_parent)?
            .insert(to_name.to_string(), src);
        Ok(())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        let src = self.lookup(existing)?;
        if self.node(src)?.kind() == FileKind::Directory {
            return Err(FsError::IsADirectory);
        }
        let (parent, name) = self.resolve_parent(new)?;
        self.insert_entry(parent, name, src)?;
        if let Some(Node::File { nlink, .. }) = self.nodes.get_mut(&src) {
            *nlink += 1;
        }
        Ok(())
    }

    fn read_at(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        let now = self.tick();
        match self.nodes.get_mut(&ino).ok_or(FsError::NotFound)? {
            Node::Dir { .. } => Err(FsError::IsADirectory),
            Node::File { data, atime, .. } => {
                *atime = now;
                let offset = offset as usize;
                if offset >= data.len() {
                    return Ok(0);
                }
                let n = buf.len().min(data.len() - offset);
                buf[..n].copy_from_slice(&data[offset..offset + n]);
                Ok(n)
            }
        }
    }

    fn write_at(&mut self, ino: Ino, offset: u64, incoming: &[u8]) -> FsResult<usize> {
        // POSIX: a zero-length write does not extend the file — but it is
        // still rejected on a directory, like any other write.
        if incoming.is_empty() {
            return match self.node(ino)? {
                Node::Dir { .. } => Err(FsError::IsADirectory),
                Node::File { .. } => Ok(0),
            };
        }
        let now = self.tick();
        match self.nodes.get_mut(&ino).ok_or(FsError::NotFound)? {
            Node::Dir { .. } => Err(FsError::IsADirectory),
            Node::File { data, mtime, .. } => {
                let offset = offset as usize;
                let end = offset + incoming.len();
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[offset..end].copy_from_slice(incoming);
                *mtime = now;
                Ok(incoming.len())
            }
        }
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        let now = self.tick();
        match self.nodes.get_mut(&ino).ok_or(FsError::NotFound)? {
            Node::Dir { .. } => Err(FsError::IsADirectory),
            Node::File { data, mtime, .. } => {
                data.resize(size as usize, 0);
                *mtime = now;
                Ok(())
            }
        }
    }

    fn stat(&mut self, ino: Ino) -> FsResult<Metadata> {
        match self.node(ino)? {
            Node::File {
                data,
                nlink,
                mtime,
                atime,
            } => Ok(Metadata {
                ino,
                kind: FileKind::Regular,
                size: data.len() as u64,
                nlink: *nlink,
                mtime_ns: *mtime,
                atime_ns: *atime,
            }),
            Node::Dir { mtime, atime, .. } => Ok(Metadata {
                ino,
                kind: FileKind::Directory,
                size: 0,
                nlink: 1,
                mtime_ns: *mtime,
                atime_ns: *atime,
            }),
        }
    }

    fn readdir(&mut self, path: &str) -> FsResult<Vec<DirEntry>> {
        let ino = self.lookup(path)?;
        match self.node(ino)? {
            Node::File { .. } => Err(FsError::NotADirectory),
            Node::Dir { entries, .. } => entries
                .iter()
                .map(|(name, &child)| {
                    Ok(DirEntry {
                        name: name.clone(),
                        ino: child,
                        kind: self.node(child)?.kind(),
                    })
                })
                .collect(),
        }
    }

    fn fsync(&mut self, _ino: Ino) -> FsResult<()> {
        Ok(())
    }

    fn sync(&mut self) -> FsResult<()> {
        Ok(())
    }

    fn drop_caches(&mut self) -> FsResult<()> {
        Ok(())
    }

    fn fs_stats(&mut self) -> FsResult<FsStats> {
        let used: u64 = self
            .nodes
            .values()
            .map(|n| match n {
                Node::File { data, .. } => data.len() as u64,
                Node::Dir { .. } => 0,
            })
            .sum();
        Ok(FsStats {
            capacity_bytes: 0,
            used_bytes: used,
            live_inodes: self.nodes.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read_round_trip() {
        let mut fs = ModelFs::new();
        let ino = fs.create("/hello").unwrap();
        fs.write_at(ino, 0, b"world").unwrap();
        let mut buf = [0u8; 8];
        let n = fs.read_at(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"world");
        assert_eq!(fs.stat(ino).unwrap().size, 5);
    }

    #[test]
    fn create_in_missing_dir_fails() {
        let mut fs = ModelFs::new();
        assert_eq!(fs.create("/no/file"), Err(FsError::NotFound));
    }

    #[test]
    fn duplicate_create_fails() {
        let mut fs = ModelFs::new();
        fs.create("/a").unwrap();
        assert_eq!(fs.create("/a"), Err(FsError::AlreadyExists));
    }

    #[test]
    fn mkdir_and_nested_files() {
        let mut fs = ModelFs::new();
        fs.mkdir("/d").unwrap();
        fs.mkdir("/d/e").unwrap();
        fs.write_file("/d/e/f", b"data").unwrap();
        assert_eq!(fs.read_file("/d/e/f").unwrap(), b"data");
        let names: Vec<_> = fs
            .readdir("/d")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["e"]);
    }

    #[test]
    fn unlink_removes_and_frees() {
        let mut fs = ModelFs::new();
        fs.write_file("/f", b"x").unwrap();
        fs.unlink("/f").unwrap();
        assert_eq!(fs.lookup("/f"), Err(FsError::NotFound));
        assert_eq!(fs.unlink("/f"), Err(FsError::NotFound));
    }

    #[test]
    fn unlink_rejects_directories() {
        let mut fs = ModelFs::new();
        fs.mkdir("/d").unwrap();
        assert_eq!(fs.unlink("/d"), Err(FsError::IsADirectory));
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut fs = ModelFs::new();
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        assert_eq!(fs.rmdir("/d"), Err(FsError::DirectoryNotEmpty));
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
        assert_eq!(fs.lookup("/d"), Err(FsError::NotFound));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut fs = ModelFs::new();
        fs.write_file("/a", b"A").unwrap();
        fs.write_file("/b", b"B").unwrap();
        fs.rename("/a", "/b").unwrap();
        assert_eq!(fs.lookup("/a"), Err(FsError::NotFound));
        assert_eq!(fs.read_file("/b").unwrap(), b"A");
    }

    #[test]
    fn rename_into_own_subtree_fails() {
        let mut fs = ModelFs::new();
        fs.mkdir("/d").unwrap();
        assert_eq!(fs.rename("/d", "/d/sub"), Err(FsError::InvalidPath));
    }

    #[test]
    fn rename_to_self_is_noop() {
        let mut fs = ModelFs::new();
        fs.write_file("/a", b"A").unwrap();
        fs.rename("/a", "/a").unwrap();
        assert_eq!(fs.read_file("/a").unwrap(), b"A");
        assert_eq!(fs.rename("/missing", "/missing"), Err(FsError::NotFound));
    }

    #[test]
    fn hard_links_share_data_and_count() {
        let mut fs = ModelFs::new();
        let ino = fs.write_file("/a", b"shared").unwrap();
        fs.link("/a", "/b").unwrap();
        assert_eq!(fs.stat(ino).unwrap().nlink, 2);
        fs.unlink("/a").unwrap();
        assert_eq!(fs.read_file("/b").unwrap(), b"shared");
        assert_eq!(fs.stat(ino).unwrap().nlink, 1);
    }

    #[test]
    fn zero_length_write_does_not_extend() {
        // Regression: POSIX says a zero-length write never changes the
        // file size, even past EOF (found by cross-FS property testing).
        let mut fs = ModelFs::new();
        let ino = fs.create("/z").unwrap();
        assert_eq!(fs.write_at(ino, 100, b"").unwrap(), 0);
        assert_eq!(fs.stat(ino).unwrap().size, 0);
        assert!(fs.write_at(Ino(99), 0, b"").is_err());
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut fs = ModelFs::new();
        let ino = fs.create("/sparse").unwrap();
        fs.write_at(ino, 10, b"x").unwrap();
        let data = fs.read_file("/sparse").unwrap();
        assert_eq!(data.len(), 11);
        assert!(data[..10].iter().all(|&b| b == 0));
        assert_eq!(data[10], b'x');
    }

    #[test]
    fn truncate_shrinks_and_grows() {
        let mut fs = ModelFs::new();
        let ino = fs.write_file("/t", b"abcdef").unwrap();
        fs.truncate(ino, 3).unwrap();
        assert_eq!(fs.read_file("/t").unwrap(), b"abc");
        fs.truncate(ino, 5).unwrap();
        assert_eq!(fs.read_file("/t").unwrap(), b"abc\0\0");
    }

    #[test]
    fn read_past_eof_returns_zero() {
        let mut fs = ModelFs::new();
        let ino = fs.write_file("/f", b"ab").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(fs.read_at(ino, 100, &mut buf).unwrap(), 0);
    }
}
