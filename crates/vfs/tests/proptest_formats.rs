//! Property tests for the shared wire formats and helpers: round trips
//! under arbitrary inputs, and graceful rejection of arbitrary garbage.

use proptest::prelude::*;

use vfs::blockmap::{self, BlockPath, NDIRECT};
use vfs::dirent::{self, RawEntry};
use vfs::wire::{crc32, ByteReader, ByteWriter};
use vfs::{FileKind, Ino};

fn name_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9_.\\-]{1,40}")
        .unwrap()
        // "." and ".." are reserved path components.
        .prop_filter("reserved name", |name| name != "." && name != "..")
}

fn entry_strategy() -> impl Strategy<Value = (u32, bool, String)> {
    (1u32..100_000, any::<bool>(), name_strategy())
}

proptest! {
    /// Directory streams round-trip through encode/parse.
    #[test]
    fn dirent_round_trips(entries in proptest::collection::vec(entry_strategy(), 0..30)) {
        let mut stream = Vec::new();
        for (ino, is_dir, name) in &entries {
            let kind = if *is_dir { FileKind::Directory } else { FileKind::Regular };
            dirent::encode_entry(&mut stream, Ino(*ino), kind, name);
        }
        let parsed = dirent::parse(&stream).unwrap();
        prop_assert_eq!(parsed.len(), entries.len());
        for (raw, (ino, is_dir, name)) in parsed.iter().zip(&entries) {
            prop_assert_eq!(raw.ino, Ino(*ino));
            prop_assert_eq!(raw.kind == FileKind::Directory, *is_dir);
            prop_assert_eq!(&raw.name, name);
        }
        // Re-encoding the parsed entries reproduces the stream.
        prop_assert_eq!(dirent::encode_all(&parsed), stream);
    }

    /// The dirent parser never panics on arbitrary bytes — it either
    /// parses or returns a corruption error.
    #[test]
    fn dirent_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = dirent::parse(&bytes);
    }

    /// Offsets reported by the parser index the original stream.
    #[test]
    fn dirent_offsets_are_accurate(entries in proptest::collection::vec(entry_strategy(), 1..20)) {
        let mut stream = Vec::new();
        for (ino, _, name) in &entries {
            dirent::encode_entry(&mut stream, Ino(*ino), FileKind::Regular, name);
        }
        let parsed = dirent::parse(&stream).unwrap();
        for raw in &parsed {
            let mut single = Vec::new();
            dirent::encode_entry(&mut single, raw.ino, raw.kind, &raw.name);
            prop_assert_eq!(
                &stream[raw.offset..raw.offset + raw.encoded_len()],
                &single[..]
            );
        }
        let _ = parsed
            .iter()
            .map(RawEntry::encoded_len)
            .sum::<usize>();
    }

    /// Block-map resolution is a bijection over the mappable range.
    #[test]
    fn blockmap_is_bijective(bno in 0u64..2_000_000, ppb in prop_oneof![Just(128usize), Just(1024), Just(2048)]) {
        match blockmap::resolve(bno, ppb) {
            None => prop_assert!(bno >= (NDIRECT + ppb + ppb * ppb) as u64),
            Some(path) => {
                // Invert the mapping.
                let inverse = match path {
                    BlockPath::Direct { slot } => slot as u64,
                    BlockPath::Single { slot } => NDIRECT as u64 + slot as u64,
                    BlockPath::Double { outer, inner } => {
                        NDIRECT as u64 + ppb as u64 + outer as u64 * ppb as u64 + inner as u64
                    }
                };
                prop_assert_eq!(inverse, bno);
                // Slots are in range.
                match path {
                    BlockPath::Direct { slot } => prop_assert!(slot < NDIRECT),
                    BlockPath::Single { slot } => prop_assert!(slot < ppb),
                    BlockPath::Double { outer, inner } => {
                        prop_assert!(outer < ppb && inner < ppb)
                    }
                }
            }
        }
    }

    /// The byte cursors are inverse operations for any field sequence.
    #[test]
    fn wire_round_trips(
        a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        pad in 0usize..32,
    ) {
        let mut w = ByteWriter::new();
        w.u8(a);
        w.u16(b);
        w.u32(c);
        w.u64(d);
        w.bytes(&bytes);
        w.pad(pad);
        let encoded = w.into_vec();

        let mut r = ByteReader::new(&encoded);
        prop_assert_eq!(r.u8(), Some(a));
        prop_assert_eq!(r.u16(), Some(b));
        prop_assert_eq!(r.u32(), Some(c));
        prop_assert_eq!(r.u64(), Some(d));
        prop_assert_eq!(r.bytes(bytes.len()), Some(&bytes[..]));
        prop_assert_eq!(r.remaining(), pad);
    }

    /// CRC-32 detects any single-bit flip.
    #[test]
    fn crc32_detects_bit_flips(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        bit in 0usize..1024,
    ) {
        let original = crc32(&data);
        let mut flipped = data.clone();
        let index = bit % (data.len() * 8);
        flipped[index / 8] ^= 1 << (index % 8);
        prop_assert_ne!(original, crc32(&flipped));
    }

    /// Path splitting accepts what name validation accepts, rejects the rest.
    #[test]
    fn path_split_consistency(parts in proptest::collection::vec(name_strategy(), 1..6)) {
        let path = format!("/{}", parts.join("/"));
        let split = vfs::path::split(&path).unwrap();
        prop_assert_eq!(split, parts);
    }
}
