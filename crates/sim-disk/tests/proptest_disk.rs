//! Property tests for the disk simulator: data integrity under arbitrary
//! request sequences, timing-model invariants, and crash-plan semantics.

use std::sync::Arc;

use proptest::prelude::*;

use sim_disk::{BlockDevice, Clock, CrashPlan, DiskGeometry, RamDisk, SimDisk, SECTOR_SIZE};

/// A request against a small device.
#[derive(Debug, Clone)]
enum Req {
    Write {
        sector: u64,
        sectors: u8,
        fill: u8,
        sync: bool,
    },
    Read {
        sector: u64,
        sectors: u8,
    },
    Flush,
}

const DEV_SECTORS: u64 = 256;

fn req_strategy() -> impl Strategy<Value = Req> {
    prop_oneof![
        (0u64..DEV_SECTORS, 1u8..8, any::<u8>(), any::<bool>()).prop_map(
            |(sector, sectors, fill, sync)| Req::Write {
                sector,
                sectors,
                fill,
                sync
            }
        ),
        (0u64..DEV_SECTORS, 1u8..8).prop_map(|(sector, sectors)| Req::Read { sector, sectors }),
        Just(Req::Flush),
    ]
}

proptest! {
    /// SimDisk must store exactly what a trivial RAM disk stores, and its
    /// virtual clock must never move backwards.
    #[test]
    fn sim_disk_matches_ram_disk(reqs in proptest::collection::vec(req_strategy(), 1..80)) {
        let clock = Clock::new();
        let mut sim = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Arc::clone(&clock));
        let mut ram = RamDisk::new(DEV_SECTORS);
        let mut last_now = 0u64;

        for req in &reqs {
            match req {
                Req::Write { sector, sectors, fill, sync } => {
                    let len = *sectors as usize * SECTOR_SIZE;
                    if sector + *sectors as u64 > DEV_SECTORS {
                        prop_assert!(sim.write(*sector, &vec![*fill; len], *sync).is_err());
                        prop_assert!(ram.write(*sector, &vec![*fill; len], *sync).is_err());
                        continue;
                    }
                    sim.write(*sector, &vec![*fill; len], *sync).unwrap();
                    ram.write(*sector, &vec![*fill; len], *sync).unwrap();
                }
                Req::Read { sector, sectors } => {
                    let len = *sectors as usize * SECTOR_SIZE;
                    let mut a = vec![0u8; len];
                    let mut b = vec![0u8; len];
                    if sector + *sectors as u64 > DEV_SECTORS {
                        prop_assert!(sim.read(*sector, &mut a).is_err());
                        continue;
                    }
                    sim.read(*sector, &mut a).unwrap();
                    ram.read(*sector, &mut b).unwrap();
                    prop_assert_eq!(a, b, "contents diverged at sector {}", sector);
                }
                Req::Flush => {
                    sim.flush().unwrap();
                }
            }
            let now = clock.now_ns();
            prop_assert!(now >= last_now, "clock went backwards");
            last_now = now;
        }
        // Final images agree byte for byte.
        prop_assert_eq!(sim.into_image(), ram.into_image());
    }

    /// Sequential transfers are never slower per byte than random ones.
    #[test]
    fn sequential_never_slower_than_random(nblocks in 2u64..32) {
        let geometry = DiskGeometry::wren_iv();
        let buf = vec![0u8; SECTOR_SIZE * 8];

        let clock = Clock::new();
        let mut disk = SimDisk::new(geometry.clone(), Arc::clone(&clock));
        for i in 0..nblocks {
            disk.write(i * 8, &buf, true).unwrap();
        }
        let sequential_ns = clock.now_ns();

        let clock = Clock::new();
        let mut disk = SimDisk::new(geometry, Arc::clone(&clock));
        for i in 0..nblocks {
            // Alternate ends of the disk to force long seeks.
            let sector = if i % 2 == 0 { i * 8 } else { 500_000 + i * 8 };
            disk.write(sector, &buf, true).unwrap();
        }
        let random_ns = clock.now_ns();

        prop_assert!(sequential_ns <= random_ns);
    }

    /// Writes before the crash index persist; the drop-crash write and
    /// everything after do not.
    #[test]
    fn crash_plan_cuts_exactly(crash_at in 0u64..20, total in 1u64..30) {
        let mut disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Clock::new());
        disk.arm_crash(CrashPlan::drop_at(crash_at));
        let mut expected = vec![0u8; DEV_SECTORS as usize * SECTOR_SIZE];

        for i in 0..total {
            let fill = i as u8 + 1;
            let sector = i % DEV_SECTORS;
            let data = vec![fill; SECTOR_SIZE];
            let result = disk.write(sector, &data, false);
            if i < crash_at {
                prop_assert!(result.is_ok());
                let start = sector as usize * SECTOR_SIZE;
                expected[start..start + SECTOR_SIZE].copy_from_slice(&data);
            } else {
                prop_assert!(result.is_err());
            }
        }
        prop_assert_eq!(disk.into_image(), expected);
    }

    /// Torn writes persist exactly the promised sector prefix, clamped so
    /// the triggering request always loses at least its final sector.
    #[test]
    fn torn_write_keeps_prefix(keep in 0u64..6, req_sectors in 1u8..8) {
        let mut disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Clock::new());
        disk.arm_crash(CrashPlan::tear_at(0, keep));
        let len = req_sectors as usize * SECTOR_SIZE;
        let data: Vec<u8> = (0..len).map(|i| (i / SECTOR_SIZE + 1) as u8).collect();
        prop_assert!(disk.write(3, &data, false).is_err());
        let image = disk.into_image();
        let persisted = (keep as usize * SECTOR_SIZE).min(len - SECTOR_SIZE);
        let start = 3 * SECTOR_SIZE;
        prop_assert_eq!(&image[start..start + persisted], &data[..persisted]);
        prop_assert!(image[start + persisted..start + len].iter().all(|&b| b == 0));
    }

    /// Busy time accumulates exactly the per-request service times.
    #[test]
    fn stats_accounting_is_consistent(reqs in proptest::collection::vec(req_strategy(), 1..40)) {
        let clock = Clock::new();
        let mut disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Arc::clone(&clock));
        let mut writes = 0u64;
        let mut reads = 0u64;
        for req in &reqs {
            match req {
                Req::Write { sector, sectors, fill, sync } => {
                    let len = *sectors as usize * SECTOR_SIZE;
                    if sector + *sectors as u64 <= DEV_SECTORS {
                        disk.write(*sector, &vec![*fill; len], *sync).unwrap();
                        writes += 1;
                    }
                }
                Req::Read { sector, sectors } => {
                    let len = *sectors as usize * SECTOR_SIZE;
                    if sector + *sectors as u64 <= DEV_SECTORS {
                        disk.read(*sector, &mut vec![0u8; len]).unwrap();
                        reads += 1;
                    }
                }
                Req::Flush => disk.flush().unwrap(),
            }
        }
        let stats = disk.stats();
        prop_assert_eq!(stats.writes, writes);
        prop_assert_eq!(stats.reads, reads);
        prop_assert_eq!(stats.seeks + stats.sequential, writes + reads);
        // The device can never be busy longer than... wait, busy time can
        // exceed wall time only if async writes queue past the end; after
        // a flush they are equal or less.
        disk.flush().unwrap();
        prop_assert!(disk.stats().busy_ns <= clock.now_ns());
    }

    /// Overlapped queueing (submit depth > 1, arbitrary completion order)
    /// must not double-count service time: `seek + rotation + transfer ==
    /// busy` stays exact, queue wait accumulates separately, and the data
    /// round-trips.
    #[test]
    fn overlapped_queueing_keeps_busy_decomposition_exact(
        sectors in proptest::collection::vec(0u64..DEV_SECTORS - 8, 2..24),
        pick_salt in any::<u64>(),
    ) {
        let clock = Clock::new();
        let mut disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Arc::clone(&clock));

        let mut ids = Vec::new();
        for (i, &sector) in sectors.iter().enumerate() {
            let fill = i as u8 + 1;
            ids.push((disk.submit_write(sector, &vec![fill; SECTOR_SIZE]).unwrap(), sector, fill));
        }

        // Complete in an arbitrary (salt-driven) order.
        let mut service_total = 0u64;
        let mut wait_total = 0u64;
        let mut finish_max = 0u64;
        let mut salt = pick_salt;
        while !ids.is_empty() {
            salt = salt.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let (id, _, _) = ids.remove(salt as usize % ids.len());
            let done = disk.complete(id, false).unwrap();
            service_total += done.service_ns;
            wait_total += done.wait_ns;
            finish_max = finish_max.max(done.finish_ns);
            prop_assert_eq!(done.start_ns + done.service_ns, done.finish_ns);
        }

        let stats = disk.stats();
        prop_assert_eq!(stats.busy_ns, service_total);
        prop_assert_eq!(stats.seek_ns + stats.rotation_ns + stats.transfer_ns, stats.busy_ns);
        prop_assert_eq!(stats.queue_wait_ns, wait_total);
        prop_assert_eq!(disk.busy_until_ns(), finish_max);
        // All submitted at t=0 and serviced back to back: the head never
        // idles, so the horizon equals the summed service time exactly.
        prop_assert_eq!(finish_max, service_total);

        // Later completions win on overlapping sectors; spot-check data of
        // the last writer to each sector.
        let mut last_fill = std::collections::BTreeMap::new();
        for (i, &sector) in sectors.iter().enumerate() {
            last_fill.insert(sector, i as u8 + 1);
        }
        // (Overlaps between different sectors are impossible: one-sector writes.)
        let image = disk.into_image();
        for (&sector, _) in last_fill.iter() {
            let byte = image[sector as usize * SECTOR_SIZE];
            prop_assert!(byte != 0, "sector {} never persisted", sector);
        }
    }
}
