//! Per-request I/O accounting and access tracing.
//!
//! The Figure 1/2 reproduction needs to show, per file system, *how many*
//! disk accesses an operation causes and whether each is synchronous or
//! asynchronous, sequential or random. The throughput figures need bytes
//! moved and total disk busy time. Both come from here.

use std::fmt;

/// Whether a request was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read request (always synchronous).
    Read,
    /// A write request.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// One recorded disk access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    /// Read or write.
    pub kind: AccessKind,
    /// First sector of the request.
    pub sector: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// True if the caller waited for completion.
    pub sync: bool,
    /// True if the request started where the previous one ended.
    pub sequential: bool,
    /// Virtual time at which the request was issued (ns).
    pub issued_at_ns: u64,
    /// Time the device spent servicing the request (ns).
    pub service_ns: u64,
    /// Optional label attached by the file system (e.g. "inode", "dir").
    pub label: &'static str,
}

/// A bounded trace of disk accesses, off by default.
///
/// Tracing is enabled only by the microscopic experiments (Figure 1/2);
/// the throughput experiments keep it off to avoid unbounded memory use.
#[derive(Debug, Default)]
pub struct AccessTrace {
    enabled: bool,
    records: Vec<AccessRecord>,
}

impl AccessTrace {
    /// Starts recording. Existing records are kept.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops recording.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Returns true if recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record if recording is active.
    pub fn record(&mut self, record: AccessRecord) {
        if self.enabled {
            self.records.push(record);
        }
    }

    /// Returns the recorded accesses.
    pub fn records(&self) -> &[AccessRecord] {
        &self.records
    }

    /// Clears the recorded accesses (recording state is unchanged).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// Aggregate I/O statistics for a device.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IoStats {
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Number of synchronous writes (caller waited).
    pub sync_writes: u64,
    /// Number of requests that required a head seek.
    pub seeks: u64,
    /// Number of requests that continued from the previous request's end.
    pub sequential: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Total device busy time in nanoseconds.
    pub busy_ns: u64,
    /// Busy time spent moving the head (ns).
    pub seek_ns: u64,
    /// Busy time spent waiting for the platter (ns).
    pub rotation_ns: u64,
    /// Busy time spent transferring data (ns).
    pub transfer_ns: u64,
    /// Busy time charged by an armed fail-slow latency fault (ns) — the
    /// head held hostage by a sick drive, not by real work. Zero on
    /// healthy media.
    pub stall_ns: u64,
    /// Time requests spent waiting in the device queue before service (ns).
    ///
    /// Only the asynchronous submit/complete path accumulates queue wait;
    /// it is **not** part of [`IoStats::busy_ns`] — a request waiting in
    /// the queue does not occupy the head.
    pub queue_wait_ns: u64,
    /// Number of pending writes merged into an adjacent pending write.
    pub coalesced: u64,
}

impl IoStats {
    /// Total requests serviced.
    pub fn total_requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Requests that were *not* sequential continuations.
    pub fn random(&self) -> u64 {
        self.total_requests() - self.sequential
    }

    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Returns `self - earlier`, for measuring a phase of an experiment.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn delta_since(&self, earlier: &IoStats) -> IoStats {
        debug_assert!(self.total_requests() >= earlier.total_requests());
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            sync_writes: self.sync_writes - earlier.sync_writes,
            seeks: self.seeks - earlier.seeks,
            sequential: self.sequential - earlier.sequential,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            busy_ns: self.busy_ns - earlier.busy_ns,
            seek_ns: self.seek_ns - earlier.seek_ns,
            rotation_ns: self.rotation_ns - earlier.rotation_ns,
            transfer_ns: self.transfer_ns - earlier.transfer_ns,
            stall_ns: self.stall_ns - earlier.stall_ns,
            queue_wait_ns: self.queue_wait_ns - earlier.queue_wait_ns,
            coalesced: self.coalesced - earlier.coalesced,
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads / {} writes ({} sync), {} seeks, {} sequential, {} B read, {} B written, busy {:.3} s",
            self.reads,
            self.writes,
            self.sync_writes,
            self.seeks,
            self.sequential,
            self.bytes_read,
            self.bytes_written,
            self.busy_ns as f64 / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: AccessKind) -> AccessRecord {
        AccessRecord {
            kind,
            sector: 0,
            bytes: 512,
            sync: true,
            sequential: false,
            issued_at_ns: 0,
            service_ns: 10,
            label: "",
        }
    }

    #[test]
    fn trace_records_only_when_enabled() {
        let mut trace = AccessTrace::default();
        trace.record(record(AccessKind::Read));
        assert!(trace.records().is_empty());
        trace.enable();
        trace.record(record(AccessKind::Write));
        assert_eq!(trace.records().len(), 1);
        trace.disable();
        trace.record(record(AccessKind::Read));
        assert_eq!(trace.records().len(), 1);
    }

    #[test]
    fn trace_clear_keeps_recording_state() {
        let mut trace = AccessTrace::default();
        trace.enable();
        trace.record(record(AccessKind::Read));
        trace.clear();
        assert!(trace.records().is_empty());
        assert!(trace.is_enabled());
    }

    #[test]
    fn stats_delta_subtracts_fields() {
        let earlier = IoStats {
            reads: 1,
            writes: 2,
            sync_writes: 1,
            seeks: 1,
            sequential: 1,
            bytes_read: 512,
            bytes_written: 1024,
            busy_ns: 105,
            seek_ns: 50,
            rotation_ns: 30,
            transfer_ns: 20,
            stall_ns: 5,
            queue_wait_ns: 10,
            coalesced: 1,
        };
        let later = IoStats {
            reads: 3,
            writes: 5,
            sync_writes: 2,
            seeks: 4,
            sequential: 2,
            bytes_read: 2048,
            bytes_written: 4096,
            busy_ns: 1_015,
            seek_ns: 500,
            rotation_ns: 300,
            transfer_ns: 200,
            stall_ns: 15,
            queue_wait_ns: 40,
            coalesced: 3,
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.reads, 2);
        assert_eq!(delta.writes, 3);
        assert_eq!(delta.random(), 4);
        assert_eq!(delta.bytes_total(), 1536 + 3072);
        assert_eq!(
            delta.seek_ns + delta.rotation_ns + delta.transfer_ns + delta.stall_ns,
            delta.busy_ns
        );
        assert_eq!(delta.stall_ns, 10);
        assert_eq!(delta.queue_wait_ns, 30);
        assert_eq!(delta.coalesced, 2);
    }

    #[test]
    fn stats_display_mentions_key_counters() {
        let stats = IoStats {
            reads: 7,
            ..IoStats::default()
        };
        let text = format!("{stats}");
        assert!(text.contains("7 reads"));
    }
}
