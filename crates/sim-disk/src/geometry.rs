//! Mechanical disk parameters.

use crate::SECTOR_SIZE;

/// Mechanical and geometric parameters of a simulated disk.
///
/// The default matches the paper's WREN IV as closely as its published spec
/// allows: 1.3 MB/s maximum transfer bandwidth, 17.5 ms average seek, and a
/// 3600 RPM spindle (16.7 ms revolution, 8.3 ms average rotational
/// latency). The paper's file systems were built on ~300 MB of usable
/// storage.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskGeometry {
    /// Total sectors on the device.
    pub num_sectors: u64,
    /// Sustained transfer bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Average seek time in nanoseconds (cost of a random repositioning).
    pub avg_seek_ns: u64,
    /// Track-to-track (minimum non-zero) seek time in nanoseconds.
    pub min_seek_ns: u64,
    /// Full-stroke (maximum) seek time in nanoseconds.
    pub max_seek_ns: u64,
    /// Time for one platter revolution in nanoseconds.
    pub rotation_ns: u64,
}

impl DiskGeometry {
    /// The paper's WREN IV with a ~300 MB file system (§5).
    pub fn wren_iv() -> Self {
        Self {
            // 300 MB usable plus a little slack for FS metadata regions.
            num_sectors: 310 * 1024 * 1024 / SECTOR_SIZE as u64,
            bandwidth_bytes_per_sec: 1_300_000,
            avg_seek_ns: 17_500_000,
            min_seek_ns: 3_000_000,
            max_seek_ns: 35_000_000,
            rotation_ns: 16_667_000,
        }
    }

    /// A faster drive following the §3.1 technology trend: transfer
    /// bandwidth improves much faster than seek time.
    ///
    /// 50 MB/s sustained bandwidth against an 8 ms average seek and a
    /// 7200 RPM spindle — roughly a late-90s SCSI drive, i.e. the world
    /// the paper predicts, where workloads become disk-bound on *access
    /// rate* long before they are disk-bound on bandwidth. Capacity is
    /// kept at 512 MB so a simulated image stays cheap to allocate.
    pub fn modern() -> Self {
        Self {
            num_sectors: 512 * 1024 * 1024 / SECTOR_SIZE as u64,
            bandwidth_bytes_per_sec: 50_000_000,
            avg_seek_ns: 8_000_000,
            min_seek_ns: 1_000_000,
            max_seek_ns: 15_000_000,
            rotation_ns: 8_333_000,
        }
    }

    /// A small fast disk for unit tests: cheap seeks, tiny capacity.
    pub fn tiny_test(num_sectors: u64) -> Self {
        Self {
            num_sectors,
            bandwidth_bytes_per_sec: 10_000_000,
            avg_seek_ns: 1_000_000,
            min_seek_ns: 100_000,
            max_seek_ns: 2_000_000,
            rotation_ns: 1_000_000,
        }
    }

    /// Returns a copy with a different capacity.
    pub fn with_sectors(mut self, num_sectors: u64) -> Self {
        self.num_sectors = num_sectors;
        self
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_sectors * SECTOR_SIZE as u64
    }

    /// Time to transfer `bytes` at full bandwidth, in nanoseconds.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        // Round up so that a one-byte transfer is never free.
        bytes
            .saturating_mul(1_000_000_000)
            .div_ceil(self.bandwidth_bytes_per_sec)
    }

    /// Seek time for a head movement of `distance` sectors, in nanoseconds.
    ///
    /// Uses the classic `min + (max - min) * sqrt(d / D)` profile: short
    /// seeks cost near the track-to-track time, full-stroke seeks cost the
    /// maximum, and the average over uniformly random distances lands close
    /// to the published average seek time.
    pub fn seek_ns(&self, distance: u64) -> u64 {
        if distance == 0 {
            return 0;
        }
        let frac = (distance as f64 / self.num_sectors as f64).min(1.0).sqrt();
        let span = (self.max_seek_ns - self.min_seek_ns) as f64;
        self.min_seek_ns + (span * frac) as u64
    }

    /// Average rotational latency (half a revolution), in nanoseconds.
    pub fn avg_rotational_latency_ns(&self) -> u64 {
        self.rotation_ns / 2
    }
}

impl Default for DiskGeometry {
    fn default() -> Self {
        Self::wren_iv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wren_iv_matches_published_spec() {
        let g = DiskGeometry::wren_iv();
        assert!(g.capacity_bytes() >= 300 * 1024 * 1024);
        assert_eq!(g.bandwidth_bytes_per_sec, 1_300_000);
        assert_eq!(g.avg_seek_ns, 17_500_000);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let g = DiskGeometry::wren_iv();
        // 1.3 MB takes one second.
        assert_eq!(g.transfer_ns(1_300_000), 1_000_000_000);
        // Twice the data, twice the time.
        assert_eq!(g.transfer_ns(2_600_000), 2_000_000_000);
        // Tiny transfers are not free.
        assert!(g.transfer_ns(1) > 0);
    }

    #[test]
    fn seek_profile_is_monotone_and_bounded() {
        let g = DiskGeometry::wren_iv();
        assert_eq!(g.seek_ns(0), 0);
        let short = g.seek_ns(1);
        let mid = g.seek_ns(g.num_sectors / 3);
        let full = g.seek_ns(g.num_sectors);
        assert!(short >= g.min_seek_ns);
        assert!(short < mid && mid < full);
        assert!(full <= g.max_seek_ns);
        // Distances past the full stroke clamp.
        assert_eq!(g.seek_ns(g.num_sectors * 10), full);
    }

    #[test]
    fn average_random_seek_is_near_published_average() {
        let g = DiskGeometry::wren_iv();
        // Integrate seek time over uniformly random distances. For the
        // sqrt profile the mean is min + 2/3 * (max - min) ~= 24 ms given a
        // uniformly random *distance*; real uniformly random *positions*
        // produce shorter mean distances, so just sanity-check the range.
        let samples = 1_000u64;
        let mean: u64 = (0..samples)
            .map(|i| g.seek_ns(i * g.num_sectors / samples))
            .sum::<u64>()
            / samples;
        assert!(mean > g.min_seek_ns && mean < g.max_seek_ns);
    }

    #[test]
    fn modern_drive_follows_the_technology_trend() {
        // §3.1: bandwidth improves much faster than seek time. The modern
        // profile must reflect that relative to the WREN IV.
        let m = DiskGeometry::modern();
        let w = DiskGeometry::wren_iv();
        let bandwidth_gain = m.bandwidth_bytes_per_sec / w.bandwidth_bytes_per_sec;
        let seek_gain = w.avg_seek_ns / m.avg_seek_ns;
        assert!(bandwidth_gain >= 30, "bandwidth gain {bandwidth_gain}");
        assert!(seek_gain <= 3, "seek gain {seek_gain}");
        assert!(m.min_seek_ns < m.avg_seek_ns && m.avg_seek_ns < m.max_seek_ns);
    }

    #[test]
    fn rotational_latency_is_half_a_turn() {
        let g = DiskGeometry::wren_iv();
        assert_eq!(g.avg_rotational_latency_ns() * 2, g.rotation_ns);
    }
}
