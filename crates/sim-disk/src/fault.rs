//! Write-stream fault injection for crash-recovery experiments.
//!
//! §4.4 of the paper argues that LFS recovers from crashes by reading the
//! most recent checkpoint region instead of scanning the disk. To test that
//! claim we need crashes: a [`CrashPlan`] arms a simulated power failure at
//! the N-th write. The triggering write is either dropped entirely or torn
//! (a prefix of its sectors is persisted), and every subsequent request
//! fails with [`crate::DiskError::Crashed`]. The harness then re-mounts the
//! surviving image and checks consistency.

/// What happens to the write that triggers the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The triggering write is discarded completely.
    DropWrite,
    /// The triggering write persists only its first `sectors` sectors.
    TornWrite {
        /// Number of leading sectors that reach the platter.
        sectors: u64,
    },
}

/// An armed crash: power fails at a chosen point in the write stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Zero-based index of the write request that triggers the crash.
    pub crash_at_write: u64,
    /// Treatment of the triggering write.
    pub mode: FaultMode,
}

impl CrashPlan {
    /// Crash at write `n`, dropping it entirely.
    pub fn drop_at(n: u64) -> Self {
        Self {
            crash_at_write: n,
            mode: FaultMode::DropWrite,
        }
    }

    /// Crash at write `n`, persisting only `sectors` sectors of it.
    pub fn tear_at(n: u64, sectors: u64) -> Self {
        Self {
            crash_at_write: n,
            mode: FaultMode::TornWrite { sectors },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let plan = CrashPlan::drop_at(7);
        assert_eq!(plan.crash_at_write, 7);
        assert_eq!(plan.mode, FaultMode::DropWrite);

        let torn = CrashPlan::tear_at(3, 2);
        assert_eq!(torn.crash_at_write, 3);
        assert_eq!(torn.mode, FaultMode::TornWrite { sectors: 2 });
    }
}
