//! Write-stream fault injection for crash-recovery experiments.
//!
//! §4.4 of the paper argues that LFS recovers from crashes by reading the
//! most recent checkpoint region instead of scanning the disk. To test that
//! claim we need crashes: a [`CrashPlan`] arms a simulated power failure at
//! the N-th write. The triggering write is either dropped entirely or torn
//! (a prefix of its sectors is persisted), and every subsequent request
//! fails with [`crate::DiskError::Crashed`]. The harness then re-mounts the
//! surviving image and checks consistency.

/// What happens to the write that triggers the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The triggering write is discarded completely.
    DropWrite,
    /// The triggering write persists only its first `sectors` sectors.
    TornWrite {
        /// Number of leading sectors that reach the platter.
        sectors: u64,
    },
    /// The disk behaves like a drive with a volatile write cache: while
    /// this mode is armed, asynchronous writes are *held* in a bounded
    /// in-memory window instead of reaching the platter immediately. A
    /// held write only persists when it ages out of the window, when a
    /// [`crate::BlockDevice::flush`] drains the cache (the durability
    /// barrier), or when a synchronous write forces it through. When the
    /// crash fires, the triggering write, every held write, **and** every
    /// still-queued submission are lost together — modelling a power
    /// failure while an I/O scheduler holds reordered-but-unpersisted
    /// writes.
    ReorderWindow {
        /// Maximum number of asynchronous writes held volatile at once.
        window: usize,
    },
}

/// An armed crash: power fails at a chosen point in the write stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Zero-based index of the write request that triggers the crash.
    pub crash_at_write: u64,
    /// Treatment of the triggering write.
    pub mode: FaultMode,
}

impl CrashPlan {
    /// Crash at write `n`, dropping it entirely.
    pub fn drop_at(n: u64) -> Self {
        Self {
            crash_at_write: n,
            mode: FaultMode::DropWrite,
        }
    }

    /// Crash at write `n`, persisting only `sectors` sectors of it.
    pub fn tear_at(n: u64, sectors: u64) -> Self {
        Self {
            crash_at_write: n,
            mode: FaultMode::TornWrite { sectors },
        }
    }

    /// Crash at write `n` while up to `window` asynchronous writes sit in
    /// a volatile cache; the held writes are lost along with the trigger.
    pub fn reorder_at(n: u64, window: usize) -> Self {
        Self {
            crash_at_write: n,
            mode: FaultMode::ReorderWindow { window },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let plan = CrashPlan::drop_at(7);
        assert_eq!(plan.crash_at_write, 7);
        assert_eq!(plan.mode, FaultMode::DropWrite);

        let torn = CrashPlan::tear_at(3, 2);
        assert_eq!(torn.crash_at_write, 3);
        assert_eq!(torn.mode, FaultMode::TornWrite { sectors: 2 });

        let reorder = CrashPlan::reorder_at(5, 8);
        assert_eq!(reorder.crash_at_write, 5);
        assert_eq!(reorder.mode, FaultMode::ReorderWindow { window: 8 });
    }
}
