//! Write-stream and media fault injection for robustness experiments.
//!
//! §4.4 of the paper argues that LFS recovers from crashes by reading the
//! most recent checkpoint region instead of scanning the disk. To test that
//! claim we need crashes: a [`CrashPlan`] arms a simulated power failure at
//! the N-th write. The triggering write is either dropped entirely or torn
//! (a prefix of its sectors is persisted), and every subsequent request
//! fails with [`crate::DiskError::Crashed`]. The harness then re-mounts the
//! surviving image and checks consistency.
//!
//! Crashes stop the disk; real media also fails *while running*. A
//! [`MediaFaultPlan`] models the per-sector failure modes production
//! storage treats as expected events rather than catastrophes:
//!
//! * **latent sector errors** — reads of a chosen sector fail with
//!   [`crate::DiskError::Unreadable`] until the sector is rewritten;
//! * **transient errors** — reads fail K times, then succeed (recoverable
//!   with a bounded retry policy);
//! * **silent bit-rot** — reads return deterministically corrupted bytes
//!   with no error, which only end-to-end checksums can catch.
//!
//! All faults are seeded and deterministic: the same plan produces the
//! same corrupted bytes on every run.
//!
//! Beyond fail-stop, production disks *fail slow*: a drive that still
//! answers every request but 10–100× late (weak head, vibration,
//! firmware retries). A [`FailSlowProfile`] arms a whole-spindle latency
//! fault — a service-time multiplier that switches on at a virtual
//! onset time and optionally worsens over time, periodic firmware-style
//! stalls, and seeded per-request jitter. All of it is a pure function
//! of the virtual clock, so runs remain byte-identical.

use std::collections::BTreeMap;

/// Nanoseconds per virtual second, for the worsening slope.
const NS_PER_SEC: u64 = 1_000_000_000;

/// A deterministic whole-spindle *fail-slow* schedule: the disk keeps
/// answering, but every request serviced at or after `onset_ns` pays
/// extra latency. Three independent components compose:
///
/// * a **service-time multiplier** (`multiplier_pct`, percent of the
///   base service time; 100 = unchanged) that optionally **worsens**
///   by `worsen_pct_per_sec` percentage points per virtual second past
///   onset — a drive sliding downhill;
/// * **intermittent stalls**: every `stall_interval_ns` the drive
///   freezes for `stall_ns` (think internal recovery cycles); a request
///   whose service would start inside the stall window waits out the
///   remainder;
/// * **jitter**: up to `jitter_pct` percent of the base service time,
///   drawn from a splitmix64 mix of the plan seed, the service start
///   time, and the sector — deterministic but erratic.
///
/// The extra time is accounted as a distinct `stall` component next to
/// seek/rotation/transfer, so observability can tell sickness from load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailSlowProfile {
    /// Virtual time at which degradation begins.
    pub onset_ns: u64,
    /// Service-time multiplier at onset, in percent (100 = healthy).
    pub multiplier_pct: u64,
    /// Percentage points added to the multiplier per virtual second
    /// past onset (0 = stable degradation).
    pub worsen_pct_per_sec: u64,
    /// Period of the intermittent stall cycle (0 = no stalls).
    pub stall_interval_ns: u64,
    /// Length of the freeze at the start of each stall cycle.
    pub stall_ns: u64,
    /// Peak per-request jitter, in percent of base service time.
    pub jitter_pct: u64,
}

impl FailSlowProfile {
    /// A profile that degrades starting at virtual time `onset_ns` with
    /// no multiplier, stalls, or jitter armed yet — chain the builders.
    pub fn at(onset_ns: u64) -> Self {
        Self {
            onset_ns,
            multiplier_pct: 100,
            worsen_pct_per_sec: 0,
            stall_interval_ns: 0,
            stall_ns: 0,
            jitter_pct: 0,
        }
    }

    /// Sets the service-time multiplier at onset (percent, 100 = none).
    pub fn with_multiplier_pct(mut self, pct: u64) -> Self {
        self.multiplier_pct = pct.max(100);
        self
    }

    /// Sets the worsening slope (percentage points per virtual second).
    pub fn with_worsen_pct_per_sec(mut self, pct: u64) -> Self {
        self.worsen_pct_per_sec = pct;
        self
    }

    /// Arms intermittent stalls: every `interval_ns` the drive freezes
    /// for `stall_ns`.
    pub fn with_stalls(mut self, interval_ns: u64, stall_ns: u64) -> Self {
        self.stall_interval_ns = interval_ns;
        self.stall_ns = stall_ns.min(interval_ns);
        self
    }

    /// Arms seeded per-request jitter up to `pct` percent of the base
    /// service time.
    pub fn with_jitter_pct(mut self, pct: u64) -> Self {
        self.jitter_pct = pct;
        self
    }

    /// Extra nanoseconds a request pays when its service starts at
    /// `start_ns`, on top of a healthy `base_service_ns`. Deterministic:
    /// the same (seed, start, base, sector) always produces the same
    /// penalty.
    pub fn extra_ns(&self, seed: u64, start_ns: u64, base_service_ns: u64, sector: u64) -> u64 {
        if start_ns < self.onset_ns {
            return 0;
        }
        let since_onset = start_ns - self.onset_ns;
        // Multiplier, worsening over time. u128 keeps the arithmetic
        // exact even for absurd slopes or long runs.
        let mult_pct = self.multiplier_pct as u128
            + (self.worsen_pct_per_sec as u128) * (since_onset as u128) / (NS_PER_SEC as u128);
        let mut extra =
            ((base_service_ns as u128) * mult_pct.saturating_sub(100) / 100).min(u64::MAX as u128)
                as u64;
        // Intermittent stall: a request starting inside the stall window
        // waits out the remainder of the freeze.
        if self.stall_interval_ns > 0 {
            let phase = since_onset % self.stall_interval_ns;
            if phase < self.stall_ns {
                extra = extra.saturating_add(self.stall_ns - phase);
            }
        }
        // Seeded jitter.
        if self.jitter_pct > 0 {
            let mut z = seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(start_ns.wrapping_mul(0xD6E8_FEB8_6659_FD93))
                .wrapping_add(sector.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let pct = z % (self.jitter_pct + 1);
            extra = extra.saturating_add(
                ((base_service_ns as u128) * (pct as u128) / 100).min(u64::MAX as u128) as u64,
            );
        }
        extra
    }
}

/// Per-sector media failure modes injected by a [`MediaFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaFault {
    /// Every read of the sector fails with
    /// [`crate::DiskError::Unreadable`] until the sector is rewritten
    /// (a write remaps the sector and clears the fault).
    Latent,
    /// Reads fail `remaining` more times, then succeed.
    Transient {
        /// Failures left before the sector reads cleanly again.
        remaining: u32,
    },
    /// Reads succeed but return silently corrupted bytes: each byte of
    /// the sector is XORed with a non-zero mask derived from the plan
    /// seed and the sector number. Cleared by a rewrite.
    Rot,
}

/// A deterministic, seeded set of media faults.
///
/// Faults apply to the *read* path only — a write to a faulted sector
/// clears the fault (modelling sector remapping by the drive firmware,
/// which is also the natural recovery action for a log-structured store:
/// relocate the data elsewhere and let the bad region be rewritten).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MediaFaultPlan {
    seed: u64,
    faults: BTreeMap<u64, MediaFault>,
    dead: bool,
    fail_slow: Option<FailSlowProfile>,
}

impl MediaFaultPlan {
    /// Creates an empty plan with the given corruption seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: BTreeMap::new(),
            dead: false,
            fail_slow: None,
        }
    }

    /// Kills the whole spindle: every read and write fails with
    /// [`crate::DiskError::Unreadable`] until the media is replaced.
    /// This models a head crash or controller death — per-sector faults
    /// become irrelevant because nothing is reachable.
    pub fn kill(mut self) -> Self {
        self.dead = true;
        self
    }

    /// True when the whole spindle is dead (see [`MediaFaultPlan::kill`]).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Marks `sector` as a latent (permanent until rewritten) read error.
    pub fn latent(mut self, sector: u64) -> Self {
        self.faults.insert(sector, MediaFault::Latent);
        self
    }

    /// Marks `sector` as failing the next `failures` reads, then recovering.
    pub fn transient(mut self, sector: u64, failures: u32) -> Self {
        self.faults.insert(
            sector,
            MediaFault::Transient {
                remaining: failures,
            },
        );
        self
    }

    /// Marks `sector` as silently returning corrupted bytes.
    pub fn rot(mut self, sector: u64) -> Self {
        self.faults.insert(sector, MediaFault::Rot);
        self
    }

    /// Arms a whole-spindle fail-slow schedule (see [`FailSlowProfile`]).
    pub fn fail_slow(mut self, profile: FailSlowProfile) -> Self {
        self.fail_slow = Some(profile);
        self
    }

    /// The armed fail-slow schedule, if any.
    pub fn fail_slow_profile(&self) -> Option<&FailSlowProfile> {
        self.fail_slow.as_ref()
    }

    /// Extra latency a request pays under the armed fail-slow schedule
    /// when its service starts at `start_ns` (0 when none is armed).
    pub fn latency_extra_ns(&self, start_ns: u64, base_service_ns: u64, sector: u64) -> u64 {
        self.fail_slow
            .map_or(0, |p| p.extra_ns(self.seed, start_ns, base_service_ns, sector))
    }

    /// Number of sectors currently carrying a fault.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults remain armed.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault (if any) currently armed on `sector`.
    pub fn fault_at(&self, sector: u64) -> Option<MediaFault> {
        self.faults.get(&sector).copied()
    }

    /// The deterministic non-zero XOR mask bit-rot applies to every byte
    /// of `sector` (a splitmix64-style mix of seed and sector).
    pub fn rot_mask(&self, sector: u64) -> u8 {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(sector.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // A zero mask would be a no-op corruption; force at least one bit.
        (z as u8) | 0x01
    }

    /// First faulted sector in `[sector, sector + count)`, if any.
    pub fn first_fault_in(&self, sector: u64, count: u64) -> Option<u64> {
        let end = sector.saturating_add(count);
        self.faults.range(sector..end).next().map(|(&s, _)| s)
    }

    /// Consumes one read attempt over `[sector, sector + count)`.
    ///
    /// Returns the outcome for the whole request; transient faults in the
    /// range each burn one failure. Called by the disk on every read.
    pub(crate) fn on_read(&mut self, sector: u64, count: u64) -> ReadOutcome {
        let end = sector.saturating_add(count);
        let in_range: Vec<u64> = self.faults.range(sector..end).map(|(&s, _)| s).collect();
        let mut failed_at: Option<u64> = None;
        let mut transient = false;
        let mut rotted: Vec<u64> = Vec::new();
        for s in in_range {
            match self.faults.get_mut(&s) {
                Some(MediaFault::Latent) => failed_at = failed_at.or(Some(s)),
                Some(MediaFault::Transient { remaining }) if *remaining > 0 => {
                    *remaining -= 1;
                    transient = true;
                    failed_at = failed_at.or(Some(s));
                    if *remaining == 0 {
                        self.faults.remove(&s);
                    }
                }
                Some(MediaFault::Rot) => rotted.push(s),
                _ => {}
            }
        }
        match failed_at {
            Some(s) => ReadOutcome::Unreadable {
                sector: s,
                transient,
            },
            None => ReadOutcome::Ok { rotted },
        }
    }

    /// Clears faults overwritten by `[sector, sector + count)`; returns
    /// how many were cleared (the write remaps those sectors).
    pub(crate) fn on_write(&mut self, sector: u64, count: u64) -> u64 {
        let end = sector.saturating_add(count);
        let hit: Vec<u64> = self.faults.range(sector..end).map(|(&s, _)| s).collect();
        for s in &hit {
            self.faults.remove(s);
        }
        hit.len() as u64
    }
}

/// Outcome of applying a [`MediaFaultPlan`] to one read request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ReadOutcome {
    /// The read succeeds; `rotted` sectors must be returned corrupted.
    Ok {
        /// Sectors whose bytes are XORed with the rot mask.
        rotted: Vec<u64>,
    },
    /// The read fails with [`crate::DiskError::Unreadable`].
    Unreadable {
        /// First faulted sector in the request.
        sector: u64,
        /// True when a transient fault (not a latent one) caused it.
        transient: bool,
    },
}

/// What happens to the write that triggers the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The triggering write is discarded completely.
    DropWrite,
    /// The triggering write persists only its first `sectors` sectors.
    TornWrite {
        /// Number of leading sectors that reach the platter.
        sectors: u64,
    },
    /// The disk behaves like a drive with a volatile write cache: while
    /// this mode is armed, asynchronous writes are *held* in a bounded
    /// in-memory window instead of reaching the platter immediately. A
    /// held write only persists when it ages out of the window, when a
    /// [`crate::BlockDevice::flush`] drains the cache (the durability
    /// barrier), or when a synchronous write forces it through. When the
    /// crash fires, the triggering write, every held write, **and** every
    /// still-queued submission are lost together — modelling a power
    /// failure while an I/O scheduler holds reordered-but-unpersisted
    /// writes.
    ReorderWindow {
        /// Maximum number of asynchronous writes held volatile at once.
        window: usize,
    },
}

/// An armed crash: power fails at a chosen point in the write stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Zero-based index of the write request that triggers the crash.
    pub crash_at_write: u64,
    /// Treatment of the triggering write.
    pub mode: FaultMode,
}

impl CrashPlan {
    /// Crash at write `n`, dropping it entirely.
    pub fn drop_at(n: u64) -> Self {
        Self {
            crash_at_write: n,
            mode: FaultMode::DropWrite,
        }
    }

    /// Crash at write `n`, persisting only `sectors` sectors of it.
    pub fn tear_at(n: u64, sectors: u64) -> Self {
        Self {
            crash_at_write: n,
            mode: FaultMode::TornWrite { sectors },
        }
    }

    /// Crash at write `n` while up to `window` asynchronous writes sit in
    /// a volatile cache; the held writes are lost along with the trigger.
    pub fn reorder_at(n: u64, window: usize) -> Self {
        Self {
            crash_at_write: n,
            mode: FaultMode::ReorderWindow { window },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let plan = CrashPlan::drop_at(7);
        assert_eq!(plan.crash_at_write, 7);
        assert_eq!(plan.mode, FaultMode::DropWrite);

        let torn = CrashPlan::tear_at(3, 2);
        assert_eq!(torn.crash_at_write, 3);
        assert_eq!(torn.mode, FaultMode::TornWrite { sectors: 2 });

        let reorder = CrashPlan::reorder_at(5, 8);
        assert_eq!(reorder.crash_at_write, 5);
        assert_eq!(reorder.mode, FaultMode::ReorderWindow { window: 8 });
    }

    #[test]
    fn latent_fault_fails_every_read_until_rewritten() {
        let mut plan = MediaFaultPlan::new(1).latent(10);
        for _ in 0..3 {
            assert_eq!(
                plan.on_read(8, 4),
                ReadOutcome::Unreadable {
                    sector: 10,
                    transient: false
                }
            );
        }
        // Reads not covering the sector are clean.
        assert_eq!(plan.on_read(0, 8), ReadOutcome::Ok { rotted: vec![] });
        // A rewrite remaps the sector and clears the fault.
        assert_eq!(plan.on_write(10, 1), 1);
        assert_eq!(plan.on_read(8, 4), ReadOutcome::Ok { rotted: vec![] });
        assert!(plan.is_empty());
    }

    #[test]
    fn transient_fault_recovers_after_k_failures() {
        let mut plan = MediaFaultPlan::new(2).transient(5, 2);
        for _ in 0..2 {
            assert_eq!(
                plan.on_read(5, 1),
                ReadOutcome::Unreadable {
                    sector: 5,
                    transient: true
                }
            );
        }
        assert_eq!(plan.on_read(5, 1), ReadOutcome::Ok { rotted: vec![] });
        assert!(plan.is_empty());
    }

    #[test]
    fn rot_reports_sectors_and_deterministic_nonzero_mask() {
        let mut plan = MediaFaultPlan::new(42).rot(3).rot(4);
        assert_eq!(
            plan.on_read(0, 8),
            ReadOutcome::Ok { rotted: vec![3, 4] }
        );
        let mask = plan.rot_mask(3);
        assert_ne!(mask, 0, "a zero mask would corrupt nothing");
        assert_eq!(mask, MediaFaultPlan::new(42).rot_mask(3), "seeded masks are stable");
        assert_ne!(plan.rot_mask(3), plan.rot_mask(4), "masks differ across these sectors");
        // Rot persists across reads but clears on rewrite.
        assert_eq!(plan.on_write(3, 2), 2);
        assert_eq!(plan.on_read(0, 8), ReadOutcome::Ok { rotted: vec![] });
    }

    #[test]
    fn kill_marks_the_plan_dead_and_survives_builder_chaining() {
        let plan = MediaFaultPlan::new(9).latent(3).kill();
        assert!(plan.is_dead());
        assert_eq!(plan.len(), 1, "per-sector faults survive, just unreachable");
        assert!(!MediaFaultPlan::new(9).is_dead());
        assert!(!MediaFaultPlan::default().is_dead());
    }

    #[test]
    fn fail_slow_is_silent_before_onset_and_multiplies_after() {
        let p = FailSlowProfile::at(1_000).with_multiplier_pct(400);
        assert_eq!(p.extra_ns(7, 999, 10_000, 0), 0, "healthy before onset");
        // 400%: 3x the base time is added on top.
        assert_eq!(p.extra_ns(7, 1_000, 10_000, 0), 30_000);
        assert_eq!(p.extra_ns(7, 5_000, 10_000, 0), 30_000, "stable slope");
    }

    #[test]
    fn fail_slow_worsens_over_virtual_time() {
        let p = FailSlowProfile::at(0)
            .with_multiplier_pct(200)
            .with_worsen_pct_per_sec(100);
        assert_eq!(p.extra_ns(0, 0, 1_000, 0), 1_000, "2x at onset");
        // Ten virtual seconds later: 200 + 10*100 = 1200% -> 11x extra.
        assert_eq!(p.extra_ns(0, 10 * 1_000_000_000, 1_000, 0), 11_000);
    }

    #[test]
    fn fail_slow_stall_window_charges_the_remainder() {
        let p = FailSlowProfile::at(0).with_stalls(1_000, 100);
        assert_eq!(p.extra_ns(0, 0, 0, 0), 100, "start of the freeze");
        assert_eq!(p.extra_ns(0, 60, 0, 0), 40, "mid-freeze pays the rest");
        assert_eq!(p.extra_ns(0, 100, 0, 0), 0, "after the freeze");
        assert_eq!(p.extra_ns(0, 1_020, 0, 0), 80, "the cycle repeats");
    }

    #[test]
    fn fail_slow_jitter_is_seeded_and_bounded() {
        let p = FailSlowProfile::at(0).with_jitter_pct(50);
        for start in [0u64, 17, 91_234] {
            let a = p.extra_ns(3, start, 10_000, 5);
            let b = p.extra_ns(3, start, 10_000, 5);
            assert_eq!(a, b, "same inputs, same jitter");
            assert!(a <= 5_000, "jitter bounded by 50% of base");
        }
        // Different seeds decorrelate.
        assert_ne!(
            p.extra_ns(3, 17, 10_000, 5),
            p.extra_ns(4, 17, 10_000, 5),
            "seed changes the draw"
        );
    }

    #[test]
    fn plan_routes_latency_through_the_armed_profile() {
        let plan = MediaFaultPlan::new(1)
            .fail_slow(FailSlowProfile::at(500).with_multiplier_pct(300));
        assert_eq!(plan.latency_extra_ns(0, 1_000, 0), 0);
        assert_eq!(plan.latency_extra_ns(500, 1_000, 0), 2_000);
        assert!(MediaFaultPlan::new(1).fail_slow_profile().is_none());
        assert_eq!(MediaFaultPlan::new(1).latency_extra_ns(500, 1_000, 0), 0);
    }

    #[test]
    fn first_fault_in_respects_range() {
        let plan = MediaFaultPlan::new(0).latent(7).rot(12);
        assert_eq!(plan.first_fault_in(0, 8), Some(7));
        assert_eq!(plan.first_fault_in(8, 4), None);
        assert_eq!(plan.first_fault_in(8, 5), Some(12));
        assert_eq!(plan.len(), 2);
    }
}
