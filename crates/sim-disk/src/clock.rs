//! Shared virtual clock and CPU cost model.
//!
//! All timing in the reproduction is *virtual*: the disk model and the CPU
//! model both advance a shared [`Clock`], and every throughput or latency
//! number reported by the benchmark harness is computed from it. This makes
//! runs deterministic (identical across machines and repetitions) and lets
//! experiments sweep CPU speed independently of disk speed, which is the
//! heart of the paper's technology-trend argument (§2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Nanoseconds per second, as a `u64`.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// A shared, monotonically non-decreasing virtual clock.
///
/// The clock is reference-counted and internally atomic so that a file
/// system, its cache, and its disk can all hold handles to the same
/// timeline. Time only moves when a component explicitly advances it: the
/// disk model advances it for synchronous I/O, and the [`CpuModel`] advances
/// it for compute.
///
/// # Examples
///
/// ```
/// use sim_disk::Clock;
///
/// let clock = Clock::new();
/// assert_eq!(clock.now_ns(), 0);
/// clock.advance_ns(1_500);
/// assert_eq!(clock.now_ns(), 1_500);
/// clock.advance_to_ns(1_000); // Never moves backwards.
/// assert_eq!(clock.now_ns(), 1_500);
/// ```
#[derive(Debug, Default)]
pub struct Clock {
    now_ns: AtomicU64,
}

impl Clock {
    /// Creates a new shared clock starting at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            now_ns: AtomicU64::new(0),
        })
    }

    /// Returns the current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }

    /// Returns the current virtual time in seconds as a float.
    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 / NS_PER_SEC as f64
    }

    /// Advances the clock by `delta` nanoseconds and returns the new time.
    pub fn advance_ns(&self, delta: u64) -> u64 {
        self.now_ns.fetch_add(delta, Ordering::SeqCst) + delta
    }

    /// Advances the clock to `target` nanoseconds if that is in the future.
    ///
    /// Returns the (possibly unchanged) current time. The clock never moves
    /// backwards, so a stale target is a no-op.
    pub fn advance_to_ns(&self, target: u64) -> u64 {
        self.now_ns.fetch_max(target, Ordering::SeqCst).max(target)
    }
}

/// A unit of CPU work, expressed in instructions executed.
///
/// The constants are rough 1990-era syscall path lengths; their absolute
/// values only matter relative to each other and to the MIPS rating of the
/// [`CpuModel`]. They were chosen so that at the Sun-4/260's ~10 MIPS the
/// small-file test is CPU-bound under LFS and disk-bound under FFS, which is
/// the regime §5.1 of the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuCost {
    /// Path lookup plus inode allocation plus directory insertion.
    CreateFile,
    /// Path lookup plus directory removal plus inode free.
    RemoveFile,
    /// Fixed per-syscall overhead for read/write entry and bookkeeping.
    Syscall,
    /// Copying and checksumming one kilobyte of data between buffers.
    CopyKb,
    /// Block-mapping work for one file block (bmap, cache probe).
    MapBlock,
    /// A raw instruction count, for callers with their own model.
    Instructions(u64),
}

impl CpuCost {
    /// Returns the cost in executed instructions.
    pub fn instructions(self) -> u64 {
        match self {
            CpuCost::CreateFile => 12_000,
            CpuCost::RemoveFile => 8_000,
            CpuCost::Syscall => 4_000,
            CpuCost::CopyKb => 2_500,
            CpuCost::MapBlock => 1_000,
            CpuCost::Instructions(n) => n,
        }
    }
}

/// A CPU speed model that converts [`CpuCost`] into virtual time.
///
/// The model is a single MIPS (million instructions per second) rating.
/// Experiment S1 sweeps this rating to reproduce the paper's §3.1
/// observation that an order-of-magnitude CPU upgrade speeds file creation
/// on a synchronous-write file system by only ~20 %.
#[derive(Debug, Clone)]
pub struct CpuModel {
    clock: Arc<Clock>,
    mips: f64,
}

impl CpuModel {
    /// MIPS rating approximating the paper's Sun-4/260 (16.6 MHz SPARC).
    pub const SUN_4_260_MIPS: f64 = 10.0;

    /// Creates a CPU model at the given MIPS rating, charging to `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `mips` is not strictly positive.
    pub fn new(clock: Arc<Clock>, mips: f64) -> Self {
        assert!(mips > 0.0, "CPU speed must be positive, got {mips}");
        Self { clock, mips }
    }

    /// Creates a model matching the paper's test machine.
    pub fn sun_4_260(clock: Arc<Clock>) -> Self {
        Self::new(clock, Self::SUN_4_260_MIPS)
    }

    /// Returns the MIPS rating.
    pub fn mips(&self) -> f64 {
        self.mips
    }

    /// Returns the shared clock this model charges to.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Charges `cost` to the clock and returns the elapsed nanoseconds.
    pub fn charge(&self, cost: CpuCost) -> u64 {
        let ns = self.cost_ns(cost);
        self.clock.advance_ns(ns);
        ns
    }

    /// Returns how long `cost` takes at this CPU speed, without charging.
    pub fn cost_ns(&self, cost: CpuCost) -> u64 {
        let instructions = cost.instructions() as f64;
        (instructions / self.mips * 1_000.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let clock = Clock::new();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.advance_ns(100), 100);
        assert_eq!(clock.advance_ns(50), 150);
        assert_eq!(clock.now_ns(), 150);
    }

    #[test]
    fn clock_advance_to_is_monotone() {
        let clock = Clock::new();
        clock.advance_ns(1_000);
        assert_eq!(clock.advance_to_ns(500), 1_000);
        assert_eq!(clock.advance_to_ns(2_000), 2_000);
        assert_eq!(clock.now_ns(), 2_000);
    }

    #[test]
    fn clock_now_secs_converts() {
        let clock = Clock::new();
        clock.advance_ns(2 * NS_PER_SEC + NS_PER_SEC / 2);
        assert!((clock.now_secs() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn shared_handles_see_the_same_time() {
        let clock = Clock::new();
        let other = Arc::clone(&clock);
        clock.advance_ns(42);
        assert_eq!(other.now_ns(), 42);
    }

    #[test]
    fn cpu_model_charges_inverse_to_mips() {
        let clock = Clock::new();
        let slow = CpuModel::new(Arc::clone(&clock), 1.0);
        let fast = CpuModel::new(Arc::clone(&clock), 10.0);
        let cost = CpuCost::Instructions(1_000_000);
        // 1 MIPS executes 1M instructions in one second.
        assert_eq!(slow.cost_ns(cost), NS_PER_SEC);
        // 10 MIPS is ten times faster.
        assert_eq!(fast.cost_ns(cost), NS_PER_SEC / 10);
    }

    #[test]
    fn cpu_model_charge_advances_clock() {
        let clock = Clock::new();
        let cpu = CpuModel::new(Arc::clone(&clock), 10.0);
        let elapsed = cpu.charge(CpuCost::Syscall);
        assert_eq!(clock.now_ns(), elapsed);
        assert!(elapsed > 0);
    }

    #[test]
    #[should_panic(expected = "CPU speed must be positive")]
    fn cpu_model_rejects_zero_mips() {
        let _ = CpuModel::new(Clock::new(), 0.0);
    }

    #[test]
    fn create_costs_more_than_syscall() {
        assert!(CpuCost::CreateFile.instructions() > CpuCost::Syscall.instructions());
        assert!(CpuCost::RemoveFile.instructions() > CpuCost::Syscall.instructions());
    }
}
