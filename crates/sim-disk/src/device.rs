//! The block-device interface file systems program against.

use std::fmt;

/// Errors returned by block devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// A request touched sectors beyond the end of the device.
    OutOfRange {
        /// First sector of the offending request.
        sector: u64,
        /// Number of sectors requested.
        count: u64,
        /// Total sectors on the device.
        capacity: u64,
    },
    /// A buffer length was not a whole number of sectors.
    UnalignedLength(usize),
    /// The device has crashed (fault injection) and rejects all requests.
    Crashed,
    /// A sector could not be read (latent or transient media error).
    ///
    /// Unlike [`DiskError::Crashed`] this is a per-request failure: the
    /// device keeps servicing other requests, and a transient fault may
    /// succeed on retry. Injected by
    /// [`MediaFaultPlan`](crate::MediaFaultPlan).
    Unreadable {
        /// First faulted sector in the failed request.
        sector: u64,
    },
    /// The operation is not valid for the device's current
    /// configuration or state — an operator-misuse error (e.g. asking a
    /// RAID-0 volume to rebuild, or resyncing parity on a degraded
    /// assembly). The request was rejected before touching any media;
    /// the device keeps servicing everything else.
    Unsupported(&'static str),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::OutOfRange {
                sector,
                count,
                capacity,
            } => write!(
                f,
                "request for {count} sectors at {sector} exceeds device capacity {capacity}"
            ),
            DiskError::UnalignedLength(len) => {
                write!(
                    f,
                    "buffer length {len} is not a multiple of the sector size"
                )
            }
            DiskError::Crashed => write!(f, "device has crashed"),
            DiskError::Unreadable { sector } => {
                write!(f, "media error: sector {sector} is unreadable")
            }
            DiskError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
        }
    }
}

impl std::error::Error for DiskError {}

/// Result alias for device operations.
pub type DiskResult<T> = Result<T, DiskError>;

/// A sector-addressed block device.
///
/// Reads are always synchronous (a missing block stalls the caller), which
/// is how §2.3 of the paper frames disk reads. Writes carry a `sync` flag:
/// a synchronous write stalls the caller until the platters hold the data
/// (the behaviour that cripples FFS metadata updates in Figure 1), while an
/// asynchronous write queues the transfer and returns immediately.
pub trait BlockDevice {
    /// Total number of sectors on the device.
    fn num_sectors(&self) -> u64;

    /// Reads `buf.len() / SECTOR_SIZE` sectors starting at `sector`.
    fn read(&mut self, sector: u64, buf: &mut [u8]) -> DiskResult<()>;

    /// Writes `buf.len() / SECTOR_SIZE` sectors starting at `sector`.
    ///
    /// When `sync` is true the call blocks (advances the virtual clock)
    /// until the transfer completes; otherwise the transfer is queued.
    fn write(&mut self, sector: u64, buf: &[u8], sync: bool) -> DiskResult<()>;

    /// Blocks until all queued asynchronous writes have completed.
    fn flush(&mut self) -> DiskResult<()>;

    /// Attaches a label to the next request, for access tracing.
    ///
    /// Devices without tracing ignore this; see
    /// [`SimDisk`](crate::SimDisk) for the tracing implementation.
    fn annotate(&mut self, _label: &'static str) {}

    /// Returns the device capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.num_sectors() * crate::SECTOR_SIZE as u64
    }

    /// Re-homes the device's metrics into a shared [`obs::Registry`], so
    /// one registry covers a whole file-system stack (device + cache +
    /// file system). Counts accumulated before attachment are carried
    /// over. Devices without metrics ignore this.
    fn attach_obs(&mut self, _registry: &obs::Registry) {}

    /// Marks subsequent requests as maintenance I/O (segment cleaning,
    /// scrubbing) until turned off again. Queue-backed devices use this
    /// to account the I/O to a maintenance class instead of whichever
    /// foreground client happens to be dispatched, so per-client wait
    /// histograms never absorb cleaning cost. Plain devices ignore it.
    fn set_maintenance(&mut self, _on: bool) {}

    /// Starts a non-blocking read of `len` bytes at `sector`, returning
    /// a token to pass to [`BlockDevice::finish_read_async`]. Devices
    /// without an asynchronous read path return `None` and the caller
    /// falls back to the synchronous [`BlockDevice::read`]; queue-backed
    /// devices submit the read and let virtual time advance under other
    /// traffic before the caller claims it.
    fn start_read_async(&mut self, _sector: u64, _len: usize) -> Option<u64> {
        None
    }

    /// Completes a read started by [`BlockDevice::start_read_async`],
    /// blocking (advancing the virtual clock) only if the read has not
    /// finished yet. The token must come from the same device.
    fn finish_read_async(&mut self, _token: u64) -> DiskResult<Vec<u8>> {
        Err(DiskError::Crashed)
    }

    /// Number of independently seeking spindles behind this device: the
    /// useful concurrency for overlapped maintenance reads (recovery,
    /// fsck, scrub). Plain devices report 1; a striped volume reports
    /// its spindle count.
    fn fanout(&self) -> usize {
        1
    }

    /// Which spindle (in `0..fanout()`) serves `sector`. Callers use
    /// this to partition a batch of reads so each spindle's queue stays
    /// sequential while the spindles overlap. Plain devices map
    /// everything to spindle 0.
    fn spindle_of(&self, _sector: u64) -> usize {
        0
    }
}

/// Issues a batch of reads with at most `window` in flight, claiming
/// completions in submission order.
///
/// Each request is `(sector, len)` and each is annotated with `label`
/// before submission. On a device with an asynchronous read path the
/// window keeps up to `window` reads outstanding, so a multi-spindle
/// device overlaps them in virtual time; a device without one falls
/// back to synchronous reads in place, making `window = 1` (or a plain
/// disk) byte- and time-identical to a sequential read loop.
///
/// Returns the per-request results in request order, plus how many
/// reads actually went through the asynchronous path.
pub fn read_batch<D: BlockDevice + ?Sized>(
    dev: &mut D,
    label: &'static str,
    window: usize,
    reqs: &[(u64, usize)],
) -> (Vec<DiskResult<Vec<u8>>>, u64) {
    let window = window.max(1);
    let mut out: Vec<Option<DiskResult<Vec<u8>>>> = reqs.iter().map(|_| None).collect();
    let mut pending: std::collections::VecDeque<(usize, u64)> = std::collections::VecDeque::new();
    let mut overlapped = 0u64;
    let mut next = 0usize;
    while next < reqs.len() || !pending.is_empty() {
        while next < reqs.len() && pending.len() < window {
            let (sector, len) = reqs[next];
            dev.annotate(label);
            match dev.start_read_async(sector, len) {
                Some(token) => {
                    pending.push_back((next, token));
                    overlapped += 1;
                }
                None => {
                    let mut buf = vec![0u8; len];
                    out[next] = Some(dev.read(sector, &mut buf).map(|_| buf));
                }
            }
            next += 1;
        }
        if let Some((idx, token)) = pending.pop_front() {
            out[idx] = Some(dev.finish_read_async(token));
        }
    }
    (
        out.into_iter().map(|r| r.expect("read_batch slot")).collect(),
        overlapped,
    )
}

/// Validates a request against device capacity and sector alignment.
///
/// Shared by the device implementations in this crate, and public so
/// layered devices (e.g. a striped volume) can validate against their
/// own logical capacity before fanning a request out.
pub fn check_request(sector: u64, len: usize, capacity: u64) -> DiskResult<u64> {
    if !len.is_multiple_of(crate::SECTOR_SIZE) {
        return Err(DiskError::UnalignedLength(len));
    }
    let count = (len / crate::SECTOR_SIZE) as u64;
    if sector.checked_add(count).is_none_or(|end| end > capacity) {
        return Err(DiskError::OutOfRange {
            sector,
            count,
            capacity,
        });
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_request_accepts_aligned_in_range() {
        assert_eq!(check_request(0, 512, 10), Ok(1));
        assert_eq!(check_request(8, 1024, 10), Ok(2));
    }

    #[test]
    fn check_request_rejects_unaligned() {
        assert_eq!(
            check_request(0, 100, 10),
            Err(DiskError::UnalignedLength(100))
        );
    }

    #[test]
    fn check_request_rejects_out_of_range() {
        assert!(matches!(
            check_request(9, 1024, 10),
            Err(DiskError::OutOfRange { .. })
        ));
        // Overflow of sector + count must not wrap.
        assert!(matches!(
            check_request(u64::MAX, 512, 10),
            Err(DiskError::OutOfRange { .. })
        ));
    }

    #[test]
    fn errors_format_usefully() {
        let err = DiskError::OutOfRange {
            sector: 9,
            count: 2,
            capacity: 10,
        };
        assert!(err.to_string().contains("exceeds device capacity"));
        assert!(DiskError::Crashed.to_string().contains("crashed"));
        assert_eq!(
            DiskError::Unsupported("no parity").to_string(),
            "unsupported operation: no parity"
        );
    }
}
