#![warn(missing_docs)]

//! Deterministic disk simulation substrate for the LFS reproduction.
//!
//! The paper's evaluation (USENIX 1990) ran on a WREN IV SCSI disk
//! (1.3 MB/s maximum transfer bandwidth, 17.5 ms average seek) attached to a
//! Sun-4/260. Every result in the paper is a function of *access-pattern
//! economics*: sequential transfers amortise one seek over a long transfer,
//! random transfers pay a seek plus rotational latency per request, and
//! synchronous writes couple application progress to disk latency.
//!
//! This crate reproduces those economics with a deterministic simulator:
//!
//! * [`Clock`] — a shared virtual clock (nanosecond resolution) that also
//!   hosts a simple CPU cost model, so experiments can sweep CPU speed the
//!   way §3.1 of the paper does (0.9 MIPS MicroVax vs 14 MIPS DECStation).
//! * [`BlockDevice`] — the sector-addressed device interface file systems
//!   program against.
//! * [`SimDisk`] — a mechanical disk model (seek + rotation + transfer)
//!   that advances the clock for synchronous requests and tracks a device
//!   busy-horizon for asynchronous ones.
//! * [`IoStats`] / [`AccessTrace`] — per-request accounting used by the
//!   Figure 1/2 reproduction (count of random/sequential and sync/async
//!   accesses) and the throughput figures.
//! * [`CrashPlan`] — write-stream fault injection (drop, tear, or lose a
//!   reorder window of writes after a trigger point) used by the
//!   crash-recovery experiments.
//! * [`MediaFaultPlan`] — seeded per-sector media faults (latent sector
//!   errors, transient errors that clear after K retries, silent bit-rot)
//!   used by the end-to-end integrity experiments.
//! * Submit/complete queueing — [`SimDisk::submit_read`],
//!   [`SimDisk::submit_write`], and [`SimDisk::complete`] expose the device
//!   queue to an external I/O scheduler (see the `engine` crate), which may
//!   reorder and coalesce requests before they are serviced.

//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use sim_disk::{BlockDevice, Clock, DiskGeometry, SimDisk};
//!
//! let clock = Clock::new();
//! let mut disk = SimDisk::new(DiskGeometry::wren_iv(), Arc::clone(&clock));
//!
//! // A synchronous write stalls the (virtual) CPU for seek + rotation +
//! // transfer time; an asynchronous one only occupies the device.
//! disk.write(0, &vec![0u8; 512], true).unwrap();
//! let after_sync = clock.now_ns();
//! assert!(after_sync > 0);
//! disk.write(1, &vec![0u8; 512], false).unwrap();
//! assert_eq!(clock.now_ns(), after_sync);
//! ```

pub mod clock;
pub mod device;
pub mod fault;
pub mod geometry;
pub mod ram;
pub mod sim;
pub mod stats;

pub use clock::{Clock, CpuCost, CpuModel};
pub use device::{check_request, read_batch, BlockDevice, DiskError, DiskResult};
pub use fault::{CrashPlan, FailSlowProfile, FaultMode, MediaFault, MediaFaultPlan};
pub use geometry::DiskGeometry;
pub use ram::RamDisk;
pub use sim::{IoCompletion, SimDisk, SubmittedIo};
pub use stats::{AccessKind, AccessRecord, AccessTrace, IoStats};

/// Size of one disk sector in bytes. All devices in this workspace use
/// 512-byte sectors, matching the SCSI disks of the paper's era.
pub const SECTOR_SIZE: usize = 512;
