//! A zero-latency in-memory block device for unit tests.

use crate::device::{check_request, BlockDevice, DiskResult};
use crate::SECTOR_SIZE;

/// An in-memory block device with no timing model.
///
/// Useful for unit-testing file-system logic where virtual time is
/// irrelevant. Counts reads and writes so tests can assert I/O happened
/// (or did not).
#[derive(Debug, Clone)]
pub struct RamDisk {
    data: Vec<u8>,
    num_sectors: u64,
    reads: u64,
    writes: u64,
}

impl RamDisk {
    /// Creates a zero-filled device with `num_sectors` sectors.
    pub fn new(num_sectors: u64) -> Self {
        Self {
            data: vec![0; num_sectors as usize * SECTOR_SIZE],
            num_sectors,
            reads: 0,
            writes: 0,
        }
    }

    /// Creates a device from an existing raw image.
    ///
    /// # Panics
    ///
    /// Panics if the image is not a whole number of sectors.
    pub fn from_image(data: Vec<u8>) -> Self {
        assert!(
            data.len().is_multiple_of(SECTOR_SIZE),
            "image length {} is not sector-aligned",
            data.len()
        );
        let num_sectors = (data.len() / SECTOR_SIZE) as u64;
        Self {
            data,
            num_sectors,
            reads: 0,
            writes: 0,
        }
    }

    /// Number of read requests serviced.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of write requests serviced.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Borrows the raw image.
    pub fn image(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the device and returns the raw image.
    pub fn into_image(self) -> Vec<u8> {
        self.data
    }
}

impl BlockDevice for RamDisk {
    fn num_sectors(&self) -> u64 {
        self.num_sectors
    }

    fn read(&mut self, sector: u64, buf: &mut [u8]) -> DiskResult<()> {
        check_request(sector, buf.len(), self.num_sectors)?;
        let start = sector as usize * SECTOR_SIZE;
        buf.copy_from_slice(&self.data[start..start + buf.len()]);
        self.reads += 1;
        Ok(())
    }

    fn write(&mut self, sector: u64, buf: &[u8], _sync: bool) -> DiskResult<()> {
        check_request(sector, buf.len(), self.num_sectors)?;
        let start = sector as usize * SECTOR_SIZE;
        self.data[start..start + buf.len()].copy_from_slice(buf);
        self.writes += 1;
        Ok(())
    }

    fn flush(&mut self) -> DiskResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DiskError;

    #[test]
    fn round_trips_data() {
        let mut disk = RamDisk::new(8);
        let payload = vec![0xAB; SECTOR_SIZE * 2];
        disk.write(3, &payload, false).unwrap();
        let mut out = vec![0; SECTOR_SIZE * 2];
        disk.read(3, &mut out).unwrap();
        assert_eq!(out, payload);
        assert_eq!(disk.read_count(), 1);
        assert_eq!(disk.write_count(), 1);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut disk = RamDisk::new(2);
        let buf = vec![0; SECTOR_SIZE * 3];
        assert!(matches!(
            disk.write(0, &buf, false),
            Err(DiskError::OutOfRange { .. })
        ));
    }

    #[test]
    fn from_image_round_trips() {
        let mut disk = RamDisk::new(4);
        disk.write(1, &vec![7; SECTOR_SIZE], false).unwrap();
        let image = disk.into_image();
        let mut revived = RamDisk::from_image(image);
        let mut buf = vec![0; SECTOR_SIZE];
        revived.read(1, &mut buf).unwrap();
        assert_eq!(buf, vec![7; SECTOR_SIZE]);
    }

    #[test]
    #[should_panic(expected = "sector-aligned")]
    fn from_image_rejects_unaligned() {
        let _ = RamDisk::from_image(vec![0; 100]);
    }

    #[test]
    fn capacity_bytes_matches() {
        let disk = RamDisk::new(16);
        assert_eq!(disk.capacity_bytes(), 16 * SECTOR_SIZE as u64);
    }
}
