//! The mechanically modelled disk simulator.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use obs::{Counter, Hist, Registry};

use crate::clock::Clock;
use crate::device::{check_request, BlockDevice, DiskError, DiskResult};
use crate::fault::{CrashPlan, FaultMode, MediaFaultPlan, ReadOutcome};
use crate::geometry::DiskGeometry;
use crate::stats::{AccessKind, AccessRecord, AccessTrace, IoStats};
use crate::SECTOR_SIZE;

/// The disk's handles into an [`obs::Registry`]: request counts, the
/// seek / rotation / transfer busy-time decomposition, and per-request
/// service-time histograms split by direction.
#[derive(Debug, Clone)]
struct DiskObs {
    registry: Registry,
    /// Metric-name prefix (e.g. `"volume.spindle.0."`). Empty for a
    /// standalone disk, whose instruments keep their classic `disk.*`
    /// names. A prefix keeps several disks apart when they all report
    /// into one shared registry.
    prefix: String,
    reads: Counter,
    writes: Counter,
    sync_writes: Counter,
    seeks: Counter,
    sequential: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    busy_ns: Counter,
    seek_ns: Counter,
    rotation_ns: Counter,
    transfer_ns: Counter,
    stall_ns: Counter,
    queue_wait_ns: Counter,
    coalesced: Counter,
    faults_unreadable: Counter,
    faults_transient: Counter,
    faults_rot_reads: Counter,
    faults_cleared: Counter,
    read_lat: Hist,
    write_lat: Hist,
}

impl DiskObs {
    fn from_registry(registry: &Registry, prefix: &str) -> Self {
        let n = |suffix: &str| format!("{prefix}{suffix}");
        DiskObs {
            registry: registry.clone(),
            prefix: prefix.to_string(),
            reads: registry.counter(&n("disk.reads")),
            writes: registry.counter(&n("disk.writes")),
            sync_writes: registry.counter(&n("disk.sync_writes")),
            seeks: registry.counter(&n("disk.seeks")),
            sequential: registry.counter(&n("disk.sequential")),
            bytes_read: registry.counter(&n("disk.bytes_read")),
            bytes_written: registry.counter(&n("disk.bytes_written")),
            busy_ns: registry.counter(&n("disk.busy_ns")),
            seek_ns: registry.counter(&n("disk.seek_ns")),
            rotation_ns: registry.counter(&n("disk.rotation_ns")),
            transfer_ns: registry.counter(&n("disk.transfer_ns")),
            stall_ns: registry.counter(&n("disk.stall_ns")),
            queue_wait_ns: registry.counter(&n("disk.queue_wait_ns")),
            coalesced: registry.counter(&n("disk.coalesced_writes")),
            faults_unreadable: registry.counter(&n("faults.unreadable_reads")),
            faults_transient: registry.counter(&n("faults.transient_errors")),
            faults_rot_reads: registry.counter(&n("faults.rot_reads")),
            faults_cleared: registry.counter(&n("faults.cleared_by_write")),
            read_lat: registry.hist(&n("disk.read_service_ns")),
            write_lat: registry.hist(&n("disk.write_service_ns")),
        }
    }

    /// Re-homes every instrument into `registry` under the current
    /// prefix, carrying counts over.
    fn rehome(&mut self, registry: &Registry) {
        self.registry = registry.clone();
        let prefix = self.prefix.clone();
        let n = |suffix: &str| format!("{prefix}{suffix}");
        self.reads = registry.adopt_counter(&n("disk.reads"), &self.reads);
        self.writes = registry.adopt_counter(&n("disk.writes"), &self.writes);
        self.sync_writes = registry.adopt_counter(&n("disk.sync_writes"), &self.sync_writes);
        self.seeks = registry.adopt_counter(&n("disk.seeks"), &self.seeks);
        self.sequential = registry.adopt_counter(&n("disk.sequential"), &self.sequential);
        self.bytes_read = registry.adopt_counter(&n("disk.bytes_read"), &self.bytes_read);
        self.bytes_written = registry.adopt_counter(&n("disk.bytes_written"), &self.bytes_written);
        self.busy_ns = registry.adopt_counter(&n("disk.busy_ns"), &self.busy_ns);
        self.seek_ns = registry.adopt_counter(&n("disk.seek_ns"), &self.seek_ns);
        self.rotation_ns = registry.adopt_counter(&n("disk.rotation_ns"), &self.rotation_ns);
        self.transfer_ns = registry.adopt_counter(&n("disk.transfer_ns"), &self.transfer_ns);
        self.stall_ns = registry.adopt_counter(&n("disk.stall_ns"), &self.stall_ns);
        self.queue_wait_ns = registry.adopt_counter(&n("disk.queue_wait_ns"), &self.queue_wait_ns);
        self.coalesced = registry.adopt_counter(&n("disk.coalesced_writes"), &self.coalesced);
        self.faults_unreadable =
            registry.adopt_counter(&n("faults.unreadable_reads"), &self.faults_unreadable);
        self.faults_transient =
            registry.adopt_counter(&n("faults.transient_errors"), &self.faults_transient);
        self.faults_rot_reads =
            registry.adopt_counter(&n("faults.rot_reads"), &self.faults_rot_reads);
        self.faults_cleared =
            registry.adopt_counter(&n("faults.cleared_by_write"), &self.faults_cleared);
        self.read_lat = registry.adopt_hist(&n("disk.read_service_ns"), &self.read_lat);
        self.write_lat = registry.adopt_hist(&n("disk.write_service_ns"), &self.write_lat);
    }
}

/// A request waiting in the device queue, submitted through the
/// asynchronous [`SimDisk::submit_read`] / [`SimDisk::submit_write`] path.
///
/// A queued request has no effect on the platter, the head, the clock, or
/// any statistic until [`SimDisk::complete`] services it — an I/O scheduler
/// sitting above the disk is free to reorder or merge queued requests.
#[derive(Debug, Clone)]
pub struct SubmittedIo {
    id: u64,
    kind: AccessKind,
    sector: u64,
    bytes: u64,
    submitted_at_ns: u64,
    /// Payload for writes; `None` for reads.
    data: Option<Vec<u8>>,
}

impl SubmittedIo {
    /// Identifier to pass to [`SimDisk::complete`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Read or write.
    pub fn kind(&self) -> AccessKind {
        self.kind
    }

    /// First sector of the request.
    pub fn sector(&self) -> u64 {
        self.sector
    }

    /// Length in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// One past the last sector of the request.
    pub fn end_sector(&self) -> u64 {
        self.sector + self.bytes / SECTOR_SIZE as u64
    }

    /// Virtual time at which the request entered the queue.
    pub fn submitted_at_ns(&self) -> u64 {
        self.submitted_at_ns
    }

    /// The write payload (`None` for reads).
    pub fn data(&self) -> Option<&[u8]> {
        self.data.as_deref()
    }
}

/// The outcome of servicing one queued request via [`SimDisk::complete`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoCompletion {
    /// Identifier of the completed request.
    pub id: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// First sector of the request.
    pub sector: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// Virtual time at which the request entered the queue.
    pub submitted_at_ns: u64,
    /// Virtual time at which the head started servicing the request.
    pub start_ns: u64,
    /// Virtual time at which service finished.
    pub finish_ns: u64,
    /// Head time consumed (seek + rotation + transfer, plus any
    /// fail-slow stall the media charged).
    pub service_ns: u64,
    /// Time spent waiting in the queue (`start_ns - submitted_at_ns`).
    pub wait_ns: u64,
    /// True if the request started where the previous one ended.
    pub sequential: bool,
    /// Data read from the platter (`None` for writes).
    pub data: Option<Vec<u8>>,
}

/// Arguments for recording one serviced request into stats/obs/trace.
struct Serviced {
    kind: AccessKind,
    sector: u64,
    bytes: u64,
    sync: bool,
    issued_at_ns: u64,
    seek_ns: u64,
    rotation_ns: u64,
    transfer_ns: u64,
    stall_ns: u64,
    sequential: bool,
}

/// A disk with a seek + rotation + transfer cost model over a virtual clock.
///
/// The device behaves as a single-server queue. Every request is serviced
/// after the previous one finishes:
///
/// * A request that starts exactly where the previous request ended is
///   **sequential**: the head is already positioned, so it pays only
///   transfer time. This is what makes LFS's segment-sized writes an
///   order of magnitude cheaper per byte than FFS's scattered updates.
/// * Any other request is **random**: it pays a distance-dependent seek
///   plus average rotational latency plus transfer time.
///
/// Synchronous requests (all reads, and writes with `sync = true`) advance
/// the shared [`Clock`] to their completion time — the caller waits.
/// Asynchronous writes only push out the device's busy horizon; the virtual
/// CPU keeps running. [`BlockDevice::flush`] waits for the horizon, which is
/// how the harness closes a measurement phase.
#[derive(Debug)]
pub struct SimDisk {
    geometry: DiskGeometry,
    clock: Arc<Clock>,
    data: Vec<u8>,
    stats: IoStats,
    trace: AccessTrace,
    /// Sector where the previous request ended (head position proxy).
    head: u64,
    /// Virtual time at which the device becomes idle.
    busy_until_ns: u64,
    /// Number of write requests persisted so far (for fault injection).
    ///
    /// Counts in *persist order*: synchronous-path writes count when
    /// issued, queued writes count when [`SimDisk::complete`] services
    /// them.
    write_index: u64,
    /// When set, crash plans index into this *shared* write counter
    /// instead of the per-disk one, so a multi-spindle volume can arm
    /// one plan across all spindles and crash whichever disk services
    /// the globally N-th write. See [`SimDisk::share_write_index`].
    shared_write_index: Option<Arc<AtomicU64>>,
    crash_plan: Option<CrashPlan>,
    crashed: bool,
    /// Armed per-sector media faults; see [`MediaFaultPlan`].
    media_faults: Option<MediaFaultPlan>,
    next_label: &'static str,
    /// Requests submitted through the async path, not yet serviced.
    pending: Vec<SubmittedIo>,
    next_io_id: u64,
    /// Volatile write cache, populated only while a
    /// [`FaultMode::ReorderWindow`] plan is armed: `(sector, data)` of
    /// asynchronous writes acknowledged but not yet on the platter.
    held: VecDeque<(u64, Vec<u8>)>,
    obs: DiskObs,
}

impl SimDisk {
    /// Creates a zero-filled simulated disk.
    pub fn new(geometry: DiskGeometry, clock: Arc<Clock>) -> Self {
        let bytes = geometry.num_sectors as usize * SECTOR_SIZE;
        Self {
            geometry,
            clock,
            data: vec![0; bytes],
            stats: IoStats::default(),
            trace: AccessTrace::default(),
            head: 0,
            busy_until_ns: 0,
            write_index: 0,
            shared_write_index: None,
            crash_plan: None,
            crashed: false,
            media_faults: None,
            next_label: "",
            pending: Vec::new(),
            next_io_id: 0,
            held: VecDeque::new(),
            obs: DiskObs::from_registry(&Registry::new(), ""),
        }
    }

    /// Creates a simulated disk over an existing image (e.g. after a crash).
    ///
    /// # Panics
    ///
    /// Panics if the image size does not match the geometry.
    pub fn from_image(geometry: DiskGeometry, clock: Arc<Clock>, image: Vec<u8>) -> Self {
        assert_eq!(
            image.len(),
            geometry.num_sectors as usize * SECTOR_SIZE,
            "image size does not match geometry"
        );
        let mut disk = Self::new(geometry, clock);
        disk.data = image;
        disk
    }

    /// Returns the geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// Returns the shared clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Returns accumulated I/O statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Returns the registry this disk currently reports into.
    pub fn obs(&self) -> &Registry {
        &self.obs.registry
    }

    /// Resets accumulated I/O statistics (head position is kept).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Returns the access trace.
    pub fn trace(&self) -> &AccessTrace {
        &self.trace
    }

    /// Returns the access trace mutably (to enable/clear it).
    pub fn trace_mut(&mut self) -> &mut AccessTrace {
        &mut self.trace
    }

    /// Arms a crash plan. See [`CrashPlan`].
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        self.crash_plan = Some(plan);
    }

    /// Draws crash-plan write indices from `counter` instead of this
    /// disk's private count.
    ///
    /// A striped volume hands every spindle the same counter and arms
    /// the same [`CrashPlan`] on each: writes are then numbered in
    /// global persist order across spindles, and exactly the spindle
    /// servicing the N-th write crashes — the others stop at their next
    /// request, just like drives sharing a failed power supply.
    pub fn share_write_index(&mut self, counter: Arc<AtomicU64>) {
        self.shared_write_index = Some(counter);
    }

    /// Re-homes this disk's instruments under `prefix` (for example
    /// `"volume.spindle.0."`) in a fresh private registry, carrying any
    /// accumulated counts. Several prefixed disks can then attach to
    /// one shared registry without their metric names colliding.
    pub fn set_metric_prefix(&mut self, prefix: &str) {
        self.obs.prefix = prefix.to_string();
        self.obs.rehome(&Registry::new());
    }

    /// Returns true if the armed crash has triggered.
    pub fn has_crashed(&self) -> bool {
        self.crashed
    }

    /// Arms (or replaces) a media-fault plan. See [`MediaFaultPlan`].
    pub fn inject_media_faults(&mut self, plan: MediaFaultPlan) {
        self.media_faults = Some(plan);
    }

    /// The armed media-fault plan, if any (faults clear as sectors are
    /// rewritten or transient errors exhaust their failure budget).
    pub fn media_faults(&self) -> Option<&MediaFaultPlan> {
        self.media_faults.as_ref()
    }

    /// Kills the whole spindle, as if the head crashed: every subsequent
    /// read and write fails with [`DiskError::Unreadable`] until
    /// [`SimDisk::replace_media`] swaps in a fresh drive. Still-queued
    /// submissions and volatile held writes are lost with the media.
    pub fn kill_media(&mut self) {
        let plan = self.media_faults.take().unwrap_or_default();
        self.media_faults = Some(plan.kill());
        self.pending.clear();
        self.held.clear();
        self.obs
            .registry
            .event(self.clock.now_ns(), "media-fault", "spindle dead".to_string());
    }

    /// True when the media is dead (see [`SimDisk::kill_media`]).
    pub fn is_dead(&self) -> bool {
        self.media_faults.as_ref().is_some_and(|p| p.is_dead())
    }

    /// Swaps in a blank replacement drive: the image zeroes, every
    /// armed media fault (including a whole-spindle kill) clears, and
    /// the head parks at sector 0. Statistics, the crash plan, and the
    /// (possibly shared) write counter stay with the bay, not the
    /// drive — a rebuild's writes still count in global persist order.
    pub fn replace_media(&mut self) {
        self.data.iter_mut().for_each(|b| *b = 0);
        self.media_faults = None;
        self.pending.clear();
        self.held.clear();
        self.head = 0;
        self.obs.registry.event(
            self.clock.now_ns(),
            "media-fault",
            "spindle replaced".to_string(),
        );
    }

    /// Fails the request with [`DiskError::Unreadable`] when the whole
    /// spindle is dead. Writes check this *before* the crash plan: a
    /// request a dead drive rejects never counts as a persist event.
    fn dead_check(&mut self, sector: u64) -> DiskResult<()> {
        if !self.is_dead() {
            return Ok(());
        }
        self.obs.faults_unreadable.inc();
        self.obs.registry.event(
            self.clock.now_ns(),
            "media-fault",
            format!("dead spindle rejects sector={sector}"),
        );
        Err(DiskError::Unreadable { sector })
    }

    /// Consumes the disk and returns the surviving raw image.
    ///
    /// Still-queued submissions and writes held in a volatile
    /// [`FaultMode::ReorderWindow`] cache are **not** part of the image —
    /// only flushed or serviced data survives, exactly as after a power
    /// failure.
    pub fn into_image(self) -> Vec<u8> {
        self.data
    }

    /// Borrows the raw image (what the platters currently hold).
    pub fn image(&self) -> &[u8] {
        &self.data
    }

    /// Computes the seek / rotation / transfer decomposition for a request
    /// and updates the head position. Returns
    /// `(seek_ns, rotation_ns, transfer_ns, was_sequential)`.
    fn service(&mut self, sector: u64, bytes: u64) -> (u64, u64, u64, bool) {
        let sequential = sector == self.head;
        let (seek, rotation) = if sequential {
            (0, 0)
        } else {
            let distance = sector.abs_diff(self.head);
            (
                self.geometry.seek_ns(distance),
                self.geometry.avg_rotational_latency_ns(),
            )
        };
        let transfer = self.geometry.transfer_ns(bytes);
        self.head = sector + bytes / SECTOR_SIZE as u64;
        (seek, rotation, transfer, sequential)
    }

    /// Runs one synchronous-path request through the queue model and
    /// updates accounting. The caller is charged from *now*: service
    /// starts once the device is idle, and synchronous requests advance
    /// the clock to completion.
    fn account(&mut self, kind: AccessKind, sector: u64, bytes: u64, sync: bool) -> (u64, bool) {
        let issued_at = self.clock.now_ns();
        let start = self.busy_until_ns.max(issued_at);
        let (seek_ns, rotation_ns, transfer_ns, sequential) = self.service(sector, bytes);
        let stall_ns = self.latency_fault_ns(start, seek_ns + rotation_ns + transfer_ns, sector);
        self.busy_until_ns = start + seek_ns + rotation_ns + transfer_ns + stall_ns;
        if sync {
            self.clock.advance_to_ns(self.busy_until_ns);
        }
        self.record_serviced(Serviced {
            kind,
            sector,
            bytes,
            sync,
            issued_at_ns: issued_at,
            seek_ns,
            rotation_ns,
            transfer_ns,
            stall_ns,
            sequential,
        });
        (seek_ns + rotation_ns + transfer_ns + stall_ns, sequential)
    }

    /// Extra latency the armed fail-slow schedule charges a request whose
    /// service starts at `start_ns` (0 when none is armed).
    fn latency_fault_ns(&self, start_ns: u64, base_service_ns: u64, sector: u64) -> u64 {
        self.media_faults
            .as_ref()
            .map_or(0, |p| p.latency_extra_ns(start_ns, base_service_ns, sector))
    }

    /// What the mechanical model alone — seek + rotation + transfer
    /// from the current head position, the drive's "datasheet" cost —
    /// says a request of `bytes` at `sector` should take, ignoring any
    /// armed latency faults. This is the healthy-expectation baseline a
    /// fail-slow detector divides observed service time by: absolute
    /// latency cannot separate a sequential read on a sick drive from a
    /// long random read on a healthy one, but the ratio to this model
    /// can.
    pub fn estimate_base_service_ns(&self, sector: u64, bytes: u64) -> u64 {
        let sequential = sector == self.head;
        let (seek, rotation) = if sequential {
            (0, 0)
        } else {
            let distance = sector.abs_diff(self.head);
            (
                self.geometry.seek_ns(distance),
                self.geometry.avg_rotational_latency_ns(),
            )
        };
        seek + rotation + self.geometry.transfer_ns(bytes)
    }

    /// Non-mutating estimate of what servicing a request of `bytes` at
    /// `sector` would cost if the head picked it up once the device goes
    /// idle (or at `start_ns`, whichever is later), including any armed
    /// fail-slow penalty. The head does not move and nothing is
    /// accounted — this is the engine's crystal ball for hedging
    /// decisions, and it is exact when the request is serviced next.
    pub fn estimate_service_ns(&self, start_ns: u64, sector: u64, bytes: u64) -> u64 {
        let base = self.estimate_base_service_ns(sector, bytes);
        base + self.latency_fault_ns(start_ns, base, sector)
    }

    /// Records one serviced request into stats, obs, and the trace.
    ///
    /// This is the **only** place service time enters `busy_ns` and its
    /// decomposition, and it runs exactly once per serviced request — on
    /// the synchronous path when the request is issued, on the
    /// submit/complete path when the request is completed. Queue wait is
    /// accounted separately ([`IoStats::queue_wait_ns`]) and never counts
    /// as busy time, so overlapped queueing cannot double-count service.
    fn record_serviced(&mut self, s: Serviced) {
        let service_ns = s.seek_ns + s.rotation_ns + s.transfer_ns + s.stall_ns;
        self.stats.busy_ns += service_ns;
        self.stats.seek_ns += s.seek_ns;
        self.stats.rotation_ns += s.rotation_ns;
        self.stats.transfer_ns += s.transfer_ns;
        self.stats.stall_ns += s.stall_ns;
        self.obs.busy_ns.add(service_ns);
        self.obs.seek_ns.add(s.seek_ns);
        self.obs.rotation_ns.add(s.rotation_ns);
        self.obs.transfer_ns.add(s.transfer_ns);
        self.obs.stall_ns.add(s.stall_ns);
        if s.sequential {
            self.stats.sequential += 1;
            self.obs.sequential.inc();
        } else {
            self.stats.seeks += 1;
            self.obs.seeks.inc();
        }
        match s.kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                self.stats.bytes_read += s.bytes;
                self.obs.reads.inc();
                self.obs.bytes_read.add(s.bytes);
                self.obs.read_lat.record(service_ns);
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                self.stats.bytes_written += s.bytes;
                self.obs.writes.inc();
                self.obs.bytes_written.add(s.bytes);
                self.obs.write_lat.record(service_ns);
                if s.sync {
                    self.stats.sync_writes += 1;
                    self.obs.sync_writes.inc();
                }
            }
        }

        let label = std::mem::take(&mut self.next_label);
        self.trace.record(AccessRecord {
            kind: s.kind,
            sector: s.sector,
            bytes: s.bytes,
            sync: s.sync,
            sequential: s.sequential,
            issued_at_ns: s.issued_at_ns,
            service_ns,
            label,
        });
    }

    /// Evaluates the armed crash plan against the write that is about to
    /// persist. Returns `Some(persisted_bytes)` if the crash fires; the
    /// caller must stop with [`DiskError::Crashed`] after applying the
    /// prefix. On a crash every held and still-queued write is lost.
    fn crash_check(&mut self, sector: u64, len: usize) -> Option<usize> {
        // Writes are numbered in persist order — globally, across every
        // disk sharing the counter, when one is installed.
        let this_write = match &self.shared_write_index {
            Some(counter) => counter.fetch_add(1, Ordering::Relaxed),
            None => self.write_index,
        };
        self.write_index += 1;
        let plan = self.crash_plan?;
        if this_write != plan.crash_at_write {
            return None;
        }
        self.crashed = true;
        let persisted = match plan.mode {
            FaultMode::DropWrite | FaultMode::ReorderWindow { .. } => 0,
            // A torn write must actually tear: at least the final sector
            // of the triggering request is lost, whatever `sectors` says,
            // so the plan is never indistinguishable from no fault.
            FaultMode::TornWrite { sectors } => {
                (sectors as usize * SECTOR_SIZE).min(len.saturating_sub(SECTOR_SIZE))
            }
        };
        let held_lost = self.held.len();
        let queued_lost = self.pending.len();
        self.held.clear();
        self.pending.clear();
        self.obs.registry.event(
            self.clock.now_ns(),
            "crash",
            format!(
                "write_index={this_write} sector={sector} persisted_bytes={persisted} \
                 held_lost={held_lost} queued_lost={queued_lost}"
            ),
        );
        Some(persisted)
    }

    /// Applies the armed media-fault plan to a read of `count` sectors at
    /// `sector`. Consumes one attempt from transient faults in the range.
    ///
    /// Returns `Ok(rotted)` — the sectors whose bytes must be corrupted in
    /// the output — or `Err(Unreadable)` when a latent/transient fault in
    /// the range fails the whole request. Counters and trace events are
    /// recorded here.
    fn media_read_check(&mut self, sector: u64, count: u64) -> DiskResult<Vec<u64>> {
        self.dead_check(sector)?;
        let outcome = match self.media_faults.as_mut() {
            Some(plan) => plan.on_read(sector, count),
            None => return Ok(Vec::new()),
        };
        match outcome {
            ReadOutcome::Ok { rotted } => {
                if !rotted.is_empty() {
                    self.obs.faults_rot_reads.inc();
                }
                Ok(rotted)
            }
            ReadOutcome::Unreadable {
                sector: bad,
                transient,
            } => {
                if transient {
                    self.obs.faults_transient.inc();
                } else {
                    self.obs.faults_unreadable.inc();
                }
                self.obs.registry.event(
                    self.clock.now_ns(),
                    "media-fault",
                    format!("unreadable sector={bad} transient={transient}"),
                );
                Err(DiskError::Unreadable { sector: bad })
            }
        }
    }

    /// XORs each rotted sector's bytes in `buf` (a buffer starting at
    /// `base_sector`) with the plan's deterministic corruption mask.
    fn apply_rot(&self, base_sector: u64, buf: &mut [u8], rotted: &[u64]) {
        let Some(plan) = self.media_faults.as_ref() else {
            return;
        };
        for &s in rotted {
            let mask = plan.rot_mask(s);
            let start = (s - base_sector) as usize * SECTOR_SIZE;
            for byte in &mut buf[start..start + SECTOR_SIZE] {
                *byte ^= mask;
            }
        }
    }

    /// Clears media faults covered by a persisted write (sector remap).
    fn media_write_clear(&mut self, sector: u64, count: u64) {
        let cleared = match self.media_faults.as_mut() {
            Some(plan) => plan.on_write(sector, count),
            None => return,
        };
        if cleared > 0 {
            self.obs.faults_cleared.add(cleared);
        }
    }

    // --- Asynchronous submit/complete path ------------------------------

    /// Queues a read of `bytes` bytes at `sector` without servicing it.
    ///
    /// Returns an id to pass to [`SimDisk::complete`]. Queued requests
    /// cost nothing until completed.
    pub fn submit_read(&mut self, sector: u64, bytes: usize) -> DiskResult<u64> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        check_request(sector, bytes, self.geometry.num_sectors)?;
        self.dead_check(sector)?;
        Ok(self.push_pending(AccessKind::Read, sector, bytes as u64, None))
    }

    /// Queues a write of `buf` at `sector` without servicing it.
    ///
    /// The payload reaches the platter only when [`SimDisk::complete`]
    /// services the request — **persistence order is completion order** —
    /// and a crash discards every still-queued submission.
    pub fn submit_write(&mut self, sector: u64, buf: &[u8]) -> DiskResult<u64> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        check_request(sector, buf.len(), self.geometry.num_sectors)?;
        self.dead_check(sector)?;
        Ok(self.push_pending(AccessKind::Write, sector, buf.len() as u64, Some(buf.to_vec())))
    }

    fn push_pending(
        &mut self,
        kind: AccessKind,
        sector: u64,
        bytes: u64,
        data: Option<Vec<u8>>,
    ) -> u64 {
        let id = self.next_io_id;
        self.next_io_id += 1;
        self.pending.push(SubmittedIo {
            id,
            kind,
            sector,
            bytes,
            submitted_at_ns: self.clock.now_ns(),
            data,
        });
        id
    }

    /// The queued requests, in submission order.
    pub fn pending(&self) -> &[SubmittedIo] {
        &self.pending
    }

    /// Number of queued requests.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Current head position (sector where the last request ended).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Virtual time at which the device becomes idle.
    pub fn busy_until_ns(&self) -> u64 {
        self.busy_until_ns
    }

    /// Merges queued write `back` into queued write `front`.
    ///
    /// `front` must end exactly where `back` starts; the merged request
    /// keeps `front`'s id and the earlier of the two submission times, so
    /// one head pass services both payloads (write coalescing).
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown, either request is a read, or the
    /// requests are not sector-adjacent.
    pub fn merge_pending(&mut self, front: u64, back: u64) {
        let back_pos = self
            .pending
            .iter()
            .position(|p| p.id == back)
            .expect("merge_pending: unknown back id");
        let back_req = self.pending.remove(back_pos);
        let front_req = self
            .pending
            .iter_mut()
            .find(|p| p.id == front)
            .expect("merge_pending: unknown front id");
        assert_eq!(front_req.kind, AccessKind::Write, "merge_pending: front is a read");
        assert_eq!(back_req.kind, AccessKind::Write, "merge_pending: back is a read");
        assert_eq!(
            front_req.end_sector(),
            back_req.sector,
            "merge_pending: requests are not adjacent"
        );
        front_req
            .data
            .as_mut()
            .expect("write without payload")
            .extend_from_slice(back_req.data.as_deref().expect("write without payload"));
        front_req.bytes += back_req.bytes;
        front_req.submitted_at_ns = front_req.submitted_at_ns.min(back_req.submitted_at_ns);
        self.stats.coalesced += 1;
        self.obs.coalesced.inc();
    }

    /// Replaces the payload of queued write `id` with `buf` (same length).
    ///
    /// Models write absorption: a later write to the same range updates
    /// the queued request in place instead of queueing a second transfer.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown, is a read, or `buf` has a different
    /// length than the queued request.
    pub fn absorb_pending(&mut self, id: u64, buf: &[u8]) {
        let req = self
            .pending
            .iter_mut()
            .find(|p| p.id == id)
            .expect("absorb_pending: unknown id");
        assert_eq!(req.kind, AccessKind::Write, "absorb_pending: target is a read");
        assert_eq!(req.bytes, buf.len() as u64, "absorb_pending: length mismatch");
        req.data.as_mut().expect("write without payload").copy_from_slice(buf);
    }

    /// Services queued request `id`: the head seeks to it, the payload
    /// moves, and the request is accounted exactly once.
    ///
    /// Service starts when the device is free **and** the request has
    /// been submitted (`start = max(busy_until, submitted_at)`); the gap
    /// between submission and start is queue wait, which accumulates in
    /// [`IoStats::queue_wait_ns`] — never in busy time. The clock is
    /// *not* advanced: the caller decides whether anyone waited. `sync`
    /// only tags the completion for statistics and tracing.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a queued request.
    pub fn complete(&mut self, id: u64, sync: bool) -> DiskResult<IoCompletion> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        let pos = self
            .pending
            .iter()
            .position(|p| p.id == id)
            .expect("complete: unknown io id");
        let req = self.pending.remove(pos);

        let media = match req.kind {
            AccessKind::Write => {
                self.dead_check(req.sector)?;
                if let Some(persisted) = self.crash_check(req.sector, req.bytes as usize) {
                    let start = req.sector as usize * SECTOR_SIZE;
                    let data = req.data.as_deref().expect("write without payload");
                    self.data[start..start + persisted].copy_from_slice(&data[..persisted]);
                    return Err(DiskError::Crashed);
                }
                self.media_write_clear(req.sector, req.bytes / SECTOR_SIZE as u64);
                Ok(Vec::new())
            }
            // The attempt consumes a transient failure even though the
            // request is accounted below before the error surfaces.
            AccessKind::Read => self.media_read_check(req.sector, req.bytes / SECTOR_SIZE as u64),
        };

        let start_ns = self.busy_until_ns.max(req.submitted_at_ns);
        let wait_ns = start_ns - req.submitted_at_ns;
        let (seek_ns, rotation_ns, transfer_ns, sequential) = self.service(req.sector, req.bytes);
        let stall_ns =
            self.latency_fault_ns(start_ns, seek_ns + rotation_ns + transfer_ns, req.sector);
        let service_ns = seek_ns + rotation_ns + transfer_ns + stall_ns;
        let finish_ns = start_ns + service_ns;
        self.busy_until_ns = finish_ns;

        let offset = req.sector as usize * SECTOR_SIZE;
        let data = match req.kind {
            AccessKind::Write => {
                let payload = req.data.as_deref().expect("write without payload");
                self.data[offset..offset + payload.len()].copy_from_slice(payload);
                None
            }
            AccessKind::Read => {
                let mut out = self.data[offset..offset + req.bytes as usize].to_vec();
                if let Ok(rotted) = &media {
                    self.apply_rot(req.sector, &mut out, rotted);
                }
                Some(out)
            }
        };

        self.stats.queue_wait_ns += wait_ns;
        self.obs.queue_wait_ns.add(wait_ns);
        self.record_serviced(Serviced {
            kind: req.kind,
            sector: req.sector,
            bytes: req.bytes,
            sync,
            issued_at_ns: req.submitted_at_ns,
            seek_ns,
            rotation_ns,
            transfer_ns,
            stall_ns,
            sequential,
        });

        // The head travelled and the attempt was accounted; only now
        // does an unreadable sector surface to the caller.
        media?;

        Ok(IoCompletion {
            id: req.id,
            kind: req.kind,
            sector: req.sector,
            bytes: req.bytes,
            submitted_at_ns: req.submitted_at_ns,
            start_ns,
            finish_ns,
            service_ns,
            wait_ns,
            sequential,
            data,
        })
    }
}

impl BlockDevice for SimDisk {
    fn num_sectors(&self) -> u64 {
        self.geometry.num_sectors
    }

    fn read(&mut self, sector: u64, buf: &mut [u8]) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        let count = check_request(sector, buf.len(), self.geometry.num_sectors)?;
        let media = self.media_read_check(sector, count);
        let start = sector as usize * SECTOR_SIZE;
        buf.copy_from_slice(&self.data[start..start + buf.len()]);
        if let Ok(rotted) = &media {
            // Bit-rot lives on the platter, so it applies before the
            // volatile-cache overlay: held data is still pristine.
            self.apply_rot(sector, buf, rotted);
        }
        // The volatile write cache serves reads of data it still holds
        // (overlay in FIFO order so later writes win).
        let read_range = start..start + buf.len();
        for (held_sector, held_data) in &self.held {
            let held_start = *held_sector as usize * SECTOR_SIZE;
            let held_range = held_start..held_start + held_data.len();
            let lo = read_range.start.max(held_range.start);
            let hi = read_range.end.min(held_range.end);
            if lo < hi {
                buf[lo - read_range.start..hi - read_range.start]
                    .copy_from_slice(&held_data[lo - held_range.start..hi - held_range.start]);
            }
        }
        // Reads are always synchronous: the caller needs the data. The
        // head travels to the bad sector even when the read fails, so
        // the request is accounted before any media error surfaces.
        self.account(AccessKind::Read, sector, buf.len() as u64, true);
        media.map(|_| ())
    }

    fn write(&mut self, sector: u64, buf: &[u8], sync: bool) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        check_request(sector, buf.len(), self.geometry.num_sectors)?;
        self.dead_check(sector)?;

        if let Some(persisted) = self.crash_check(sector, buf.len()) {
            // Power failed mid-request; the caller observes an error.
            let start = sector as usize * SECTOR_SIZE;
            self.data[start..start + persisted].copy_from_slice(&buf[..persisted]);
            return Err(DiskError::Crashed);
        }
        // An accepted write remaps its sectors: media faults clear.
        self.media_write_clear(sector, buf.len() as u64 / SECTOR_SIZE as u64);

        if let Some(CrashPlan {
            mode: FaultMode::ReorderWindow { window },
            ..
        }) = self.crash_plan
        {
            if !sync {
                // Volatile write cache: the drive acks (and is charged)
                // now, but the payload stays off the platter until it
                // ages out of the window or a flush drains it.
                self.account(AccessKind::Write, sector, buf.len() as u64, false);
                self.held.push_back((sector, buf.to_vec()));
                while self.held.len() > window {
                    let (held_sector, held_data) = self.held.pop_front().expect("non-empty");
                    let start = held_sector as usize * SECTOR_SIZE;
                    self.data[start..start + held_data.len()].copy_from_slice(&held_data);
                }
                return Ok(());
            }
            // Synchronous writes are force-unit-access: they persist
            // immediately, without draining older held writes.
        }

        let start = sector as usize * SECTOR_SIZE;
        self.data[start..start + buf.len()].copy_from_slice(buf);
        self.account(AccessKind::Write, sector, buf.len() as u64, sync);
        Ok(())
    }

    fn flush(&mut self) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        // Service still-queued submissions in submission order, then
        // drain the volatile cache: flush is the durability barrier.
        while let Some(front) = self.pending.first() {
            let id = front.id;
            self.complete(id, false)?;
        }
        while let Some((sector, data)) = self.held.pop_front() {
            let start = sector as usize * SECTOR_SIZE;
            self.data[start..start + data.len()].copy_from_slice(&data);
        }
        self.clock.advance_to_ns(self.busy_until_ns);
        Ok(())
    }

    fn annotate(&mut self, label: &'static str) {
        self.next_label = label;
    }

    fn attach_obs(&mut self, registry: &Registry) {
        self.obs.rehome(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_disk() -> SimDisk {
        SimDisk::new(DiskGeometry::tiny_test(1024), Clock::new())
    }

    #[test]
    fn data_round_trips() {
        let mut disk = small_disk();
        let payload = vec![0x5A; SECTOR_SIZE * 4];
        disk.write(10, &payload, true).unwrap();
        let mut out = vec![0; SECTOR_SIZE * 4];
        disk.read(10, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn killed_media_rejects_all_io_until_replaced() {
        let mut disk = small_disk();
        disk.write(10, &vec![0x5A; SECTOR_SIZE], true).unwrap();
        disk.kill_media();
        assert!(disk.is_dead());
        let mut out = vec![0; SECTOR_SIZE];
        assert_eq!(
            disk.read(10, &mut out),
            Err(DiskError::Unreadable { sector: 10 })
        );
        assert_eq!(
            disk.write(20, &vec![1; SECTOR_SIZE], true),
            Err(DiskError::Unreadable { sector: 20 })
        );
        assert_eq!(
            disk.submit_read(10, SECTOR_SIZE),
            Err(DiskError::Unreadable { sector: 10 })
        );
        assert_eq!(
            disk.submit_write(10, &vec![2; SECTOR_SIZE]),
            Err(DiskError::Unreadable { sector: 10 })
        );
        // A dead drive never consumes crash-plan persist slots: only
        // the one pre-kill write counted.
        assert_eq!(disk.write_index, 1);

        disk.replace_media();
        assert!(!disk.is_dead());
        disk.read(10, &mut out).unwrap();
        assert_eq!(out, vec![0; SECTOR_SIZE], "replacement drive is blank");
        disk.write(10, &vec![7; SECTOR_SIZE], true).unwrap();
        disk.read(10, &mut out).unwrap();
        assert_eq!(out, vec![7; SECTOR_SIZE]);
    }

    #[test]
    fn kill_media_discards_queued_submissions() {
        let mut disk = small_disk();
        disk.submit_write(4, &vec![9; SECTOR_SIZE]).unwrap();
        assert_eq!(disk.pending_len(), 1);
        disk.kill_media();
        assert_eq!(disk.pending_len(), 0, "queued IO dies with the media");
    }

    #[test]
    fn sync_write_advances_clock_async_does_not() {
        let mut disk = small_disk();
        let buf = vec![0; SECTOR_SIZE];
        let clock = Arc::clone(disk.clock());

        disk.write(100, &buf, false).unwrap();
        assert_eq!(clock.now_ns(), 0, "async write must not stall the CPU");

        disk.write(500, &buf, true).unwrap();
        assert!(clock.now_ns() > 0, "sync write must stall the CPU");
    }

    #[test]
    fn flush_waits_for_queued_writes() {
        let mut disk = small_disk();
        let buf = vec![0; SECTOR_SIZE * 8];
        let clock = Arc::clone(disk.clock());
        disk.write(0, &buf, false).unwrap();
        disk.write(512, &buf, false).unwrap();
        assert_eq!(clock.now_ns(), 0);
        disk.flush().unwrap();
        let after_flush = clock.now_ns();
        assert!(after_flush > 0);
        // Flushing again is free.
        disk.flush().unwrap();
        assert_eq!(clock.now_ns(), after_flush);
    }

    #[test]
    fn sequential_requests_skip_the_seek() {
        let mut disk = small_disk();
        let buf = vec![0; SECTOR_SIZE];
        disk.write(0, &buf, true).unwrap();
        disk.write(1, &buf, true).unwrap(); // Continues at the head.
        disk.write(700, &buf, true).unwrap(); // Random.
                                              // The head starts at sector 0, so the first write is sequential too.
        assert_eq!(disk.stats().sequential, 2);
        assert_eq!(disk.stats().seeks, 1);
    }

    #[test]
    fn sequential_transfer_is_much_faster_per_byte() {
        let geometry = DiskGeometry::wren_iv();
        let clock = Clock::new();
        let mut disk = SimDisk::new(geometry.clone(), Arc::clone(&clock));

        // One 1 MB sequential write.
        let megabyte = vec![0; 1 << 20];
        disk.write(0, &megabyte, true).unwrap();
        let sequential_ns = clock.now_ns();

        // 256 scattered 4 KB writes of the same total volume.
        let four_kb = vec![0; 4096];
        let before = clock.now_ns();
        for i in 0..256u64 {
            // Stride far enough apart to force seeks.
            disk.write(10_000 + i * 1_000, &four_kb, true).unwrap();
        }
        let random_ns = clock.now_ns() - before;

        assert!(
            random_ns > 5 * sequential_ns,
            "random ({random_ns} ns) should be much slower than sequential ({sequential_ns} ns)"
        );
    }

    #[test]
    fn crash_drop_discards_the_triggering_write() {
        let mut disk = small_disk();
        let ones = vec![1; SECTOR_SIZE];
        disk.write(0, &ones, true).unwrap();
        disk.arm_crash(CrashPlan::drop_at(1));
        let twos = vec![2; SECTOR_SIZE];
        assert_eq!(disk.write(0, &twos, true), Err(DiskError::Crashed));
        assert!(disk.has_crashed());
        // Everything after the crash fails.
        let mut buf = vec![0; SECTOR_SIZE];
        assert_eq!(disk.read(0, &mut buf), Err(DiskError::Crashed));
        // The surviving image still holds the first write.
        assert_eq!(&disk.into_image()[..SECTOR_SIZE], &ones[..]);
    }

    #[test]
    fn crash_tear_persists_a_prefix() {
        let mut disk = small_disk();
        disk.arm_crash(CrashPlan::tear_at(0, 1));
        let payload: Vec<u8> = (0..SECTOR_SIZE * 3)
            .map(|i| (i / SECTOR_SIZE) as u8 + 1)
            .collect();
        assert_eq!(disk.write(5, &payload, false), Err(DiskError::Crashed));
        let image = disk.into_image();
        let start = 5 * SECTOR_SIZE;
        assert_eq!(&image[start..start + SECTOR_SIZE], &payload[..SECTOR_SIZE]);
        assert_eq!(
            &image[start + SECTOR_SIZE..start + 2 * SECTOR_SIZE],
            &vec![0; SECTOR_SIZE][..],
            "torn sectors must not persist"
        );
    }

    #[test]
    fn crash_tear_with_oversized_sector_count_still_tears() {
        // Regression: `sectors >= request length` used to persist the
        // whole write, making the torn plan indistinguishable from no
        // fault. At least the final sector must always be lost.
        let mut disk = small_disk();
        disk.arm_crash(CrashPlan::tear_at(0, 1000));
        let payload = vec![0xAB; SECTOR_SIZE * 3];
        assert_eq!(disk.write(5, &payload, true), Err(DiskError::Crashed));
        let image = disk.into_image();
        let start = 5 * SECTOR_SIZE;
        assert_eq!(
            &image[start..start + 2 * SECTOR_SIZE],
            &payload[..2 * SECTOR_SIZE],
            "leading sectors persist"
        );
        assert_eq!(
            &image[start + 2 * SECTOR_SIZE..start + 3 * SECTOR_SIZE],
            &vec![0; SECTOR_SIZE][..],
            "the final sector of an oversized tear must be lost"
        );
    }

    #[test]
    fn crash_tear_of_single_sector_write_drops_it() {
        let mut disk = small_disk();
        disk.arm_crash(CrashPlan::tear_at(0, 7));
        assert_eq!(
            disk.write(9, &vec![0xCD; SECTOR_SIZE], true),
            Err(DiskError::Crashed)
        );
        let image = disk.into_image();
        assert_eq!(
            &image[9 * SECTOR_SIZE..10 * SECTOR_SIZE],
            &vec![0; SECTOR_SIZE][..]
        );
    }

    #[test]
    fn latent_media_fault_fails_reads_until_rewritten() {
        let mut disk = small_disk();
        disk.write(20, &vec![7; SECTOR_SIZE * 2], true).unwrap();
        disk.inject_media_faults(MediaFaultPlan::new(9).latent(21));
        let mut buf = vec![0; SECTOR_SIZE * 2];
        assert_eq!(
            disk.read(20, &mut buf),
            Err(DiskError::Unreadable { sector: 21 })
        );
        // The attempt was accounted: the head travelled to the sector.
        assert_eq!(disk.stats().reads, 1);
        assert_eq!(disk.obs().snapshot().counter("faults.unreadable_reads"), 1);
        // A read not touching the sector is clean.
        let mut one = vec![0; SECTOR_SIZE];
        disk.read(20, &mut one).unwrap();
        assert_eq!(one, vec![7; SECTOR_SIZE]);
        // A rewrite remaps the sector; reads succeed again.
        disk.write(21, &vec![8; SECTOR_SIZE], true).unwrap();
        disk.read(20, &mut buf).unwrap();
        assert_eq!(&buf[SECTOR_SIZE..], &vec![8; SECTOR_SIZE][..]);
        assert_eq!(disk.obs().snapshot().counter("faults.cleared_by_write"), 1);
        assert!(disk.media_faults().unwrap().is_empty());
    }

    #[test]
    fn transient_media_fault_succeeds_after_k_retries() {
        let mut disk = small_disk();
        disk.write(4, &vec![3; SECTOR_SIZE], true).unwrap();
        disk.inject_media_faults(MediaFaultPlan::new(1).transient(4, 2));
        let mut buf = vec![0; SECTOR_SIZE];
        assert_eq!(disk.read(4, &mut buf), Err(DiskError::Unreadable { sector: 4 }));
        assert_eq!(disk.read(4, &mut buf), Err(DiskError::Unreadable { sector: 4 }));
        disk.read(4, &mut buf).unwrap();
        assert_eq!(buf, vec![3; SECTOR_SIZE]);
        assert_eq!(disk.obs().snapshot().counter("faults.transient_errors"), 2);
    }

    #[test]
    fn rot_corrupts_reads_deterministically_and_silently() {
        let mut disk = small_disk();
        disk.write(40, &vec![0x55; SECTOR_SIZE * 2], true).unwrap();
        disk.inject_media_faults(MediaFaultPlan::new(77).rot(41));
        let mut a = vec![0; SECTOR_SIZE * 2];
        disk.read(40, &mut a).unwrap();
        assert_eq!(&a[..SECTOR_SIZE], &vec![0x55; SECTOR_SIZE][..]);
        assert_ne!(&a[SECTOR_SIZE..], &vec![0x55; SECTOR_SIZE][..], "rotted sector is corrupt");
        // Deterministic: a second read returns the same corrupt bytes.
        let mut b = vec![0; SECTOR_SIZE * 2];
        disk.read(40, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(disk.obs().snapshot().counter("faults.rot_reads"), 2);
        // The platter itself is untouched; rewriting clears the rot.
        disk.write(41, &vec![0x66; SECTOR_SIZE], true).unwrap();
        disk.read(40, &mut a).unwrap();
        assert_eq!(&a[SECTOR_SIZE..], &vec![0x66; SECTOR_SIZE][..]);
    }

    #[test]
    fn media_faults_apply_on_the_submit_complete_path() {
        let mut disk = small_disk();
        disk.write(10, &vec![1; SECTOR_SIZE], true).unwrap();
        disk.write(12, &vec![4; SECTOR_SIZE], true).unwrap();
        // Arm after the writes: a write to a faulted sector would clear it.
        disk.inject_media_faults(MediaFaultPlan::new(5).transient(10, 1).rot(12));

        let r = disk.submit_read(10, SECTOR_SIZE).unwrap();
        assert_eq!(disk.complete(r, true), Err(DiskError::Unreadable { sector: 10 }));
        // The failed attempt was accounted and consumed the transient.
        assert_eq!(disk.stats().reads, 1);
        let retry = disk.submit_read(10, SECTOR_SIZE).unwrap();
        let done = disk.complete(retry, true).unwrap();
        assert_eq!(done.data.as_deref(), Some(&vec![1; SECTOR_SIZE][..]));

        let r2 = disk.submit_read(12, SECTOR_SIZE).unwrap();
        let done2 = disk.complete(r2, true).unwrap();
        assert_ne!(done2.data.as_deref(), Some(&vec![4; SECTOR_SIZE][..]), "rot corrupts queued reads too");
    }

    #[test]
    fn fail_slow_inflates_service_and_accounts_stall_separately() {
        use crate::fault::FailSlowProfile;
        let mut disk = small_disk();
        let buf = vec![0; SECTOR_SIZE];
        // Healthy baseline: a random single-sector write, seek distance
        // 100 (head starts at 0).
        disk.write(100, &buf, true).unwrap();
        let healthy_ns = disk.clock().now_ns();
        assert_eq!(disk.stats().stall_ns, 0, "healthy media never stalls");

        // 4x multiplier from now on: the same shape of request takes 4x.
        disk.inject_media_faults(MediaFaultPlan::new(0).fail_slow(
            FailSlowProfile::at(disk.clock().now_ns()).with_multiplier_pct(400),
        ));
        let before = disk.clock().now_ns();
        // Head is at 101; sector 201 repeats the same 100-sector seek.
        disk.write(201, &buf, true).unwrap();
        let slow_ns = disk.clock().now_ns() - before;
        // Identical seek distance, rotation, and transfer, so the 4x
        // shows through exactly.
        assert_eq!(slow_ns, 4 * healthy_ns);

        let stats = disk.stats();
        assert_eq!(stats.stall_ns, 3 * healthy_ns, "the extra 3x is stall");
        // The busy decomposition stays exact with the stall component.
        assert_eq!(
            stats.seek_ns + stats.rotation_ns + stats.transfer_ns + stats.stall_ns,
            stats.busy_ns
        );
        let snap = disk.obs().snapshot();
        assert_eq!(snap.counter("disk.stall_ns"), stats.stall_ns);
        assert_eq!(
            snap.counter("disk.seek_ns")
                + snap.counter("disk.rotation_ns")
                + snap.counter("disk.transfer_ns")
                + snap.counter("disk.stall_ns"),
            snap.counter("disk.busy_ns")
        );
    }

    #[test]
    fn fail_slow_applies_on_the_submit_complete_path_and_estimate_is_exact() {
        use crate::fault::FailSlowProfile;
        let mut disk = small_disk();
        disk.write(10, &vec![6; SECTOR_SIZE], true).unwrap();
        disk.inject_media_faults(
            MediaFaultPlan::new(0)
                .fail_slow(FailSlowProfile::at(0).with_multiplier_pct(300).with_stalls(
                    1_000_000_000,
                    1_000_000,
                )),
        );
        let id = disk.submit_read(10, SECTOR_SIZE).unwrap();
        // The estimate sees the same start time complete() will use.
        let start = disk.busy_until_ns().max(disk.clock().now_ns());
        let est = disk.estimate_service_ns(start, 10, SECTOR_SIZE as u64);
        let done = disk.complete(id, true).unwrap();
        assert_eq!(done.service_ns, est, "estimate is exact for the next request");
        assert!(disk.stats().stall_ns > 0);
        assert_eq!(done.data.as_deref(), Some(&vec![6; SECTOR_SIZE][..]));
    }

    #[test]
    fn image_survives_into_new_disk() {
        let geometry = DiskGeometry::tiny_test(64);
        let mut disk = SimDisk::new(geometry.clone(), Clock::new());
        disk.write(3, &vec![9; SECTOR_SIZE], true).unwrap();
        let image = disk.into_image();
        let mut revived = SimDisk::from_image(geometry, Clock::new(), image);
        let mut buf = vec![0; SECTOR_SIZE];
        revived.read(3, &mut buf).unwrap();
        assert_eq!(buf, vec![9; SECTOR_SIZE]);
    }

    #[test]
    fn annotate_labels_the_next_traced_access() {
        let mut disk = small_disk();
        disk.trace_mut().enable();
        disk.annotate("inode");
        disk.write(0, &vec![0; SECTOR_SIZE], true).unwrap();
        disk.write(1, &vec![0; SECTOR_SIZE], true).unwrap();
        let records = disk.trace().records();
        assert_eq!(records[0].label, "inode");
        assert_eq!(records[1].label, "");
    }

    #[test]
    fn obs_mirrors_stats_and_decomposes_busy_time() {
        let mut disk = small_disk();
        disk.write(0, &vec![0; SECTOR_SIZE * 2], true).unwrap();
        disk.write(500, &vec![0; SECTOR_SIZE], false).unwrap();
        let mut buf = vec![0; SECTOR_SIZE];
        disk.read(7, &mut buf).unwrap();

        let snap = disk.obs().snapshot();
        let stats = disk.stats();
        assert_eq!(snap.counter("disk.reads"), stats.reads);
        assert_eq!(snap.counter("disk.writes"), stats.writes);
        assert_eq!(snap.counter("disk.busy_ns"), stats.busy_ns);
        // The decomposition is exact, in both reporting paths.
        assert_eq!(
            snap.counter("disk.seek_ns")
                + snap.counter("disk.rotation_ns")
                + snap.counter("disk.transfer_ns"),
            snap.counter("disk.busy_ns")
        );
        assert_eq!(
            stats.seek_ns + stats.rotation_ns + stats.transfer_ns,
            stats.busy_ns
        );
        // Every request lands in a service-time histogram.
        let read_lat = snap.hist("disk.read_service_ns").unwrap();
        let write_lat = snap.hist("disk.write_service_ns").unwrap();
        assert_eq!(read_lat.count, stats.reads);
        assert_eq!(write_lat.count, stats.writes);
        assert_eq!(read_lat.sum + write_lat.sum, stats.busy_ns);
    }

    #[test]
    fn attach_obs_carries_counts_into_shared_registry() {
        let mut disk = small_disk();
        disk.write(0, &vec![0; SECTOR_SIZE], true).unwrap();
        let shared = obs::Registry::new();
        disk.attach_obs(&shared);
        disk.write(1, &vec![0; SECTOR_SIZE], true).unwrap();
        assert_eq!(shared.snapshot().counter("disk.writes"), 2);
        // The disk now reports through the shared registry.
        shared.counter("probe").inc();
        assert_eq!(disk.obs().snapshot().counter("probe"), 1);
    }

    #[test]
    fn submit_complete_round_trips_data_and_accounts_once() {
        let mut disk = small_disk();
        let payload = vec![0xA5; SECTOR_SIZE * 2];
        let w = disk.submit_write(8, &payload).unwrap();
        // Nothing happens until completion: no stats, no platter change.
        assert_eq!(disk.stats().writes, 0);
        assert_eq!(&disk.image()[8 * SECTOR_SIZE..9 * SECTOR_SIZE], &[0u8; SECTOR_SIZE][..]);

        let done = disk.complete(w, false).unwrap();
        assert_eq!(done.sector, 8);
        assert_eq!(done.bytes, SECTOR_SIZE as u64 * 2);
        assert_eq!(disk.stats().writes, 1);
        assert_eq!(disk.stats().busy_ns, done.service_ns);

        let r = disk.submit_read(8, SECTOR_SIZE * 2).unwrap();
        let read_done = disk.complete(r, true).unwrap();
        assert_eq!(read_done.data.as_deref(), Some(&payload[..]));
        // Completion never advances the clock; the caller decides.
        assert_eq!(disk.clock().now_ns(), 0);
    }

    #[test]
    fn queue_wait_is_tracked_but_never_counts_as_busy() {
        let mut disk = small_disk();
        let buf = vec![0; SECTOR_SIZE];
        let a = disk.submit_write(100, &buf).unwrap();
        let b = disk.submit_write(700, &buf).unwrap();
        let c = disk.submit_write(300, &buf).unwrap();
        // Service out of submission order: b waits behind a, c behind both.
        let da = disk.complete(a, false).unwrap();
        let db = disk.complete(b, false).unwrap();
        let dc = disk.complete(c, false).unwrap();
        assert_eq!(da.wait_ns, 0);
        assert_eq!(db.wait_ns, da.service_ns);
        assert_eq!(dc.wait_ns, da.service_ns + db.service_ns);

        let stats = disk.stats();
        // Overlapped queueing must not double-count service time: the
        // busy decomposition stays exact at any queue depth, and queue
        // wait lives in its own counter.
        assert_eq!(stats.busy_ns, da.service_ns + db.service_ns + dc.service_ns);
        assert_eq!(stats.seek_ns + stats.rotation_ns + stats.transfer_ns, stats.busy_ns);
        assert_eq!(stats.queue_wait_ns, db.wait_ns + dc.wait_ns);
        let snap = disk.obs().snapshot();
        assert_eq!(snap.counter("disk.queue_wait_ns"), stats.queue_wait_ns);
    }

    #[test]
    fn merge_pending_coalesces_adjacent_writes_into_one_transfer() {
        let mut disk = small_disk();
        let a = disk.submit_write(10, &vec![1; SECTOR_SIZE]).unwrap();
        let b = disk.submit_write(11, &vec![2; SECTOR_SIZE]).unwrap();
        disk.merge_pending(a, b);
        assert_eq!(disk.pending_len(), 1);
        assert_eq!(disk.stats().coalesced, 1);

        let done = disk.complete(a, false).unwrap();
        assert_eq!(done.bytes, SECTOR_SIZE as u64 * 2);
        // One request, one head pass.
        assert_eq!(disk.stats().writes, 1);
        let image = disk.into_image();
        assert_eq!(&image[10 * SECTOR_SIZE..11 * SECTOR_SIZE], &vec![1; SECTOR_SIZE][..]);
        assert_eq!(&image[11 * SECTOR_SIZE..12 * SECTOR_SIZE], &vec![2; SECTOR_SIZE][..]);
    }

    #[test]
    fn absorb_pending_replaces_a_queued_payload() {
        let mut disk = small_disk();
        let w = disk.submit_write(5, &vec![1; SECTOR_SIZE]).unwrap();
        disk.absorb_pending(w, &vec![9; SECTOR_SIZE]);
        disk.complete(w, false).unwrap();
        assert_eq!(disk.stats().writes, 1, "absorption queues no second transfer");
        assert_eq!(&disk.into_image()[5 * SECTOR_SIZE..6 * SECTOR_SIZE], &vec![9; SECTOR_SIZE][..]);
    }

    #[test]
    fn completion_order_is_persistence_order() {
        let mut disk = small_disk();
        disk.arm_crash(CrashPlan::drop_at(u64::MAX)); // Never fires; counts writes.
        let a = disk.submit_write(10, &vec![1; SECTOR_SIZE]).unwrap();
        let b = disk.submit_write(20, &vec![2; SECTOR_SIZE]).unwrap();
        disk.complete(b, false).unwrap();
        disk.complete(a, false).unwrap();
        // write_index counts in persist order: b first, then a.
        assert_eq!(disk.stats().writes, 2);
    }

    #[test]
    fn flush_services_queued_submissions() {
        let mut disk = small_disk();
        let clock = Arc::clone(disk.clock());
        disk.submit_write(40, &vec![7; SECTOR_SIZE]).unwrap();
        disk.submit_write(50, &vec![8; SECTOR_SIZE]).unwrap();
        disk.flush().unwrap();
        assert_eq!(disk.pending_len(), 0);
        assert!(clock.now_ns() > 0);
        assert_eq!(&disk.image()[40 * SECTOR_SIZE..40 * SECTOR_SIZE + 1], &[7][..]);
        assert_eq!(&disk.image()[50 * SECTOR_SIZE..50 * SECTOR_SIZE + 1], &[8][..]);
    }

    #[test]
    fn crash_at_completion_discards_queued_submissions() {
        let mut disk = small_disk();
        disk.arm_crash(CrashPlan::drop_at(0));
        let a = disk.submit_write(10, &vec![1; SECTOR_SIZE]).unwrap();
        let _b = disk.submit_write(20, &vec![2; SECTOR_SIZE]).unwrap();
        assert_eq!(disk.complete(a, false), Err(DiskError::Crashed));
        assert!(disk.has_crashed());
        let image = disk.into_image();
        assert_eq!(&image[10 * SECTOR_SIZE..11 * SECTOR_SIZE], &[0u8; SECTOR_SIZE][..]);
        assert_eq!(&image[20 * SECTOR_SIZE..21 * SECTOR_SIZE], &[0u8; SECTOR_SIZE][..]);
    }

    #[test]
    fn reorder_window_holds_async_writes_until_flush() {
        let mut disk = small_disk();
        disk.arm_crash(CrashPlan::reorder_at(u64::MAX, 4));
        let ones = vec![1; SECTOR_SIZE];
        disk.write(30, &ones, false).unwrap();
        // Held, not on the platter — but reads still see it (cache hit).
        assert_eq!(&disk.image()[30 * SECTOR_SIZE..30 * SECTOR_SIZE + 1], &[0][..]);
        let mut buf = vec![0; SECTOR_SIZE];
        disk.read(30, &mut buf).unwrap();
        assert_eq!(buf, ones);
        // Flush is the durability barrier.
        disk.flush().unwrap();
        assert_eq!(&disk.image()[30 * SECTOR_SIZE..31 * SECTOR_SIZE], &ones[..]);
    }

    #[test]
    fn reorder_window_ages_out_oldest_write() {
        let mut disk = small_disk();
        disk.arm_crash(CrashPlan::reorder_at(u64::MAX, 2));
        for i in 0..3u64 {
            disk.write(10 + i, &vec![i as u8 + 1; SECTOR_SIZE], false).unwrap();
        }
        // Window of 2: the oldest write (sector 10) aged out to the platter.
        assert_eq!(&disk.image()[10 * SECTOR_SIZE..10 * SECTOR_SIZE + 1], &[1][..]);
        assert_eq!(&disk.image()[11 * SECTOR_SIZE..11 * SECTOR_SIZE + 1], &[0][..]);
    }

    #[test]
    fn reorder_window_crash_loses_held_writes_but_not_synced_ones() {
        let mut disk = small_disk();
        disk.arm_crash(CrashPlan::reorder_at(3, 8));
        let synced = vec![9; SECTOR_SIZE];
        disk.write(5, &synced, true).unwrap(); // write 0: durable (FUA)
        disk.write(10, &vec![1; SECTOR_SIZE], false).unwrap(); // write 1: held
        disk.write(11, &vec![2; SECTOR_SIZE], false).unwrap(); // write 2: held
        assert_eq!(
            disk.write(12, &vec![3; SECTOR_SIZE], false),
            Err(DiskError::Crashed) // write 3: trigger
        );
        let image = disk.into_image();
        assert_eq!(&image[5 * SECTOR_SIZE..6 * SECTOR_SIZE], &synced[..]);
        for sector in [10usize, 11, 12] {
            assert_eq!(
                &image[sector * SECTOR_SIZE..sector * SECTOR_SIZE + 1],
                &[0][..],
                "held/triggering write to sector {sector} must be lost"
            );
        }
    }

    #[test]
    fn stats_track_bytes_and_sync() {
        let mut disk = small_disk();
        disk.write(0, &vec![0; SECTOR_SIZE * 2], true).unwrap();
        disk.write(50, &vec![0; SECTOR_SIZE], false).unwrap();
        let mut buf = vec![0; SECTOR_SIZE];
        disk.read(0, &mut buf).unwrap();
        let stats = disk.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.sync_writes, 1);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.bytes_written, SECTOR_SIZE as u64 * 3);
        assert_eq!(stats.bytes_read, SECTOR_SIZE as u64);
    }
}
