//! The mechanically modelled disk simulator.

use std::sync::Arc;

use obs::{Counter, Hist, Registry};

use crate::clock::Clock;
use crate::device::{check_request, BlockDevice, DiskError, DiskResult};
use crate::fault::{CrashPlan, FaultMode};
use crate::geometry::DiskGeometry;
use crate::stats::{AccessKind, AccessRecord, AccessTrace, IoStats};
use crate::SECTOR_SIZE;

/// The disk's handles into an [`obs::Registry`]: request counts, the
/// seek / rotation / transfer busy-time decomposition, and per-request
/// service-time histograms split by direction.
#[derive(Debug, Clone)]
struct DiskObs {
    registry: Registry,
    reads: Counter,
    writes: Counter,
    sync_writes: Counter,
    seeks: Counter,
    sequential: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    busy_ns: Counter,
    seek_ns: Counter,
    rotation_ns: Counter,
    transfer_ns: Counter,
    read_lat: Hist,
    write_lat: Hist,
}

impl DiskObs {
    fn from_registry(registry: &Registry) -> Self {
        DiskObs {
            registry: registry.clone(),
            reads: registry.counter("disk.reads"),
            writes: registry.counter("disk.writes"),
            sync_writes: registry.counter("disk.sync_writes"),
            seeks: registry.counter("disk.seeks"),
            sequential: registry.counter("disk.sequential"),
            bytes_read: registry.counter("disk.bytes_read"),
            bytes_written: registry.counter("disk.bytes_written"),
            busy_ns: registry.counter("disk.busy_ns"),
            seek_ns: registry.counter("disk.seek_ns"),
            rotation_ns: registry.counter("disk.rotation_ns"),
            transfer_ns: registry.counter("disk.transfer_ns"),
            read_lat: registry.hist("disk.read_service_ns"),
            write_lat: registry.hist("disk.write_service_ns"),
        }
    }

    /// Re-homes every instrument into `registry`, carrying counts over.
    fn rehome(&mut self, registry: &Registry) {
        self.registry = registry.clone();
        self.reads = registry.adopt_counter("disk.reads", &self.reads);
        self.writes = registry.adopt_counter("disk.writes", &self.writes);
        self.sync_writes = registry.adopt_counter("disk.sync_writes", &self.sync_writes);
        self.seeks = registry.adopt_counter("disk.seeks", &self.seeks);
        self.sequential = registry.adopt_counter("disk.sequential", &self.sequential);
        self.bytes_read = registry.adopt_counter("disk.bytes_read", &self.bytes_read);
        self.bytes_written = registry.adopt_counter("disk.bytes_written", &self.bytes_written);
        self.busy_ns = registry.adopt_counter("disk.busy_ns", &self.busy_ns);
        self.seek_ns = registry.adopt_counter("disk.seek_ns", &self.seek_ns);
        self.rotation_ns = registry.adopt_counter("disk.rotation_ns", &self.rotation_ns);
        self.transfer_ns = registry.adopt_counter("disk.transfer_ns", &self.transfer_ns);
        self.read_lat = registry.adopt_hist("disk.read_service_ns", &self.read_lat);
        self.write_lat = registry.adopt_hist("disk.write_service_ns", &self.write_lat);
    }
}

/// A disk with a seek + rotation + transfer cost model over a virtual clock.
///
/// The device behaves as a single-server queue. Every request is serviced
/// after the previous one finishes:
///
/// * A request that starts exactly where the previous request ended is
///   **sequential**: the head is already positioned, so it pays only
///   transfer time. This is what makes LFS's segment-sized writes an
///   order of magnitude cheaper per byte than FFS's scattered updates.
/// * Any other request is **random**: it pays a distance-dependent seek
///   plus average rotational latency plus transfer time.
///
/// Synchronous requests (all reads, and writes with `sync = true`) advance
/// the shared [`Clock`] to their completion time — the caller waits.
/// Asynchronous writes only push out the device's busy horizon; the virtual
/// CPU keeps running. [`BlockDevice::flush`] waits for the horizon, which is
/// how the harness closes a measurement phase.
#[derive(Debug)]
pub struct SimDisk {
    geometry: DiskGeometry,
    clock: Arc<Clock>,
    data: Vec<u8>,
    stats: IoStats,
    trace: AccessTrace,
    /// Sector where the previous request ended (head position proxy).
    head: u64,
    /// Virtual time at which the device becomes idle.
    busy_until_ns: u64,
    /// Number of write requests serviced so far (for fault injection).
    write_index: u64,
    crash_plan: Option<CrashPlan>,
    crashed: bool,
    next_label: &'static str,
    obs: DiskObs,
}

impl SimDisk {
    /// Creates a zero-filled simulated disk.
    pub fn new(geometry: DiskGeometry, clock: Arc<Clock>) -> Self {
        let bytes = geometry.num_sectors as usize * SECTOR_SIZE;
        Self {
            geometry,
            clock,
            data: vec![0; bytes],
            stats: IoStats::default(),
            trace: AccessTrace::default(),
            head: 0,
            busy_until_ns: 0,
            write_index: 0,
            crash_plan: None,
            crashed: false,
            next_label: "",
            obs: DiskObs::from_registry(&Registry::new()),
        }
    }

    /// Creates a simulated disk over an existing image (e.g. after a crash).
    ///
    /// # Panics
    ///
    /// Panics if the image size does not match the geometry.
    pub fn from_image(geometry: DiskGeometry, clock: Arc<Clock>, image: Vec<u8>) -> Self {
        assert_eq!(
            image.len(),
            geometry.num_sectors as usize * SECTOR_SIZE,
            "image size does not match geometry"
        );
        let mut disk = Self::new(geometry, clock);
        disk.data = image;
        disk
    }

    /// Returns the geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// Returns the shared clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Returns accumulated I/O statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Returns the registry this disk currently reports into.
    pub fn obs(&self) -> &Registry {
        &self.obs.registry
    }

    /// Resets accumulated I/O statistics (head position is kept).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Returns the access trace.
    pub fn trace(&self) -> &AccessTrace {
        &self.trace
    }

    /// Returns the access trace mutably (to enable/clear it).
    pub fn trace_mut(&mut self) -> &mut AccessTrace {
        &mut self.trace
    }

    /// Arms a crash plan. See [`CrashPlan`].
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        self.crash_plan = Some(plan);
    }

    /// Returns true if the armed crash has triggered.
    pub fn has_crashed(&self) -> bool {
        self.crashed
    }

    /// Consumes the disk and returns the surviving raw image.
    pub fn into_image(self) -> Vec<u8> {
        self.data
    }

    /// Borrows the raw image (what the platters currently hold).
    pub fn image(&self) -> &[u8] {
        &self.data
    }

    /// Computes the seek / rotation / transfer decomposition for a request
    /// and updates the head position. Returns
    /// `(seek_ns, rotation_ns, transfer_ns, was_sequential)`.
    fn service(&mut self, sector: u64, bytes: u64) -> (u64, u64, u64, bool) {
        let sequential = sector == self.head;
        let (seek, rotation) = if sequential {
            (0, 0)
        } else {
            let distance = sector.abs_diff(self.head);
            (
                self.geometry.seek_ns(distance),
                self.geometry.avg_rotational_latency_ns(),
            )
        };
        let transfer = self.geometry.transfer_ns(bytes);
        self.head = sector + bytes / SECTOR_SIZE as u64;
        (seek, rotation, transfer, sequential)
    }

    /// Runs one request through the queue model and updates accounting.
    fn account(&mut self, kind: AccessKind, sector: u64, bytes: u64, sync: bool) -> (u64, bool) {
        let issued_at = self.clock.now_ns();
        let start = self.busy_until_ns.max(issued_at);
        let (seek_ns, rotation_ns, transfer_ns, sequential) = self.service(sector, bytes);
        let service_ns = seek_ns + rotation_ns + transfer_ns;
        self.busy_until_ns = start + service_ns;
        if sync {
            self.clock.advance_to_ns(self.busy_until_ns);
        }

        self.stats.busy_ns += service_ns;
        self.stats.seek_ns += seek_ns;
        self.stats.rotation_ns += rotation_ns;
        self.stats.transfer_ns += transfer_ns;
        self.obs.busy_ns.add(service_ns);
        self.obs.seek_ns.add(seek_ns);
        self.obs.rotation_ns.add(rotation_ns);
        self.obs.transfer_ns.add(transfer_ns);
        if sequential {
            self.stats.sequential += 1;
            self.obs.sequential.inc();
        } else {
            self.stats.seeks += 1;
            self.obs.seeks.inc();
        }
        match kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                self.stats.bytes_read += bytes;
                self.obs.reads.inc();
                self.obs.bytes_read.add(bytes);
                self.obs.read_lat.record(service_ns);
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                self.stats.bytes_written += bytes;
                self.obs.writes.inc();
                self.obs.bytes_written.add(bytes);
                self.obs.write_lat.record(service_ns);
                if sync {
                    self.stats.sync_writes += 1;
                    self.obs.sync_writes.inc();
                }
            }
        }

        let label = std::mem::take(&mut self.next_label);
        self.trace.record(AccessRecord {
            kind,
            sector,
            bytes,
            sync,
            sequential,
            issued_at_ns: issued_at,
            service_ns,
            label,
        });
        (service_ns, sequential)
    }
}

impl BlockDevice for SimDisk {
    fn num_sectors(&self) -> u64 {
        self.geometry.num_sectors
    }

    fn read(&mut self, sector: u64, buf: &mut [u8]) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        check_request(sector, buf.len(), self.geometry.num_sectors)?;
        let start = sector as usize * SECTOR_SIZE;
        buf.copy_from_slice(&self.data[start..start + buf.len()]);
        // Reads are always synchronous: the caller needs the data.
        self.account(AccessKind::Read, sector, buf.len() as u64, true);
        Ok(())
    }

    fn write(&mut self, sector: u64, buf: &[u8], sync: bool) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        check_request(sector, buf.len(), self.geometry.num_sectors)?;

        let this_write = self.write_index;
        self.write_index += 1;
        let persisted_bytes = match self.crash_plan {
            Some(plan) if this_write == plan.crash_at_write => {
                self.crashed = true;
                match plan.mode {
                    FaultMode::DropWrite => 0,
                    FaultMode::TornWrite { sectors } => {
                        (sectors as usize * SECTOR_SIZE).min(buf.len())
                    }
                }
            }
            _ => buf.len(),
        };

        let start = sector as usize * SECTOR_SIZE;
        self.data[start..start + persisted_bytes].copy_from_slice(&buf[..persisted_bytes]);

        if self.crashed {
            // Power failed mid-request; the caller observes an error.
            self.obs.registry.event(
                self.clock.now_ns(),
                "crash",
                format!(
                    "write_index={this_write} sector={sector} persisted_bytes={persisted_bytes}"
                ),
            );
            return Err(DiskError::Crashed);
        }
        self.account(AccessKind::Write, sector, buf.len() as u64, sync);
        Ok(())
    }

    fn flush(&mut self) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        self.clock.advance_to_ns(self.busy_until_ns);
        Ok(())
    }

    fn annotate(&mut self, label: &'static str) {
        self.next_label = label;
    }

    fn attach_obs(&mut self, registry: &Registry) {
        self.obs.rehome(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_disk() -> SimDisk {
        SimDisk::new(DiskGeometry::tiny_test(1024), Clock::new())
    }

    #[test]
    fn data_round_trips() {
        let mut disk = small_disk();
        let payload = vec![0x5A; SECTOR_SIZE * 4];
        disk.write(10, &payload, true).unwrap();
        let mut out = vec![0; SECTOR_SIZE * 4];
        disk.read(10, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn sync_write_advances_clock_async_does_not() {
        let mut disk = small_disk();
        let buf = vec![0; SECTOR_SIZE];
        let clock = Arc::clone(disk.clock());

        disk.write(100, &buf, false).unwrap();
        assert_eq!(clock.now_ns(), 0, "async write must not stall the CPU");

        disk.write(500, &buf, true).unwrap();
        assert!(clock.now_ns() > 0, "sync write must stall the CPU");
    }

    #[test]
    fn flush_waits_for_queued_writes() {
        let mut disk = small_disk();
        let buf = vec![0; SECTOR_SIZE * 8];
        let clock = Arc::clone(disk.clock());
        disk.write(0, &buf, false).unwrap();
        disk.write(512, &buf, false).unwrap();
        assert_eq!(clock.now_ns(), 0);
        disk.flush().unwrap();
        let after_flush = clock.now_ns();
        assert!(after_flush > 0);
        // Flushing again is free.
        disk.flush().unwrap();
        assert_eq!(clock.now_ns(), after_flush);
    }

    #[test]
    fn sequential_requests_skip_the_seek() {
        let mut disk = small_disk();
        let buf = vec![0; SECTOR_SIZE];
        disk.write(0, &buf, true).unwrap();
        disk.write(1, &buf, true).unwrap(); // Continues at the head.
        disk.write(700, &buf, true).unwrap(); // Random.
                                              // The head starts at sector 0, so the first write is sequential too.
        assert_eq!(disk.stats().sequential, 2);
        assert_eq!(disk.stats().seeks, 1);
    }

    #[test]
    fn sequential_transfer_is_much_faster_per_byte() {
        let geometry = DiskGeometry::wren_iv();
        let clock = Clock::new();
        let mut disk = SimDisk::new(geometry.clone(), Arc::clone(&clock));

        // One 1 MB sequential write.
        let megabyte = vec![0; 1 << 20];
        disk.write(0, &megabyte, true).unwrap();
        let sequential_ns = clock.now_ns();

        // 256 scattered 4 KB writes of the same total volume.
        let four_kb = vec![0; 4096];
        let before = clock.now_ns();
        for i in 0..256u64 {
            // Stride far enough apart to force seeks.
            disk.write(10_000 + i * 1_000, &four_kb, true).unwrap();
        }
        let random_ns = clock.now_ns() - before;

        assert!(
            random_ns > 5 * sequential_ns,
            "random ({random_ns} ns) should be much slower than sequential ({sequential_ns} ns)"
        );
    }

    #[test]
    fn crash_drop_discards_the_triggering_write() {
        let mut disk = small_disk();
        let ones = vec![1; SECTOR_SIZE];
        disk.write(0, &ones, true).unwrap();
        disk.arm_crash(CrashPlan::drop_at(1));
        let twos = vec![2; SECTOR_SIZE];
        assert_eq!(disk.write(0, &twos, true), Err(DiskError::Crashed));
        assert!(disk.has_crashed());
        // Everything after the crash fails.
        let mut buf = vec![0; SECTOR_SIZE];
        assert_eq!(disk.read(0, &mut buf), Err(DiskError::Crashed));
        // The surviving image still holds the first write.
        assert_eq!(&disk.into_image()[..SECTOR_SIZE], &ones[..]);
    }

    #[test]
    fn crash_tear_persists_a_prefix() {
        let mut disk = small_disk();
        disk.arm_crash(CrashPlan::tear_at(0, 1));
        let payload: Vec<u8> = (0..SECTOR_SIZE * 3)
            .map(|i| (i / SECTOR_SIZE) as u8 + 1)
            .collect();
        assert_eq!(disk.write(5, &payload, false), Err(DiskError::Crashed));
        let image = disk.into_image();
        let start = 5 * SECTOR_SIZE;
        assert_eq!(&image[start..start + SECTOR_SIZE], &payload[..SECTOR_SIZE]);
        assert_eq!(
            &image[start + SECTOR_SIZE..start + 2 * SECTOR_SIZE],
            &vec![0; SECTOR_SIZE][..],
            "torn sectors must not persist"
        );
    }

    #[test]
    fn image_survives_into_new_disk() {
        let geometry = DiskGeometry::tiny_test(64);
        let mut disk = SimDisk::new(geometry.clone(), Clock::new());
        disk.write(3, &vec![9; SECTOR_SIZE], true).unwrap();
        let image = disk.into_image();
        let mut revived = SimDisk::from_image(geometry, Clock::new(), image);
        let mut buf = vec![0; SECTOR_SIZE];
        revived.read(3, &mut buf).unwrap();
        assert_eq!(buf, vec![9; SECTOR_SIZE]);
    }

    #[test]
    fn annotate_labels_the_next_traced_access() {
        let mut disk = small_disk();
        disk.trace_mut().enable();
        disk.annotate("inode");
        disk.write(0, &vec![0; SECTOR_SIZE], true).unwrap();
        disk.write(1, &vec![0; SECTOR_SIZE], true).unwrap();
        let records = disk.trace().records();
        assert_eq!(records[0].label, "inode");
        assert_eq!(records[1].label, "");
    }

    #[test]
    fn obs_mirrors_stats_and_decomposes_busy_time() {
        let mut disk = small_disk();
        disk.write(0, &vec![0; SECTOR_SIZE * 2], true).unwrap();
        disk.write(500, &vec![0; SECTOR_SIZE], false).unwrap();
        let mut buf = vec![0; SECTOR_SIZE];
        disk.read(7, &mut buf).unwrap();

        let snap = disk.obs().snapshot();
        let stats = disk.stats();
        assert_eq!(snap.counter("disk.reads"), stats.reads);
        assert_eq!(snap.counter("disk.writes"), stats.writes);
        assert_eq!(snap.counter("disk.busy_ns"), stats.busy_ns);
        // The decomposition is exact, in both reporting paths.
        assert_eq!(
            snap.counter("disk.seek_ns")
                + snap.counter("disk.rotation_ns")
                + snap.counter("disk.transfer_ns"),
            snap.counter("disk.busy_ns")
        );
        assert_eq!(
            stats.seek_ns + stats.rotation_ns + stats.transfer_ns,
            stats.busy_ns
        );
        // Every request lands in a service-time histogram.
        let read_lat = snap.hist("disk.read_service_ns").unwrap();
        let write_lat = snap.hist("disk.write_service_ns").unwrap();
        assert_eq!(read_lat.count, stats.reads);
        assert_eq!(write_lat.count, stats.writes);
        assert_eq!(read_lat.sum + write_lat.sum, stats.busy_ns);
    }

    #[test]
    fn attach_obs_carries_counts_into_shared_registry() {
        let mut disk = small_disk();
        disk.write(0, &vec![0; SECTOR_SIZE], true).unwrap();
        let shared = obs::Registry::new();
        disk.attach_obs(&shared);
        disk.write(1, &vec![0; SECTOR_SIZE], true).unwrap();
        assert_eq!(shared.snapshot().counter("disk.writes"), 2);
        // The disk now reports through the shared registry.
        shared.counter("probe").inc();
        assert_eq!(disk.obs().snapshot().counter("probe"), 1);
    }

    #[test]
    fn stats_track_bytes_and_sync() {
        let mut disk = small_disk();
        disk.write(0, &vec![0; SECTOR_SIZE * 2], true).unwrap();
        disk.write(50, &vec![0; SECTOR_SIZE], false).unwrap();
        let mut buf = vec![0; SECTOR_SIZE];
        disk.read(0, &mut buf).unwrap();
        let stats = disk.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.sync_writes, 1);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.bytes_written, SECTOR_SIZE as u64 * 3);
        assert_eq!(stats.bytes_read, SECTOR_SIZE as u64);
    }
}
