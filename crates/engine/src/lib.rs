#![warn(missing_docs)]

//! A discrete-event multi-client request engine over the shared virtual
//! clock.
//!
//! The paper's §3 argument is economic: LFS wins because many small,
//! independent updates become one large sequential transfer, while FFS
//! pays a seek per metadata update. The single-request harness used by
//! the figure reproductions cannot exercise the *concurrency* side of
//! that argument — queueing at the disk, write coalescing across
//! clients, and the CPU-vs-disk crossover under load. This crate adds
//! the missing machinery:
//!
//! * [`EngineCore`] / [`EngineDisk`] — a disk request queue layered over
//!   [`sim_disk::SimDisk`]'s submit/complete API, behind the standard
//!   [`sim_disk::BlockDevice`] trait so LFS and FFS mount it unchanged.
//!   The queue has a depth knob with backpressure, cross-client write
//!   coalescing (sector-adjacent pending writes merge into one
//!   transfer), write absorption, and read-from-queue hits.
//! * [`sched`] — pluggable I/O schedulers ([`Fcfs`], [`Sstf`],
//!   [`CLook`]) that reorder pending requests using disk geometry. The
//!   engine enforces a bounded-wait (anti-starvation) guarantee *outside*
//!   the policy: an aged request preempts any policy choice.
//! * [`multi`] — N closed-loop clients running the `workload`
//!   small-file generator against one file system, dispatched by an
//!   event loop that advances virtual time to each client's ready-time.
//!   Per-client latency histograms, queue-depth gauges, and
//!   scheduler-decision trace events land in the file system's
//!   [`obs::Registry`].
//!
//! Everything is deterministic: same config, same virtual-time results,
//! byte-identical metrics JSON.

pub mod mix;
pub mod multi;
pub mod qos;
pub mod queue;
pub mod sched;

pub use mix::{run_overwrite_read_mix, MixConfig, MixReport};
pub use multi::{run_small_file_create, ClientSummary, MultiClientConfig, MultiReport, RequestEngine};
pub use qos::{FairShare, QosClass, QosSpec, TenantQos};
pub use queue::{EngineConfig, EngineCore, EngineDisk, ReadHandle, MAINT_OWNER};
pub use sched::{CLook, Fcfs, IoScheduler, SchedulerKind, Sstf};
