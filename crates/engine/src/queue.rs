//! The engine core: a scheduled disk request queue behind a
//! [`BlockDevice`] facade.
//!
//! [`EngineCore`] owns the [`SimDisk`] and its pending-request queue.
//! File systems are generic over [`BlockDevice`], so they mount an
//! [`EngineDisk`] — a cheap handle onto the shared core — and every
//! asynchronous write they issue lands in the queue, where the configured
//! [`IoScheduler`] reorders it, adjacent writes coalesce into one
//! transfer, and a full queue pushes back on the writer. Synchronous
//! requests wait (advance the virtual clock) until their own completion,
//! competing with queued work under the same policy.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use obs::{Counter, Gauge, Registry};
use sim_disk::{
    AccessKind, BlockDevice, Clock, DiskError, DiskResult, IoCompletion, SimDisk, SECTOR_SIZE,
};

use crate::qos::{FairShare, QosSpec};
use crate::sched::{IoScheduler, SchedulerKind};

/// Tuning knobs for the request engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Scheduling policy for the pending queue.
    pub scheduler: SchedulerKind,
    /// Maximum pending requests before a submitter is stalled
    /// (backpressure).
    pub queue_depth: usize,
    /// Bounded-wait guarantee: once the oldest pending request has waited
    /// this long, it is serviced next regardless of the policy
    /// (anti-starvation aging).
    pub max_wait_ns: u64,
    /// Whether adjacent pending writes coalesce into one transfer.
    pub coalesce: bool,
    /// Largest transfer a coalesced write may grow to, in bytes.
    pub max_transfer_bytes: u64,
    /// How many scheduler decisions to record as trace events (the rest
    /// are counted but not traced, to bound the event ring).
    pub trace_decisions: u64,
    /// How many times a read failing with a media error
    /// ([`DiskError::Unreadable`]) is retried before the error is
    /// surfaced to the caller. Transient faults recover within their
    /// retry budget; latent faults exhaust it.
    pub read_retries: u32,
    /// Base delay for the exponential backoff between read retries, in
    /// virtual nanoseconds: attempt `n` waits `retry_backoff_ns * 2^n`,
    /// with the exponent capped so large retry budgets plateau instead
    /// of overflowing.
    pub retry_backoff_ns: u64,
    /// When set, coalescing never merges writes into a transfer that
    /// crosses a multiple of this many sectors. A striped volume sets it
    /// to the stripe-unit size so a per-spindle queue cannot fuse pieces
    /// of different stripe units into one head pass.
    pub stripe_boundary_sectors: Option<u64>,
    /// Per-request latency budget for hedging, measured from submission.
    /// When a pending read's predicted completion blows this deadline,
    /// [`EngineCore::hedge_overdue`] reports it so the owner can race a
    /// redundant path (e.g. XOR reconstruction on a parity volume)
    /// against the slow original. `None` disables hedging.
    pub hedge_deadline_ns: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            scheduler: SchedulerKind::Fcfs,
            queue_depth: 32,
            max_wait_ns: 100_000_000,
            coalesce: true,
            max_transfer_bytes: 1 << 20,
            trace_decisions: 64,
            read_retries: 3,
            retry_backoff_ns: 1_000_000,
            stripe_boundary_sectors: None,
            hedge_deadline_ns: None,
        }
    }
}

impl EngineConfig {
    /// Sets the scheduling policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the queue-depth knob.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Sets the bounded-wait (anti-starvation) threshold.
    pub fn with_max_wait_ns(mut self, max_wait_ns: u64) -> Self {
        self.max_wait_ns = max_wait_ns;
        self
    }

    /// Enables or disables write coalescing.
    pub fn with_coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Sets the media-error read-retry budget.
    pub fn with_read_retries(mut self, read_retries: u32) -> Self {
        self.read_retries = read_retries;
        self
    }

    /// Sets the base retry backoff delay, in virtual nanoseconds.
    pub fn with_retry_backoff_ns(mut self, retry_backoff_ns: u64) -> Self {
        self.retry_backoff_ns = retry_backoff_ns;
        self
    }

    /// Forbids coalescing across multiples of `sectors` (stripe units).
    pub fn with_stripe_boundary_sectors(mut self, sectors: u64) -> Self {
        self.stripe_boundary_sectors = Some(sectors);
        self
    }

    /// Arms per-request read hedging with the given latency budget (see
    /// [`EngineConfig::hedge_deadline_ns`]).
    pub fn with_hedge_deadline_ns(mut self, deadline_ns: u64) -> Self {
        self.hedge_deadline_ns = Some(deadline_ns);
        self
    }
}

/// The engine's handles into an [`obs::Registry`].
#[derive(Debug, Clone)]
struct EngineObs {
    registry: Registry,
    /// Metric-name prefix (e.g. `"volume.spindle.0."`); empty for a
    /// standalone engine. Keeps per-spindle engines apart when several
    /// report into one shared registry.
    prefix: String,
    queue_depth: Gauge,
    queue_depth_max: Gauge,
    max_queue_wait: Gauge,
    coalesced: Counter,
    absorbed: Counter,
    queue_read_hits: Counter,
    backpressure_stalls: Counter,
    backpressure_ns: Counter,
    dep_stalls: Counter,
    dep_stall_ns: Counter,
    sched_decisions: Counter,
    aged_picks: Counter,
    qos_picks: Counter,
    retries: Counter,
    retry_exhausted: Counter,
    /// Reads whose predicted completion blew the hedge deadline — each
    /// one a notification that let the owner race a redundant path.
    hedges: Counter,
    /// Hedged races the redundant path won (the slow original lost).
    hedge_wins: Counter,
    /// Queue wait accumulated by maintenance-class requests (cleaning,
    /// scrubbing) — the counterpart of the per-client wait counters, so
    /// maintenance I/O never lands in a foreground client's account.
    maintenance_wait: Counter,
    /// Bytes submitted per I/O class. Together with the absorbed and
    /// queue-read-hit byte counters these partition every submitted byte,
    /// so `client + maintenance + system == disk transfers + absorbed +
    /// queue read hits` holds exactly (the accounting regression test).
    client_bytes: Counter,
    maintenance_bytes: Counter,
    system_bytes: Counter,
    absorbed_bytes: Counter,
    queue_read_hit_bytes: Counter,
}

impl EngineObs {
    fn from_registry(registry: &Registry, prefix: &str) -> Self {
        let n = |suffix: &str| format!("{prefix}{suffix}");
        EngineObs {
            registry: registry.clone(),
            prefix: prefix.to_string(),
            queue_depth: registry.gauge(&n("engine.queue_depth")),
            queue_depth_max: registry.gauge(&n("engine.queue_depth_max")),
            max_queue_wait: registry.gauge(&n("engine.max_queue_wait_ns")),
            coalesced: registry.counter(&n("engine.coalesced_writes")),
            absorbed: registry.counter(&n("engine.absorbed_writes")),
            queue_read_hits: registry.counter(&n("engine.queue_read_hits")),
            backpressure_stalls: registry.counter(&n("engine.backpressure_stalls")),
            backpressure_ns: registry.counter(&n("engine.backpressure_ns")),
            dep_stalls: registry.counter(&n("engine.dependency_stalls")),
            dep_stall_ns: registry.counter(&n("engine.dependency_stall_ns")),
            sched_decisions: registry.counter(&n("engine.sched_decisions")),
            aged_picks: registry.counter(&n("engine.aged_picks")),
            qos_picks: registry.counter(&n("engine.qos_picks")),
            retries: registry.counter(&n("engine.retries")),
            retry_exhausted: registry.counter(&n("engine.retry_exhausted")),
            hedges: registry.counter(&n("engine.hedges")),
            hedge_wins: registry.counter(&n("engine.hedge_wins")),
            maintenance_wait: registry.counter(&n("engine.maintenance.disk_wait_ns")),
            client_bytes: registry.counter(&n("engine.io_bytes.client")),
            maintenance_bytes: registry.counter(&n("engine.io_bytes.maintenance")),
            system_bytes: registry.counter(&n("engine.io_bytes.system")),
            absorbed_bytes: registry.counter(&n("engine.absorbed_bytes")),
            queue_read_hit_bytes: registry.counter(&n("engine.queue_read_hit_bytes")),
        }
    }

    fn rehome(&mut self, registry: &Registry) {
        self.registry = registry.clone();
        let prefix = self.prefix.clone();
        let n = |suffix: &str| format!("{prefix}{suffix}");
        self.queue_depth = registry.adopt_gauge(&n("engine.queue_depth"), &self.queue_depth);
        self.queue_depth_max =
            registry.adopt_gauge(&n("engine.queue_depth_max"), &self.queue_depth_max);
        self.max_queue_wait =
            registry.adopt_gauge(&n("engine.max_queue_wait_ns"), &self.max_queue_wait);
        self.coalesced = registry.adopt_counter(&n("engine.coalesced_writes"), &self.coalesced);
        self.absorbed = registry.adopt_counter(&n("engine.absorbed_writes"), &self.absorbed);
        self.queue_read_hits =
            registry.adopt_counter(&n("engine.queue_read_hits"), &self.queue_read_hits);
        self.backpressure_stalls =
            registry.adopt_counter(&n("engine.backpressure_stalls"), &self.backpressure_stalls);
        self.backpressure_ns =
            registry.adopt_counter(&n("engine.backpressure_ns"), &self.backpressure_ns);
        self.dep_stalls = registry.adopt_counter(&n("engine.dependency_stalls"), &self.dep_stalls);
        self.dep_stall_ns =
            registry.adopt_counter(&n("engine.dependency_stall_ns"), &self.dep_stall_ns);
        self.sched_decisions =
            registry.adopt_counter(&n("engine.sched_decisions"), &self.sched_decisions);
        self.aged_picks = registry.adopt_counter(&n("engine.aged_picks"), &self.aged_picks);
        self.qos_picks = registry.adopt_counter(&n("engine.qos_picks"), &self.qos_picks);
        self.retries = registry.adopt_counter(&n("engine.retries"), &self.retries);
        self.retry_exhausted =
            registry.adopt_counter(&n("engine.retry_exhausted"), &self.retry_exhausted);
        self.hedges = registry.adopt_counter(&n("engine.hedges"), &self.hedges);
        self.hedge_wins = registry.adopt_counter(&n("engine.hedge_wins"), &self.hedge_wins);
        self.maintenance_wait =
            registry.adopt_counter(&n("engine.maintenance.disk_wait_ns"), &self.maintenance_wait);
        self.client_bytes = registry.adopt_counter(&n("engine.io_bytes.client"), &self.client_bytes);
        self.maintenance_bytes =
            registry.adopt_counter(&n("engine.io_bytes.maintenance"), &self.maintenance_bytes);
        self.system_bytes = registry.adopt_counter(&n("engine.io_bytes.system"), &self.system_bytes);
        self.absorbed_bytes =
            registry.adopt_counter(&n("engine.absorbed_bytes"), &self.absorbed_bytes);
        self.queue_read_hit_bytes =
            registry.adopt_counter(&n("engine.queue_read_hit_bytes"), &self.queue_read_hit_bytes);
    }
}

/// Owner sentinel for maintenance-class requests (segment cleaning,
/// scrubbing): their queue waits land in `engine.maintenance.disk_wait_ns`
/// instead of any foreground client's account.
pub const MAINT_OWNER: usize = usize::MAX;

/// Ceiling on the retry-backoff exponent: attempt `n` waits
/// `retry_backoff_ns * 2^min(n, MAX_BACKOFF_SHIFT)`. 2^20 of the 1 ms
/// default base is ~17 virtual minutes — beyond any plausible media
/// recovery — and the cap keeps absurd `read_retries` settings from
/// overflowing the shift or the clock.
const MAX_BACKOFF_SHIFT: u32 = 20;

/// A non-blocking read tracked by token (the
/// [`BlockDevice::start_read_async`] facade over
/// [`EngineCore::start_read`]).
enum TrackedRead {
    /// Served from a queued write's payload at start time.
    Hit(Vec<u8>),
    /// Waiting in the device queue.
    Queued { id: u64, sector: u64, len: usize },
}

/// The shared request-engine state: disk, queue policy, and accounting.
pub struct EngineCore {
    disk: SimDisk,
    clock: Arc<Clock>,
    cfg: EngineConfig,
    sched: Box<dyn IoScheduler>,
    /// Client currently executing on the (single) virtual CPU; new
    /// submissions are attributed to it.
    current_client: Option<usize>,
    /// When set, new submissions belong to the maintenance class
    /// regardless of `current_client`.
    maintenance: bool,
    /// Token → in-flight tracked read (the async-read facade).
    tracked_reads: BTreeMap<u64, TrackedRead>,
    next_read_token: u64,
    /// Request id → clients credited with it (a coalesced request
    /// carries every contributor).
    owners: BTreeMap<u64, Vec<usize>>,
    /// Reads serviced in the background (scheduler pick order reached
    /// them before their submitter waited) hold their payload — or
    /// their media error — here until claimed by `wait_for`. Only the
    /// split start/finish API leaves reads pending long enough for
    /// this to happen, e.g. a striped volume with several pieces
    /// outstanding on one spindle.
    unclaimed_reads: BTreeMap<u64, DiskResult<IoCompletion>>,
    /// Per-client queue-wait counters, indexed by client id.
    per_client_wait: Vec<Counter>,
    /// Per-client completed-bytes counters, indexed by client id (a
    /// coalesced request's bytes split evenly across its owners).
    per_client_bytes: Vec<Counter>,
    /// When set, the queue pick is QoS-aware: latency-class tenants'
    /// requests go first, and among bulk tenants the one furthest behind
    /// its weighted fair share is serviced next. The aging guarantee is
    /// checked *before* the ledger, so QoS never starves anyone.
    qos: Option<FairShare>,
    decisions_traced: u64,
    depth_high_water: u64,
    obs: EngineObs,
}

impl EngineCore {
    /// Wraps `disk` in a request engine. The engine reports into the
    /// disk's current registry (re-homed later by
    /// [`BlockDevice::attach_obs`] when a file system mounts).
    pub fn new(disk: SimDisk, cfg: EngineConfig) -> Self {
        let clock = Arc::clone(disk.clock());
        let sched = cfg.scheduler.build();
        let obs = EngineObs::from_registry(disk.obs(), "");
        Self {
            disk,
            clock,
            cfg,
            sched,
            current_client: None,
            maintenance: false,
            tracked_reads: BTreeMap::new(),
            next_read_token: 1,
            owners: BTreeMap::new(),
            unclaimed_reads: BTreeMap::new(),
            per_client_wait: Vec::new(),
            per_client_bytes: Vec::new(),
            qos: None,
            decisions_traced: 0,
            depth_high_water: 0,
            obs,
        }
    }

    /// Wraps the core for sharing between an [`EngineDisk`] (owned by the
    /// file system) and the driving event loop.
    pub fn into_shared(self) -> Rc<RefCell<EngineCore>> {
        Rc::new(RefCell::new(self))
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Mutable access to the policy knobs (e.g. to arm or drop a hedge
    /// deadline mid-run when a spindle's health changes).
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.cfg
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// The underlying disk.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// The underlying disk, mutably (e.g. to arm a crash plan).
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    /// Consumes the engine and returns the disk (e.g. to extract the
    /// surviving image after a crash).
    pub fn into_disk(self) -> SimDisk {
        self.disk
    }

    /// Sets the client subsequent submissions are attributed to
    /// (`None` = unattributed system work such as format or setup).
    pub fn set_client(&mut self, client: Option<usize>) {
        self.current_client = client;
    }

    /// Enables or disables the maintenance I/O class: while on, new
    /// submissions are owned by [`MAINT_OWNER`] instead of the current
    /// client, so cleaning issued *during* a foreground operation is
    /// never charged to that client's wait account.
    pub fn set_maintenance(&mut self, on: bool) {
        self.maintenance = on;
    }

    /// Number of requests currently pending in the queue — the engine's
    /// idle signal for idle-gated maintenance.
    pub fn queue_len(&self) -> u64 {
        self.disk.pending_len() as u64
    }

    /// True when the underlying media is dead (see
    /// [`SimDisk::kill_media`]): an offline spindle rejects every
    /// request, so volumes route around it instead of submitting.
    pub fn is_offline(&self) -> bool {
        self.disk.is_dead()
    }

    /// Drops every engine-side record of queued requests: ownership
    /// attribution, unclaimed background completions, and tracked reads
    /// still waiting in the device queue (already-served hits survive
    /// until claimed). A volume calls this when it kills the spindle —
    /// the disk discards its queue with the media, and the engine's
    /// bookkeeping must not dangle on ids that will never complete.
    pub fn discard_queue(&mut self) {
        self.owners.clear();
        self.unclaimed_reads.clear();
        self.tracked_reads
            .retain(|_, t| matches!(t, TrackedRead::Hit(_)));
        self.obs.queue_depth.set(0);
    }

    /// The effective owner of a new submission under the current
    /// attribution state, if any.
    fn submission_owner(&self) -> Option<usize> {
        if self.maintenance {
            Some(MAINT_OWNER)
        } else {
            self.current_client
        }
    }

    /// Creates per-client queue-wait and completed-bytes counters for
    /// clients `0..n`.
    pub fn register_clients(&mut self, n: usize) {
        let prefix = &self.obs.prefix;
        self.per_client_wait = (0..n)
            .map(|c| {
                self.obs
                    .registry
                    .counter(&format!("{prefix}engine.c{c:03}.disk_wait_ns"))
            })
            .collect();
        self.per_client_bytes = (0..n)
            .map(|c| {
                self.obs
                    .registry
                    .counter(&format!("{prefix}engine.c{c:03}.io_bytes_done"))
            })
            .collect();
    }

    /// Installs (or clears, with `None`) a per-client QoS spec. While a
    /// spec is installed, scheduler picks service latency-class tenants
    /// first and divide capacity among bulk tenants by weight; the
    /// bounded-wait aging guarantee still overrides every QoS decision.
    pub fn set_qos(&mut self, spec: Option<QosSpec>) {
        self.qos = spec.map(FairShare::new);
    }

    /// The installed QoS ledger, if any (introspection for tests).
    pub fn qos(&self) -> Option<&FairShare> {
        self.qos.as_ref()
    }

    /// Re-homes the disk's and the engine's instruments into `registry`.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.disk.attach_obs(registry);
        self.obs.rehome(registry);
        let prefix = self.obs.prefix.clone();
        for (c, counter) in self.per_client_wait.iter_mut().enumerate() {
            *counter =
                registry.adopt_counter(&format!("{prefix}engine.c{c:03}.disk_wait_ns"), counter);
        }
        for (c, counter) in self.per_client_bytes.iter_mut().enumerate() {
            *counter =
                registry.adopt_counter(&format!("{prefix}engine.c{c:03}.io_bytes_done"), counter);
        }
    }

    /// Re-homes this engine's and its disk's instruments under `prefix`
    /// (for example `"volume.spindle.0."`) in a fresh private registry,
    /// carrying accumulated counts. A later [`EngineCore::attach_obs`]
    /// then lands every instrument in the shared registry under its
    /// prefixed name, so several spindle engines never collide.
    pub fn set_metric_prefix(&mut self, prefix: &str) {
        self.disk.set_metric_prefix(prefix);
        self.obs.prefix = prefix.to_string();
        self.obs.rehome(self.disk.obs());
    }

    /// The virtual time at which the device next picks a request: it must
    /// be idle and the request must have been submitted.
    fn pick_time(&self) -> Option<u64> {
        let oldest = self
            .disk
            .pending()
            .iter()
            .map(|p| p.submitted_at_ns())
            .min()?;
        Some(self.disk.busy_until_ns().max(oldest))
    }

    /// Chooses which pending request the head services at time `t`.
    ///
    /// The bounded-wait guarantee lives here, *outside* the pluggable
    /// policy: if the oldest eligible request has waited `max_wait_ns`,
    /// it is chosen unconditionally, so no policy (including QoS) can
    /// starve a request. Below the aging bound, an installed QoS ledger
    /// narrows the candidate set to the best tenant's requests —
    /// latency class first, then lowest weighted virtual time — and the
    /// geometry policy picks among those.
    fn pick_id(&mut self, t: u64) -> (u64, bool) {
        let eligible: Vec<_> = self
            .disk
            .pending()
            .iter()
            .filter(|p| p.submitted_at_ns() <= t)
            .collect();
        debug_assert!(!eligible.is_empty(), "pick_id with no eligible request");
        let oldest = eligible
            .iter()
            .min_by_key(|p| (p.submitted_at_ns(), p.id()))
            .expect("non-empty");
        if t - oldest.submitted_at_ns() >= self.cfg.max_wait_ns {
            return (oldest.id(), true);
        }
        if let Some(fair) = self.qos.as_mut() {
            // Best client owner of each eligible request (a coalesced
            // request carries the best of its contributors); requests
            // with no foreground owner (system, maintenance) are only
            // picked when no client request is eligible — aging keeps
            // them from starving.
            let best_owner = eligible
                .iter()
                .flat_map(|p| self.owners.get(&p.id()).into_iter().flatten())
                .filter(|&&c| c != MAINT_OWNER)
                .copied()
                .min_by_key(|&c| fair.key(c));
            if let Some(owner) = best_owner {
                let owned: Vec<_> = eligible
                    .iter()
                    .filter(|p| {
                        self.owners
                            .get(&p.id())
                            .is_some_and(|os| os.contains(&owner))
                    })
                    .copied()
                    .collect();
                fair.pick(std::iter::once(owner));
                self.obs.qos_picks.inc();
                return (self.sched.pick(self.disk.head(), &owned), false);
            }
        }
        (self.sched.pick(self.disk.head(), &eligible), false)
    }

    /// Services request `id` and runs engine bookkeeping: scheduler
    /// trace, fairness attribution, and queue gauges.
    fn complete_with_bookkeeping(&mut self, id: u64, sync: bool) -> DiskResult<IoCompletion> {
        let done = match self.disk.complete(id, sync) {
            Ok(done) => done,
            Err(e @ DiskError::Unreadable { .. }) => {
                // A media error fails only this request; the rest of the
                // queue (and its attribution) is still live.
                self.owners.remove(&id);
                self.obs.queue_depth.set(self.disk.pending_len() as u64);
                return Err(e);
            }
            Err(e) => {
                // The disk discarded the queue (crash): owners and any
                // unclaimed read outcomes are stale.
                self.owners.clear();
                self.unclaimed_reads.clear();
                return Err(e);
            }
        };
        self.obs.sched_decisions.inc();
        if self.decisions_traced < self.cfg.trace_decisions {
            self.decisions_traced += 1;
            self.obs.registry.event(
                done.finish_ns,
                "sched",
                format!(
                    "policy={} id={} kind={} sector={} bytes={} wait_ns={} seq={}",
                    self.sched.kind().name(),
                    done.id,
                    done.kind,
                    done.sector,
                    done.bytes,
                    done.wait_ns,
                    done.sequential,
                ),
            );
        }
        if let Some(owners) = self.owners.remove(&done.id) {
            // A coalesced request's bytes are split evenly across its
            // contributors so per-client completed-bytes stay a partition.
            let share = done.bytes / owners.len().max(1) as u64;
            for c in owners {
                if c == MAINT_OWNER {
                    self.obs.maintenance_wait.add(done.wait_ns);
                } else {
                    if let Some(counter) = self.per_client_wait.get(c) {
                        counter.add(done.wait_ns);
                    }
                    if let Some(counter) = self.per_client_bytes.get(c) {
                        counter.add(share);
                    }
                    if let Some(fair) = self.qos.as_mut() {
                        fair.charge(c, share);
                    }
                }
            }
        }
        if done.wait_ns > self.obs.max_queue_wait.get() {
            self.obs.max_queue_wait.set(done.wait_ns);
        }
        self.obs.queue_depth.set(self.disk.pending_len() as u64);
        Ok(done)
    }

    /// Services one scheduler-picked request in the background. The
    /// queue must be non-empty. Returns `None` when the pick was a read
    /// that failed with a media error — the error is stashed for its
    /// waiter and the queue moves on.
    fn service_one(&mut self) -> DiskResult<Option<IoCompletion>> {
        let t = self.pick_time().expect("service_one on an empty queue");
        let (id, aged) = self.pick_id(t);
        if aged {
            self.obs.aged_picks.inc();
        }
        self.service_background(id)
    }

    /// Lazily progresses the device up to the current virtual time:
    /// requests whose service would start strictly before *now* complete
    /// in the background, without advancing the clock.
    pub fn pump(&mut self) -> DiskResult<()> {
        let now = self.clock.now_ns();
        while let Some(t) = self.pick_time() {
            if t >= now {
                break;
            }
            self.service_one()?;
        }
        Ok(())
    }

    /// Records ownership, per-class byte accounting, and queue-depth
    /// gauges for a new submission.
    fn note_submitted(&mut self, id: u64) {
        let bytes = self.pending_shape(id).2;
        match self.submission_owner() {
            Some(MAINT_OWNER) => {
                self.owners.entry(id).or_default().push(MAINT_OWNER);
                self.obs.maintenance_bytes.add(bytes);
            }
            Some(c) => {
                self.owners.entry(id).or_default().push(c);
                self.obs.client_bytes.add(bytes);
                // A tenant returning from idle starts at the system
                // virtual time: idling banks no QoS credit.
                if let Some(fair) = self.qos.as_mut() {
                    fair.note_active(c);
                }
            }
            None => self.obs.system_bytes.add(bytes),
        }
        let depth = self.disk.pending_len() as u64;
        self.obs.queue_depth.set(depth);
        if depth > self.depth_high_water {
            self.depth_high_water = depth;
            self.obs.queue_depth_max.set(depth);
        }
    }

    /// Services pending requests until none overlaps `[sector, end)`.
    ///
    /// Submitting a request that overlaps a queued one would let the
    /// scheduler reorder dependent accesses; draining first keeps the
    /// platter state equal to program order.
    fn drain_overlapping(&mut self, sector: u64, len: usize) -> DiskResult<()> {
        let end = sector + (len / SECTOR_SIZE) as u64;
        let before = self.clock.now_ns();
        let mut cleared_at = before;
        // Service in scheduler-pick order rather than by targeting the
        // overlapping id: picks respect the bounded-wait aging guarantee,
        // so a stream of dependent drains cannot starve an aged request
        // elsewhere in the queue.
        while self
            .disk
            .pending()
            .iter()
            .any(|p| p.sector() < end && sector < p.end_sector())
        {
            if let Some(done) = self.service_one()? {
                cleared_at = done.finish_ns;
            }
        }
        if cleared_at > before {
            // A write-after-write (or read-after-write) hazard: the
            // submitter waits until the dependent data is on the platter,
            // so hazards are a real synchronization point — otherwise an
            // overloaded submitter could push its whole backlog into the
            // device's future and backpressure would never engage.
            self.clock.advance_to_ns(cleared_at);
            self.obs.dep_stalls.inc();
            self.obs.dep_stall_ns.add(cleared_at - before);
        }
        Ok(())
    }

    /// Services queued requests (in policy order) until `id` completes,
    /// then advances the clock to its finish: the caller waited for it.
    ///
    /// `id` may already have been serviced in the background (its
    /// outcome is then claimed from `unclaimed_reads`), and sibling
    /// reads picked ahead of `id` are stashed there for their own
    /// waiters rather than discarded.
    fn wait_for(&mut self, id: u64) -> DiskResult<IoCompletion> {
        loop {
            if let Some(res) = self.unclaimed_reads.remove(&id) {
                let done = res?;
                self.clock.advance_to_ns(done.finish_ns);
                return Ok(done);
            }
            let t = self.pick_time().expect("wait_for a request not in the queue");
            let (picked, aged) = self.pick_id(t);
            if aged {
                self.obs.aged_picks.inc();
            }
            if picked == id {
                let done = self.complete_with_bookkeeping(picked, true)?;
                self.clock.advance_to_ns(done.finish_ns);
                return Ok(done);
            }
            self.service_background(picked)?;
        }
    }

    /// Predicted virtual completion time of request `id`: if it was
    /// already serviced in the background, its actual finish; otherwise
    /// `max(busy_until, submitted_at)`, plus a service estimate for
    /// every earlier-submitted request still in the queue (the backlog
    /// the device must chew through first — `busy_until` only covers
    /// work whose service has *started*), plus the request's own
    /// estimate (each including any fail-slow penalty the media would
    /// charge). Scheduler reordering makes the backlog term an
    /// estimate, but aging bounds how far reality can drift from
    /// submission order. Deterministic and non-mutating. `None` when
    /// `id` is unknown or already failed.
    pub fn estimated_finish_ns(&self, id: u64) -> Option<u64> {
        if let Some(res) = self.unclaimed_reads.get(&id) {
            return res.as_ref().ok().map(|done| done.finish_ns);
        }
        let p = self.disk.pending().iter().find(|p| p.id() == id)?;
        let mut start = self.disk.busy_until_ns().max(p.submitted_at_ns());
        for q in self.disk.pending() {
            if q.id() < id {
                start += self.disk.estimate_service_ns(start, q.sector(), q.bytes());
            }
        }
        Some(start + self.disk.estimate_service_ns(start, p.sector(), p.bytes()))
    }

    /// The hedge hook: true when pending read `id`'s predicted latency
    /// (completion minus submission) blows the configured
    /// [`EngineConfig::hedge_deadline_ns`]. Each overdue report counts
    /// one `engine.hedges` — the owner is expected to race a redundant
    /// path and drain the original via [`EngineCore::drain_read`]. Never
    /// fires when hedging is disabled, and never changes the queue, so
    /// the aging and QoS guarantees are untouched.
    pub fn hedge_overdue(&mut self, id: u64) -> bool {
        let Some(deadline) = self.cfg.hedge_deadline_ns else {
            return false;
        };
        let submitted = if let Some(res) = self.unclaimed_reads.get(&id) {
            match res {
                Ok(done) => done.submitted_at_ns,
                Err(_) => return false,
            }
        } else {
            match self.disk.pending().iter().find(|p| p.id() == id) {
                Some(p) => p.submitted_at_ns(),
                None => return false,
            }
        };
        let Some(finish) = self.estimated_finish_ns(id) else {
            return false;
        };
        let overdue = finish.saturating_sub(submitted) > deadline;
        if overdue {
            self.obs.hedges.inc();
            self.obs.registry.event(
                self.clock.now_ns(),
                "hedge",
                format!(
                    "read id={id} predicted_lat_ns={} deadline_ns={deadline}",
                    finish.saturating_sub(submitted)
                ),
            );
        }
        overdue
    }

    /// Credits one hedged race to the redundant path (the caller decided
    /// the reconstruction finished before the slow original).
    pub fn record_hedge_win(&mut self) {
        self.obs.hedge_wins.inc();
    }

    /// The submission-side hedge hook: true when a read of
    /// `[sector, sector + len)` would stall on an overlapping queued
    /// request long enough that its total predicted latency (hazard
    /// clear, then service) blows [`EngineConfig::hedge_deadline_ns`].
    ///
    /// [`EngineCore::hedge_overdue`] cannot catch this case: the
    /// read-after-write hazard is paid *inside* submission (the
    /// submitter's clock advances to the overlapping request's finish
    /// before the read even has an id), so by the time a pending id
    /// exists the stall is already sunk. The owner is expected to call
    /// this before submitting and, when it fires, serve the read from a
    /// redundant path instead — read steering. Each firing counts one
    /// `engine.hedges`; like [`EngineCore::hedge_overdue`] it never
    /// mutates the queue.
    pub fn submit_hazard_overdue(&mut self, sector: u64, len: usize) -> bool {
        let Some(deadline) = self.cfg.hedge_deadline_ns else {
            return false;
        };
        let end = sector + (len / SECTOR_SIZE) as u64;
        let now = self.clock.now_ns();
        let mut clear_ns = now;
        for p in self.disk.pending() {
            if p.sector() < end && sector < p.end_sector() {
                let start = self.disk.busy_until_ns().max(p.submitted_at_ns()).max(now);
                let finish = start + self.disk.estimate_service_ns(start, p.sector(), p.bytes());
                clear_ns = clear_ns.max(finish);
            }
        }
        if clear_ns == now {
            return false;
        }
        let service = self.disk.estimate_service_ns(clear_ns, sector, len as u64);
        let overdue = (clear_ns - now) + service > deadline;
        if overdue {
            self.obs.hedges.inc();
            self.obs.registry.event(
                now,
                "hedge",
                format!(
                    "read sector={sector} hazard_clear_lat_ns={} deadline_ns={deadline}",
                    (clear_ns - now) + service
                ),
            );
        }
        overdue
    }

    /// Services queued requests in policy order until `id` completes,
    /// **without advancing the shared clock** — the device does the work
    /// (its busy horizon moves and later requests queue behind it) but
    /// no caller waits on it. This is how the losing side of a hedged
    /// race is drained: the foreground pays only the winner's latency
    /// while the loser still physically occupies its spindle.
    pub fn drain_read(&mut self, id: u64) -> DiskResult<IoCompletion> {
        loop {
            if let Some(res) = self.unclaimed_reads.remove(&id) {
                return res;
            }
            let t = self.pick_time().expect("drain_read a request not in the queue");
            let (picked, aged) = self.pick_id(t);
            if aged {
                self.obs.aged_picks.inc();
            }
            if picked == id {
                return self.complete_with_bookkeeping(picked, false);
            }
            self.service_background(picked)?;
        }
    }

    /// Services `picked` on behalf of nobody: a completed read (or its
    /// media error) is stashed for its eventual waiter; writes need no
    /// delivery. Only fatal errors (crash) propagate.
    fn service_background(&mut self, picked: u64) -> DiskResult<Option<IoCompletion>> {
        match self.complete_with_bookkeeping(picked, false) {
            Ok(done) => {
                if done.data.is_some() {
                    self.unclaimed_reads.insert(picked, Ok(done.clone()));
                }
                Ok(Some(done))
            }
            Err(e @ DiskError::Unreadable { .. }) => {
                self.unclaimed_reads.insert(picked, Err(e));
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Queues an asynchronous write: absorb into an identical pending
    /// write, coalesce with adjacent ones, and stall the submitter if the
    /// queue is over depth (backpressure).
    pub fn submit_async_write(&mut self, sector: u64, buf: &[u8]) -> DiskResult<()> {
        self.pump()?;

        // Write absorption: an identical-range queued write takes the new
        // payload in place — no second transfer.
        let identical = self
            .disk
            .pending()
            .iter()
            .find(|p| {
                p.kind() == AccessKind::Write
                    && p.sector() == sector
                    && p.bytes() == buf.len() as u64
            })
            .map(|p| p.id());
        if let Some(id) = identical {
            self.disk.absorb_pending(id, buf);
            self.obs.absorbed.inc();
            self.obs.absorbed_bytes.add(buf.len() as u64);
            if let Some(c) = self.submission_owner() {
                let owners = self.owners.entry(id).or_default();
                if !owners.contains(&c) {
                    owners.push(c);
                }
                if c != MAINT_OWNER {
                    if let Some(fair) = self.qos.as_mut() {
                        fair.note_active(c);
                    }
                }
            }
            return Ok(());
        }
        self.drain_overlapping(sector, buf.len())?;

        let id = self.disk.submit_write(sector, buf)?;
        self.note_submitted(id);
        if self.cfg.coalesce {
            self.try_coalesce(id);
        }

        while self.disk.pending_len() > self.cfg.queue_depth {
            // Queue full: the submitter stalls until a slot frees up.
            let before = self.clock.now_ns();
            if let Some(done) = self.service_one()? {
                if done.finish_ns > before {
                    self.clock.advance_to_ns(done.finish_ns);
                    self.obs.backpressure_stalls.inc();
                    self.obs.backpressure_ns.add(done.finish_ns - before);
                }
            }
        }
        Ok(())
    }

    /// Merges queued write `id` with sector-adjacent queued writes (one
    /// merge in each direction), keeping the total transfer under
    /// `max_transfer_bytes`. Returns the surviving id.
    fn try_coalesce(&mut self, mut id: u64) -> u64 {
        // Merge a front neighbour (ends where `id` starts).
        let me = self.pending_shape(id);
        let front = self.disk.pending().iter().find_map(|p| {
            (p.id() != id
                && p.kind() == AccessKind::Write
                && p.end_sector() == me.0
                && p.bytes() + me.2 <= self.cfg.max_transfer_bytes
                && !self.crosses_stripe_boundary(p.sector(), me.1))
                .then_some(p.id())
        });
        if let Some(front_id) = front {
            self.disk.merge_pending(front_id, id);
            self.merge_owners(id, front_id);
            self.obs.coalesced.inc();
            id = front_id;
        }
        // Merge a back neighbour (starts where `id` now ends).
        let me = self.pending_shape(id);
        let back = self.disk.pending().iter().find_map(|p| {
            (p.id() != id
                && p.kind() == AccessKind::Write
                && p.sector() == me.1
                && p.bytes() + me.2 <= self.cfg.max_transfer_bytes
                && !self.crosses_stripe_boundary(me.0, p.end_sector()))
                .then_some(p.id())
        });
        if let Some(back_id) = back {
            self.disk.merge_pending(id, back_id);
            self.merge_owners(back_id, id);
            self.obs.coalesced.inc();
        }
        self.obs.queue_depth.set(self.disk.pending_len() as u64);
        id
    }

    /// True when a transfer covering `[start, end)` sectors would span a
    /// multiple of the configured stripe boundary — such a merge would
    /// fuse pieces of different stripe units into one head pass.
    fn crosses_stripe_boundary(&self, start: u64, end: u64) -> bool {
        match self.cfg.stripe_boundary_sectors {
            Some(unit) if unit > 0 && end > start => start / unit != (end - 1) / unit,
            _ => false,
        }
    }

    /// `(sector, end_sector, bytes)` of pending request `id`.
    fn pending_shape(&self, id: u64) -> (u64, u64, u64) {
        let p = self
            .disk
            .pending()
            .iter()
            .find(|p| p.id() == id)
            .expect("pending_shape: unknown id");
        (p.sector(), p.end_sector(), p.bytes())
    }

    /// Moves the owners of `from` onto `into` (after a merge).
    fn merge_owners(&mut self, from: u64, into: u64) {
        if let Some(from_owners) = self.owners.remove(&from) {
            let into_owners = self.owners.entry(into).or_default();
            for c in from_owners {
                if !into_owners.contains(&c) {
                    into_owners.push(c);
                }
            }
        }
    }

    /// Performs a synchronous write: queued, scheduled alongside pending
    /// work, and waited for.
    pub fn do_sync_write(&mut self, sector: u64, buf: &[u8]) -> DiskResult<()> {
        let id = self.start_sync_write(sector, buf)?;
        self.finish_write(id)
    }

    /// Submits a synchronous write without waiting for it; pair with
    /// [`EngineCore::finish_write`].
    ///
    /// The split lets a striped volume submit a sub-request on every
    /// spindle *before* waiting on any of them, so the spindles service
    /// their pieces in overlapped virtual time.
    /// `start_sync_write` + `finish_write` performs exactly the request
    /// sequence of [`EngineCore::do_sync_write`].
    pub fn start_sync_write(&mut self, sector: u64, buf: &[u8]) -> DiskResult<u64> {
        self.pump()?;
        self.drain_overlapping(sector, buf.len())?;
        let id = self.disk.submit_write(sector, buf)?;
        self.note_submitted(id);
        Ok(id)
    }

    /// Waits for a write started with [`EngineCore::start_sync_write`]:
    /// queued requests are serviced in policy order until `id` completes,
    /// and the clock advances to its finish time.
    pub fn finish_write(&mut self, id: u64) -> DiskResult<()> {
        self.wait_for(id)?;
        Ok(())
    }

    /// Performs a read. Reads wholly contained in a queued write are
    /// served from the queue (no head movement — the data is in the
    /// controller's memory); anything else is queued, scheduled, and
    /// waited for.
    pub fn do_read(&mut self, sector: u64, buf: &mut [u8]) -> DiskResult<()> {
        let handle = self.start_read(sector, buf.len())?;
        self.finish_read(handle, sector, buf)
    }

    /// Starts a read of `len` bytes at `sector` without waiting for it;
    /// pair with [`EngineCore::finish_read`]. A read wholly contained in
    /// a queued write is answered immediately from the queued payload.
    ///
    /// `start_read` + `finish_read` performs exactly the request
    /// sequence of [`EngineCore::do_read`].
    pub fn start_read(&mut self, sector: u64, len: usize) -> DiskResult<ReadHandle> {
        self.pump()?;
        let end = sector + (len / SECTOR_SIZE) as u64;
        let hit = self.disk.pending().iter().find(|p| {
            p.kind() == AccessKind::Write && p.sector() <= sector && end <= p.end_sector()
        });
        if let Some(p) = hit {
            let off = (sector - p.sector()) as usize * SECTOR_SIZE;
            let data = p.data().expect("write without payload")[off..off + len].to_vec();
            self.obs.queue_read_hits.inc();
            self.obs.queue_read_hit_bytes.add(len as u64);
            return Ok(ReadHandle::Hit(data));
        }
        self.drain_overlapping(sector, len)?;
        let id = self.disk.submit_read(sector, len)?;
        self.note_submitted(id);
        Ok(ReadHandle::Pending(id))
    }

    /// Finishes a read started with [`EngineCore::start_read`], filling
    /// `buf`. Media errors ([`DiskError::Unreadable`]) are retried with
    /// exponential backoff up to the configured budget; each retry is a
    /// fresh submission (the disk consumed the failed attempt).
    pub fn finish_read(
        &mut self,
        handle: ReadHandle,
        sector: u64,
        buf: &mut [u8],
    ) -> DiskResult<()> {
        let mut id = match handle {
            ReadHandle::Hit(data) => {
                buf.copy_from_slice(&data);
                return Ok(());
            }
            ReadHandle::Pending(id) => id,
        };
        let mut attempt = 0u32;
        loop {
            match self.wait_for(id) {
                Ok(done) => {
                    buf.copy_from_slice(done.data.as_deref().expect("read without data"));
                    return Ok(());
                }
                Err(e @ DiskError::Unreadable { .. }) => {
                    // Media error: the disk consumed the attempt, so a
                    // retry is a fresh submission. Back off exponentially
                    // on the virtual clock between attempts, as a real
                    // driver would between recalibration passes.
                    if attempt >= self.cfg.read_retries {
                        self.obs.retry_exhausted.inc();
                        self.obs.registry.event(
                            self.clock.now_ns(),
                            "retry",
                            format!("exhausted sector={sector} attempts={}", attempt + 1),
                        );
                        return Err(e);
                    }
                    // The exponential backoff is capped: a large
                    // configured retry budget must plateau, not overflow
                    // the shift (attempt >= 64 panics in debug builds)
                    // or push the virtual clock absurdly far.
                    let delay = self
                        .cfg
                        .retry_backoff_ns
                        .saturating_mul(1u64 << attempt.min(MAX_BACKOFF_SHIFT));
                    attempt += 1;
                    self.obs.retries.inc();
                    self.obs.registry.event(
                        self.clock.now_ns(),
                        "retry",
                        format!("read sector={sector} attempt={attempt} backoff_ns={delay}"),
                    );
                    self.clock.advance_ns(delay);
                    id = self.disk.submit_read(sector, buf.len())?;
                    self.note_submitted(id);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Starts a token-tracked non-blocking read (the engine side of
    /// [`BlockDevice::start_read_async`]): the read is submitted to the
    /// queue and virtual time keeps moving under other traffic until
    /// [`EngineCore::finish_tracked_read`] claims it — if the device
    /// serviced it in the background meanwhile, claiming it costs no
    /// additional time at all.
    pub fn start_tracked_read(&mut self, sector: u64, len: usize) -> DiskResult<u64> {
        let handle = self.start_read(sector, len)?;
        let token = self.next_read_token;
        self.next_read_token += 1;
        let entry = match handle {
            ReadHandle::Hit(data) => TrackedRead::Hit(data),
            ReadHandle::Pending(id) => TrackedRead::Queued { id, sector, len },
        };
        self.tracked_reads.insert(token, entry);
        Ok(token)
    }

    /// Completes a read started by [`EngineCore::start_tracked_read`].
    pub fn finish_tracked_read(&mut self, token: u64) -> DiskResult<Vec<u8>> {
        match self
            .tracked_reads
            .remove(&token)
            .expect("finish_tracked_read: unknown token")
        {
            TrackedRead::Hit(data) => Ok(data),
            TrackedRead::Queued { id, sector, len } => {
                let mut buf = vec![0u8; len];
                self.finish_read(ReadHandle::Pending(id), sector, &mut buf)?;
                Ok(buf)
            }
        }
    }

    /// Drains the whole queue (in policy order) and waits for the device
    /// to go idle: the durability barrier.
    pub fn flush_all(&mut self) -> DiskResult<()> {
        while self.disk.pending_len() > 0 {
            self.service_one()?;
        }
        self.disk.flush()?;
        self.obs.queue_depth.set(0);
        Ok(())
    }
}

/// An in-flight read started with [`EngineCore::start_read`].
#[derive(Debug)]
pub enum ReadHandle {
    /// Served from a queued write's payload; no disk request was made.
    Hit(Vec<u8>),
    /// Submitted to the device queue under this request id.
    Pending(u64),
}

/// A cheap [`BlockDevice`] handle onto a shared [`EngineCore`].
///
/// The file system owns one handle; the driving event loop holds another
/// (via the `Rc`). All I/O the file system issues is routed through the
/// engine's scheduled queue.
#[derive(Clone)]
pub struct EngineDisk(Rc<RefCell<EngineCore>>);

impl EngineDisk {
    /// Creates a handle onto `core`.
    pub fn new(core: Rc<RefCell<EngineCore>>) -> Self {
        Self(core)
    }

    /// The shared core.
    pub fn core(&self) -> &Rc<RefCell<EngineCore>> {
        &self.0
    }
}

impl BlockDevice for EngineDisk {
    fn num_sectors(&self) -> u64 {
        self.0.borrow().disk.num_sectors()
    }

    fn read(&mut self, sector: u64, buf: &mut [u8]) -> DiskResult<()> {
        self.0.borrow_mut().do_read(sector, buf)
    }

    fn write(&mut self, sector: u64, buf: &[u8], sync: bool) -> DiskResult<()> {
        if sync {
            self.0.borrow_mut().do_sync_write(sector, buf)
        } else {
            self.0.borrow_mut().submit_async_write(sector, buf)
        }
    }

    fn flush(&mut self) -> DiskResult<()> {
        self.0.borrow_mut().flush_all()
    }

    fn annotate(&mut self, label: &'static str) {
        self.0.borrow_mut().disk.annotate(label);
    }

    fn attach_obs(&mut self, registry: &Registry) {
        self.0.borrow_mut().attach_obs(registry);
    }

    fn set_maintenance(&mut self, on: bool) {
        self.0.borrow_mut().set_maintenance(on);
    }

    fn start_read_async(&mut self, sector: u64, len: usize) -> Option<u64> {
        // A submission error (crash) falls back to the synchronous path,
        // which reports it properly.
        self.0.borrow_mut().start_tracked_read(sector, len).ok()
    }

    fn finish_read_async(&mut self, token: u64) -> DiskResult<Vec<u8>> {
        self.0.borrow_mut().finish_tracked_read(token)
    }
}
