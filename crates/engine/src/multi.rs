//! The multi-client discrete-event loop.
//!
//! N closed-loop clients share one file system mounted on an
//! [`EngineDisk`]. Each client repeatedly: thinks (a deterministic
//! jittered delay that does *not* advance the shared clock — clients
//! overlap), then runs its next operation against the file system, which
//! advances the clock by the operation's latency (CPU charges plus any
//! synchronous disk waits). The loop always dispatches the client with
//! the earliest ready-time, so virtual time is the event horizon of a
//! real concurrent system — this is the repo's first subsystem where the
//! clock advances from an event loop rather than straight-line code.
//!
//! The run uses *strong scaling*: a fixed total number of files is split
//! evenly across clients, so every client count performs identical total
//! work against identically-sized directories, and throughput differences
//! measure concurrency alone.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use obs::Registry;
use sim_disk::{Clock, DiskResult};
use vfs::{FileSystem, FsResult};
use workload::small_files::SmallFileSpec;
use workload::payload;

use crate::qos::QosSpec;
use crate::queue::EngineCore;

/// What the multi-client event loop needs from a request engine: the
/// shared clock, lazy background progress, and client attribution.
///
/// Implemented by a shared [`EngineCore`] (one spindle) and by
/// multi-spindle volumes that fan each call out to every spindle, so
/// the same event loop drives both.
pub trait RequestEngine {
    /// The shared virtual clock.
    fn clock(&self) -> Arc<Clock>;
    /// Lazily services queued requests whose start time has passed.
    fn pump(&self) -> DiskResult<()>;
    /// Attributes subsequent submissions to `client` (`None` = system
    /// work such as format or setup).
    fn set_client(&self, client: Option<usize>);
    /// Creates per-client queue-wait counters for clients `0..n`.
    fn register_clients(&self, n: usize);
    /// Total requests currently pending across the engine's queues — the
    /// idle signal for idle-gated maintenance such as async cleaning.
    fn queue_depth(&self) -> u64;
    /// Installs (or clears) a per-client QoS spec on every queue the
    /// engine schedules. The default does nothing, so engines without a
    /// QoS-aware queue keep compiling.
    fn set_qos(&self, _spec: Option<QosSpec>) {}
}

impl RequestEngine for Rc<RefCell<EngineCore>> {
    fn clock(&self) -> Arc<Clock> {
        Arc::clone(self.borrow().clock())
    }

    fn pump(&self) -> DiskResult<()> {
        self.borrow_mut().pump()
    }

    fn set_client(&self, client: Option<usize>) {
        self.borrow_mut().set_client(client);
    }

    fn register_clients(&self, n: usize) {
        self.borrow_mut().register_clients(n);
    }

    fn queue_depth(&self) -> u64 {
        self.borrow().queue_len()
    }

    fn set_qos(&self, spec: Option<QosSpec>) {
        self.borrow_mut().set_qos(spec);
    }
}

/// Parameters of a multi-client small-file run.
#[derive(Debug, Clone)]
pub struct MultiClientConfig {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Files each client creates (strong scaling: pass
    /// `total / clients`).
    pub files_per_client: usize,
    /// Size of each file in bytes.
    pub file_size: usize,
    /// Mean think time between a client's operations, in nanoseconds.
    pub think_ns: u64,
    /// Seed for the deterministic think-time jitter (±25%).
    pub seed: u64,
    /// Per-client latency histograms are emitted only when `clients` is
    /// at most this (the aggregate histogram is always emitted), to keep
    /// metrics JSON bounded on wide sweeps.
    pub per_client_hists_max: usize,
}

impl MultiClientConfig {
    /// A config with the default pacing (0.6 ms mean think time).
    pub fn new(clients: usize, files_per_client: usize, file_size: usize) -> Self {
        Self {
            clients,
            files_per_client,
            file_size,
            think_ns: 600_000,
            seed: 0x5EED,
            per_client_hists_max: 32,
        }
    }

    /// Sets the mean think time.
    pub fn with_think_ns(mut self, think_ns: u64) -> Self {
        self.think_ns = think_ns;
        self
    }
}

/// One client's outcome.
#[derive(Debug, Clone)]
pub struct ClientSummary {
    /// Client id.
    pub client: usize,
    /// Operations completed.
    pub ops: u64,
    /// Sum of operation latencies, in nanoseconds.
    pub total_latency_ns: u64,
    /// Worst single operation latency, in nanoseconds.
    pub max_latency_ns: u64,
}

/// Outcome of a multi-client run.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Number of clients.
    pub clients: usize,
    /// Total operations across all clients.
    pub total_ops: u64,
    /// Virtual time from first dispatch to final sync, in nanoseconds.
    pub elapsed_ns: u64,
    /// Per-client outcomes, indexed by client id.
    pub per_client: Vec<ClientSummary>,
}

impl MultiReport {
    /// Aggregate throughput in operations per second of virtual time.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.total_ops as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Jain's fairness index over per-client mean latencies, scaled by
    /// 1000 (1000 = perfectly fair, 1000/n = one client hogs).
    pub fn fairness_millis(&self) -> u64 {
        let means: Vec<f64> = self
            .per_client
            .iter()
            .filter(|c| c.ops > 0)
            .map(|c| c.total_latency_ns as f64 / c.ops as f64)
            .collect();
        if means.is_empty() {
            return 1000;
        }
        let sum: f64 = means.iter().sum();
        let sum_sq: f64 = means.iter().map(|m| m * m).sum();
        if sum_sq == 0.0 {
            return 1000;
        }
        ((sum * sum) / (means.len() as f64 * sum_sq) * 1000.0) as u64
    }
}

/// Deterministic jittered think time: `mean` ±25%, keyed by
/// `(seed, client, op)`.
fn jittered_think_ns(seed: u64, client: usize, op: usize, mean: u64) -> u64 {
    let mut x = seed
        ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (op as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    mean * (75 + x % 51) / 100
}

/// Runs the create phase of the shared-directory small-file workload
/// with `cfg.clients` concurrent clients, recording per-client latency
/// histograms (`engine.cNNN.op_ns`), the aggregate histogram
/// (`engine.op_ns`), and a fairness gauge into `registry`.
///
/// The file system must be mounted on a device backed by `core` — an
/// [`crate::EngineDisk`] over a shared [`EngineCore`], or any other
/// [`RequestEngine`] such as a striped volume (the loop pumps the
/// engine and attributes submissions to the dispatched client).
pub fn run_small_file_create<F: FileSystem>(
    fs: &mut F,
    core: &impl RequestEngine,
    registry: &Registry,
    cfg: &MultiClientConfig,
) -> FsResult<MultiReport> {
    assert!(cfg.clients > 0, "at least one client");
    let clock = core.clock();
    let specs: Vec<SmallFileSpec> = (0..cfg.clients)
        .map(|c| SmallFileSpec::for_client(c, cfg.files_per_client, cfg.file_size))
        .collect();
    let payloads: Vec<Vec<u8>> = specs
        .iter()
        .map(|s| payload(s.seed, s.file_size))
        .collect();

    // Setup: the shared directory, unattributed to any client.
    core.set_client(None);
    fs.set_active_client(None);
    core.register_clients(cfg.clients);
    for d in 0..specs[0].ndirs() {
        match fs.mkdir(&specs[0].dir(d)) {
            Ok(_) | Err(vfs::FsError::AlreadyExists) => {}
            Err(e) => return Err(e),
        }
    }
    fs.sync()?;

    let agg_hist = registry.hist("engine.op_ns");
    let client_hists: Vec<_> = (0..cfg.clients)
        .map(|c| {
            (cfg.clients <= cfg.per_client_hists_max)
                .then(|| registry.hist(&format!("engine.c{c:03}.op_ns")))
        })
        .collect();

    let start_ns = clock.now_ns();
    let mut next_ready: Vec<u64> = (0..cfg.clients)
        .map(|c| start_ns + jittered_think_ns(cfg.seed, c, 0, cfg.think_ns))
        .collect();
    let mut summaries: Vec<ClientSummary> = (0..cfg.clients)
        .map(|client| ClientSummary {
            client,
            ops: 0,
            total_latency_ns: 0,
            max_latency_ns: 0,
        })
        .collect();

    let total_ops = cfg.clients * cfg.files_per_client;
    for _ in 0..total_ops {
        // Dispatch the earliest-ready client (ties break on lowest id).
        let c = (0..cfg.clients)
            .filter(|&c| (summaries[c].ops as usize) < cfg.files_per_client)
            .min_by_key(|&c| (next_ready[c], c))
            .expect("a client still has work");
        clock.advance_to_ns(next_ready[c]);
        core.pump()?;
        core.set_client(Some(c));
        fs.set_active_client(Some(c as u32));

        let op_index = summaries[c].ops as usize;
        let before_ns = clock.now_ns();
        fs.write_file(&specs[c].path(op_index), &payloads[c])?;
        let after_ns = clock.now_ns();
        debug_assert!(after_ns >= before_ns, "virtual time went backwards");
        let latency_ns = after_ns - before_ns;

        agg_hist.record(latency_ns);
        if let Some(h) = &client_hists[c] {
            h.record(latency_ns);
        }
        summaries[c].ops += 1;
        summaries[c].total_latency_ns += latency_ns;
        summaries[c].max_latency_ns = summaries[c].max_latency_ns.max(latency_ns);
        next_ready[c] = after_ns + jittered_think_ns(cfg.seed, c, op_index + 1, cfg.think_ns);
    }

    // Close the measurement: drain every queued write.
    core.set_client(None);
    fs.set_active_client(None);
    fs.sync()?;

    let report = MultiReport {
        clients: cfg.clients,
        total_ops: total_ops as u64,
        elapsed_ns: clock.now_ns() - start_ns,
        per_client: summaries,
    };
    registry.gauge("engine.clients").set(cfg.clients as u64);
    registry
        .gauge("engine.fairness_millis")
        .set(report.fairness_millis());
    Ok(report)
}
