//! The overwrite+read mix and streaming-scan drivers.
//!
//! [`run_small_file_create`](crate::run_small_file_create) measures the
//! write path in isolation. The memory manager's central tension —
//! write-buffer space versus read-cache space — only shows up when the
//! same clients both overwrite files (filling the write buffer) and
//! re-read a hot subset (rewarding read-cache residency). This module
//! adds that workload, plus an optional *scanner* arm: clients that
//! stream through a large file exactly once, which a shared LRU lets
//! flush every other client's working set while a scan-resistant cache
//! confines to the probation pool.
//!
//! The event loop is the same earliest-ready-client dispatch as the
//! create driver, so virtual time remains deterministic and metrics
//! JSON byte-identical across runs.

use obs::Registry;
use vfs::{FileSystem, FsResult, Ino};
use workload::payload;
use workload::small_files::SmallFileSpec;

use crate::multi::{ClientSummary, MultiReport, RequestEngine};

/// Parameters of an overwrite+read mix run.
#[derive(Debug, Clone)]
pub struct MixConfig {
    /// Number of regular (mix) clients.
    pub clients: usize,
    /// Files each regular client owns.
    pub files_per_client: usize,
    /// Size of each file in bytes.
    pub file_size: usize,
    /// Operations each regular client performs in the measured phase.
    pub ops_per_client: usize,
    /// Per-mille of operations that are reads (the rest are full-file
    /// overwrites).
    pub read_permille: u32,
    /// Reads are drawn uniformly from the first `hot_files` of the
    /// client's files (its working set); overwrites are drawn uniformly
    /// from *all* of its files.
    pub hot_files: usize,
    /// Number of scanner clients appended after the regular clients.
    /// Each owns one `scan_file_bytes` file and reads it sequentially,
    /// one block-sized chunk per operation, touching each chunk once
    /// per pass.
    pub scanners: usize,
    /// Size of each scanner's file in bytes.
    pub scan_file_bytes: usize,
    /// Bytes a scanner reads per operation (use the file-system block
    /// size so each operation touches exactly one new cache block).
    pub scan_chunk_bytes: usize,
    /// Operations each scanner performs.
    pub scan_ops: usize,
    /// Mean think time between a client's operations, in nanoseconds.
    pub think_ns: u64,
    /// Seed for the deterministic jitter and op mix.
    pub seed: u64,
    /// Per-client latency histograms are only emitted up to this many
    /// clients (the aggregate histogram is always emitted).
    pub per_client_hists_max: usize,
}

impl MixConfig {
    /// A mix config with default pacing and a 70% read share over a
    /// quarter-of-the-files working set, and no scanners.
    pub fn new(clients: usize, files_per_client: usize, file_size: usize) -> Self {
        Self {
            clients,
            files_per_client,
            file_size,
            ops_per_client: files_per_client * 4,
            read_permille: 700,
            hot_files: (files_per_client / 4).max(1),
            scanners: 0,
            scan_file_bytes: 0,
            scan_chunk_bytes: 0,
            scan_ops: 0,
            think_ns: 600_000,
            seed: 0x5EED,
            per_client_hists_max: 32,
        }
    }

    /// Adds `scanners` streaming clients, each reading a
    /// `scan_file_bytes` file in `scan_chunk_bytes` chunks for
    /// `scan_ops` operations.
    pub fn with_scanners(
        mut self,
        scanners: usize,
        scan_file_bytes: usize,
        scan_chunk_bytes: usize,
        scan_ops: usize,
    ) -> Self {
        self.scanners = scanners;
        self.scan_file_bytes = scan_file_bytes;
        self.scan_chunk_bytes = scan_chunk_bytes;
        self.scan_ops = scan_ops;
        self
    }

    /// Sets the read share (per mille).
    pub fn with_read_permille(mut self, read_permille: u32) -> Self {
        self.read_permille = read_permille.min(1000);
        self
    }

    /// Sets the working-set size reads are drawn from.
    pub fn with_hot_files(mut self, hot_files: usize) -> Self {
        self.hot_files = hot_files.clamp(1, self.files_per_client);
        self
    }

    /// Sets the mean think time.
    pub fn with_think_ns(mut self, think_ns: u64) -> Self {
        self.think_ns = think_ns;
        self
    }

    fn total_clients(&self) -> usize {
        self.clients + self.scanners
    }

    fn ops_of(&self, client: usize) -> usize {
        if client < self.clients {
            self.ops_per_client
        } else {
            self.scan_ops
        }
    }
}

/// Outcome of a mix run: the shared [`MultiReport`] plus read/write op
/// counts (hit rates come from the registry's `cache.*` counters).
#[derive(Debug, Clone)]
pub struct MixReport {
    /// The event-loop report (throughput, fairness, per-client latency).
    pub multi: MultiReport,
    /// Read operations completed (including scanner reads).
    pub read_ops: u64,
    /// Overwrite operations completed.
    pub write_ops: u64,
}

/// Deterministic per-op hash, keyed by `(seed, client, op, salt)`.
fn op_hash(seed: u64, client: usize, op: usize, salt: u64) -> u64 {
    let mut x = seed
        ^ (client as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (op as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ salt.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

fn jittered_think_ns(seed: u64, client: usize, op: usize, mean: u64) -> u64 {
    mean * (75 + op_hash(seed, client, op, 0x7417) % 51) / 100
}

/// Runs the overwrite+read mix (with optional scanner arm) against a
/// mounted file system.
///
/// Setup (unattributed): every regular client's files are created and
/// written once; every scanner's stream file is created; the cache is
/// dropped so the measured phase starts cold. Measurement: the
/// earliest-ready client dispatches its next operation — a hot-set read
/// or a full-file overwrite for regular clients, the next sequential
/// chunk for scanners — with cache charges attributed via
/// [`FileSystem::set_active_client`] and disk queue waits via
/// [`RequestEngine::set_client`].
pub fn run_overwrite_read_mix<F: FileSystem>(
    fs: &mut F,
    core: &impl RequestEngine,
    registry: &Registry,
    cfg: &MixConfig,
) -> FsResult<MixReport> {
    assert!(cfg.clients > 0, "at least one regular client");
    assert!(cfg.hot_files >= 1 && cfg.hot_files <= cfg.files_per_client);
    if cfg.scanners > 0 {
        assert!(
            cfg.scan_chunk_bytes > 0 && cfg.scan_file_bytes >= cfg.scan_chunk_bytes,
            "scanner geometry must be set via with_scanners"
        );
    }
    let clock = core.clock();
    let total_clients = cfg.total_clients();

    // Setup: files exist and are fully written before measurement.
    core.set_client(None);
    fs.set_active_client(None);
    core.register_clients(total_clients);
    let specs: Vec<SmallFileSpec> = (0..cfg.clients)
        .map(|c| SmallFileSpec::for_client(c, cfg.files_per_client, cfg.file_size))
        .collect();
    let payloads: Vec<Vec<u8>> = specs.iter().map(|s| payload(s.seed, s.file_size)).collect();
    let mut files: Vec<Vec<Ino>> = Vec::with_capacity(cfg.clients);
    for (c, spec) in specs.iter().enumerate() {
        for d in 0..spec.ndirs() {
            match fs.mkdir(&spec.dir(d)) {
                Ok(_) | Err(vfs::FsError::AlreadyExists) => {}
                Err(e) => return Err(e),
            }
        }
        let mut inos = Vec::with_capacity(cfg.files_per_client);
        for i in 0..cfg.files_per_client {
            inos.push(fs.write_file(&spec.path(i), &payloads[c])?);
        }
        files.push(inos);
    }
    let mut scan_files: Vec<Ino> = Vec::with_capacity(cfg.scanners);
    if cfg.scanners > 0 {
        let scan_payload = payload(0x5CA7, cfg.scan_file_bytes);
        for s in 0..cfg.scanners {
            scan_files.push(fs.write_file(&format!("/scan{s:03}.dat"), &scan_payload)?);
        }
    }
    fs.sync()?;
    // Cold start: the measured phase's hit rates reflect the policy's
    // own residency decisions, not setup leftovers.
    fs.drop_caches()?;

    let agg_hist = registry.hist("engine.op_ns");
    let client_hists: Vec<_> = (0..total_clients)
        .map(|c| {
            (total_clients <= cfg.per_client_hists_max)
                .then(|| registry.hist(&format!("engine.c{c:03}.op_ns")))
        })
        .collect();

    let start_ns = clock.now_ns();
    let mut next_ready: Vec<u64> = (0..total_clients)
        .map(|c| start_ns + jittered_think_ns(cfg.seed, c, 0, cfg.think_ns))
        .collect();
    let mut summaries: Vec<ClientSummary> = (0..total_clients)
        .map(|client| ClientSummary {
            client,
            ops: 0,
            total_latency_ns: 0,
            max_latency_ns: 0,
        })
        .collect();

    let total_ops: usize = (0..total_clients).map(|c| cfg.ops_of(c)).sum();
    let mut read_ops = 0u64;
    let mut write_ops = 0u64;
    let mut read_buf = vec![0u8; cfg.file_size.max(cfg.scan_chunk_bytes)];
    for _ in 0..total_ops {
        let c = (0..total_clients)
            .filter(|&c| (summaries[c].ops as usize) < cfg.ops_of(c))
            .min_by_key(|&c| (next_ready[c], c))
            .expect("a client still has work");
        clock.advance_to_ns(next_ready[c]);
        core.pump()?;
        core.set_client(Some(c));
        fs.set_active_client(Some(c as u32));

        let op_index = summaries[c].ops as usize;
        let before_ns = clock.now_ns();
        if c < cfg.clients {
            // Regular client: hot-set read or full-file overwrite.
            let roll = op_hash(cfg.seed, c, op_index, 0x01) % 1000;
            if (roll as u32) < cfg.read_permille {
                let i = (op_hash(cfg.seed, c, op_index, 0x02) % cfg.hot_files as u64) as usize;
                fs.read_at(files[c][i], 0, &mut read_buf[..cfg.file_size])?;
                read_ops += 1;
            } else {
                let i =
                    (op_hash(cfg.seed, c, op_index, 0x03) % cfg.files_per_client as u64) as usize;
                fs.write_at(files[c][i], 0, &payloads[c])?;
                write_ops += 1;
            }
        } else {
            // Scanner: the next sequential chunk, each touched once per
            // pass over the file.
            let s = c - cfg.clients;
            let chunks = (cfg.scan_file_bytes / cfg.scan_chunk_bytes).max(1);
            let offset = ((op_index % chunks) * cfg.scan_chunk_bytes) as u64;
            fs.read_at(scan_files[s], offset, &mut read_buf[..cfg.scan_chunk_bytes])?;
            read_ops += 1;
        }
        let after_ns = clock.now_ns();
        debug_assert!(after_ns >= before_ns, "virtual time went backwards");
        let latency_ns = after_ns - before_ns;

        agg_hist.record(latency_ns);
        if let Some(h) = &client_hists[c] {
            h.record(latency_ns);
        }
        summaries[c].ops += 1;
        summaries[c].total_latency_ns += latency_ns;
        summaries[c].max_latency_ns = summaries[c].max_latency_ns.max(latency_ns);
        next_ready[c] = after_ns + jittered_think_ns(cfg.seed, c, op_index + 1, cfg.think_ns);
    }

    core.set_client(None);
    fs.set_active_client(None);
    fs.sync()?;

    let report = MultiReport {
        clients: total_clients,
        total_ops: total_ops as u64,
        elapsed_ns: clock.now_ns() - start_ns,
        per_client: summaries,
    };
    registry.gauge("engine.clients").set(total_clients as u64);
    registry
        .gauge("engine.fairness_millis")
        .set(report.fairness_millis());
    Ok(MixReport {
        multi: report,
        read_ops,
        write_ops,
    })
}
