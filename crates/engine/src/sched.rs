//! Pluggable disk-arm scheduling policies.
//!
//! A policy only chooses *which* eligible queued request the head services
//! next; the engine owns eligibility (a request submitted in the future is
//! invisible), the bounded-wait guarantee (an aged request preempts the
//! policy — see [`crate::EngineConfig::max_wait_ns`]), and all accounting.
//! Every policy must be deterministic: ties break on submission time and
//! then on request id, never on iteration order of an unordered container.

use sim_disk::SubmittedIo;

/// Which scheduling policy the engine's queue uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// First-come first-served: service in submission order.
    Fcfs,
    /// Shortest-seek-time-first: service the request closest to the head.
    Sstf,
    /// Circular LOOK: sweep toward higher sectors, then jump back to the
    /// lowest pending request and sweep again.
    CLook,
}

impl SchedulerKind {
    /// All policies, in a stable order (for sweeps).
    pub fn all() -> [SchedulerKind; 3] {
        [SchedulerKind::Fcfs, SchedulerKind::Sstf, SchedulerKind::CLook]
    }

    /// Stable lower-case name (used in labels and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "fcfs",
            SchedulerKind::Sstf => "sstf",
            SchedulerKind::CLook => "clook",
        }
    }

    /// Parses a name produced by [`SchedulerKind::name`].
    pub fn parse(name: &str) -> Option<SchedulerKind> {
        SchedulerKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Builds the policy implementation.
    pub fn build(self) -> Box<dyn IoScheduler> {
        match self {
            SchedulerKind::Fcfs => Box::new(Fcfs),
            SchedulerKind::Sstf => Box::new(Sstf),
            SchedulerKind::CLook => Box::new(CLook),
        }
    }
}

/// A disk-arm scheduling policy.
pub trait IoScheduler {
    /// The policy's kind (for labels and tracing).
    fn kind(&self) -> SchedulerKind;

    /// Picks the id of the next request to service from `eligible`.
    ///
    /// `eligible` is non-empty; `head` is the current head position.
    fn pick(&self, head: u64, eligible: &[&SubmittedIo]) -> u64;
}

/// First-come first-served.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fcfs;

impl IoScheduler for Fcfs {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Fcfs
    }

    fn pick(&self, _head: u64, eligible: &[&SubmittedIo]) -> u64 {
        eligible
            .iter()
            .min_by_key(|p| (p.submitted_at_ns(), p.id()))
            .expect("eligible set is non-empty")
            .id()
    }
}

/// Shortest-seek-time-first.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sstf;

impl IoScheduler for Sstf {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Sstf
    }

    fn pick(&self, head: u64, eligible: &[&SubmittedIo]) -> u64 {
        eligible
            .iter()
            .min_by_key(|p| (p.sector().abs_diff(head), p.submitted_at_ns(), p.id()))
            .expect("eligible set is non-empty")
            .id()
    }
}

/// Circular LOOK: one-directional elevator.
#[derive(Debug, Default, Clone, Copy)]
pub struct CLook;

impl IoScheduler for CLook {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::CLook
    }

    fn pick(&self, head: u64, eligible: &[&SubmittedIo]) -> u64 {
        let ahead = eligible
            .iter()
            .filter(|p| p.sector() >= head)
            .min_by_key(|p| (p.sector(), p.id()));
        match ahead {
            Some(p) => p.id(),
            // Nothing ahead of the head: wrap to the lowest sector.
            None => {
                eligible
                    .iter()
                    .min_by_key(|p| (p.sector(), p.id()))
                    .expect("eligible set is non-empty")
                    .id()
            }
        }
    }
}
