//! Per-client quality of service: weights and priority classes.
//!
//! A [`QosSpec`] names every tenant's *weight* (proportional share of
//! service while backlogged) and *class* ([`QosClass::Latency`] tenants
//! are serviced ahead of [`QosClass::Bulk`] tenants). The mechanism is
//! one [`FairShare`] ledger — a start-time-fair-queueing variant over
//! the shared virtual clock's service units — used at *both* contention
//! points of the stack:
//!
//! * the disk request queue ([`crate::EngineCore`] consults a ledger in
//!   its pick loop, after the bounded-wait aging guarantee), so a
//!   latency tenant's synchronous request is not stuck behind a bulk
//!   tenant's queued backlog, and
//! * the operation dispatcher of a trace replay (the `trace` crate
//!   keeps its own ledger over operation service time), so a 4x-weight
//!   tenant is dispatched 4x as often while every tenant is backlogged.
//!
//! QoS never weakens the anti-starvation guarantee: the engine's aging
//! check runs *before* the ledger is consulted, so a zero-priority
//! request still cannot wait past [`crate::EngineConfig::max_wait_ns`]
//! plus the drain bound, whatever the weights say.

/// Service class of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QosClass {
    /// Latency-sensitive: serviced ahead of every bulk tenant.
    Latency,
    /// Throughput-oriented (the default): shares capacity by weight.
    #[default]
    Bulk,
}

impl QosClass {
    /// Stable lower-case name (used in labels and trace files).
    pub fn name(self) -> &'static str {
        match self {
            QosClass::Latency => "latency",
            QosClass::Bulk => "bulk",
        }
    }

    /// Parses a name produced by [`QosClass::name`].
    pub fn parse(name: &str) -> Option<QosClass> {
        match name {
            "latency" => Some(QosClass::Latency),
            "bulk" => Some(QosClass::Bulk),
            _ => None,
        }
    }

    /// Ordering rank: lower ranks are serviced first.
    fn rank(self) -> u8 {
        match self {
            QosClass::Latency => 0,
            QosClass::Bulk => 1,
        }
    }
}

/// One tenant's QoS parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQos {
    /// Proportional-share weight (>= 1).
    pub weight: u64,
    /// Service class.
    pub class: QosClass,
}

impl Default for TenantQos {
    fn default() -> Self {
        TenantQos {
            weight: 1,
            class: QosClass::Bulk,
        }
    }
}

/// The per-client QoS assignment for a run: tenant `c`'s parameters live
/// at index `c`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QosSpec {
    /// Per-tenant parameters, indexed by client id.
    pub tenants: Vec<TenantQos>,
}

impl QosSpec {
    /// `n` tenants, all weight 1, all bulk — QoS on but neutral.
    pub fn uniform(n: usize) -> Self {
        QosSpec {
            tenants: vec![TenantQos::default(); n],
        }
    }

    /// Sets tenant `client`'s weight (clamped to >= 1).
    pub fn with_weight(mut self, client: usize, weight: u64) -> Self {
        if let Some(t) = self.tenants.get_mut(client) {
            t.weight = weight.max(1);
        }
        self
    }

    /// Sets tenant `client`'s class.
    pub fn with_class(mut self, client: usize, class: QosClass) -> Self {
        if let Some(t) = self.tenants.get_mut(client) {
            t.class = class;
        }
        self
    }

    /// Number of tenants covered by the spec.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when the spec covers no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Tenant `client`'s parameters (default weight-1 bulk for clients
    /// beyond the spec, so a partial spec degrades gracefully).
    pub fn tenant(&self, client: usize) -> TenantQos {
        self.tenants.get(client).copied().unwrap_or_default()
    }
}

/// Fixed-point scale for normalized service: one service unit at weight
/// `SCALE` advances virtual time by 1.
const VTIME_SCALE: u64 = 1 << 16;

/// A weighted fair-share ledger (start-time fair queueing).
///
/// Each tenant has a *virtual time*: its cumulative charged service
/// divided by its weight. The scheduler always picks, among candidates,
/// the best `(class rank, virtual time, id)` — so latency tenants go
/// first, and within a class the tenant furthest behind its fair share
/// goes next. While every tenant stays backlogged, cumulative service
/// converges to the weight ratio.
///
/// A tenant returning from idle is clamped forward to the system's
/// virtual time ([`FairShare::note_active`]): idling banks no credit, so
/// a sleeping tenant cannot wake up and monopolize the device.
#[derive(Debug, Clone)]
pub struct FairShare {
    spec: QosSpec,
    /// Per-tenant virtual time, indexed by client id (grown on demand).
    vtime: Vec<u64>,
    /// Virtual time of the most recent pick — the "system" virtual
    /// time a newly active tenant is clamped forward to.
    system_v: u64,
}

impl FairShare {
    /// An empty ledger over `spec`.
    pub fn new(spec: QosSpec) -> Self {
        let n = spec.len();
        FairShare {
            spec,
            vtime: vec![0; n],
            system_v: 0,
        }
    }

    /// The spec the ledger was built over.
    pub fn spec(&self) -> &QosSpec {
        &self.spec
    }

    fn slot(&mut self, client: usize) -> &mut u64 {
        if client >= self.vtime.len() {
            self.vtime.resize(client + 1, self.system_v);
        }
        &mut self.vtime[client]
    }

    /// Charges `units` of service (bytes, nanoseconds — any additive
    /// unit, as long as one unit is used consistently) to `client`,
    /// advancing its virtual time by `units / weight`.
    pub fn charge(&mut self, client: usize, units: u64) {
        let weight = self.spec.tenant(client).weight.max(1);
        let v = self.slot(client);
        *v = v.saturating_add(units.saturating_mul(VTIME_SCALE) / weight);
    }

    /// Clamps a tenant returning from idle forward to the system virtual
    /// time, so idling banks no credit.
    pub fn note_active(&mut self, client: usize) {
        let system_v = self.system_v;
        let v = self.slot(client);
        *v = (*v).max(system_v);
    }

    /// The pick key of `client`: lower is serviced first.
    pub fn key(&self, client: usize) -> (u8, u64, usize) {
        let t = self.spec.tenant(client);
        let v = self.vtime.get(client).copied().unwrap_or(self.system_v);
        (t.class.rank(), v, client)
    }

    /// Picks the best candidate — lowest `(class rank, virtual time,
    /// id)` — and advances the system virtual time to its pick.
    /// Returns `None` on an empty candidate set.
    pub fn pick(&mut self, candidates: impl IntoIterator<Item = usize>) -> Option<usize> {
        let best = candidates.into_iter().min_by_key(|&c| self.key(c))?;
        self.system_v = self.vtime.get(best).copied().unwrap_or(self.system_v);
        Some(best)
    }

    /// Tenant `client`'s current virtual time (test/introspection hook).
    pub fn vtime(&self, client: usize) -> u64 {
        self.vtime.get(client).copied().unwrap_or(self.system_v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_picks_converge_to_weight_ratio() {
        // Two always-backlogged tenants, weights 4:1, unit charges.
        let spec = QosSpec::uniform(2).with_weight(0, 4);
        let mut fair = FairShare::new(spec);
        let mut served = [0u64; 2];
        for _ in 0..1000 {
            let c = fair.pick([0, 1]).unwrap();
            served[c] += 1;
            fair.charge(c, 1000);
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            (ratio - 4.0).abs() < 0.1,
            "4:1 weights served {served:?} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn latency_class_preempts_bulk_regardless_of_weight() {
        let spec = QosSpec::uniform(2)
            .with_weight(0, 100)
            .with_class(1, QosClass::Latency);
        let mut fair = FairShare::new(spec);
        fair.charge(1, 1_000_000); // latency tenant far "ahead" on service
        assert_eq!(fair.pick([0, 1]), Some(1));
    }

    #[test]
    fn idle_tenants_bank_no_credit() {
        let spec = QosSpec::uniform(2);
        let mut fair = FairShare::new(spec);
        // Tenant 0 runs alone for a while.
        for _ in 0..100 {
            let c = fair.pick([0]).unwrap();
            fair.charge(c, 1000);
        }
        // Tenant 1 wakes: clamped to system virtual time, so it does not
        // monopolize the next 100 picks.
        fair.note_active(1);
        let mut served = [0u64; 2];
        for _ in 0..100 {
            let c = fair.pick([0, 1]).unwrap();
            served[c] += 1;
            fair.charge(c, 1000);
        }
        assert!(
            served[0] >= 45,
            "waking tenant starved the running one: {served:?}"
        );
    }

    #[test]
    fn spec_accessors_and_parse_round_trip() {
        let spec = QosSpec::uniform(3)
            .with_weight(1, 4)
            .with_class(2, QosClass::Latency);
        assert_eq!(spec.tenant(1).weight, 4);
        assert_eq!(spec.tenant(2).class, QosClass::Latency);
        assert_eq!(spec.tenant(9), TenantQos::default());
        for class in [QosClass::Latency, QosClass::Bulk] {
            assert_eq!(QosClass::parse(class.name()), Some(class));
        }
        assert_eq!(QosClass::parse("gold"), None);
    }
}
