//! Media-fault retry policy: the engine retries reads that fail with a
//! media error, backing off exponentially on the virtual clock, and
//! surfaces a typed error only once the retry budget is exhausted.

use std::rc::Rc;
use std::sync::Arc;

use engine::{EngineConfig, EngineCore, EngineDisk};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{
    BlockDevice, Clock, DiskError, DiskGeometry, MediaFaultPlan, SimDisk, SECTOR_SIZE,
};
use vfs::FileSystem;

fn engine(cfg: EngineConfig) -> (Rc<std::cell::RefCell<EngineCore>>, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let core = EngineCore::new(disk, cfg).into_shared();
    (core, clock)
}

#[test]
fn transient_media_fault_recovers_within_the_retry_budget() {
    let (core, clock) = engine(EngineConfig::default());
    let mut dev = EngineDisk::new(Rc::clone(&core));

    dev.write(40, &vec![0x5A; SECTOR_SIZE], true).unwrap();
    core.borrow_mut()
        .disk_mut()
        .inject_media_faults(MediaFaultPlan::new(7).transient(40, 2));

    let before = clock.now_ns();
    let mut buf = vec![0u8; SECTOR_SIZE];
    dev.read(40, &mut buf).unwrap();
    assert_eq!(buf, vec![0x5A; SECTOR_SIZE]);

    let snap = core.borrow().disk().obs().snapshot();
    assert_eq!(snap.counter("engine.retries"), 2);
    assert_eq!(snap.counter("engine.retry_exhausted"), 0);
    assert_eq!(snap.counter("faults.transient_errors"), 2);
    // Two backoff waits elapsed on the virtual clock: base + base*2.
    let base = EngineConfig::default().retry_backoff_ns;
    assert!(clock.now_ns() - before >= base + (base << 1));
}

#[test]
fn latent_media_fault_exhausts_the_retry_budget() {
    let cfg = EngineConfig::default().with_read_retries(3);
    let (core, _clock) = engine(cfg);
    let mut dev = EngineDisk::new(Rc::clone(&core));

    dev.write(9, &vec![0x11; SECTOR_SIZE], true).unwrap();
    core.borrow_mut()
        .disk_mut()
        .inject_media_faults(MediaFaultPlan::new(3).latent(9));

    let mut buf = vec![0u8; SECTOR_SIZE];
    assert_eq!(dev.read(9, &mut buf), Err(DiskError::Unreadable { sector: 9 }));

    let snap = core.borrow().disk().obs().snapshot();
    assert_eq!(snap.counter("engine.retries"), 3);
    assert_eq!(snap.counter("engine.retry_exhausted"), 1);
    // 1 initial attempt + 3 retries all hit the platter.
    assert_eq!(snap.counter("faults.unreadable_reads"), 4);

    // A media error fails only that request; the device still services
    // other sectors afterwards.
    dev.read(10, &mut buf).unwrap();
}

#[test]
fn zero_retry_budget_surfaces_the_first_failure() {
    let cfg = EngineConfig::default().with_read_retries(0);
    let (core, _clock) = engine(cfg);
    let mut dev = EngineDisk::new(Rc::clone(&core));

    core.borrow_mut()
        .disk_mut()
        .inject_media_faults(MediaFaultPlan::new(1).transient(5, 1));

    let mut buf = vec![0u8; SECTOR_SIZE];
    assert_eq!(dev.read(5, &mut buf), Err(DiskError::Unreadable { sector: 5 }));
    let snap = core.borrow().disk().obs().snapshot();
    assert_eq!(snap.counter("engine.retries"), 0);
    assert_eq!(snap.counter("engine.retry_exhausted"), 1);
}

#[test]
fn huge_retry_budget_caps_backoff_instead_of_overflowing_the_shift() {
    // Regression: the backoff used `retry_backoff_ns << attempt`, which
    // panics in debug builds (and wraps in release) once a configured
    // budget pushes `attempt` to 64. A 100-retry latent fault must
    // surface a typed error with the clock still sane.
    let cfg = EngineConfig::default()
        .with_read_retries(100)
        .with_retry_backoff_ns(1);
    let (core, clock) = engine(cfg);
    let mut dev = EngineDisk::new(Rc::clone(&core));

    dev.write(9, &vec![0x11; SECTOR_SIZE], true).unwrap();
    core.borrow_mut()
        .disk_mut()
        .inject_media_faults(MediaFaultPlan::new(3).latent(9));

    let mut buf = vec![0u8; SECTOR_SIZE];
    assert_eq!(dev.read(9, &mut buf), Err(DiskError::Unreadable { sector: 9 }));

    let snap = core.borrow().disk().obs().snapshot();
    assert_eq!(snap.counter("engine.retries"), 100);
    assert_eq!(snap.counter("engine.retry_exhausted"), 1);
    // The backoff plateaued at base * 2^20 per attempt; with a 1 ns
    // base, 100 capped waits stay far below a virtual year.
    assert!(clock.now_ns() < 365 * 24 * 3600 * 1_000_000_000);
}

#[test]
fn dead_media_takes_the_engine_offline_until_replaced() {
    let (core, _clock) = engine(EngineConfig::default());
    let mut dev = EngineDisk::new(Rc::clone(&core));
    dev.write(4, &vec![0x22; SECTOR_SIZE], true).unwrap();
    assert!(!core.borrow().is_offline());

    core.borrow_mut().disk_mut().kill_media();
    {
        let mut eng = core.borrow_mut();
        assert!(eng.is_offline());
        eng.discard_queue();
        assert_eq!(eng.queue_len(), 0);
    }
    let mut buf = vec![0u8; SECTOR_SIZE];
    assert_eq!(dev.read(4, &mut buf), Err(DiskError::Unreadable { sector: 4 }));

    core.borrow_mut().disk_mut().replace_media();
    assert!(!core.borrow().is_offline());
    dev.write(4, &vec![0x33; SECTOR_SIZE], true).unwrap();
    dev.read(4, &mut buf).unwrap();
    assert_eq!(buf, vec![0x33; SECTOR_SIZE]);
}

/// End-to-end: an LFS volume remounted through the engine, with every
/// sector of the device armed to fail its first read, recovers
/// transparently — mount-time metadata reads and file reads all ride
/// the retry policy.
#[test]
fn lfs_remount_rides_out_transient_faults_on_every_sector() {
    let (core, clock) = engine(EngineConfig::default());
    let dev = EngineDisk::new(Rc::clone(&core));
    let mut fs = Lfs::format(dev, LfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    for i in 0..8 {
        fs.write_file(&format!("/f{i}"), &vec![0xC0 | i as u8; 3000]).unwrap();
    }
    fs.sync().unwrap();
    let dev = fs.into_device();

    // Every sector fails once; writes clear faults, so only reads feel it.
    let sectors = core.borrow().disk().num_sectors();
    let mut plan = MediaFaultPlan::new(11);
    for s in 0..sectors {
        plan = plan.transient(s, 1);
    }
    core.borrow_mut().disk_mut().inject_media_faults(plan);

    let mut fs = Lfs::mount(dev, LfsConfig::small_test(), clock).unwrap();
    assert!(!fs.is_read_only());
    for i in 0..8 {
        assert_eq!(fs.read_file(&format!("/f{i}")).unwrap(), vec![0xC0 | i as u8; 3000]);
    }
    let registry = fs.obs().clone();
    assert!(registry.counter("engine.retries").get() > 0);
    assert_eq!(registry.counter("engine.retry_exhausted").get(), 0);
}
