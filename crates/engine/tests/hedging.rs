//! Per-request latency deadlines and the hedge hook: the engine
//! predicts a pending read's completion, reports budget blowouts to the
//! owner, and lets the loser of a hedged race be drained without
//! charging the foreground clock.

use std::rc::Rc;
use std::sync::Arc;

use engine::{EngineConfig, EngineCore, EngineDisk, ReadHandle};
use sim_disk::{
    BlockDevice, Clock, DiskGeometry, FailSlowProfile, MediaFaultPlan, SimDisk, SECTOR_SIZE,
};

fn engine(cfg: EngineConfig) -> (Rc<std::cell::RefCell<EngineCore>>, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let core = EngineCore::new(disk, cfg).into_shared();
    (core, clock)
}

/// Predicted read latency for a single queued random read on this
/// geometry (used to pick deadlines on either side of it).
fn predicted_read_ns(core: &Rc<std::cell::RefCell<EngineCore>>, sector: u64) -> u64 {
    let eng = core.borrow();
    let start = eng.disk().busy_until_ns().max(eng.clock().now_ns());
    eng.disk().estimate_service_ns(start, sector, SECTOR_SIZE as u64)
}

#[test]
fn hedge_never_fires_on_a_healthy_disk_with_a_sane_deadline() {
    let (core, _clock) = engine(EngineConfig::default());
    let mut dev = EngineDisk::new(Rc::clone(&core));
    dev.write(100, &vec![7; SECTOR_SIZE], true).unwrap();

    // Deadline 10x the healthy service estimate: never overdue.
    let deadline = 10 * predicted_read_ns(&core, 100);
    core.borrow_mut().config_mut().hedge_deadline_ns = Some(deadline);

    let handle = core.borrow_mut().start_read(100, SECTOR_SIZE).unwrap();
    let ReadHandle::Pending(id) = handle else {
        panic!("expected a queued read");
    };
    assert!(!core.borrow_mut().hedge_overdue(id));
    let mut buf = vec![0u8; SECTOR_SIZE];
    core.borrow_mut()
        .finish_read(ReadHandle::Pending(id), 100, &mut buf)
        .unwrap();
    assert_eq!(buf, vec![7; SECTOR_SIZE]);
    let snap = core.borrow().disk().obs().snapshot();
    assert_eq!(snap.counter("engine.hedges"), 0, "vacuity: healthy disk");
    assert_eq!(snap.counter("engine.hedge_wins"), 0);
}

#[test]
fn hedge_fires_on_a_fail_slow_disk_and_counts_once_per_report() {
    let (core, _clock) = engine(EngineConfig::default());
    let mut dev = EngineDisk::new(Rc::clone(&core));
    dev.write(100, &vec![9; SECTOR_SIZE], true).unwrap();

    // Deadline 2x healthy; then a 10x fail-slow multiplier blows it.
    let deadline = 2 * predicted_read_ns(&core, 100);
    core.borrow_mut().config_mut().hedge_deadline_ns = Some(deadline);
    core.borrow_mut().disk_mut().inject_media_faults(
        MediaFaultPlan::new(0).fail_slow(FailSlowProfile::at(0).with_multiplier_pct(1000)),
    );

    let handle = core.borrow_mut().start_read(100, SECTOR_SIZE).unwrap();
    let ReadHandle::Pending(id) = handle else {
        panic!("expected a queued read");
    };
    assert!(core.borrow_mut().hedge_overdue(id));
    let snap = core.borrow().disk().obs().snapshot();
    assert_eq!(snap.counter("engine.hedges"), 1);

    // The original stays in flight and still returns correct bytes.
    let mut buf = vec![0u8; SECTOR_SIZE];
    core.borrow_mut()
        .finish_read(ReadHandle::Pending(id), 100, &mut buf)
        .unwrap();
    assert_eq!(buf, vec![9; SECTOR_SIZE]);
}

#[test]
fn hedge_is_off_without_a_deadline_even_under_fail_slow() {
    let (core, _clock) = engine(EngineConfig::default());
    let mut dev = EngineDisk::new(Rc::clone(&core));
    dev.write(50, &vec![1; SECTOR_SIZE], true).unwrap();
    core.borrow_mut().disk_mut().inject_media_faults(
        MediaFaultPlan::new(0).fail_slow(FailSlowProfile::at(0).with_multiplier_pct(1000)),
    );
    let handle = core.borrow_mut().start_read(50, SECTOR_SIZE).unwrap();
    let ReadHandle::Pending(id) = handle else {
        panic!("expected a queued read");
    };
    assert!(!core.borrow_mut().hedge_overdue(id));
    assert_eq!(
        core.borrow().disk().obs().snapshot().counter("engine.hedges"),
        0
    );
    let mut buf = vec![0u8; SECTOR_SIZE];
    core.borrow_mut()
        .finish_read(ReadHandle::Pending(id), 50, &mut buf)
        .unwrap();
}

#[test]
fn drain_read_completes_without_advancing_the_clock() {
    let (core, clock) = engine(EngineConfig::default());
    let mut dev = EngineDisk::new(Rc::clone(&core));
    dev.write(200, &vec![4; SECTOR_SIZE], true).unwrap();

    let handle = core.borrow_mut().start_read(200, SECTOR_SIZE).unwrap();
    let ReadHandle::Pending(id) = handle else {
        panic!("expected a queued read");
    };
    let predicted = core.borrow().estimated_finish_ns(id).unwrap();
    let before = clock.now_ns();
    let done = core.borrow_mut().drain_read(id).unwrap();
    assert_eq!(clock.now_ns(), before, "drain must not charge the caller");
    assert_eq!(done.finish_ns, predicted, "the estimate was exact");
    assert!(done.finish_ns > before, "the work still happened in the future");
    assert_eq!(done.data.as_deref(), Some(&vec![4; SECTOR_SIZE][..]));
    // The spindle's busy horizon reflects the drained work: a later
    // request queues behind it.
    assert!(core.borrow().disk().busy_until_ns() >= done.finish_ns);
}

#[test]
fn estimated_finish_covers_background_serviced_reads() {
    let (core, _clock) = engine(EngineConfig::default());
    let mut dev = EngineDisk::new(Rc::clone(&core));
    dev.write(10, &vec![2; SECTOR_SIZE], true).unwrap();
    dev.write(20, &vec![3; SECTOR_SIZE], true).unwrap();

    // Two reads queued; draining one may service the other in the
    // background (policy order), parking it in the unclaimed stash.
    let ha = core.borrow_mut().start_read(10, SECTOR_SIZE).unwrap();
    let hb = core.borrow_mut().start_read(20, SECTOR_SIZE).unwrap();
    let (ReadHandle::Pending(a), ReadHandle::Pending(b)) = (ha, hb) else {
        panic!("expected queued reads");
    };
    core.borrow_mut().drain_read(b).unwrap();
    // Whether `a` was background-serviced (stash branch) or is next up
    // from the post-drain head position, its estimate is now exact.
    let est_a = core.borrow().estimated_finish_ns(a).unwrap();
    let done_a = core.borrow_mut().drain_read(a).unwrap();
    assert_eq!(done_a.finish_ns, est_a);
    assert_eq!(done_a.data.as_deref(), Some(&vec![2; SECTOR_SIZE][..]));
}
