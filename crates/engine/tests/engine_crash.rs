//! Integration of the request engine with the real file systems, and the
//! reorder-window crash test: LFS checkpoint recovery must survive a
//! crash that discards writes the scheduler had reordered but not yet
//! persisted.

use std::rc::Rc;
use std::sync::Arc;

use engine::{EngineConfig, EngineCore, EngineDisk, SchedulerKind};
use ffs_baseline::{Ffs, FfsConfig};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, CrashPlan, DiskGeometry, DiskError, SimDisk};
use vfs::{FileSystem, FsError};

/// A fresh engine over an 8 MB tiny-test disk.
fn engine(sched: SchedulerKind) -> (std::rc::Rc<std::cell::RefCell<EngineCore>>, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let core = EngineCore::new(disk, EngineConfig::default().with_scheduler(sched)).into_shared();
    (core, clock)
}

#[test]
fn lfs_round_trips_through_the_engine() {
    let (core, clock) = engine(SchedulerKind::Sstf);
    let dev = EngineDisk::new(Rc::clone(&core));
    let mut fs = Lfs::format(dev, LfsConfig::small_test(), clock).unwrap();

    for i in 0..24 {
        fs.write_file(&format!("/f{i:02}"), &vec![i as u8; 1500]).unwrap();
    }
    fs.sync().unwrap();
    for i in 0..24 {
        assert_eq!(fs.read_file(&format!("/f{i:02}")).unwrap(), vec![i as u8; 1500]);
    }
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "fsck found problems:\n{report}");

    // The engine actually sat in the I/O path: it scheduled completions,
    // and after the final sync nothing is left queued.
    let registry = fs.obs().clone();
    assert!(registry.counter("engine.sched_decisions").get() > 0);
    assert_eq!(core.borrow().disk().pending_len(), 0);
}

#[test]
fn ffs_round_trips_through_the_engine() {
    let (core, clock) = engine(SchedulerKind::CLook);
    let dev = EngineDisk::new(Rc::clone(&core));
    let mut fs = Ffs::format(dev, FfsConfig::small_test(), clock).unwrap();

    fs.mkdir("/d").unwrap();
    for i in 0..16 {
        fs.write_file(&format!("/d/f{i:02}"), &vec![0xA0 | i as u8; 900]).unwrap();
    }
    fs.sync().unwrap();
    for i in 0..16 {
        assert_eq!(fs.read_file(&format!("/d/f{i:02}")).unwrap(), vec![0xA0 | i as u8; 900]);
    }
    assert_eq!(core.borrow().disk().pending_len(), 0);
}

/// The satellite crash test: with SSTF + coalescing reordering queued
/// writes, a crash that loses the whole reorder window (every write the
/// scheduler was still holding) must not damage anything the file system
/// checkpointed before the window opened.
#[test]
fn lfs_checkpoint_recovery_survives_scheduler_reordering() {
    let (core, clock) = engine(SchedulerKind::Sstf);
    let dev = EngineDisk::new(Rc::clone(&core));
    let mut fs = Lfs::format(dev, LfsConfig::small_test(), clock).unwrap();

    // Batch 1: durable. sync() drains the engine queue and writes a
    // checkpoint, so this data is on the platter in persistence order.
    for i in 0..12 {
        fs.write_file(&format!("/keep{i:02}"), &vec![0x11 + i as u8; 2048]).unwrap();
    }
    fs.sync().unwrap();
    let durable_writes = core.borrow().disk().stats().writes;

    // Arm the fault: one persist-order write into batch 2's flush, the
    // disk crashes and the reorder window (every held and still-queued
    // write) is lost. Coalescing merges whole segment streams into very
    // few transfers, so the crash index sits right in the middle of them.
    core.borrow_mut()
        .disk_mut()
        .arm_crash(CrashPlan::reorder_at(durable_writes + 1, 8));

    // Batch 2: large enough to overflow the cache and force several
    // persist-order writes; the crash fires while the scheduler is
    // reordering them.
    let mut crashed = false;
    for i in 0..40 {
        match fs.write_file(&format!("/lost{i:02}"), &vec![0xEE; 2048]) {
            Ok(_) => {}
            Err(FsError::Io(DiskError::Crashed)) => {
                crashed = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    }
    if !crashed {
        match fs.sync() {
            Err(FsError::Io(DiskError::Crashed)) => crashed = true,
            other => panic!("sync should have crashed, got {other:?}"),
        }
    }
    assert!(crashed, "the armed crash plan never fired");

    // Pull the surviving platter image out through the engine.
    let dev = fs.into_device();
    drop(dev);
    let disk = Rc::try_unwrap(core)
        .ok()
        .expect("all other engine handles dropped")
        .into_inner()
        .into_disk();
    assert!(disk.has_crashed());
    let geometry = disk.geometry().clone();
    let image = disk.into_image();

    // Recovery: remount from the image. The checkpoint plus roll-forward
    // must yield a clean file system with every batch-1 file intact,
    // regardless of what order the scheduler persisted batch-2 writes in.
    let clock2 = Clock::new();
    let disk2 = SimDisk::from_image(geometry, Arc::clone(&clock2), image);
    let mut fs2 = Lfs::mount(disk2, LfsConfig::small_test(), clock2).unwrap();
    let report = fs2.fsck().unwrap();
    assert!(report.is_clean(), "fsck after crash recovery:\n{report}");
    for i in 0..12 {
        assert_eq!(
            fs2.read_file(&format!("/keep{i:02}")).unwrap(),
            vec![0x11 + i as u8; 2048],
            "checkpointed file /keep{i:02} damaged by the crash"
        );
    }
}
