//! Per-class I/O byte accounting closes exactly over a cleaner-heavy
//! run: every byte the device transferred (or absorbed in queue) is
//! attributed to exactly one class — foreground client, maintenance
//! (the async cleaner), or system — and nothing is counted twice.
//!
//! This is the regression fence for the maintenance class: a cleaner
//! code path that issues I/O without the maintenance tag (or a tag left
//! on across a foreground operation) shifts bytes between accounts and
//! breaks the identity, even though every functional test still passes.

use std::rc::Rc;
use std::sync::Arc;

use engine::{EngineConfig, EngineCore, EngineDisk, RequestEngine};
use lfs_core::{AsyncCleanerPolicy, CleanerRunMode, Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::{FileSystem, FsError};

#[test]
fn class_accounts_cover_every_device_byte() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(4096), Arc::clone(&clock));
    let core = EngineCore::new(disk, EngineConfig::default()).into_shared();
    let dev = EngineDisk::new(Rc::clone(&core));
    let mut cfg = LfsConfig::small_test();
    cfg.cleaner.run_mode = CleanerRunMode::Async(
        AsyncCleanerPolicy::default()
            .with_watermarks(1 << 16, 1 << 17)
            .with_step_caps(2, 4),
    );
    let mut fs = Lfs::format(dev, cfg, clock).unwrap();
    let registry = fs.obs().clone();
    core.register_clients(1);

    // Churn as client 0: blobs big enough to overflow the cache, so
    // overwrites reach the disk and manufacture garbage; the cleaner is
    // offered steps between rounds and re-tags its own I/O maintenance.
    let blob = vec![0x5Au8; 20_000];
    for round in 0..120 {
        core.set_client(Some(0));
        let path = format!("/blob{}", round % 4);
        match fs.lookup(&path) {
            Ok(ino) => {
                fs.truncate(ino, 0).unwrap();
                let mut written = 0;
                while written < blob.len() {
                    written += fs.write_at(ino, written as u64, &blob[written..]).unwrap();
                }
            }
            Err(FsError::NotFound) => {
                fs.write_file(&path, &blob).unwrap();
            }
            Err(e) => panic!("round {round}: {e}"),
        }
        core.set_client(None);
        for _ in 0..8 {
            if !fs.cleaner_wants_step(core.queue_depth()) {
                break;
            }
            fs.cleaner_step().unwrap();
        }
    }
    core.set_client(None);
    while fs.cleaner_run_active() {
        fs.cleaner_step().unwrap();
    }
    fs.sync().unwrap();
    assert_eq!(core.queue_depth(), 0, "sync left requests queued");

    let client = registry.counter("engine.io_bytes.client").get();
    let maintenance = registry.counter("engine.io_bytes.maintenance").get();
    let system = registry.counter("engine.io_bytes.system").get();
    let absorbed = registry.counter("engine.absorbed_bytes").get();
    let read_hits = registry.counter("engine.queue_read_hit_bytes").get();
    let stats = core.borrow().disk().stats().clone();

    // The run must exercise all three classes, or the identity below
    // could hold vacuously with a mis-tagged account pinned at zero.
    assert!(client > 0, "foreground churn moved no client bytes");
    assert!(
        maintenance > 0,
        "the async cleaner moved no maintenance bytes"
    );
    assert!(system > 0, "format/sync moved no system bytes");
    assert!(
        fs.stats().segments_cleaned > 0,
        "churn never made the cleaner clean a segment"
    );

    // The identity: every submitted byte either reached the platter, was
    // absorbed by an identical queued write, or was a read served from
    // the queue — and each is attributed to exactly one class.
    assert_eq!(
        client + maintenance + system,
        stats.bytes_read + stats.bytes_written + absorbed + read_hits,
        "class accounts (client {client} + maintenance {maintenance} + \
         system {system}) != device bytes (read {} + written {} + \
         absorbed {absorbed} + queue hits {read_hits})",
        stats.bytes_read,
        stats.bytes_written,
    );

    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "final fsck:\n{report}");
}
