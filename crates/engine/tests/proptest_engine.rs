//! Property tests for the request engine:
//!
//! 1. Every request submitted through the engine completes exactly once
//!    (absorbed and coalesced requests are accounted, not lost), and the
//!    platter ends up byte-identical to program order.
//! 2. No scheduling policy can starve a request: the bounded-wait aging
//!    guarantee caps queue wait at `max_wait_ns` plus the time to drain
//!    a full queue.
//! 3. The multi-client event loop is deterministic and virtual time is
//!    monotone across arbitrary client interleavings.

use std::rc::Rc;
use std::sync::Arc;

use proptest::prelude::*;

use engine::{
    run_small_file_create, EngineConfig, EngineCore, EngineDisk, MultiClientConfig, SchedulerKind,
};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{BlockDevice, Clock, DiskGeometry, RamDisk, SimDisk, SECTOR_SIZE};

const DEV_SECTORS: u64 = 256;

/// One operation the driver issues against the engine.
#[derive(Debug, Clone)]
enum Op {
    WriteAsync { sector: u64, sectors: u8, fill: u8 },
    WriteSync { sector: u64, sectors: u8, fill: u8 },
    Read { sector: u64, sectors: u8 },
    /// Think time: the driver advances the clock without touching the
    /// engine, so queued work becomes servicable in the background.
    Advance { dns: u64 },
    /// Durability barrier.
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let span = (0u64..DEV_SECTORS - 8, 1u8..8);
    prop_oneof![
        (span.clone(), any::<u8>()).prop_map(|((sector, sectors), fill)| Op::WriteAsync {
            sector,
            sectors,
            fill
        }),
        (span.clone(), any::<u8>()).prop_map(|((sector, sectors), fill)| Op::WriteSync {
            sector,
            sectors,
            fill
        }),
        span.prop_map(|(sector, sectors)| Op::Read { sector, sectors }),
        (1u64..3_000_000).prop_map(|dns| Op::Advance { dns }),
        Just(Op::Flush),
    ]
}

fn scheduler(ix: usize) -> SchedulerKind {
    SchedulerKind::all()[ix % 3]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Exactly-once completion + program-order platter contents, for every
    /// scheduler, arbitrary queue depths, and coalescing on or off.
    #[test]
    fn every_submission_completes_exactly_once(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        sched_ix in 0usize..3,
        depth in 1usize..24,
        coalesce in any::<bool>(),
    ) {
        let clock = Clock::new();
        let disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Arc::clone(&clock));
        let cfg = EngineConfig::default()
            .with_scheduler(scheduler(sched_ix))
            .with_queue_depth(depth)
            .with_coalesce(coalesce);
        let mut core = EngineCore::new(disk, cfg);
        let registry = core.disk().obs().clone();
        let mut ram = RamDisk::new(DEV_SECTORS);

        let mut issued = 0u64;
        let mut last_now = clock.now_ns();
        for op in &ops {
            match op {
                Op::WriteAsync { sector, sectors, fill } => {
                    let buf = vec![*fill; *sectors as usize * SECTOR_SIZE];
                    core.submit_async_write(*sector, &buf).unwrap();
                    ram.write(*sector, &buf, false).unwrap();
                    issued += 1;
                }
                Op::WriteSync { sector, sectors, fill } => {
                    let buf = vec![*fill; *sectors as usize * SECTOR_SIZE];
                    core.do_sync_write(*sector, &buf).unwrap();
                    ram.write(*sector, &buf, true).unwrap();
                    issued += 1;
                }
                Op::Read { sector, sectors } => {
                    let len = *sectors as usize * SECTOR_SIZE;
                    let mut got = vec![0u8; len];
                    let mut want = vec![0u8; len];
                    core.do_read(*sector, &mut got).unwrap();
                    ram.read(*sector, &mut want).unwrap();
                    prop_assert_eq!(&got, &want, "read at sector {} diverged", sector);
                    issued += 1;
                }
                Op::Advance { dns } => {
                    clock.advance_to_ns(clock.now_ns() + dns);
                }
                Op::Flush => {
                    core.flush_all().unwrap();
                    prop_assert_eq!(core.disk().pending_len(), 0);
                }
            }
            let now = clock.now_ns();
            prop_assert!(now >= last_now, "virtual time went backwards");
            last_now = now;
        }
        core.flush_all().unwrap();
        prop_assert_eq!(core.disk().pending_len(), 0);

        // Every issued request is accounted exactly once: it completed, was
        // coalesced into a neighbour, was absorbed by an identical queued
        // write, or was a read served straight from the queue.
        let completed = registry.counter("engine.sched_decisions").get();
        let coalesced = registry.counter("engine.coalesced_writes").get();
        let absorbed = registry.counter("engine.absorbed_writes").get();
        let read_hits = registry.counter("engine.queue_read_hits").get();
        prop_assert_eq!(
            completed + coalesced + absorbed + read_hits,
            issued,
            "completions {} + coalesced {} + absorbed {} + read hits {} != issued {}",
            completed, coalesced, absorbed, read_hits, issued
        );

        // Overlapped queueing must not double-count service time.
        let s = core.disk().stats();
        prop_assert_eq!(s.seek_ns + s.rotation_ns + s.transfer_ns, s.busy_ns);

        // The platter equals program order, end to end.
        for chunk in 0..(DEV_SECTORS / 8) {
            let mut got = vec![0u8; 8 * SECTOR_SIZE];
            let mut want = vec![0u8; 8 * SECTOR_SIZE];
            core.do_read(chunk * 8, &mut got).unwrap();
            ram.read(chunk * 8, &mut want).unwrap();
            prop_assert_eq!(&got, &want, "platter diverged in chunk {}", chunk);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Bounded wait: under SSTF or C-LOOK, a far-away request facing a
    /// continuous stream of near-head traffic is still serviced within
    /// `max_wait_ns` plus the time to drain one full queue (the aging
    /// preemption happens at service boundaries, so up to `depth + 1`
    /// already-aged requests may drain ahead of the worst victim).
    #[test]
    fn no_scheduler_starves_a_request(
        sched_ix in 0usize..2,
        near in proptest::collection::vec((0u64..8, 1u8..4, any::<u8>()), 30..100),
        far_sector in 200u64..248,
        step_ns in 20_000u64..120_000,
    ) {
        let sched = [SchedulerKind::Sstf, SchedulerKind::CLook][sched_ix];
        let max_wait_ns = 1_000_000;
        let depth = 4usize;
        let clock = Clock::new();
        let disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Arc::clone(&clock));
        let mut cfg = EngineConfig::default()
            .with_scheduler(sched)
            .with_queue_depth(depth)
            .with_max_wait_ns(max_wait_ns)
            .with_coalesce(false);
        cfg.max_transfer_bytes = 8 * SECTOR_SIZE as u64;
        let mut core = EngineCore::new(disk, cfg);
        let registry = core.disk().obs().clone();

        // Prime the queue with near-head work, then the far victim, then
        // keep near-head traffic flowing so a pure-SSTF policy would
        // never reach the victim.
        for (sector, sectors, fill) in near.iter().take(4) {
            let buf = vec![*fill; *sectors as usize * SECTOR_SIZE];
            core.submit_async_write(*sector, &buf).unwrap();
        }
        core.submit_async_write(far_sector, &vec![0xFF; SECTOR_SIZE]).unwrap();
        for (sector, sectors, fill) in near.iter().skip(4) {
            clock.advance_to_ns(clock.now_ns() + step_ns);
            let buf = vec![*fill; *sectors as usize * SECTOR_SIZE];
            core.submit_async_write(*sector, &buf).unwrap();
        }
        core.flush_all().unwrap();
        prop_assert_eq!(core.disk().pending_len(), 0);

        let geo = core.disk().geometry().clone();
        let worst_service_ns = geo.max_seek_ns
            + 2 * geo.rotation_ns
            + 8 * SECTOR_SIZE as u64 * 1_000_000_000 / geo.bandwidth_bytes_per_sec;
        // Between two engine entry points (each of which retires aged
        // requests), up to a full queue of targeted overlap drains plus
        // the request in flight can be serviced ahead of the victim.
        let bound = max_wait_ns + (depth as u64 + 2) * worst_service_ns;
        let max_wait_seen = registry.gauge("engine.max_queue_wait_ns").get();
        prop_assert!(
            max_wait_seen <= bound,
            "worst queue wait {}ns exceeds the bounded-wait guarantee {}ns",
            max_wait_seen, bound
        );
    }
}

/// Deterministic companion to the starvation property: with SSTF and a
/// long near-head stream, the far request is only ever reached by the
/// aging preemption — so the aged-pick counter must fire.
#[test]
fn aging_preempts_sstf_for_a_starving_request() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Arc::clone(&clock));
    let mut cfg = EngineConfig::default()
        .with_scheduler(SchedulerKind::Sstf)
        .with_queue_depth(6)
        .with_max_wait_ns(2_000_000)
        .with_coalesce(false);
    cfg.max_transfer_bytes = 8 * SECTOR_SIZE as u64;
    let mut core = EngineCore::new(disk, cfg);
    let registry = core.disk().obs().clone();

    for i in 0..4u64 {
        core.submit_async_write(i, &vec![0x10; SECTOR_SIZE]).unwrap();
    }
    core.submit_async_write(240, &vec![0xFF; SECTOR_SIZE]).unwrap();
    // 60 more near writes, trickled in: the head stays near sector 0 and
    // only aging can pull it out to sector 240.
    for i in 0..60u64 {
        clock.advance_to_ns(clock.now_ns() + 50_000);
        core.submit_async_write(i % 8, &vec![i as u8; SECTOR_SIZE]).unwrap();
    }
    core.flush_all().unwrap();

    assert!(
        registry.counter("engine.aged_picks").get() >= 1,
        "the far request was never rescued by aging"
    );
    assert_eq!(core.disk().pending_len(), 0);
}

/// Runs the multi-client create loop on a tiny LFS and returns the
/// debug-formatted report (stable, field-complete) plus elapsed time.
fn multi_run(sched: SchedulerKind, clients: usize, files: usize, think_ns: u64, seed: u64) -> (String, u64) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let core = EngineCore::new(disk, EngineConfig::default().with_scheduler(sched)).into_shared();
    let dev = EngineDisk::new(Rc::clone(&core));
    let mut fs = Lfs::format(dev, LfsConfig::small_test(), clock).unwrap();
    let registry = fs.obs().clone();
    let cfg = MultiClientConfig {
        clients,
        files_per_client: files,
        file_size: 700,
        think_ns,
        seed,
        per_client_hists_max: 32,
    };
    let report = run_small_file_create(&mut fs, &core, &registry, &cfg).unwrap();
    assert_eq!(report.total_ops, (clients * files) as u64);
    let fsck = fs.fsck().unwrap();
    assert!(fsck.is_clean(), "fsck after multi-client run:\n{fsck}");
    (format!("{report:?}"), report.elapsed_ns)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Arbitrary client interleavings (client count, pacing, seed,
    /// scheduler) always produce monotone virtual time — the event loop
    /// debug-asserts it — and the same inputs twice produce the identical
    /// report: the engine is deterministic end to end.
    #[test]
    fn multi_client_runs_are_deterministic(
        sched_ix in 0usize..3,
        clients in 1usize..6,
        files in 2usize..6,
        think_ns in 0u64..2_000_000,
        seed in any::<u64>(),
    ) {
        let sched = scheduler(sched_ix);
        let (a, elapsed_a) = multi_run(sched, clients, files, think_ns, seed);
        let (b, _) = multi_run(sched, clients, files, think_ns, seed);
        prop_assert_eq!(a, b, "two identical runs diverged");
        prop_assert!(elapsed_a > 0, "a real run takes virtual time");
    }
}
