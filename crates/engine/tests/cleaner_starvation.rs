//! Starvation freedom between foreground clients and the maintenance
//! (cleaner) I/O class, in both directions.
//!
//! The async cleaner competes in the same request queues as foreground
//! clients, so the engine's bounded-wait aging guarantee must hold for
//! it and against it:
//!
//! * a continuous stream of near-head foreground traffic must not starve
//!   a far-away maintenance request (the cleaner's segment read always
//!   happens eventually, so cleaning makes progress under load), and
//! * a saturating flood of near-head maintenance traffic must not starve
//!   a far-away foreground request (a backlogged cleaner cannot freeze a
//!   client out of the disk).
//!
//! Both directions reuse the aging bound proved for anonymous requests
//! in `proptest_engine.rs`: worst queue wait <= `max_wait_ns` plus the
//! time to drain one full queue of already-aged requests.

use std::sync::Arc;

use proptest::prelude::*;

use engine::{EngineConfig, EngineCore, SchedulerKind};
use sim_disk::{Clock, DiskGeometry, SimDisk, SECTOR_SIZE};

const DEV_SECTORS: u64 = 256;

/// The engine under test: seek-sensitive scheduler, bounded queue,
/// aging on, coalescing off (so the victim cannot be merged away).
fn rig(sched: SchedulerKind, max_wait_ns: u64, depth: usize) -> (EngineCore, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Arc::clone(&clock));
    let mut cfg = EngineConfig::default()
        .with_scheduler(sched)
        .with_queue_depth(depth)
        .with_max_wait_ns(max_wait_ns)
        .with_coalesce(false);
    cfg.max_transfer_bytes = 8 * SECTOR_SIZE as u64;
    (EngineCore::new(disk, cfg), clock)
}

/// The aging guarantee for this rig: `max_wait_ns` plus a full queue of
/// already-aged requests (plus the one in flight) draining ahead of the
/// victim, each at worst-case service time.
fn aging_bound(core: &EngineCore, max_wait_ns: u64, depth: usize) -> u64 {
    let geo = core.disk().geometry().clone();
    let worst_service_ns = geo.max_seek_ns
        + 2 * geo.rotation_ns
        + 8 * SECTOR_SIZE as u64 * 1_000_000_000 / geo.bandwidth_bytes_per_sec;
    max_wait_ns + (depth as u64 + 2) * worst_service_ns
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Foreground cannot starve the cleaner: with a near-head client
    /// stream that a pure seek-order policy would service forever, a
    /// single far-away maintenance write still completes within the
    /// aging bound, and its bytes land in the maintenance account (never
    /// a client's).
    #[test]
    fn foreground_load_cannot_starve_maintenance(
        sched_ix in 0usize..2,
        near in proptest::collection::vec((0u64..8, 1u8..4, any::<u8>()), 30..100),
        far_sector in 200u64..248,
        step_ns in 20_000u64..120_000,
    ) {
        let sched = [SchedulerKind::Sstf, SchedulerKind::CLook][sched_ix];
        let max_wait_ns = 1_000_000;
        let depth = 4usize;
        let (mut core, clock) = rig(sched, max_wait_ns, depth);
        let registry = core.disk().obs().clone();

        core.set_client(Some(0));
        for (sector, sectors, fill) in near.iter().take(4) {
            let buf = vec![*fill; *sectors as usize * SECTOR_SIZE];
            core.submit_async_write(*sector, &buf).unwrap();
        }
        // The cleaner's lone request, tagged maintenance.
        core.set_maintenance(true);
        core.submit_async_write(far_sector, &vec![0xFF; SECTOR_SIZE]).unwrap();
        core.set_maintenance(false);
        for (sector, sectors, fill) in near.iter().skip(4) {
            clock.advance_to_ns(clock.now_ns() + step_ns);
            let buf = vec![*fill; *sectors as usize * SECTOR_SIZE];
            core.submit_async_write(*sector, &buf).unwrap();
        }
        core.flush_all().unwrap();
        prop_assert_eq!(core.disk().pending_len(), 0);

        let bound = aging_bound(&core, max_wait_ns, depth);
        // The far maintenance write is the only request the scheduler
        // wants to defer; the worst wait observed is (at least) its wait.
        let max_wait_seen = registry.gauge("engine.max_queue_wait_ns").get();
        prop_assert!(
            max_wait_seen <= bound,
            "maintenance request waited {}ns, over the aging bound {}ns",
            max_wait_seen, bound
        );
        // The single maintenance request's wait is the whole class
        // account, and it must respect the same bound.
        let maint_wait = registry.counter("engine.maintenance.disk_wait_ns").get();
        prop_assert!(
            maint_wait <= bound,
            "maintenance class wait {}ns exceeds the aging bound {}ns",
            maint_wait, bound
        );
        prop_assert_eq!(
            registry.counter("engine.io_bytes.maintenance").get(),
            SECTOR_SIZE as u64,
            "the cleaner's bytes must land in the maintenance account"
        );
    }

    /// The cleaner cannot starve foreground: with a saturating near-head
    /// maintenance flood, a single far-away client write still completes
    /// within the aging bound, and its bytes land in the client account.
    #[test]
    fn saturating_maintenance_cannot_starve_foreground(
        sched_ix in 0usize..2,
        near in proptest::collection::vec((0u64..8, 1u8..4, any::<u8>()), 30..100),
        far_sector in 200u64..248,
        step_ns in 20_000u64..120_000,
    ) {
        let sched = [SchedulerKind::Sstf, SchedulerKind::CLook][sched_ix];
        let max_wait_ns = 1_000_000;
        let depth = 4usize;
        let (mut core, clock) = rig(sched, max_wait_ns, depth);
        let registry = core.disk().obs().clone();

        core.set_maintenance(true);
        for (sector, sectors, fill) in near.iter().take(4) {
            let buf = vec![*fill; *sectors as usize * SECTOR_SIZE];
            core.submit_async_write(*sector, &buf).unwrap();
        }
        // The foreground client's lone request.
        core.set_maintenance(false);
        core.set_client(Some(0));
        core.submit_async_write(far_sector, &vec![0xEE; SECTOR_SIZE]).unwrap();
        // The cleaner keeps flooding near-head work.
        core.set_maintenance(true);
        for (sector, sectors, fill) in near.iter().skip(4) {
            clock.advance_to_ns(clock.now_ns() + step_ns);
            let buf = vec![*fill; *sectors as usize * SECTOR_SIZE];
            core.submit_async_write(*sector, &buf).unwrap();
        }
        core.set_maintenance(false);
        core.flush_all().unwrap();
        prop_assert_eq!(core.disk().pending_len(), 0);

        let bound = aging_bound(&core, max_wait_ns, depth);
        let max_wait_seen = registry.gauge("engine.max_queue_wait_ns").get();
        prop_assert!(
            max_wait_seen <= bound,
            "foreground request waited {}ns under a maintenance flood, over \
             the aging bound {}ns",
            max_wait_seen, bound
        );
        prop_assert_eq!(
            registry.counter("engine.io_bytes.client").get(),
            SECTOR_SIZE as u64,
            "the client's bytes must land in the client account"
        );
        // Sanity: the flood really was maintenance-class traffic. (Not
        // an exact equality: write absorption may swallow a queued
        // duplicate before it reaches the per-class byte accounting.)
        let maint_bytes = registry.counter("engine.io_bytes.maintenance").get();
        prop_assert!(
            maint_bytes > 0 && maint_bytes.is_multiple_of(SECTOR_SIZE as u64),
            "the flood's bytes must land in the maintenance account (got {})",
            maint_bytes
        );
    }
}

/// Deterministic companion: under SSTF the far maintenance request is
/// only ever reached by the aging preemption, so the aged-pick counter
/// must fire — cleaning progress under foreground load is the aging
/// mechanism, not luck.
#[test]
fn aging_rescues_the_cleaner_from_sstf() {
    let (mut core, clock) = rig(SchedulerKind::Sstf, 2_000_000, 6);
    let registry = core.disk().obs().clone();

    core.set_client(Some(0));
    for i in 0..4u64 {
        core.submit_async_write(i, &vec![0x10; SECTOR_SIZE]).unwrap();
    }
    core.set_maintenance(true);
    core.submit_async_write(240, &vec![0xFF; SECTOR_SIZE]).unwrap();
    core.set_maintenance(false);
    for i in 0..60u64 {
        clock.advance_to_ns(clock.now_ns() + 50_000);
        core.submit_async_write(i % 8, &vec![i as u8; SECTOR_SIZE]).unwrap();
    }
    core.flush_all().unwrap();

    assert!(
        registry.counter("engine.aged_picks").get() >= 1,
        "the maintenance request was never rescued by aging"
    );
    assert!(
        registry.counter("engine.maintenance.disk_wait_ns").get() > 0,
        "the maintenance request never waited in queue at all"
    );
    assert_eq!(core.disk().pending_len(), 0);
}
