//! QoS fairness properties for the disk-queue scheduler, extending the
//! bounded-wait suite in `proptest_engine.rs`:
//!
//! 1. **Proportional share** — with two tenants flooding an open-loop
//!    backlog, completed bytes at the instant the heavy tenant drains
//!    converge to the configured weight ratio, under every scheduling
//!    policy.
//! 2. **No starvation** — arbitrary weights never push a light tenant's
//!    queue wait past the aging bound the QoS-free engine guarantees:
//!    the aging check runs before the QoS pick, and the SFQ ledger
//!    itself cannot bank credit for an idle tenant.
//! 3. **Latency class** — a latency-class tenant's request jumps a deep
//!    bulk backlog (deterministic companion).

use std::sync::Arc;

use proptest::prelude::*;

use engine::{EngineConfig, EngineCore, QosClass, QosSpec, SchedulerKind};
use sim_disk::{Clock, DiskGeometry, SimDisk, SECTOR_SIZE};

const DEV_SECTORS: u64 = 4096;

fn scheduler(ix: usize) -> SchedulerKind {
    SchedulerKind::all()[ix % 3]
}

/// Pumps in small virtual-time steps until `done` says stop (or the
/// iteration guard trips), so at most ~one service completes per step
/// and counters can be sampled at a service boundary.
fn pump_until(core: &mut EngineCore, clock: &Clock, mut done: impl FnMut() -> bool) -> bool {
    for _ in 0..200_000 {
        if done() {
            return true;
        }
        clock.advance_to_ns(clock.now_ns() + 100_000);
        core.pump().unwrap();
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Two tenants submit equal open-loop backlogs up front; tenant 0
    /// carries `weight`, tenant 1 carries 1. Sampled when tenant 0
    /// drains — while tenant 1 is still backlogged — completed bytes
    /// obey the weight ratio within 2x slack either way, for every
    /// scheduler. (End-of-run totals would be equal: a closed backlog
    /// always completes. The contended window is where shares live.)
    #[test]
    fn weighted_share_converges_to_weight(
        sched_ix in 0usize..3,
        weight in 2u64..9,
        reqs in 24usize..40,
    ) {
        let clock = Clock::new();
        let disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Arc::clone(&clock));
        let cfg = EngineConfig::default()
            .with_scheduler(scheduler(sched_ix))
            .with_queue_depth(2 * reqs + 8)
            // Aging off the table: the window under test is shorter
            // than any realistic bound, and we want pure SFQ shares.
            .with_max_wait_ns(60_000_000_000)
            .with_coalesce(false);
        let mut core = EngineCore::new(disk, cfg);
        let registry = core.disk().obs().clone();
        core.register_clients(2);
        core.set_qos(Some(QosSpec::uniform(2).with_weight(0, weight)));

        // Interleaved submission into disjoint regions (no coalescing,
        // no absorption): the queue holds both tenants' work end to end.
        for i in 0..reqs as u64 {
            core.set_client(Some(0));
            core.submit_async_write(i * 2, &[0xA0; SECTOR_SIZE]).unwrap();
            core.set_client(Some(1));
            core.submit_async_write(2048 + i * 2, &[0xB1; SECTOR_SIZE]).unwrap();
        }
        core.set_client(None);

        let heavy = registry.counter("engine.c000.io_bytes_done");
        let light = registry.counter("engine.c001.io_bytes_done");
        let heavy_total = (reqs * SECTOR_SIZE) as u64;
        let drained = pump_until(&mut core, &clock, || heavy.get() >= heavy_total);
        prop_assert!(drained, "heavy tenant never drained its backlog");

        let light_at_drain = light.get();
        let fair = heavy_total / weight;
        prop_assert!(
            light_at_drain <= 2 * fair + 2 * SECTOR_SIZE as u64,
            "light tenant got {} bytes by heavy's drain; weight {} allows ~{}",
            light_at_drain, weight, fair
        );
        prop_assert!(
            light_at_drain * weight * 4 >= heavy_total,
            "light tenant starved: {} bytes at heavy's drain (fair ~{})",
            light_at_drain, fair
        );
        core.flush_all().unwrap();
        prop_assert_eq!(core.disk().pending_len(), 0);
    }

    /// The starvation property under QoS: a lone weight-1 victim behind
    /// a weight-`w` near-head flood is still serviced within the same
    /// aging bound the QoS-free engine guarantees. The aging check runs
    /// before the QoS pick, so no weight assignment can defeat it.
    #[test]
    fn no_weight_assignment_starves_a_tenant(
        sched_ix in 0usize..2,
        heavy_weight in 1u64..64,
        near in proptest::collection::vec((0u64..8, any::<u8>()), 30..80),
        far_sector in 3000u64..3500,
        step_ns in 20_000u64..120_000,
    ) {
        let sched = [SchedulerKind::Sstf, SchedulerKind::CLook][sched_ix];
        let max_wait_ns = 1_000_000;
        let depth = 4usize;
        let clock = Clock::new();
        let disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Arc::clone(&clock));
        let mut cfg = EngineConfig::default()
            .with_scheduler(sched)
            .with_queue_depth(depth)
            .with_max_wait_ns(max_wait_ns)
            .with_coalesce(false);
        cfg.max_transfer_bytes = 8 * SECTOR_SIZE as u64;
        let mut core = EngineCore::new(disk, cfg);
        let registry = core.disk().obs().clone();
        core.register_clients(2);
        core.set_qos(Some(QosSpec::uniform(2).with_weight(0, heavy_weight)));

        core.set_client(Some(0));
        for (sector, fill) in near.iter().take(4) {
            core.submit_async_write(*sector, &vec![*fill; SECTOR_SIZE]).unwrap();
        }
        core.set_client(Some(1));
        core.submit_async_write(far_sector, &[0xFF; SECTOR_SIZE]).unwrap();
        core.set_client(Some(0));
        for (sector, fill) in near.iter().skip(4) {
            clock.advance_to_ns(clock.now_ns() + step_ns);
            core.submit_async_write(*sector, &vec![*fill; SECTOR_SIZE]).unwrap();
        }
        core.set_client(None);
        core.flush_all().unwrap();
        prop_assert_eq!(core.disk().pending_len(), 0);

        let geo = core.disk().geometry().clone();
        let worst_service_ns = geo.max_seek_ns
            + 2 * geo.rotation_ns
            + 8 * SECTOR_SIZE as u64 * 1_000_000_000 / geo.bandwidth_bytes_per_sec;
        let bound = max_wait_ns + (depth as u64 + 2) * worst_service_ns;
        let max_wait_seen = registry.gauge("engine.max_queue_wait_ns").get();
        prop_assert!(
            max_wait_seen <= bound,
            "worst queue wait {}ns exceeds the bounded-wait guarantee {}ns under weight {}",
            max_wait_seen, bound, heavy_weight
        );
    }
}

/// Deterministic latency-class companion: tenant 0 (latency) submits
/// one request into tenant 1's (bulk) deep backlog; the request jumps
/// essentially the whole backlog — at most the in-flight request plus
/// one pick of slack goes ahead of it.
#[test]
fn latency_class_jumps_a_bulk_backlog() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Arc::clone(&clock));
    let cfg = EngineConfig::default()
        .with_scheduler(SchedulerKind::Sstf)
        .with_queue_depth(64)
        .with_max_wait_ns(60_000_000_000)
        .with_coalesce(false);
    let mut core = EngineCore::new(disk, cfg);
    let registry = core.disk().obs().clone();
    core.register_clients(2);
    core.set_qos(Some(
        QosSpec::uniform(2).with_class(0, QosClass::Latency),
    ));

    // 40 bulk writes queued; none near the latency target's sector so
    // SSTF alone would keep the head in the bulk region.
    core.set_client(Some(1));
    for i in 0..40u64 {
        core.submit_async_write(i * 2, &[0xB1; SECTOR_SIZE]).unwrap();
    }

    let latency_bytes = registry.counter("engine.c000.io_bytes_done");
    let bulk_bytes = registry.counter("engine.c001.io_bytes_done");
    // Let a few bulk services happen, then inject the latency request.
    let warmed = pump_until(&mut core, &clock, || {
        bulk_bytes.get() >= 4 * SECTOR_SIZE as u64
    });
    assert!(warmed, "bulk backlog never started draining");
    let bulk_before = bulk_bytes.get();

    core.set_client(Some(0));
    core.submit_async_write(3800, &[0xA0; SECTOR_SIZE]).unwrap();
    core.set_client(None);
    let served = pump_until(&mut core, &clock, || latency_bytes.get() > 0);
    assert!(served, "latency-class request never serviced");

    let bulk_jumped = (bulk_bytes.get() - bulk_before) / SECTOR_SIZE as u64;
    assert!(
        bulk_jumped <= 2,
        "{bulk_jumped} bulk requests went ahead of the latency-class request"
    );
    core.flush_all().unwrap();
    assert_eq!(core.disk().pending_len(), 0);
}
