//! Adaptive-cache correctness: no boundary resize, eviction cascade or
//! pool migration may lose a dirty block or corrupt a clean one.
//!
//! A scripted random workload runs against an LFS mounted with the
//! adaptive memory manager and an in-memory [`ModelFs`] mirror, with
//! `set_cache_boundary` resizes, syncs and cache drops interleaved at
//! arbitrary points. After every operation both file systems must read
//! back byte-identical; at the end the image is remounted and re-checked
//! so anything a resize dropped on the floor (instead of flushing)
//! surfaces as a durability divergence.

use std::sync::Arc;

use proptest::prelude::*;

use lfs_core::{Lfs, LfsConfig};
use mem_mgr::CachePolicy;
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::model::ModelFs;
use vfs::{FileSystem, FsError};

/// Distinct file slots the workload churns over.
const SLOTS: usize = 6;

/// A small adaptive-cache LFS: 64 KB budget over 1 KB test blocks, so
/// resizes and evictions are constant traffic, not corner cases.
fn adaptive_fs(disk_sectors: u64) -> Lfs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(disk_sectors), Arc::clone(&clock));
    let cfg = LfsConfig::small_test().with_cache_policy(CachePolicy::Adaptive);
    Lfs::format(disk, cfg, clock).unwrap()
}

/// One scripted operation against both file systems (or a cache-only
/// action against the real one — the model has no cache to mirror).
#[derive(Debug, Clone)]
enum Op {
    /// Truncate-and-rewrite the slot (creating it if absent).
    Write { slot: usize, len: usize, fill: u8 },
    /// Shrink (or zero-extend) the slot.
    Truncate { slot: usize, len: usize },
    /// Remove the slot.
    Unlink { slot: usize },
    /// Move the write/read boundary to `blocks` (clamped internally):
    /// shrinking it must flush, never drop, the dirty overflow.
    Resize { blocks: usize },
    /// Checkpoint everything.
    Sync,
    /// Sync and discard every clean block.
    DropCaches,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Writes repeated for weight (the shim's `prop_oneof!` is uniform):
    // dirty data in flight is what a bad resize would lose.
    let write = || {
        (0..SLOTS, 1usize..6000, any::<u8>())
            .prop_map(|(slot, len, fill)| Op::Write { slot, len, fill })
    };
    prop_oneof![
        write(),
        write(),
        write(),
        write(),
        (0..SLOTS, 0usize..6000).prop_map(|(slot, len)| Op::Truncate { slot, len }),
        (0..SLOTS).prop_map(|slot| Op::Unlink { slot }),
        (1usize..200).prop_map(|blocks| Op::Resize { blocks }),
        (1usize..200).prop_map(|blocks| Op::Resize { blocks }),
        Just(Op::Sync),
        Just(Op::DropCaches),
    ]
}

fn slot_path(slot: usize) -> String {
    format!("/slot{slot}")
}

/// Applies one file operation to any [`FileSystem`]; both the LFS and
/// the model go through this code path, so their observable results
/// (including errors) must agree.
fn apply<F: FileSystem>(fs: &mut F, op: &Op) -> Result<(), FsError> {
    match op {
        Op::Write { slot, len, fill } => {
            let path = slot_path(*slot);
            let ino = match fs.lookup(&path) {
                Ok(ino) => {
                    fs.truncate(ino, 0)?;
                    ino
                }
                Err(FsError::NotFound) => fs.create(&path)?,
                Err(e) => return Err(e),
            };
            let data = vec![*fill; *len];
            let mut written = 0;
            while written < data.len() {
                written += fs.write_at(ino, written as u64, &data[written..])?;
            }
            Ok(())
        }
        Op::Truncate { slot, len } => match fs.lookup(&slot_path(*slot)) {
            Ok(ino) => fs.truncate(ino, *len as u64),
            Err(FsError::NotFound) => Ok(()),
            Err(e) => Err(e),
        },
        Op::Unlink { slot } => match fs.unlink(&slot_path(*slot)) {
            Ok(()) | Err(FsError::NotFound) => Ok(()),
            Err(e) => Err(e),
        },
        Op::Resize { .. } | Op::Sync | Op::DropCaches => Ok(()),
    }
}

/// Every slot reads back byte-identical from the LFS and the model
/// (including agreeing on which slots do not exist).
fn assert_mirror(fs: &mut Lfs<SimDisk>, model: &mut ModelFs, ctx: &str) {
    for slot in 0..SLOTS {
        let path = slot_path(slot);
        match (fs.read_file(&path), model.read_file(&path)) {
            (Ok(real), Ok(want)) => assert_eq!(
                real, want,
                "{ctx}: {path} diverged ({} vs {} bytes)",
                real.len(),
                want.len()
            ),
            (Err(FsError::NotFound), Err(FsError::NotFound)) => {}
            (real, want) => {
                panic!("{ctx}: {path} existence diverged: lfs={real:?} model={want:?}")
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The adaptive cache is invisible to file-system semantics: under
    /// random mutations with boundary resizes, syncs and cache drops
    /// interleaved, the LFS and the model read back byte-identical after
    /// every step, and a final remount finds everything durable.
    #[test]
    fn adaptive_cache_preserves_fs_semantics(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut fs = adaptive_fs(4096); // 2 MB disk
        let mut model = ModelFs::new();

        for (i, op) in ops.iter().enumerate() {
            let real = apply(&mut fs, op);
            let want = apply(&mut model, op);
            prop_assert_eq!(
                real.is_ok(),
                want.is_ok(),
                "op {} {:?}: lfs={:?} model={:?}",
                i, op, real, want
            );
            match op {
                Op::Resize { blocks } => fs.set_cache_boundary(*blocks),
                Op::Sync => fs.sync().unwrap(),
                Op::DropCaches => fs.drop_caches().unwrap(),
                _ => {}
            }
            assert_mirror(&mut fs, &mut model, &format!("after op {i} {op:?}"));
        }

        fs.sync().unwrap();
        let report = fs.fsck().unwrap();
        prop_assert!(report.is_clean(), "final fsck:\n{report}");

        // Remount: a dirty block a resize dropped instead of flushing
        // would read back fine from the old cache but be missing here.
        let disk = fs.into_device();
        let clock = disk.clock().clone();
        let cfg = LfsConfig::small_test().with_cache_policy(CachePolicy::Adaptive);
        let mut fs = Lfs::mount(disk, cfg, clock).unwrap();
        assert_mirror(&mut fs, &mut model, "after remount");
    }
}
