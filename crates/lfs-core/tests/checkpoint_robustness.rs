//! Checkpoint-region robustness: the dual-region scheme must tolerate
//! one corrupted or torn region and fail loudly (not wrongly) when both
//! are gone.

use std::sync::Arc;

use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk, SECTOR_SIZE};
use vfs::{FileSystem, FsError};

const DISK_SECTORS: u64 = 16_384;

/// Builds a volume with two checkpoints: an old one covering /first and
/// a newer one covering /second. Returns (image, cp_a_sector, cp_b_sector,
/// region_bytes).
fn two_checkpoint_volume() -> (Vec<u8>, usize, usize, usize) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    fs.write_file("/first", b"from the older checkpoint")
        .unwrap();
    fs.sync().unwrap();
    fs.write_file("/second", b"from the newest checkpoint")
        .unwrap();
    fs.sync().unwrap();

    let sb = fs.superblock().clone();
    let spb = sb.block_size as usize / SECTOR_SIZE;
    let cp_a = sb.cp_a.0 as usize * spb * SECTOR_SIZE;
    let cp_b = sb.cp_b.0 as usize * spb * SECTOR_SIZE;
    let region_bytes = sb.cp_blocks as usize * sb.block_size as usize;
    (fs.into_device().into_image(), cp_a, cp_b, region_bytes)
}

fn mount(image: Vec<u8>) -> Result<Lfs<SimDisk>, FsError> {
    let disk = SimDisk::from_image(DiskGeometry::tiny_test(DISK_SECTORS), Clock::new(), image);
    let clock = disk.clock().clone();
    Lfs::mount(disk, LfsConfig::small_test(), clock)
}

#[test]
fn intact_volume_uses_the_newest_checkpoint() {
    let (image, _, _, _) = two_checkpoint_volume();
    let mut fs = mount(image).unwrap();
    assert_eq!(
        fs.read_file("/second").unwrap(),
        b"from the newest checkpoint"
    );
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn corrupting_either_region_still_mounts() {
    for region in 0..2 {
        let (mut image, cp_a, cp_b, region_bytes) = two_checkpoint_volume();
        let start = if region == 0 { cp_a } else { cp_b };
        // Trash the whole region.
        for byte in &mut image[start..start + region_bytes] {
            *byte = 0xDE;
        }
        let mut fs =
            mount(image).unwrap_or_else(|e| panic!("region {region} corrupt: mount failed: {e}"));
        // Whichever region survived, /first was in both checkpoints.
        assert_eq!(
            fs.read_file("/first").unwrap(),
            b"from the older checkpoint"
        );
        let report = fs.fsck().unwrap();
        assert!(report.is_clean(), "region {region} corrupt:\n{report}");
    }
}

#[test]
fn single_bit_flip_in_newest_region_falls_back() {
    let (mut image, cp_a, cp_b, _) = two_checkpoint_volume();
    // Find which region the newest checkpoint used by flipping each and
    // checking the volume still mounts with at least the older state.
    for &start in &[cp_a, cp_b] {
        let mut flipped = image.clone();
        flipped[start + 12] ^= 0x01;
        let mut fs = mount(flipped).expect("one bit flip must never brick the volume");
        assert_eq!(
            fs.read_file("/first").unwrap(),
            b"from the older checkpoint"
        );
        assert!(fs.fsck().unwrap().is_clean());
    }
    // Keep `image` alive for clarity of intent above.
    image.clear();
}

#[test]
fn destroying_both_regions_fails_cleanly() {
    let (mut image, cp_a, cp_b, region_bytes) = two_checkpoint_volume();
    for start in [cp_a, cp_b] {
        for byte in &mut image[start..start + region_bytes] {
            *byte = 0;
        }
    }
    match mount(image) {
        Err(FsError::Corrupt(_)) => {}
        Err(e) => panic!("expected Corrupt, got {e}"),
        Ok(_) => panic!("mount must fail when both checkpoint regions are gone"),
    }
}

#[test]
fn garbage_superblock_is_rejected() {
    let (mut image, _, _, _) = two_checkpoint_volume();
    image[0] ^= 0xFF;
    assert!(matches!(mount(image), Err(FsError::Corrupt(_))));
}
