//! Tests pinning the paper's finer design points, section by section.

use std::sync::Arc;

use lfs_core::layout::usage_block::SegState;
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::FileSystem;

fn fs_with(cfg: LfsConfig) -> (Lfs<SimDisk>, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(32_768), Arc::clone(&clock));
    let fs = Lfs::format(disk, cfg, Arc::clone(&clock)).unwrap();
    (fs, clock)
}

/// Footnote 2: "Keeping the access time in the inode map rather than the
/// inode allows faithful implementation of the UNIX file access time
/// semantics without inodes constantly moving every time a file is read."
#[test]
fn reads_update_atime_without_rewriting_inodes() {
    let (mut fs, clock) = fs_with(LfsConfig::small_test());
    let ino = fs.write_file("/f", b"some data").unwrap();
    fs.sync().unwrap();
    let inode_blocks_before = fs.stats().inode_blocks_written;

    clock.advance_ns(1_000_000);
    let atime_before = fs.stat(ino).unwrap().atime_ns;
    let mut buf = [0u8; 4];
    fs.read_at(ino, 0, &mut buf).unwrap();
    let atime_after = fs.stat(ino).unwrap().atime_ns;
    assert!(atime_after > atime_before, "read must update atime");

    // Another sync: the inode itself was not dirtied by the read, so no
    // inode block is rewritten (the imap block is).
    fs.sync().unwrap();
    assert_eq!(
        fs.stats().inode_blocks_written,
        inode_blocks_before,
        "a read must not cause the inode to move (footnote 2)"
    );
}

/// §4.2.1: the version number is updated every time the file is
/// truncated to length zero (and on delete).
#[test]
fn version_bumps_on_truncate_to_zero_only() {
    let (mut fs, _clock) = fs_with(LfsConfig::small_test());
    let ino = fs.write_file("/v", &vec![1u8; 2000]).unwrap();
    let v0 = fs.inode_map().get(ino).unwrap().version;
    // Partial shrink: no bump.
    fs.truncate(ino, 100).unwrap();
    assert_eq!(fs.inode_map().get(ino).unwrap().version, v0);
    // Truncate to zero: bump.
    fs.truncate(ino, 0).unwrap();
    assert_eq!(fs.inode_map().get(ino).unwrap().version, v0 + 1);
}

/// §4.4.1: two checkpoint regions, writes alternating between them.
#[test]
fn checkpoints_alternate_between_fixed_regions() {
    let (mut fs, _clock) = fs_with(LfsConfig::small_test());
    let sb = fs.superblock().clone();
    let spb = sb.block_size as u64 / sim_disk::SECTOR_SIZE as u64;
    let region_a = sb.cp_a.0 as u64 * spb;
    let region_b = sb.cp_b.0 as u64 * spb;

    fs.device_mut().trace_mut().enable();
    for i in 0..4 {
        fs.write_file(&format!("/c{i}"), b"x").unwrap();
        fs.sync().unwrap();
    }
    let cp_sectors: Vec<u64> = fs
        .device()
        .trace()
        .records()
        .iter()
        .filter(|r| r.label == "checkpoint")
        .map(|r| r.sector)
        .collect();
    assert_eq!(cp_sectors.len(), 4);
    for pair in cp_sectors.windows(2) {
        assert_ne!(pair[0], pair[1], "consecutive checkpoints must alternate");
    }
    for &sector in &cp_sectors {
        assert!(
            sector == region_a || sector == region_b,
            "checkpoints must go to the fixed regions"
        );
    }
}

/// §4.3.5 "Cache full": a burst of writes larger than the cache's dirty
/// high-water mark triggers a segment write without any sync call.
#[test]
fn cache_pressure_triggers_writeback() {
    let mut cfg = LfsConfig::small_test();
    cfg.cache_bytes = 16 * 1024; // 32 blocks of 512 B.
    let (mut fs, _clock) = fs_with(cfg);
    let writes_before = fs.device().stats().writes;
    // Write well past the high-water mark.
    fs.write_file("/burst", &vec![7u8; 64 * 1024]).unwrap();
    assert!(
        fs.device().stats().writes > writes_before,
        "cache pressure must start segment writes on its own"
    );
}

/// §4.3.5 "Cache write-back": dirty data older than the age threshold is
/// written out by a subsequent operation, without sync.
#[test]
fn age_threshold_triggers_writeback() {
    let mut cfg = LfsConfig::small_test();
    cfg.writeback = cfg.writeback.with_age_secs(1.0);
    cfg.checkpoint_interval_ns = u64::MAX; // Isolate the age trigger.
    let (mut fs, clock) = fs_with(cfg);
    fs.write_file("/aging", b"getting old").unwrap();
    let writes_before = fs.device().stats().writes;

    clock.advance_ns(2_000_000_000); // 2 virtual seconds pass.
                                     // Any operation gives the "daemon" a chance to run.
    let _ = fs.lookup("/aging").unwrap();
    assert!(
        fs.device().stats().writes > writes_before,
        "the age threshold must flush old dirty data"
    );
}

/// §4.1: the log never updates in place — every disk write during normal
/// operation lands on a never-before-written block of the current
/// segment, or in a checkpoint region.
#[test]
fn log_writes_never_update_in_place() {
    let (mut fs, _clock) = fs_with(LfsConfig::small_test());
    let sb = fs.superblock().clone();
    let spb = sb.block_size as u64 / sim_disk::SECTOR_SIZE as u64;
    fs.device_mut().trace_mut().enable();

    for i in 0..20 {
        fs.write_file(&format!("/f{i}"), &vec![i as u8; 3000])
            .unwrap();
        if i % 3 == 0 {
            fs.sync().unwrap();
        }
        if i % 4 == 0 {
            let ino = fs.lookup(&format!("/f{i}")).unwrap();
            fs.truncate(ino, 100).unwrap();
        }
    }
    fs.sync().unwrap();

    let mut seen = std::collections::HashSet::new();
    let cp_region = |sector: u64| {
        let block = sector / spb;
        block >= sb.cp_a.0 as u64 && block < sb.seg_start.0 as u64
    };
    for record in fs.device().trace().records() {
        if record.kind != sim_disk::AccessKind::Write || cp_region(record.sector) {
            continue;
        }
        for s in 0..record.bytes / sim_disk::SECTOR_SIZE as u64 {
            assert!(
                seen.insert(record.sector + s),
                "sector {} written twice without cleaning — in-place update!",
                record.sector + s
            );
        }
    }
}

/// §4.3.2: "Files can be read and written while segments are being
/// cleaned" — cleaning interleaves with normal operations.
#[test]
fn cleaning_interleaves_with_operations() {
    let (mut fs, _clock) = fs_with(LfsConfig::small_test());
    for i in 0..40 {
        fs.write_file(&format!("/x{i}"), &vec![1u8; 4000]).unwrap();
    }
    fs.sync().unwrap();
    for i in 0..30 {
        fs.unlink(&format!("/x{i}")).unwrap();
    }
    fs.sync().unwrap();

    // Clean one segment (phase 1 only — relocations sit dirty in cache),
    // then interleave reads and writes before the commit.
    let victims = fs.usage_table().segments_in_state(SegState::Dirty);
    let seg = victims[0];
    fs.clean_segment(seg).unwrap();
    assert_eq!(fs.usage_table().state(seg), SegState::CleanPending);

    fs.write_file("/during-clean", b"interleaved").unwrap();
    assert_eq!(fs.read_file("/x35").unwrap(), vec![1u8; 4000]);

    fs.checkpoint().unwrap();
    assert_eq!(fs.usage_table().state(seg), SegState::Clean);
    assert_eq!(fs.read_file("/during-clean").unwrap(), b"interleaved");
    assert!(fs.fsck().unwrap().is_clean());
}

/// §4.3.4: cleaned-but-uncommitted segments are not reused before the
/// checkpoint lands (crash in between must find old copies intact).
#[test]
fn clean_pending_segments_are_not_writable() {
    let (mut fs, _clock) = fs_with(LfsConfig::small_test());
    for i in 0..40 {
        fs.write_file(&format!("/y{i}"), &vec![2u8; 4000]).unwrap();
    }
    fs.sync().unwrap();
    for i in 0..40 {
        fs.unlink(&format!("/y{i}")).unwrap();
    }
    fs.write_back().unwrap();

    let victims = fs.usage_table().segments_in_state(SegState::Dirty);
    let seg = victims[0];
    fs.clean_segment(seg).unwrap();

    // Heavy writing before any checkpoint: the pending segment must not
    // be allocated.
    for i in 0..20 {
        fs.write_file(&format!("/z{i}"), &vec![3u8; 4000]).unwrap();
        fs.write_back().unwrap();
        assert_eq!(
            fs.usage_table().state(seg),
            SegState::CleanPending,
            "pending segment reused before checkpoint commit"
        );
    }
    fs.checkpoint().unwrap();
    assert_eq!(fs.usage_table().state(seg), SegState::Clean);
}

/// §5: LFS with a one-segment flush writes summary overhead under a few
/// percent ("the cost of the summary blocks is small").
#[test]
fn summary_overhead_is_small_for_bulk_writes() {
    let (mut fs, _clock) = fs_with(LfsConfig::small_test());
    fs.write_file("/bulk", &vec![9u8; 200 * 1024]).unwrap();
    fs.sync().unwrap();
    let overhead = fs.stats().summary_overhead();
    assert!(
        overhead < 0.08,
        "summary overhead should be a few percent, got {:.1}%",
        overhead * 100.0
    );
}

/// With `fsync_checkpoints`, a successful fsync is durable even under
/// checkpoint-only (no roll-forward) recovery.
#[test]
fn fsync_checkpoints_makes_fsync_durable_without_rollforward() {
    let mut cfg = LfsConfig::small_test();
    cfg.fsync_checkpoints = true;
    cfg.roll_forward = false;
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Lfs::format(disk, cfg.clone(), Arc::clone(&clock)).unwrap();
    let ino = fs
        .write_file("/precious", b"checkpointed by fsync")
        .unwrap();
    fs.fsync(ino).unwrap();
    // Crash immediately after the fsync.
    let image = fs.into_device().into_image();

    let disk = SimDisk::from_image(geometry, Clock::new(), image);
    let clock = disk.clock().clone();
    let mut fs = Lfs::mount(disk, cfg, clock).unwrap();
    assert_eq!(
        fs.read_file("/precious").unwrap(),
        b"checkpointed by fsync",
        "fsync_checkpoints must not depend on roll-forward"
    );
    assert!(fs.fsck().unwrap().is_clean());
}

/// The in-memory inode table stays bounded: touching tens of thousands
/// of files must not retain an entry per file forever.
#[test]
fn inode_table_is_bounded() {
    let mut cfg = LfsConfig::small_test();
    cfg.cache_bytes = 32 * 1024; // 64-block cache => low inode cap floor.
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    let mut fs = Lfs::format(disk, cfg, clock).unwrap();
    // 400 files is fine for the default 512-inode map but far above the
    // eviction floor only if the floor were tiny; the cap here is
    // max(cache blocks, 1024) — so verify the table never exceeds it.
    for i in 0..400 {
        fs.write_file(&format!("/n{i:04}"), b"tiny").unwrap();
    }
    fs.sync().unwrap();
    for i in 0..400 {
        let _ = fs.lookup(&format!("/n{i:04}")).unwrap();
    }
    assert!(
        fs.cached_inode_count() <= 1024,
        "inode table grew to {}",
        fs.cached_inode_count()
    );
}

/// Cleaning a segment holding a multiply-linked file's blocks preserves
/// every link (liveness is per inode, not per directory entry).
#[test]
fn cleaner_preserves_hard_links() {
    let (mut fs, _clock) = fs_with(LfsConfig::small_test());
    fs.mkdir("/d").unwrap();
    let payload = vec![0x5Au8; 6 * 1024];
    fs.write_file("/d/primary", &payload).unwrap();
    fs.link("/d/primary", "/d/secondary").unwrap();
    // Surround with garbage so its segment is worth cleaning.
    for i in 0..20 {
        fs.write_file(&format!("/junk{i}"), &vec![1u8; 4_000]).unwrap();
    }
    fs.sync().unwrap();
    for i in 0..20 {
        fs.unlink(&format!("/junk{i}")).unwrap();
    }
    fs.sync().unwrap();

    // Clean everything cleanable.
    fs.clean_until(usize::MAX).unwrap();
    assert!(fs.stats().segments_cleaned > 0);
    fs.drop_caches().unwrap();
    assert_eq!(fs.read_file("/d/primary").unwrap(), payload);
    assert_eq!(fs.read_file("/d/secondary").unwrap(), payload);
    let ino = fs.lookup("/d/primary").unwrap();
    assert_eq!(fs.stat(ino).unwrap().nlink, 2);
    assert!(fs.fsck().unwrap().is_clean());
}
