//! Property tests for the LFS on-disk formats: arbitrary-value round
//! trips, and decoder robustness against arbitrary garbage — a recovery
//! path must never panic on whatever a torn write left behind.

use proptest::prelude::*;

use lfs_core::layout::checkpoint::CheckpointRegion;
use lfs_core::layout::imap_block::{self, ImapEntry};
use lfs_core::layout::inode::{inode_block, Inode};
use lfs_core::layout::summary::{BlockKind, ChunkSummary, SummaryEntry};
use lfs_core::layout::usage_block::{self, SegState, UsageEntry};
use lfs_core::types::{BlockAddr, SegNo};
use vfs::{FileKind, Ino};

fn addr_strategy() -> impl Strategy<Value = BlockAddr> {
    prop_oneof![Just(BlockAddr::NIL), (0u32..1_000_000).prop_map(BlockAddr)]
}

fn inode_strategy() -> impl Strategy<Value = Inode> {
    (
        1u32..100_000,
        0u32..50,
        any::<bool>(),
        1u16..500,
        0u64..(1 << 40),
        any::<u64>(),
        proptest::collection::vec(addr_strategy(), 12),
        addr_strategy(),
        addr_strategy(),
    )
        .prop_map(
            |(ino, version, is_dir, nlink, size, mtime, direct, single, double)| {
                let mut inode = Inode::new(
                    Ino(ino),
                    if is_dir {
                        FileKind::Directory
                    } else {
                        FileKind::Regular
                    },
                    version,
                    mtime,
                );
                inode.nlink = nlink;
                inode.size = size;
                inode.direct.copy_from_slice(&direct);
                inode.single = single;
                inode.double = double;
                inode
            },
        )
}

fn kind_strategy() -> impl Strategy<Value = BlockKind> {
    prop_oneof![
        (1u32..10_000, 0u32..100_000).prop_map(|(ino, bno)| BlockKind::Data { ino: Ino(ino), bno }),
        (1u32..10_000).prop_map(|ino| BlockKind::IndSingle { ino: Ino(ino) }),
        (1u32..10_000).prop_map(|ino| BlockKind::IndDoubleTop { ino: Ino(ino) }),
        (1u32..10_000, 0u32..2048).prop_map(|(ino, outer)| BlockKind::IndDoubleChild {
            ino: Ino(ino),
            outer
        }),
        Just(BlockKind::InodeBlock),
        (0u32..4096).prop_map(|index| BlockKind::ImapBlock { index }),
        (0u32..64).prop_map(|index| BlockKind::UsageBlock { index }),
    ]
}

proptest! {
    #[test]
    fn inode_round_trips(inode in inode_strategy()) {
        let bytes = inode.encode();
        prop_assert_eq!(Inode::decode(&bytes).unwrap(), inode);
    }

    #[test]
    fn inode_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Inode::decode(&bytes);
        if bytes.len() >= 128 {
            let _ = Inode::decode_slot(&bytes[..128]);
        }
    }

    #[test]
    fn inode_blocks_round_trip(inodes in proptest::collection::vec(inode_strategy(), 0..8)) {
        // 4 KB block holds up to 32 inodes; we use at most 8.
        let refs: Vec<&Inode> = inodes.iter().collect();
        let block = inode_block::pack(&refs, 4096);
        let unpacked = inode_block::unpack_all(&block).unwrap();
        prop_assert_eq!(unpacked.len(), inodes.len());
        for (slot, inode) in unpacked {
            prop_assert_eq!(&inodes[slot], &inode);
        }
    }

    #[test]
    fn summary_round_trips(
        addr in 0u32..100_000,
        seq in any::<u64>(),
        partial in 0u32..1000,
        timestamp in any::<u64>(),
        reserved in 1u32..4,
        entries in proptest::collection::vec(
            (kind_strategy(), 0u32..100, 0u32..u32::MAX).prop_map(|(kind, version, crc)| SummaryEntry { kind, version, crc }),
            0..64,
        ),
    ) {
        let summary = ChunkSummary {
            addr: lfs_core::types::BlockAddr(addr),
            seq,
            partial,
            timestamp_ns: timestamp,
            next_seg: SegNo::NIL,
            data_crc: 0x1234_5678,
            reserved_blocks: reserved,
            entries,
        };
        let encoded = summary.encode(512);
        prop_assert_eq!(ChunkSummary::decode(&encoded).unwrap(), summary);
    }

    #[test]
    fn summary_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = ChunkSummary::decode(&bytes);
        let _ = ChunkSummary::decode_header_prefix(&bytes);
    }

    #[test]
    fn summary_rejects_any_corruption(
        entries in proptest::collection::vec(
            (kind_strategy(), 0u32..100, 0u32..u32::MAX).prop_map(|(kind, version, crc)| SummaryEntry { kind, version, crc }),
            1..32,
        ),
        flip in any::<usize>(),
    ) {
        let summary = ChunkSummary {
            addr: lfs_core::types::BlockAddr(320),
            seq: 7,
            partial: 1,
            timestamp_ns: 42,
            next_seg: SegNo(3),
            data_crc: 9,
            reserved_blocks: 1,
            entries,
        };
        let mut encoded = summary.encode(512);
        // Flip one bit within the meaningful region (header + entries).
        let meaningful = 44 + summary.entries.len() * lfs_core::types::SUMMARY_ENTRY_SIZE;
        let index = flip % (meaningful * 8);
        encoded[index / 8] ^= 1 << (index % 8);
        prop_assert!(
            ChunkSummary::decode(&encoded) != Ok(summary),
            "bit flip at {} must not decode to the original", index
        );
    }

    #[test]
    fn checkpoint_round_trips(
        serial in any::<u64>(),
        seq in any::<u64>(),
        cur_seg in 0u32..10_000,
        next_block in 0u32..256,
        partial in 0u32..64,
        next_free in 1u32..100_000,
        imap_addrs in proptest::collection::vec(addr_strategy(), 0..40),
        usage_addrs in proptest::collection::vec(addr_strategy(), 0..10),
    ) {
        let cp = CheckpointRegion {
            timestamp_ns: 11,
            serial,
            seq,
            cur_seg: SegNo(cur_seg),
            next_block,
            partial,
            next_free_ino: Ino(next_free),
            imap_addrs,
            usage_addrs,
        };
        let encoded = cp.encode(4096);
        prop_assert_eq!(CheckpointRegion::decode(&encoded).unwrap(), cp);
    }

    #[test]
    fn checkpoint_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = CheckpointRegion::decode(&bytes);
    }

    #[test]
    fn imap_blocks_round_trip(
        entries in proptest::collection::vec(
            (addr_strategy(), 0u16..32, any::<bool>(), 0u32..1000, any::<u64>()).prop_map(
                |(addr, slot, allocated, version, atime_ns)| ImapEntry {
                    addr,
                    slot,
                    allocated,
                    version,
                    atime_ns,
                },
            ),
            0..21,
        ),
    ) {
        let block = imap_block::encode_block(&entries, 512);
        prop_assert_eq!(imap_block::decode_block(&block, entries.len()).unwrap(), entries);
    }

    #[test]
    fn usage_blocks_round_trip(
        entries in proptest::collection::vec(
            (0u32..(1 << 20), 0u8..4, any::<u64>()).prop_map(|(live, state, when)| UsageEntry {
                live_bytes: live,
                state: match state {
                    0 => SegState::Clean,
                    1 => SegState::Dirty,
                    2 => SegState::Active,
                    _ => SegState::CleanPending,
                },
                last_write_ns: when,
            }),
            0..32,
        ),
    ) {
        let block = usage_block::encode_block(&entries, 512);
        prop_assert_eq!(usage_block::decode_block(&block, entries.len()).unwrap(), entries);
    }
}
