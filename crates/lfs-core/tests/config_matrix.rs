//! The full operation suite across a matrix of geometry configurations —
//! block sizes, segment sizes, and inode counts must all be first-class.

use std::sync::Arc;

use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::{FileSystem, FsError};

fn exercise(cfg: LfsConfig, disk_sectors: u64, label: &str) {
    cfg.validate();
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(disk_sectors), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Lfs::format(disk, cfg.clone(), Arc::clone(&clock))
        .unwrap_or_else(|e| panic!("{label}: format failed: {e}"));

    // A bit of everything: nesting, sizes spanning direct and indirect
    // ranges, holes, renames, links, deletes.
    fs.mkdir("/d").unwrap();
    fs.mkdir("/d/e").unwrap();
    let sizes = [
        0usize,
        1,
        cfg.block_size - 1,
        cfg.block_size,
        cfg.block_size * 3 + 7,
        cfg.block_size * 14, // Into the single-indirect range.
        cfg.block_size * (14 + cfg.block_size / 4), // Into double-indirect.
    ];
    for (i, &size) in sizes.iter().enumerate() {
        let data: Vec<u8> = (0..size).map(|b| (b * 31 + i) as u8).collect();
        fs.write_file(&format!("/d/f{i}"), &data)
            .unwrap_or_else(|e| panic!("{label}: write f{i} ({size} B): {e}"));
    }
    let sparse = fs.create("/d/sparse").unwrap();
    fs.write_at(sparse, (cfg.block_size * 20) as u64, b"tail")
        .unwrap();
    fs.link("/d/f1", "/d/e/alias").unwrap();
    fs.rename("/d/f2", "/d/e/moved").unwrap();
    fs.unlink("/d/f3").unwrap();
    fs.sync().unwrap();
    fs.drop_caches().unwrap();

    for (i, &size) in sizes.iter().enumerate() {
        if i == 2 {
            continue; // f2 was renamed.
        }
        if i == 3 {
            continue; // f3 was deleted.
        }
        let data = fs
            .read_file(&format!("/d/f{i}"))
            .unwrap_or_else(|e| panic!("{label}: read f{i}: {e}"));
        assert_eq!(data.len(), size, "{label}: f{i} length");
        assert!(
            data.iter()
                .enumerate()
                .all(|(b, &v)| v == (b * 31 + i) as u8),
            "{label}: f{i} contents corrupted"
        );
    }
    assert_eq!(fs.read_file("/d/e/moved").unwrap().len(), sizes[2]);
    assert_eq!(fs.lookup("/d/f3"), Err(FsError::NotFound));
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "{label}: fsck:\n{report}");

    // Remount and verify again.
    let image = fs.into_device().into_image();
    let disk = SimDisk::from_image(geometry, Clock::new(), image);
    let clock = disk.clock().clone();
    let mut fs =
        Lfs::mount(disk, cfg, clock).unwrap_or_else(|e| panic!("{label}: remount failed: {e}"));
    assert_eq!(
        fs.read_file("/d/e/alias").unwrap().len(),
        sizes[1],
        "{label}: hard link after remount"
    );
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "{label}: post-remount fsck:\n{report}");
}

#[test]
fn paper_config_on_a_64mb_disk() {
    exercise(LfsConfig::paper(), 64 * 2048, "paper 4K/1M");
}

#[test]
fn tiny_blocks_tiny_segments() {
    exercise(LfsConfig::small_test(), 16_384, "512B/16K");
}

#[test]
fn small_blocks_large_segments() {
    let cfg = LfsConfig::small_test().with_segment_bytes(256 * 1024);
    exercise(cfg, 32_768, "512B/256K");
}

#[test]
fn large_blocks() {
    let cfg = LfsConfig::paper()
        .with_block_size(8192)
        .with_segment_bytes(1024 * 1024)
        .with_cache_bytes(1024 * 1024);
    exercise(cfg, 64 * 2048, "8K/1M");
}

#[test]
fn segment_equals_a_few_blocks() {
    // The degenerate minimum: 4-block segments.
    let mut cfg = LfsConfig::small_test().with_segment_bytes(4 * 512);
    cfg.cache_bytes = 16 * 1024;
    exercise(cfg, 16_384, "512B/2K");
}

#[test]
fn few_inodes_exhaust_cleanly() {
    let mut cfg = LfsConfig::small_test();
    cfg.max_inodes = 8; // Slot 0 reserved; root + 6 others usable.
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let mut fs = Lfs::format(disk, cfg, clock).unwrap();
    let mut created = 0;
    for i in 0..16 {
        match fs.create(&format!("/f{i}")) {
            Ok(_) => created += 1,
            Err(FsError::NoInodes) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(created, 6, "exactly the non-root inodes");
    // Deleting frees an inode for reuse.
    fs.unlink("/f0").unwrap();
    fs.create("/again").unwrap();
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn mismatched_mount_config_is_rejected() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let fs = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
    let image = fs.into_device().into_image();

    let disk = SimDisk::from_image(geometry, Clock::new(), image);
    let clock = disk.clock().clone();
    let wrong = LfsConfig::small_test().with_block_size(1024);
    assert!(matches!(
        Lfs::mount(disk, wrong, clock),
        Err(FsError::Corrupt(_))
    ));
}
