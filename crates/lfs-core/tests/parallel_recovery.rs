//! Sequential/parallel recovery equivalence — the fence around the
//! spindle-partitioned roll-forward scan.
//!
//! Property: for arbitrary operation sequences, crash points, and
//! spindle counts {1, 2, 4}, remounting the *same* crash image with
//! `recovery_fanout = 1` (the classic sequential scan) and
//! `recovery_fanout = 0` (one read in flight per spindle) must
//! reconstruct byte-identical state: the same namespace, file contents,
//! inode metadata, inode-map entries, and segment-usage accounting.
//! The parallel scan only reorders *reads*; the merge applies summary
//! chunks in log order, so everything downstream of the scan is
//! deterministic.
//!
//! Two fields are deliberately excluded from the comparison because
//! recovery stamps them with the *clock*, and the two mounts finishing
//! at different virtual times is precisely the win being claimed, not a
//! divergence: the usage table's `last_write_ns` (rewritten at the
//! post-recovery usage recount) and the inode map's `atime_ns` (the
//! directory-reconciliation pass reads every directory through the
//! normal read path, which updates access times).

use std::collections::BTreeMap;
use std::sync::Arc;

use lfs_core::layout::imap_block::ImapEntry;
use lfs_core::layout::usage_block::SegState;
use lfs_core::{Lfs, LfsConfig, SegNo};
use proptest::prelude::*;
use sim_disk::{BlockDevice, Clock, DiskGeometry};
use vfs::{FileKind, FileSystem, Ino};
use volume::{StripedVolume, VolumeConfig, VolumeDisk};

/// 4 MB per spindle: plenty for the tiny config's 16 KB segments.
const SPINDLE_SECTORS: u64 = 8_192;

/// The tiny test config with the log aligned to the stripe (each 16 KB
/// segment is exactly one chunk), so the fanned-out scan genuinely
/// lands one segment per spindle.
fn cfg(fanout: usize) -> LfsConfig {
    // The long checkpoint interval keeps the periodic checkpoint from
    // firing mid-workload and silently emptying the roll-forward tail.
    let mut c = LfsConfig::small_test()
        .with_checkpoint_secs(1e9)
        .with_recovery_fanout(fanout);
    c.segment_align_metadata = true;
    c
}

fn volume_cfg(spindles: usize) -> VolumeConfig {
    VolumeConfig::rr_segment(spindles, cfg(1).segment_bytes)
}

fn fresh(spindles: usize) -> Lfs<VolumeDisk> {
    let clock = Clock::new();
    let vol = StripedVolume::new(
        DiskGeometry::tiny_test(SPINDLE_SECTORS),
        Arc::clone(&clock),
        volume_cfg(spindles),
    );
    Lfs::format(VolumeDisk::new(vol.into_shared()), cfg(1), clock).expect("format LFS")
}

fn remount(spindles: usize, images: Vec<Vec<u8>>, fanout: usize) -> Lfs<VolumeDisk> {
    let clock = Clock::new();
    let vol = StripedVolume::from_images(
        DiskGeometry::tiny_test(SPINDLE_SECTORS),
        Arc::clone(&clock),
        volume_cfg(spindles),
        images,
    );
    Lfs::mount(VolumeDisk::new(vol.into_shared()), cfg(fanout), clock).expect("recovery mount")
}

/// One step of the scripted namespace workload. Paths are drawn from a
/// small universe (4 directories × 6 file slots plus root files) so
/// sequences collide often enough to exercise overwrite, unlink of
/// missing names, cross-directory rename, and hard links. Ops that fail
/// (missing source, existing target) fail identically pre-crash and are
/// simply skipped.
#[derive(Debug, Clone)]
enum Op {
    Mkdir { dir: u8 },
    Write { dir: u8, file: u8, len: u16 },
    Unlink { dir: u8, file: u8 },
    Rename { dir: u8, file: u8, to_dir: u8, to: u8 },
    Link { dir: u8, file: u8, alias: u8 },
}

/// `dir == 0` means the root; otherwise `/d{dir}`.
fn dir_path(dir: u8) -> String {
    if dir.is_multiple_of(4) {
        String::new()
    } else {
        format!("/d{}", dir % 4)
    }
}

fn file_path(dir: u8, file: u8) -> String {
    format!("{}/f{}", dir_path(dir), file % 6)
}

fn apply(fs: &mut Lfs<VolumeDisk>, op: &Op, seq: usize) {
    match op {
        Op::Mkdir { dir } => {
            let _ = fs.mkdir(&format!("/d{}", dir % 4));
        }
        Op::Write { dir, file, len } => {
            // Position-seeded contents so a mix-up between two recovered
            // blocks cannot go unnoticed.
            let data: Vec<u8> = (0..*len as usize)
                .map(|i| (i as u8) ^ (seq as u8) ^ file.wrapping_mul(37))
                .collect();
            let _ = fs.write_file(&file_path(*dir, *file), &data);
        }
        Op::Unlink { dir, file } => {
            let _ = fs.unlink(&file_path(*dir, *file));
        }
        Op::Rename { dir, file, to_dir, to } => {
            let _ = fs.rename(&file_path(*dir, *file), &file_path(*to_dir, *to));
        }
        Op::Link { dir, file, alias } => {
            let _ = fs.link(&file_path(*dir, *file), &format!("/a{}", alias % 4));
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>()).prop_map(|dir| Op::Mkdir { dir }),
        (any::<u8>(), any::<u8>(), 0..4096u16)
            .prop_map(|(dir, file, len)| Op::Write { dir, file, len }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, file)| Op::Unlink { dir, file }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(dir, file, to_dir, to)| Op::Rename { dir, file, to_dir, to }),
        (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(dir, file, alias)| Op::Link { dir, file, alias }),
    ]
}

/// Everything recovery is supposed to reconstruct, in comparable form.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Snapshot {
    /// path -> (kind, contents, nlink, size, mtime).
    tree: BTreeMap<String, (FileKind, Vec<u8>, u32, u64, u64)>,
    /// Allocated inode-map entries with `atime_ns` masked to zero (see
    /// module doc); addr, slot, allocation, and version compared
    /// byte-for-byte.
    imap: Vec<(Ino, ImapEntry)>,
    /// Per-segment (live bytes, state); `last_write_ns` excluded (see
    /// module doc).
    usage: Vec<(u32, SegState)>,
    rollforward_chunks: u64,
    rollforward_inodes: u64,
}

fn snapshot(fs: &mut Lfs<VolumeDisk>) -> Snapshot {
    // Imap first: walking the tree below updates atimes (at clocks that
    // legitimately differ between the two mounts).
    let imap: Vec<(Ino, ImapEntry)> = fs
        .inode_map()
        .allocated_inos()
        .map(|ino| {
            let mut e = fs.inode_map().get(ino).expect("imap entry");
            e.atime_ns = 0;
            (ino, e)
        })
        .collect();
    let usage: Vec<(u32, SegState)> = (0..fs.usage_table().nsegments())
        .map(|i| {
            let e = fs.usage_table().get(SegNo(i));
            (e.live_bytes, e.state)
        })
        .collect();
    let stats = fs.stats();

    let mut tree = BTreeMap::new();
    let mut stack = vec![String::from("/")];
    while let Some(dir) = stack.pop() {
        for entry in fs.readdir(&dir).expect("readdir") {
            let path = if dir == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{dir}/{}", entry.name)
            };
            let ino = fs.lookup(&path).expect("lookup");
            let meta = fs.stat(ino).expect("stat");
            let contents = match entry.kind {
                FileKind::Regular => fs.read_file(&path).expect("read"),
                FileKind::Directory => {
                    stack.push(path.clone());
                    Vec::new()
                }
            };
            tree.insert(
                path,
                (entry.kind, contents, meta.nlink, meta.size, meta.mtime_ns),
            );
        }
    }

    Snapshot {
        tree,
        imap,
        usage,
        rollforward_chunks: stats.rollforward_chunks,
        rollforward_inodes: stats.rollforward_inodes,
    }
}

/// Builds a crash image: `ops[..barrier]`, checkpoint, `ops[barrier..]`
/// flushed to the log with write-back (no checkpoint), crash. The
/// barrier index is the crash point's complement: everything after it is
/// roll-forward tail.
fn build_crash(spindles: usize, ops: &[Op], barrier: usize) -> Vec<Vec<u8>> {
    let mut fs = fresh(spindles);
    for (i, op) in ops[..barrier].iter().enumerate() {
        apply(&mut fs, op, i);
    }
    fs.sync().expect("checkpoint");
    for (i, op) in ops[barrier..].iter().enumerate() {
        apply(&mut fs, op, barrier + i);
    }
    fs.write_back().expect("write back");
    // Write-back queues the segment writes but takes no barrier; the
    // crash model drops whatever is still in flight. Drain the queue so
    // the whole suffix is durable tail — the crash-point axis is the
    // barrier index, not torn tails (crash_sweep covers those).
    fs.device_mut().flush().expect("device flush");
    fs.into_device().into_images()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn parallel_recovery_is_byte_identical(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        barrier_pct in 0..=100u8,
        spindles in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let barrier = ops.len() * barrier_pct as usize / 100;
        let images = build_crash(spindles, &ops, barrier);

        let mut seq = remount(spindles, images.clone(), 1);
        let mut par = remount(spindles, images, 0);

        let seq_snap = snapshot(&mut seq);
        let par_snap = snapshot(&mut par);
        prop_assert_eq!(&seq_snap, &par_snap);

        // The sequential mount must never take the partitioned path; the
        // parallel mount reports whatever the tail actually spanned.
        prop_assert_eq!(seq.stats().recovery_partitions, 0);
        if spindles == 1 {
            prop_assert!(par.stats().recovery_partitions <= 1);
        }

        let report = par.fsck().expect("fsck");
        prop_assert!(report.is_clean(), "parallel mount inconsistent:\n{report}");
    }
}

/// Vacuity guard: the property above accepts tails too short to
/// partition, so this deterministic case pins a tail that *must* span
/// several segments on all four spindles and checks the parallel scan
/// really took the partitioned path while recovering the identical
/// state.
#[test]
fn guaranteed_multi_segment_tail_partitions_across_spindles() {
    let spindles = 4;
    let ops: Vec<Op> = (0..48)
        .map(|i| Op::Write {
            dir: i as u8 % 4,
            file: i as u8,
            len: 3_000,
        })
        .collect();
    // Pre-create the directories so every write lands.
    let mut all = vec![
        Op::Mkdir { dir: 1 },
        Op::Mkdir { dir: 2 },
        Op::Mkdir { dir: 3 },
    ];
    all.extend(ops);
    let images = build_crash(spindles, &all, 3);

    let mut seq = remount(spindles, images.clone(), 1);
    let mut par = remount(spindles, images, 0);

    assert_eq!(snapshot(&mut seq), snapshot(&mut par));
    assert!(
        seq.stats().rollforward_chunks > 0,
        "tail never reached roll-forward — the equivalence check is vacuous"
    );
    assert!(
        par.stats().recovery_partitions > 1,
        "parallel scan never partitioned ({} partitions)",
        par.stats().recovery_partitions
    );
    assert_eq!(par.stats().recovery_partitions, spindles as u64);
    assert!(par.fsck().expect("fsck").is_clean());
}
