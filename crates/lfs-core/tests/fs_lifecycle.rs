//! End-to-end lifecycle tests for the LFS core: format, file operations,
//! sync, remount, cleaning, and crash recovery.

use std::sync::Arc;

use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, CrashPlan, DiskGeometry, SimDisk};
use vfs::{FileKind, FileSystem, FsError, Ino};

/// A small simulated disk + fresh LFS, with the small-test config.
fn fresh_fs() -> Lfs<SimDisk> {
    let clock = Clock::new();
    // 8 MB tiny-test disk: 16 K sectors.
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    Lfs::format(disk, LfsConfig::small_test(), clock).unwrap()
}

fn assert_fsck_clean(fs: &mut Lfs<SimDisk>) {
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "fsck found problems:\n{report}");
}

#[test]
fn format_produces_clean_empty_fs() {
    let mut fs = fresh_fs();
    assert!(fs.readdir("/").unwrap().is_empty());
    let stats = fs.fs_stats().unwrap();
    assert!(stats.used_bytes > 0, "metadata occupies some space");
    assert_eq!(stats.live_inodes, 1, "just the root");
    assert_fsck_clean(&mut fs);
}

#[test]
fn small_file_round_trip() {
    let mut fs = fresh_fs();
    fs.write_file("/hello", b"hello world").unwrap();
    assert_eq!(fs.read_file("/hello").unwrap(), b"hello world");
    fs.sync().unwrap();
    assert_eq!(fs.read_file("/hello").unwrap(), b"hello world");
    assert_fsck_clean(&mut fs);
}

#[test]
fn read_after_cache_drop_hits_disk() {
    let mut fs = fresh_fs();
    let payload: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
    fs.write_file("/data", &payload).unwrap();
    fs.sync().unwrap();
    let reads_before = fs.device().stats().reads;
    fs.drop_caches().unwrap();
    assert_eq!(fs.read_file("/data").unwrap(), payload);
    assert!(
        fs.device().stats().reads > reads_before,
        "dropping caches must force disk reads"
    );
    assert_fsck_clean(&mut fs);
}

#[test]
fn directories_nest_and_list() {
    let mut fs = fresh_fs();
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    fs.write_file("/a/b/c", b"x").unwrap();
    fs.write_file("/a/top", b"y").unwrap();
    let names: Vec<String> = fs
        .readdir("/a")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["b", "top"]);
    assert_eq!(fs.readdir("/a").unwrap()[0].kind, FileKind::Directory);
    assert_fsck_clean(&mut fs);
}

#[test]
fn unlink_and_rmdir_enforce_rules() {
    let mut fs = fresh_fs();
    fs.mkdir("/d").unwrap();
    fs.write_file("/d/f", b"z").unwrap();
    assert_eq!(fs.unlink("/d"), Err(FsError::IsADirectory));
    assert_eq!(fs.rmdir("/d"), Err(FsError::DirectoryNotEmpty));
    assert_eq!(fs.rmdir("/d/f"), Err(FsError::NotADirectory));
    fs.unlink("/d/f").unwrap();
    fs.rmdir("/d").unwrap();
    assert_eq!(fs.lookup("/d"), Err(FsError::NotFound));
    assert_fsck_clean(&mut fs);
}

#[test]
fn rename_and_hard_links() {
    let mut fs = fresh_fs();
    fs.write_file("/a", b"content").unwrap();
    fs.link("/a", "/b").unwrap();
    let ino = fs.lookup("/a").unwrap();
    assert_eq!(fs.stat(ino).unwrap().nlink, 2);
    fs.rename("/a", "/c").unwrap();
    assert_eq!(fs.read_file("/c").unwrap(), b"content");
    assert_eq!(fs.read_file("/b").unwrap(), b"content");
    fs.unlink("/b").unwrap();
    assert_eq!(fs.stat(ino).unwrap().nlink, 1);
    assert_fsck_clean(&mut fs);
}

#[test]
fn large_file_uses_indirect_blocks() {
    let mut fs = fresh_fs();
    // small_test: 512-byte blocks, 12 direct => indirect beyond 6 KB.
    // 200 KB exercises the single-indirect (128 ptrs -> 64 KB reach)
    // and double-indirect ranges.
    let payload: Vec<u8> = (0..200 * 1024u32).map(|i| (i * 7 % 256) as u8).collect();
    let ino = fs.write_file("/big", &payload).unwrap();
    fs.sync().unwrap();
    fs.drop_caches().unwrap();
    assert_eq!(fs.read_file("/big").unwrap(), payload);
    assert_eq!(fs.stat(ino).unwrap().size, payload.len() as u64);
    assert_fsck_clean(&mut fs);
}

#[test]
fn sparse_files_read_zeros() {
    let mut fs = fresh_fs();
    let ino = fs.create("/sparse").unwrap();
    fs.write_at(ino, 50_000, b"end").unwrap();
    fs.sync().unwrap();
    fs.drop_caches().unwrap();
    let data = fs.read_file("/sparse").unwrap();
    assert_eq!(data.len(), 50_003);
    assert!(data[..50_000].iter().all(|&b| b == 0));
    assert_eq!(&data[50_000..], b"end");
    assert_fsck_clean(&mut fs);
}

#[test]
fn truncate_shrink_and_grow() {
    let mut fs = fresh_fs();
    let payload = vec![0xAB; 10_000];
    let ino = fs.write_file("/t", &payload).unwrap();
    fs.truncate(ino, 100).unwrap();
    assert_eq!(fs.read_file("/t").unwrap(), vec![0xAB; 100]);
    fs.truncate(ino, 1000).unwrap();
    let data = fs.read_file("/t").unwrap();
    assert_eq!(&data[..100], &[0xAB; 100][..]);
    assert!(data[100..].iter().all(|&b| b == 0));
    fs.sync().unwrap();
    assert_fsck_clean(&mut fs);
}

#[test]
fn remount_preserves_everything() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    fs.mkdir("/dir").unwrap();
    fs.write_file("/dir/file", b"persistent data").unwrap();
    fs.write_file("/top", &vec![9u8; 5000]).unwrap();
    fs.sync().unwrap();

    let image = fs.into_device().into_image();
    let clock2 = Clock::new();
    let disk2 = SimDisk::from_image(geometry, Arc::clone(&clock2), image);
    let mut fs2 = Lfs::mount(disk2, LfsConfig::small_test(), clock2).unwrap();
    assert_eq!(fs2.read_file("/dir/file").unwrap(), b"persistent data");
    assert_eq!(fs2.read_file("/top").unwrap(), vec![9u8; 5000]);
    assert_fsck_clean(&mut fs2);
}

#[test]
fn churn_triggers_cleaning_and_survives() {
    // A deliberately small disk (1 MB, ~60 segments) so churn exhausts
    // clean segments and forces the cleaner to run.
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(2048), Arc::clone(&clock));
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
    // Write and delete far more data than the disk holds, forcing the
    // cleaner to reclaim segments.
    let blob = vec![0x5Au8; 20_000];
    for round in 0..120 {
        let path = format!("/blob{}", round % 4);
        if round >= 4 {
            fs.unlink(&path).unwrap();
        }
        fs.write_file(&path, &blob).unwrap();
    }
    fs.sync().unwrap();
    assert!(
        fs.stats().segments_cleaned > 0,
        "cleaner must have run: {:?}",
        fs.stats()
    );
    for i in 0..4 {
        assert_eq!(fs.read_file(&format!("/blob{i}")).unwrap(), blob);
    }
    assert_fsck_clean(&mut fs);
}

#[test]
fn crash_after_sync_loses_nothing() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    fs.write_file("/durable", b"synced").unwrap();
    fs.sync().unwrap();
    // Crash: everything after this write index is lost.
    fs.device_mut().arm_crash(CrashPlan::drop_at(u64::MAX));
    fs.write_file("/volatile", b"not synced").unwrap();
    // (No sync: the data may or may not survive, but /durable must.)

    let image = fs.into_device().into_image();
    let clock2 = Clock::new();
    let disk2 = SimDisk::from_image(geometry, Arc::clone(&clock2), image);
    let mut fs2 = Lfs::mount(disk2, LfsConfig::small_test(), clock2).unwrap();
    assert_eq!(fs2.read_file("/durable").unwrap(), b"synced");
    assert_fsck_clean(&mut fs2);
}

#[test]
fn fsync_data_survives_crash_via_rollforward() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    fs.mkdir("/d").unwrap();
    fs.sync().unwrap();
    // After the checkpoint: create and fsync a file, then crash.
    let ino = fs.write_file("/d/precious", b"must survive").unwrap();
    fs.fsync(ino).unwrap();

    let image = fs.into_device().into_image();
    let clock2 = Clock::new();
    let disk2 = SimDisk::from_image(geometry, Arc::clone(&clock2), image);
    let mut fs2 = Lfs::mount(disk2, LfsConfig::small_test(), clock2).unwrap();
    assert!(
        fs2.stats().rollforward_chunks > 0,
        "roll-forward should have replayed the fsync"
    );
    assert_eq!(fs2.read_file("/d/precious").unwrap(), b"must survive");
    assert_fsck_clean(&mut fs2);
}

#[test]
fn stale_inos_error_after_unlink() {
    let mut fs = fresh_fs();
    let ino = fs.write_file("/gone", b"bye").unwrap();
    fs.unlink("/gone").unwrap();
    let mut buf = [0u8; 4];
    assert!(matches!(
        fs.read_at(ino, 0, &mut buf),
        Err(FsError::NotFound) | Err(FsError::Corrupt(_))
    ));
}

#[test]
fn create_rejects_duplicates_and_bad_paths() {
    let mut fs = fresh_fs();
    fs.create("/x").unwrap();
    assert_eq!(fs.create("/x"), Err(FsError::AlreadyExists));
    assert_eq!(fs.create("/missing/x"), Err(FsError::NotFound));
    assert_eq!(fs.create("relative"), Err(FsError::InvalidPath));
    assert_eq!(fs.create("/x/y"), Err(FsError::NotADirectory));
}

#[test]
fn version_numbers_rise_on_delete() {
    let mut fs = fresh_fs();
    let ino = fs.write_file("/v", b"1").unwrap();
    let v0 = fs.inode_map().get(ino).unwrap().version;
    fs.unlink("/v").unwrap();
    // Re-create: same ino may be reused with a higher version.
    let ino2 = fs.write_file("/v2", b"2").unwrap();
    if ino2 == ino {
        assert!(fs.inode_map().get(ino2).unwrap().version > v0);
    }
}

#[test]
fn many_small_files_fill_segments() {
    let mut fs = fresh_fs();
    for i in 0..200 {
        fs.write_file(&format!("/f{i:03}"), &vec![i as u8; 600])
            .unwrap();
    }
    fs.sync().unwrap();
    assert!(fs.stats().segments_sealed > 0, "multiple segments written");
    fs.drop_caches().unwrap();
    for i in (0..200).step_by(17) {
        assert_eq!(
            fs.read_file(&format!("/f{i:03}")).unwrap(),
            vec![i as u8; 600]
        );
    }
    assert_fsck_clean(&mut fs);
}

#[test]
fn root_ino_is_one() {
    let mut fs = fresh_fs();
    assert_eq!(fs.lookup("/").unwrap(), Ino::ROOT);
}
