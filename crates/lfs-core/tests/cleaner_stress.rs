//! Cleaner stress tests: sustained churn on a small disk, under every
//! victim-selection policy, with consistency checks throughout.

use std::sync::Arc;

use lfs_core::{CleanerPolicy, Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::FileSystem;

fn small_disk_fs(policy: CleanerPolicy) -> Lfs<SimDisk> {
    let clock = Clock::new();
    // 1 MB disk, 16 KB segments: cleaning is unavoidable under churn.
    let disk = SimDisk::new(DiskGeometry::tiny_test(2048), Arc::clone(&clock));
    let mut cfg = LfsConfig::small_test();
    cfg.cleaner.policy = policy;
    Lfs::format(disk, cfg, clock).unwrap()
}

fn churn(fs: &mut Lfs<SimDisk>, rounds: usize, check_every: usize) {
    let blob = vec![0x5Au8; 20_000];
    for round in 0..rounds {
        let path = format!("/blob{}", round % 4);
        if round >= 4 {
            fs.unlink(&path)
                .unwrap_or_else(|e| panic!("round {round}: unlink failed: {e}"));
        }
        fs.write_file(&path, &blob)
            .unwrap_or_else(|e| panic!("round {round}: write failed: {e}"));
        if round % check_every == 0 {
            let report = fs.fsck().unwrap();
            assert!(
                report.is_clean(),
                "round {round} (cleaned {} segs):\n{report}",
                fs.stats().segments_cleaned
            );
        }
    }
    fs.sync().unwrap();
    assert!(fs.stats().segments_cleaned > 0, "cleaner never ran");
    // All surviving files must read back intact.
    for i in 0..4 {
        assert_eq!(
            fs.read_file(&format!("/blob{i}")).unwrap(),
            blob,
            "blob{i} corrupted after cleaning"
        );
    }
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "final fsck:\n{report}");
}

#[test]
fn greedy_policy_survives_churn() {
    let mut fs = small_disk_fs(CleanerPolicy::Greedy);
    churn(&mut fs, 150, 10);
}

#[test]
fn cost_benefit_policy_survives_churn() {
    let mut fs = small_disk_fs(CleanerPolicy::CostBenefit);
    churn(&mut fs, 150, 10);
}

#[test]
fn oldest_policy_survives_churn() {
    let mut fs = small_disk_fs(CleanerPolicy::Oldest);
    churn(&mut fs, 150, 10);
}

#[test]
fn explicit_clean_until_reclaims_space() {
    let mut fs = small_disk_fs(CleanerPolicy::Greedy);
    // Fill with short-lived files, then delete most of them.
    for i in 0..30 {
        fs.write_file(&format!("/f{i}"), &vec![i as u8; 16_000])
            .unwrap();
    }
    for i in 0..28 {
        fs.unlink(&format!("/f{i}")).unwrap();
    }
    fs.sync().unwrap();
    let before = fs.usage_table().clean_count();
    let after = fs.clean_until(before + 5).unwrap();
    assert!(after > before, "user-initiated cleaning must make progress");
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "{report}");
    // The two survivors are intact.
    assert_eq!(fs.read_file("/f28").unwrap(), vec![28u8; 16_000]);
    assert_eq!(fs.read_file("/f29").unwrap(), vec![29u8; 16_000]);
}

#[test]
fn cleaning_preserves_remount() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(2048), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    let blob = vec![7u8; 20_000];
    for round in 0..100 {
        let path = format!("/blob{}", round % 4);
        if round >= 4 {
            fs.unlink(&path).unwrap();
        }
        fs.write_file(&path, &blob).unwrap();
    }
    fs.sync().unwrap();
    assert!(fs.stats().segments_cleaned > 0);

    let image = fs.into_device().into_image();
    let clock2 = Clock::new();
    let disk2 = SimDisk::from_image(geometry, Arc::clone(&clock2), image);
    let mut fs2 = Lfs::mount(disk2, LfsConfig::small_test(), clock2).unwrap();
    for i in 0..4 {
        assert_eq!(fs2.read_file(&format!("/blob{i}")).unwrap(), blob);
    }
    let report = fs2.fsck().unwrap();
    assert!(report.is_clean(), "{report}");
}
