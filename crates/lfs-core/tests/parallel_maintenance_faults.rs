//! Media-fault equivalence for the fanned-out maintenance scans.
//!
//! `fsck` and `scrub` gained a gather phase that prefetches metadata /
//! segment images across spindles when a recovery fan-out is
//! configured. The contract: the gather only changes *when* blocks are
//! read, never what the serial verify phase concludes. This table
//! drives both maintenance passes over identical 4-spindle images with
//! identical injected media faults — latent sector errors and silent
//! rot, on live inode blocks and on chunk summary headers — once
//! sequentially (`recovery_fanout = 1`) and once fanned out (`= 0`),
//! and requires the typed outcome to match exactly: the same
//! [`FsckReport`], the same [`ScrubReport`] (bad blocks, salvaged
//! relocations, data-loss counts, unreadable chunks), the same errors,
//! and the same read-only degradation decision.

use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use lfs_core::{FsckReport, Lfs, LfsConfig, ScrubReport};
use sim_disk::{Clock, DiskGeometry, MediaFaultPlan, SECTOR_SIZE};
use vfs::FileSystem;
use volume::{StripedVolume, VolumeConfig, VolumeDisk};

const SPINDLE_SECTORS: u64 = 8_192;
const SPINDLES: usize = 4;

fn cfg(fanout: usize) -> LfsConfig {
    let mut c = LfsConfig::small_test()
        .with_checkpoint_secs(1e9)
        .with_recovery_fanout(fanout);
    c.segment_align_metadata = true;
    c
}

fn volume_cfg() -> VolumeConfig {
    VolumeConfig::rr_segment(SPINDLES, cfg(1).segment_bytes)
}

/// A checkpointed image set with a handful of files, so the first log
/// segments are dirty and full of live inode and data blocks.
fn build_images() -> Vec<Vec<u8>> {
    let clock = Clock::new();
    let vol = StripedVolume::new(
        DiskGeometry::tiny_test(SPINDLE_SECTORS),
        Arc::clone(&clock),
        volume_cfg(),
    );
    let mut fs =
        Lfs::format(VolumeDisk::new(vol.into_shared()), cfg(1), clock).expect("format LFS");
    fs.mkdir("/docs").expect("mkdir");
    for i in 0..12 {
        let data: Vec<u8> = (0..2048u32).map(|k| (k as u8) ^ (i as u8).wrapping_mul(29)).collect();
        fs.write_file(&format!("/docs/f{i}"), &data).expect("write");
    }
    fs.sync().expect("checkpoint");
    fs.into_device().into_images()
}

/// Maps a volume-logical sector to its (spindle, physical sector) under
/// segment round-robin striping.
fn locate(logical: u64) -> (usize, u64) {
    let chunk_sectors = (cfg(1).segment_bytes / SECTOR_SIZE) as u64;
    let chunk = logical / chunk_sectors;
    let within = logical % chunk_sectors;
    (
        (chunk % SPINDLES as u64) as usize,
        (chunk / SPINDLES as u64) * chunk_sectors + within,
    )
}

#[derive(Clone, Copy, Debug)]
enum Fault {
    /// Permanent read error (until rewritten).
    Latent,
    /// Silent corruption: reads succeed, bytes are wrong.
    Rot,
}

#[derive(Clone, Copy, Debug)]
enum Target {
    /// The inode block holding the named file's inode — always live, so
    /// the scrub must notice damage and take the salvage path.
    InodeBlock,
    /// Block 0 of the segment holding that inode block: the chunk
    /// summary header, whose loss makes the chain unenumerable.
    SummaryHeader,
}

#[derive(Clone, Copy, Debug)]
struct Injection {
    file: &'static str,
    target: Target,
    fault: Fault,
}

/// Everything a maintenance pass can conclude, in comparable form.
/// Errors are stringified so `Err` outcomes participate in the
/// equivalence too.
type Outcome = (
    Result<FsckReport, String>,
    Result<ScrubReport, String>,
    Result<FsckReport, String>,
    bool,
);

/// One maintenance run over the shared images with `injections` armed.
/// Victim addresses come from the inode map, so identical images always
/// yield identical victims.
fn run(images: Vec<Vec<u8>>, fanout: usize, injections: &[Injection]) -> Outcome {
    let clock = Clock::new();
    let vol = StripedVolume::from_images(
        DiskGeometry::tiny_test(SPINDLE_SECTORS),
        Arc::clone(&clock),
        volume_cfg(),
        images,
    );
    let shared = vol.into_shared();
    let mut fs =
        Lfs::mount(VolumeDisk::new(Rc::clone(&shared)), cfg(fanout), clock).expect("mount");

    // Accumulate one plan per spindle: arming a plan replaces any
    // previous one on that spindle.
    let sectors_per_block = (fs.block_size() / SECTOR_SIZE) as u64;
    let mut plans: BTreeMap<usize, MediaFaultPlan> = BTreeMap::new();
    for inj in injections {
        let ino = fs.lookup(inj.file).expect("lookup victim");
        let inode_addr = fs.inode_map().get(ino).expect("imap entry").addr;
        let addr = match inj.target {
            Target::InodeBlock => inode_addr,
            Target::SummaryHeader => {
                let (seg, _) = fs
                    .superblock()
                    .seg_of(inode_addr)
                    .expect("inode block lives in the log");
                fs.superblock().seg_block(seg, 0)
            }
        };
        let logical = addr.0 as u64 * sectors_per_block;
        let (spindle, physical) = locate(logical);
        let plan = plans.remove(&spindle).unwrap_or_else(|| MediaFaultPlan::new(11));
        let plan = match inj.fault {
            Fault::Latent => plan.latent(physical),
            Fault::Rot => plan.rot(physical),
        };
        plans.insert(spindle, plan);
    }
    for (spindle, plan) in plans {
        shared
            .borrow_mut()
            .spindle_mut(spindle)
            .disk_mut()
            .inject_media_faults(plan);
    }

    let fsck_before = fs.fsck().map_err(|e| format!("{e:?}"));
    let scrub = fs.scrub().map_err(|e| format!("{e:?}"));
    let fsck_after = fs.fsck().map_err(|e| format!("{e:?}"));
    let read_only = fs.is_read_only();
    (fsck_before, scrub, fsck_after, read_only)
}

/// True when some pass noticed the damage — guards the equality from
/// passing vacuously on a fault that nothing ever read.
fn noticed(outcome: &Outcome) -> bool {
    let (fsck_before, scrub, fsck_after, read_only) = outcome;
    *read_only
        || fsck_before.as_ref().map_or(true, |r| !r.is_clean())
        || scrub.as_ref().map_or(true, |r| !r.is_clean())
        || fsck_after.as_ref().map_or(true, |r| !r.is_clean())
}

/// The table: fault kind × victim blocks. Inode blocks exercise the
/// bad-block / salvage path; summary headers the unreadable-chunk path.
#[test]
fn fanned_out_maintenance_matches_sequential_on_damaged_media() {
    use Fault::*;
    use Target::*;
    let cases: &[(&str, &[Injection])] = &[
        (
            "latent inode block",
            &[Injection { file: "/docs/f3", target: InodeBlock, fault: Latent }],
        ),
        (
            "rotted inode block",
            &[Injection { file: "/docs/f7", target: InodeBlock, fault: Rot }],
        ),
        (
            "latent summary header",
            &[Injection { file: "/docs/f0", target: SummaryHeader, fault: Latent }],
        ),
        (
            "latent inode blocks of two files",
            &[
                Injection { file: "/docs/f1", target: InodeBlock, fault: Latent },
                Injection { file: "/docs/f11", target: InodeBlock, fault: Latent },
            ],
        ),
        (
            "rot plus latent summary header",
            &[
                Injection { file: "/docs/f5", target: InodeBlock, fault: Rot },
                Injection { file: "/docs/f9", target: SummaryHeader, fault: Latent },
            ],
        ),
    ];
    let images = build_images();
    for (name, injections) in cases {
        let seq = run(images.clone(), 1, injections);
        let par = run(images.clone(), 0, injections);
        assert_eq!(
            seq, par,
            "{name}: fanned-out maintenance outcome diverged from sequential"
        );
        assert!(
            noticed(&seq),
            "{name}: no maintenance pass noticed the injected fault ({seq:?})"
        );
    }
}

/// Healthy-media control: both modes agree on a clean volume too, and
/// neither flags anything.
#[test]
fn fanned_out_maintenance_matches_sequential_on_healthy_media() {
    let images = build_images();
    let seq = run(images.clone(), 1, &[]);
    let par = run(images, 0, &[]);
    assert_eq!(seq, par);
    let (fsck_before, scrub, fsck_after, read_only) = seq;
    assert!(fsck_before.expect("fsck").is_clean());
    assert!(scrub.expect("scrub").is_clean());
    assert!(fsck_after.expect("fsck").is_clean());
    assert!(!read_only, "clean volume must not degrade to read-only");
}
