//! Async-cleaner correctness: the incremental [`Lfs::cleaner_step`]
//! state machine interleaved with foreground operations at every
//! granularity the policy allows.
//!
//! The central property: no interleaving of foreground mutations and
//! cleaner steps may lose or duplicate a live block. A scripted random
//! workload runs against the real LFS (async cleaner at maximum
//! aggressiveness, tiny step caps so mid-victim states are common) and
//! an in-memory [`ModelFs`] mirror; after every operation, every slot
//! must read back byte-identical from both.

use std::sync::Arc;

use proptest::prelude::*;

use lfs_core::{AsyncCleanerPolicy, CleanerRunMode, CleanerStepOutcome, Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::model::ModelFs;
use vfs::{FileSystem, FsError};

/// Distinct file slots the workload churns over.
const SLOTS: usize = 6;

/// An async-mode LFS on a tiny disk where cleaning is unavoidable, with
/// watermarks far above the segment count (the cleaner always wants to
/// run) and minimal step caps (every mid-victim state is visited).
fn aggressive_fs(disk_sectors: u64) -> Lfs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(disk_sectors), Arc::clone(&clock));
    let mut cfg = LfsConfig::small_test();
    cfg.cleaner.run_mode = CleanerRunMode::Async(
        AsyncCleanerPolicy::default()
            .with_watermarks(1 << 16, 1 << 17)
            .with_step_caps(2, 4),
    );
    Lfs::format(disk, cfg, clock).unwrap()
}

/// One scripted foreground operation (or a burst of cleaner steps).
#[derive(Debug, Clone)]
enum Op {
    /// Truncate-and-rewrite the slot with `len` bytes of `fill`
    /// (creating it if absent): every overwrite turns the old blocks
    /// into garbage for the cleaner.
    Write { slot: usize, len: usize, fill: u8 },
    /// Shrink (or extend with zeros) the slot to `len` bytes.
    Truncate { slot: usize, len: usize },
    /// Remove the slot.
    Unlink { slot: usize },
    /// Offer the cleaner up to `n` incremental steps.
    Steps { n: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Writes repeated for weight (the shim's `prop_oneof!` is uniform):
    // overwrites are what manufacture garbage for the cleaner.
    let write = || {
        (0..SLOTS, 1usize..6000, any::<u8>())
            .prop_map(|(slot, len, fill)| Op::Write { slot, len, fill })
    };
    prop_oneof![
        write(),
        write(),
        write(),
        write(),
        (0..SLOTS, 0usize..6000).prop_map(|(slot, len)| Op::Truncate { slot, len }),
        (0..SLOTS).prop_map(|slot| Op::Unlink { slot }),
        (1usize..12).prop_map(|n| Op::Steps { n }),
        (1usize..12).prop_map(|n| Op::Steps { n }),
    ]
}

fn slot_path(slot: usize) -> String {
    format!("/slot{slot}")
}

/// Applies one foreground op to any [`FileSystem`]; both the LFS and the
/// model mirror go through this exact code path, so their observable
/// results (including errors) must agree.
fn apply<F: FileSystem>(fs: &mut F, op: &Op) -> Result<(), FsError> {
    match op {
        Op::Write { slot, len, fill } => {
            let path = slot_path(*slot);
            let ino = match fs.lookup(&path) {
                Ok(ino) => {
                    fs.truncate(ino, 0)?;
                    ino
                }
                Err(FsError::NotFound) => fs.create(&path)?,
                Err(e) => return Err(e),
            };
            let data = vec![*fill; *len];
            let mut written = 0;
            while written < data.len() {
                written += fs.write_at(ino, written as u64, &data[written..])?;
            }
            Ok(())
        }
        Op::Truncate { slot, len } => match fs.lookup(&slot_path(*slot)) {
            Ok(ino) => fs.truncate(ino, *len as u64),
            Err(FsError::NotFound) => Ok(()),
            Err(e) => Err(e),
        },
        Op::Unlink { slot } => match fs.unlink(&slot_path(*slot)) {
            Ok(()) | Err(FsError::NotFound) => Ok(()),
            Err(e) => Err(e),
        },
        Op::Steps { .. } => Ok(()),
    }
}

/// Every slot reads back byte-identical from the LFS and the model
/// (including agreeing on which slots do not exist).
fn assert_mirror(fs: &mut Lfs<SimDisk>, model: &mut ModelFs, ctx: &str) {
    for slot in 0..SLOTS {
        let path = slot_path(slot);
        match (fs.read_file(&path), model.read_file(&path)) {
            (Ok(real), Ok(want)) => assert_eq!(
                real, want,
                "{ctx}: {path} diverged ({} vs {} bytes)",
                real.len(),
                want.len()
            ),
            (Err(FsError::NotFound), Err(FsError::NotFound)) => {}
            (real, want) => {
                panic!("{ctx}: {path} existence diverged: lfs={real:?} model={want:?}")
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// No foreground/cleaner interleaving loses or duplicates a live
    /// block: after every operation (with the async cleaner stepped at
    /// maximum aggressiveness in between), the LFS and the model read
    /// back byte-identical.
    #[test]
    fn interleaved_cleaning_never_corrupts(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut fs = aggressive_fs(4096); // 2 MB disk, 16 KB segments
        let mut model = ModelFs::new();

        for (i, op) in ops.iter().enumerate() {
            let real = apply(&mut fs, op);
            let want = apply(&mut model, op);
            prop_assert_eq!(
                real.is_ok(),
                want.is_ok(),
                "op {} {:?}: lfs={:?} model={:?}",
                i, op, real, want
            );

            // Interleave cleaning at the finest granularity the op
            // stream asks for — including leaving a run mid-victim.
            if let Op::Steps { n } = op {
                for _ in 0..*n {
                    if !fs.cleaner_wants_step(0) {
                        break;
                    }
                    fs.cleaner_step().unwrap();
                }
            }

            assert_mirror(&mut fs, &mut model, &format!("after op {i} {op:?}"));
        }

        // Close out: drain the run, commit, and re-verify everything.
        while fs.cleaner_run_active() {
            fs.cleaner_step().unwrap();
        }
        fs.sync().unwrap();
        let report = fs.fsck().unwrap();
        prop_assert!(report.is_clean(), "final fsck:\n{report}");
        assert_mirror(&mut fs, &mut model, "after final sync");
    }
}

/// Sustained churn with the cleaner driven between every operation
/// actually cleans (the property test above must not be vacuous).
#[test]
fn aggressive_async_cleaner_cleans_under_churn() {
    let mut fs = aggressive_fs(2048); // 1 MB disk
    // Four 20 KB blobs: the churn working set overflows the 64 KB cache,
    // so every overwrite pushes garbage onto the disk for the cleaner.
    let blob = vec![0xA5u8; 20_000];
    for round in 0..150 {
        let path = format!("/blob{}", round % 4);
        match fs.lookup(&path) {
            Ok(ino) => {
                fs.truncate(ino, 0).unwrap();
                let mut written = 0;
                while written < blob.len() {
                    written += fs.write_at(ino, written as u64, &blob[written..]).unwrap();
                }
            }
            Err(FsError::NotFound) => {
                fs.write_file(&path, &blob).unwrap();
            }
            Err(e) => panic!("round {round}: {e}"),
        }
        for _ in 0..12 {
            if !fs.cleaner_wants_step(0) {
                break;
            }
            fs.cleaner_step().unwrap();
        }
    }
    while fs.cleaner_run_active() {
        fs.cleaner_step().unwrap();
    }
    fs.sync().unwrap();
    let stats = fs.stats();
    assert!(
        stats.segments_cleaned > 0,
        "async cleaner never cleaned a segment"
    );
    assert!(stats.async_runs_completed > 0, "no async run ever completed");
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "final fsck:\n{report}");
}

/// In sync mode the incremental API is inert: `cleaner_wants_step` is
/// always false and `cleaner_step` reports `Idle`, so hosts may call
/// both unconditionally.
#[test]
fn sync_mode_keeps_incremental_api_inert() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(2048), Arc::clone(&clock));
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
    fs.write_file("/f", &[1u8; 4000]).unwrap();
    assert!(!fs.cleaner_wants_step(0));
    assert_eq!(fs.cleaner_step().unwrap(), CleanerStepOutcome::Idle);
    assert!(!fs.cleaner_run_active());
}

/// A run that finds nothing to clean (all segments live) must not be
/// restarted at the same segment population — otherwise a host that
/// steps whenever `cleaner_wants_step` says yes would spin forever.
#[test]
fn futile_runs_are_damped() {
    let mut fs = aggressive_fs(2048);
    // Fill with live data only: nothing is garbage, so cleaning is
    // futile even though the clean count is far below the watermark.
    for i in 0..10 {
        fs.write_file(&format!("/live{i}"), &[i as u8; 6000]).unwrap();
    }
    fs.sync().unwrap();

    let mut steps = 0u64;
    while fs.cleaner_wants_step(0) {
        fs.cleaner_step().unwrap();
        steps += 1;
        assert!(steps < 10_000, "futile cleaning never settled");
    }
    assert!(steps > 0, "cleaner never even tried");
    assert!(
        !fs.cleaner_wants_step(0),
        "a futile run at an unchanged segment population must damp the next"
    );

    // Damping is keyed on the clean + clean-pending level: deleting a
    // file and writing fresh data moves the level (new garbage exists
    // and the log consumed segments), which must release the damping.
    fs.unlink("/live0").unwrap();
    let mut released = false;
    for i in 0..40 {
        fs.write_file(&format!("/fresh{i}"), &[0xEEu8; 6000]).unwrap();
        fs.sync().unwrap();
        if fs.cleaner_wants_step(0) {
            released = true;
            break;
        }
    }
    assert!(
        released,
        "damping must release once the segment population changes"
    );
}

/// The idle gate defers cleaning while the host reports queue pressure
/// and releases it when the queue drains.
#[test]
fn idle_gate_defers_until_quiet() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(2048), Arc::clone(&clock));
    let mut cfg = LfsConfig::small_test();
    cfg.cleaner.run_mode = CleanerRunMode::Async(
        AsyncCleanerPolicy::default()
            .with_watermarks(1 << 16, 1 << 17)
            .with_idle_gate(2),
    );
    let mut fs = Lfs::format(disk, cfg, clock).unwrap();
    for i in 0..6 {
        fs.write_file(&format!("/f{i}"), &[i as u8; 5000]).unwrap();
    }
    fs.sync().unwrap();

    assert!(
        !fs.cleaner_wants_step(10),
        "gated cleaner must decline while the queue is deep"
    );
    assert!(
        fs.cleaner_wants_step(0),
        "gated cleaner must accept once the queue drains"
    );
}
