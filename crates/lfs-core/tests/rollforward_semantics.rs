//! Roll-forward semantics for specific post-checkpoint operation
//! patterns: each scenario checkpoints a base state, performs operations
//! that reach the log (via write-back) but *not* a checkpoint, crashes,
//! and verifies exactly what recovery reconstructs.

use std::sync::Arc;

use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::{FileSystem, FsError};

const DISK_SECTORS: u64 = 16_384;

fn fresh() -> Lfs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
    Lfs::format(disk, LfsConfig::small_test(), clock).unwrap()
}

/// Crash (take the image) and remount with roll-forward.
fn crash_and_recover(fs: Lfs<SimDisk>) -> Lfs<SimDisk> {
    let image = fs.into_device().into_image();
    let disk = SimDisk::from_image(DiskGeometry::tiny_test(DISK_SECTORS), Clock::new(), image);
    let clock = disk.clock().clone();
    Lfs::mount(disk, LfsConfig::small_test(), clock).expect("recovery mount")
}

#[test]
fn hard_links_made_after_checkpoint_recover_with_correct_nlink() {
    let mut fs = fresh();
    fs.write_file("/original", b"shared payload").unwrap();
    fs.sync().unwrap();

    fs.link("/original", "/alias1").unwrap();
    fs.link("/original", "/alias2").unwrap();
    fs.write_back().unwrap();

    let mut fs = crash_and_recover(fs);
    assert!(fs.stats().rollforward_chunks > 0);
    for path in ["/original", "/alias1", "/alias2"] {
        assert_eq!(fs.read_file(path).unwrap(), b"shared payload", "{path}");
    }
    let ino = fs.lookup("/original").unwrap();
    assert_eq!(fs.stat(ino).unwrap().nlink, 3, "nlink must be reconciled");
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn rename_across_directories_after_checkpoint_recovers() {
    let mut fs = fresh();
    fs.mkdir("/src").unwrap();
    fs.mkdir("/dst").unwrap();
    fs.write_file("/src/wanderer", b"migratory data").unwrap();
    fs.sync().unwrap();

    fs.rename("/src/wanderer", "/dst/settled").unwrap();
    fs.write_back().unwrap();

    let mut fs = crash_and_recover(fs);
    assert_eq!(fs.lookup("/src/wanderer"), Err(FsError::NotFound));
    assert_eq!(fs.read_file("/dst/settled").unwrap(), b"migratory data");
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn unlink_after_checkpoint_stays_deleted() {
    let mut fs = fresh();
    fs.write_file("/doomed", b"will be deleted").unwrap();
    fs.write_file("/survivor", b"stays").unwrap();
    fs.sync().unwrap();

    fs.unlink("/doomed").unwrap();
    fs.write_back().unwrap();

    let mut fs = crash_and_recover(fs);
    // The deletion's directory update reached the log; the orphaned
    // inode must not be resurrected (fix_directories reclaims it).
    assert_eq!(fs.lookup("/doomed"), Err(FsError::NotFound));
    assert_eq!(fs.read_file("/survivor").unwrap(), b"stays");
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn overwrite_after_checkpoint_recovers_the_new_content() {
    let mut fs = fresh();
    let ino = fs.write_file("/versioned", b"generation one").unwrap();
    fs.sync().unwrap();

    fs.truncate(ino, 0).unwrap();
    fs.write_at(ino, 0, b"generation two, longer than before")
        .unwrap();
    fs.write_back().unwrap();

    let mut fs = crash_and_recover(fs);
    assert_eq!(
        fs.read_file("/versioned").unwrap(),
        b"generation two, longer than before"
    );
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn growth_into_indirect_blocks_after_checkpoint_recovers() {
    let mut fs = fresh();
    let ino = fs.write_file("/growing", &vec![1u8; 1024]).unwrap();
    fs.sync().unwrap();

    // Grow well into the single-indirect range (512 B blocks, 12 direct).
    let big: Vec<u8> = (0..40 * 512u32).map(|i| (i % 251) as u8).collect();
    fs.write_at(ino, 0, &big).unwrap();
    fs.write_back().unwrap();

    let mut fs = crash_and_recover(fs);
    assert_eq!(fs.read_file("/growing").unwrap(), big);
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn mkdir_tree_after_checkpoint_recovers() {
    let mut fs = fresh();
    fs.sync().unwrap();

    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    fs.mkdir("/a/b/c").unwrap();
    fs.write_file("/a/b/c/leaf", b"deep").unwrap();
    fs.write_back().unwrap();

    let mut fs = crash_and_recover(fs);
    assert_eq!(fs.read_file("/a/b/c/leaf").unwrap(), b"deep");
    assert_eq!(fs.readdir("/a/b").unwrap().len(), 1);
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn operations_not_written_back_are_lost_cleanly() {
    let mut fs = fresh();
    fs.write_file("/base", b"checkpointed").unwrap();
    fs.sync().unwrap();

    // Cache-only changes: no write-back before the crash.
    fs.write_file("/ghost", b"never flushed").unwrap();
    fs.unlink("/base").unwrap();

    let mut fs = crash_and_recover(fs);
    // The crash rolls back to the checkpoint: /base exists again, the
    // ghost never happened.
    assert_eq!(fs.read_file("/base").unwrap(), b"checkpointed");
    assert_eq!(fs.lookup("/ghost"), Err(FsError::NotFound));
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn recovery_is_idempotent_across_repeated_crashes() {
    let mut fs = fresh();
    fs.write_file("/stable", b"anchor").unwrap();
    fs.sync().unwrap();
    fs.write_file("/tail1", b"first tail").unwrap();
    fs.write_back().unwrap();

    // Crash, recover, immediately crash again (recovery checkpoints, so
    // the second mount must see the same state), several times over.
    let mut fs = crash_and_recover(fs);
    for round in 0..4 {
        assert_eq!(fs.read_file("/stable").unwrap(), b"anchor", "round {round}");
        assert_eq!(
            fs.read_file("/tail1").unwrap(),
            b"first tail",
            "round {round}"
        );
        assert!(fs.fsck().unwrap().is_clean(), "round {round}");
        fs = crash_and_recover(fs);
    }
}
