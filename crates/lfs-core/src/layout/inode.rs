//! On-disk inodes.
//!
//! §4.2.1: "The format of inodes and indirect blocks is unchanged" from
//! UNIX — twelve direct pointers, a single-indirect and a double-indirect
//! pointer. The only LFS-specific additions are the **version number**
//! (bumped when a file is deleted or truncated to zero, used by the
//! cleaner's fast liveness check, §4.3.3) and the *absence* of an access
//! time, which lives in the inode map instead (footnote 2).

use vfs::blockmap::NDIRECT;
use vfs::{FileKind, FsError, FsResult, Ino};

use crate::types::{BlockAddr, INODE_SIZE};
use crate::util::{ByteReader, ByteWriter};

/// Magic byte tagging a valid on-disk inode slot.
const INODE_MAGIC: u8 = 0xC9;

/// An inode, as stored in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// This inode's number (self-identifying for cleaning/roll-forward).
    pub ino: Ino,
    /// Version number from the inode map at the time of writing.
    pub version: u32,
    /// Regular file or directory.
    pub kind: FileKind,
    /// Hard-link count.
    pub nlink: u16,
    /// File length in bytes.
    pub size: u64,
    /// Last modification time (virtual ns).
    pub mtime_ns: u64,
    /// Direct block pointers.
    pub direct: [BlockAddr; NDIRECT],
    /// Single-indirect block pointer.
    pub single: BlockAddr,
    /// Double-indirect block pointer.
    pub double: BlockAddr,
}

impl Inode {
    /// Creates an empty inode of the given kind.
    pub fn new(ino: Ino, kind: FileKind, version: u32, mtime_ns: u64) -> Self {
        Self {
            ino,
            version,
            kind,
            nlink: 1,
            size: 0,
            mtime_ns,
            direct: [BlockAddr::NIL; NDIRECT],
            single: BlockAddr::NIL,
            double: BlockAddr::NIL,
        }
    }

    /// Serialises into exactly [`INODE_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(INODE_SIZE);
        w.u8(INODE_MAGIC);
        w.u8(match self.kind {
            FileKind::Regular => 1,
            FileKind::Directory => 2,
        });
        w.u16(self.nlink);
        w.u32(self.ino.0);
        w.u32(self.version);
        w.u64(self.size);
        w.u64(self.mtime_ns);
        for addr in &self.direct {
            w.u32(addr.0);
        }
        w.u32(self.single.0);
        w.u32(self.double.0);
        w.pad_to(INODE_SIZE);
        w.into_vec()
    }

    /// Parses an inode from an [`INODE_SIZE`]-byte slot.
    pub fn decode(bytes: &[u8]) -> FsResult<Self> {
        let mut r = ByteReader::new(bytes);
        let magic = r.u8().ok_or(FsError::Corrupt("inode slot too short"))?;
        if magic != INODE_MAGIC {
            return Err(FsError::Corrupt("bad inode magic"));
        }
        let kind = match r.u8().ok_or(FsError::Corrupt("inode slot too short"))? {
            1 => FileKind::Regular,
            2 => FileKind::Directory,
            _ => return Err(FsError::Corrupt("bad inode kind")),
        };
        let nlink = r.u16().ok_or(FsError::Corrupt("inode slot too short"))?;
        let ino = Ino(r.u32().ok_or(FsError::Corrupt("inode slot too short"))?);
        let version = r.u32().ok_or(FsError::Corrupt("inode slot too short"))?;
        let size = r.u64().ok_or(FsError::Corrupt("inode slot too short"))?;
        let mtime_ns = r.u64().ok_or(FsError::Corrupt("inode slot too short"))?;
        let mut direct = [BlockAddr::NIL; NDIRECT];
        for slot in &mut direct {
            *slot = BlockAddr(r.u32().ok_or(FsError::Corrupt("inode slot too short"))?);
        }
        let single = BlockAddr(r.u32().ok_or(FsError::Corrupt("inode slot too short"))?);
        let double = BlockAddr(r.u32().ok_or(FsError::Corrupt("inode slot too short"))?);
        Ok(Self {
            ino,
            version,
            kind,
            nlink,
            size,
            mtime_ns,
            direct,
            single,
            double,
        })
    }

    /// Attempts to parse an inode slot, returning `None` for an all-zero
    /// (never written) slot and an error only for garbled data.
    pub fn decode_slot(bytes: &[u8]) -> FsResult<Option<Self>> {
        if bytes.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        Self::decode(bytes).map(Some)
    }
}

/// Packs inodes into an inode block and extracts them again.
pub mod inode_block {
    use super::*;

    /// Writes `inodes` into a zeroed block of `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if more inodes are given than fit.
    pub fn pack(inodes: &[&Inode], block_size: usize) -> Vec<u8> {
        let capacity = block_size / INODE_SIZE;
        assert!(inodes.len() <= capacity, "too many inodes for one block");
        let mut block = vec![0u8; block_size];
        for (slot, inode) in inodes.iter().enumerate() {
            let bytes = inode.encode();
            block[slot * INODE_SIZE..(slot + 1) * INODE_SIZE].copy_from_slice(&bytes);
        }
        block
    }

    /// Reads the inode in `slot`, if that slot was written.
    pub fn unpack_slot(block: &[u8], slot: usize) -> FsResult<Option<Inode>> {
        let start = slot * INODE_SIZE;
        if start + INODE_SIZE > block.len() {
            return Err(FsError::Corrupt("inode slot out of range"));
        }
        Inode::decode_slot(&block[start..start + INODE_SIZE])
    }

    /// Iterates over all written inode slots in a block.
    pub fn unpack_all(block: &[u8]) -> FsResult<Vec<(usize, Inode)>> {
        let mut out = Vec::new();
        for slot in 0..block.len() / INODE_SIZE {
            if let Some(inode) = unpack_slot(block, slot)? {
                out.push((slot, inode));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Inode {
        let mut inode = Inode::new(Ino(7), FileKind::Regular, 3, 1_000);
        inode.size = 12_345;
        inode.nlink = 2;
        inode.direct[0] = BlockAddr(100);
        inode.direct[11] = BlockAddr(111);
        inode.single = BlockAddr(200);
        inode.double = BlockAddr(300);
        inode
    }

    #[test]
    fn encode_decode_round_trips() {
        let inode = sample();
        let bytes = inode.encode();
        assert_eq!(bytes.len(), INODE_SIZE);
        assert_eq!(Inode::decode(&bytes).unwrap(), inode);
    }

    #[test]
    fn zero_slot_is_none() {
        assert_eq!(Inode::decode_slot(&[0u8; INODE_SIZE]).unwrap(), None);
        let inode = sample();
        assert_eq!(Inode::decode_slot(&inode.encode()).unwrap(), Some(inode));
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut bytes = sample().encode();
        bytes[0] = 0x11; // Bad magic.
        assert!(matches!(Inode::decode(&bytes), Err(FsError::Corrupt(_))));
        let mut bad_kind = sample().encode();
        bad_kind[1] = 9;
        assert_eq!(
            Inode::decode(&bad_kind),
            Err(FsError::Corrupt("bad inode kind"))
        );
    }

    #[test]
    fn inode_block_pack_unpack() {
        let a = sample();
        let mut b = Inode::new(Ino(9), FileKind::Directory, 1, 5);
        b.size = 64;
        let block = inode_block::pack(&[&a, &b], 512);
        assert_eq!(block.len(), 512);
        assert_eq!(
            inode_block::unpack_slot(&block, 0).unwrap(),
            Some(a.clone())
        );
        assert_eq!(
            inode_block::unpack_slot(&block, 1).unwrap(),
            Some(b.clone())
        );
        assert_eq!(inode_block::unpack_slot(&block, 2).unwrap(), None);
        let all = inode_block::unpack_all(&block).unwrap();
        assert_eq!(all, vec![(0, a), (1, b)]);
    }

    #[test]
    #[should_panic(expected = "too many inodes")]
    fn pack_rejects_overflow() {
        let inode = sample();
        let five = vec![&inode; 5];
        // 512-byte block holds 4 inodes.
        let _ = inode_block::pack(&five, 512);
    }
}
