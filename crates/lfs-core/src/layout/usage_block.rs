//! Segment-usage-table block format (§4.3.4).
//!
//! "LFS keeps a data structure called the segment usage array that keeps
//! an estimate of the number of live blocks in each segment." The array is
//! memory-resident and flushed at checkpoints; because it is only a hint
//! for cleaning policy, exact crash recovery is not required.

use vfs::{FsError, FsResult};

use crate::types::USAGE_ENTRY_SIZE;
use crate::util::{ByteReader, ByteWriter};

/// Life-cycle state of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegState {
    /// Contains no live data; available for writing.
    Clean,
    /// Contains (possibly zero) live data written by the log.
    Dirty,
    /// Currently open for log writes.
    Active,
    /// Cleaned, but not reusable until the next checkpoint commits the
    /// relocated blocks (crash-safety rule; see `cleaner` module docs).
    CleanPending,
}

impl SegState {
    fn to_u32(self) -> u32 {
        match self {
            SegState::Clean => 0,
            SegState::Dirty => 1,
            SegState::Active => 2,
            SegState::CleanPending => 3,
        }
    }

    fn from_u32(v: u32) -> FsResult<Self> {
        match v {
            0 => Ok(SegState::Clean),
            1 => Ok(SegState::Dirty),
            2 => Ok(SegState::Active),
            3 => Ok(SegState::CleanPending),
            _ => Err(FsError::Corrupt("bad segment state")),
        }
    }
}

/// One usage-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsageEntry {
    /// Estimated live bytes in the segment.
    pub live_bytes: u32,
    /// Segment state.
    pub state: SegState,
    /// Virtual time of the most recent write to the segment (used by the
    /// cost-benefit cleaning policy's age term).
    pub last_write_ns: u64,
}

impl UsageEntry {
    /// A clean, never-written segment.
    pub const CLEAN: UsageEntry = UsageEntry {
        live_bytes: 0,
        state: SegState::Clean,
        last_write_ns: 0,
    };

    fn encode(&self, w: &mut ByteWriter) {
        w.u32(self.live_bytes);
        w.u32(self.state.to_u32());
        w.u64(self.last_write_ns);
    }

    fn decode(r: &mut ByteReader<'_>) -> FsResult<Self> {
        let live_bytes = r.u32().ok_or(FsError::Corrupt("usage entry truncated"))?;
        let state = SegState::from_u32(r.u32().ok_or(FsError::Corrupt("usage entry truncated"))?)?;
        let last_write_ns = r.u64().ok_or(FsError::Corrupt("usage entry truncated"))?;
        Ok(Self {
            live_bytes,
            state,
            last_write_ns,
        })
    }
}

/// Serialises `entries` into one usage block.
///
/// # Panics
///
/// Panics if the entries do not fit in `block_size`.
pub fn encode_block(entries: &[UsageEntry], block_size: usize) -> Vec<u8> {
    assert!(
        entries.len() * USAGE_ENTRY_SIZE <= block_size,
        "too many usage entries for one block"
    );
    let mut w = ByteWriter::with_capacity(block_size);
    for entry in entries {
        entry.encode(&mut w);
    }
    w.pad_to(block_size);
    w.into_vec()
}

/// Parses `count` entries from a usage block.
pub fn decode_block(block: &[u8], count: usize) -> FsResult<Vec<UsageEntry>> {
    let mut r = ByteReader::new(block);
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(UsageEntry::decode(&mut r)?);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_round_trip() {
        let entries = vec![
            UsageEntry {
                live_bytes: 4096,
                state: SegState::Dirty,
                last_write_ns: 777,
            },
            UsageEntry::CLEAN,
            UsageEntry {
                live_bytes: 0,
                state: SegState::CleanPending,
                last_write_ns: 1,
            },
            UsageEntry {
                live_bytes: 123,
                state: SegState::Active,
                last_write_ns: 2,
            },
        ];
        let block = encode_block(&entries, 512);
        assert_eq!(decode_block(&block, 4).unwrap(), entries);
    }

    #[test]
    fn entry_size_constant_is_accurate() {
        let block = encode_block(&[UsageEntry::CLEAN], 512);
        let mut r = ByteReader::new(&block);
        UsageEntry::decode(&mut r).unwrap();
        assert_eq!(r.position(), USAGE_ENTRY_SIZE);
    }

    #[test]
    fn decode_rejects_bad_state() {
        let mut block = encode_block(&[UsageEntry::CLEAN], 512);
        block[4] = 200;
        assert_eq!(
            decode_block(&block, 1),
            Err(FsError::Corrupt("bad segment state"))
        );
    }
}
