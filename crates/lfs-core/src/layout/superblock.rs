//! The superblock: immutable file-system geometry, written once at format.

use vfs::{FsError, FsResult};

use crate::config::LfsConfig;
use crate::types::{BlockAddr, SegNo, IMAP_ENTRY_SIZE, USAGE_ENTRY_SIZE};
use crate::util::{crc32, ByteReader, ByteWriter};

/// Magic number identifying an LFS superblock ("LFS1").
pub const SUPERBLOCK_MAGIC: u32 = 0x4C46_5331;

/// On-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// Immutable geometry of a formatted LFS volume.
///
/// The superblock lives in block 0 and is the only block besides the two
/// checkpoint regions that is ever rewritten in place (it never is, after
/// format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// File-system block size in bytes.
    pub block_size: u32,
    /// Blocks per segment.
    pub seg_blocks: u32,
    /// Number of segments in the log region.
    pub nsegments: u32,
    /// Maximum number of inodes.
    pub max_inodes: u32,
    /// Size of each checkpoint region, in blocks.
    pub cp_blocks: u32,
    /// First block of checkpoint region A.
    pub cp_a: BlockAddr,
    /// First block of checkpoint region B.
    pub cp_b: BlockAddr,
    /// First block of the segment (log) region.
    pub seg_start: BlockAddr,
}

impl Superblock {
    /// Computes the geometry for a device of `capacity_bytes` under `cfg`.
    ///
    /// Returns [`FsError::NoSpace`] if the device is too small to hold the
    /// metadata regions plus at least four segments.
    pub fn derive(cfg: &LfsConfig, capacity_bytes: u64) -> FsResult<Self> {
        cfg.validate();
        let bs = cfg.block_size as u64;
        let total_blocks = capacity_bytes / bs;
        let seg_blocks = cfg.seg_blocks() as u64;

        // Upper bound on segments, used to size the checkpoint region.
        let max_segments = total_blocks / seg_blocks;
        let imap_blocks = imap_blocks_for(cfg.max_inodes, cfg.block_size) as u64;
        let usage_blocks = usage_blocks_for(max_segments as u32, cfg.block_size) as u64;
        // Header (fits in 128 bytes) + one address per imap/usage block.
        let cp_bytes = 128 + 4 * (imap_blocks + usage_blocks);
        let cp_blocks = cp_bytes.div_ceil(bs);

        // With `segment_align_metadata` each fixed region starts on its
        // own segment boundary, so on a parity volume whose stripe rows
        // coincide with segments no row mixes two in-place-rewritten
        // regions (or a region and the log). The padded layout is
        // recorded in the superblock, so mounting needs no knowledge of
        // the knob. Off, the regions pack back-to-back as always.
        let align = |b: u64| {
            if cfg.segment_align_metadata {
                b.div_ceil(seg_blocks) * seg_blocks
            } else {
                b
            }
        };
        let cp_a = align(1);
        let cp_b = align(cp_a + cp_blocks);
        let seg_start = align(cp_b + cp_blocks);
        if total_blocks <= seg_start {
            return Err(FsError::NoSpace);
        }
        let nsegments = (total_blocks - seg_start) / seg_blocks;
        if nsegments < 4 {
            return Err(FsError::NoSpace);
        }

        Ok(Self {
            block_size: cfg.block_size as u32,
            seg_blocks: seg_blocks as u32,
            nsegments: nsegments as u32,
            max_inodes: cfg.max_inodes,
            cp_blocks: cp_blocks as u32,
            cp_a: BlockAddr(cp_a as u32),
            cp_b: BlockAddr(cp_b as u32),
            seg_start: BlockAddr(seg_start as u32),
        })
    }

    /// Number of inode-map blocks.
    pub fn imap_blocks(&self) -> u32 {
        imap_blocks_for(self.max_inodes, self.block_size as usize)
    }

    /// Number of segment-usage-table blocks.
    pub fn usage_blocks(&self) -> u32 {
        usage_blocks_for(self.nsegments, self.block_size as usize)
    }

    /// Inode-map entries per block.
    pub fn imap_entries_per_block(&self) -> u32 {
        (self.block_size as usize / IMAP_ENTRY_SIZE) as u32
    }

    /// Usage entries per block.
    pub fn usage_entries_per_block(&self) -> u32 {
        (self.block_size as usize / USAGE_ENTRY_SIZE) as u32
    }

    /// Inodes per inode block.
    pub fn inodes_per_block(&self) -> u32 {
        (self.block_size as usize / crate::types::INODE_SIZE) as u32
    }

    /// Block-pointers per indirect block.
    pub fn ptrs_per_block(&self) -> usize {
        self.block_size as usize / 4
    }

    /// Address of block `offset` within segment `seg`.
    ///
    /// # Panics
    ///
    /// Panics if `seg` or `offset` is out of range.
    pub fn seg_block(&self, seg: SegNo, offset: u32) -> BlockAddr {
        assert!(seg.0 < self.nsegments, "segment {seg} out of range");
        assert!(offset < self.seg_blocks, "offset {offset} out of segment");
        BlockAddr(self.seg_start.0 + seg.0 * self.seg_blocks + offset)
    }

    /// Maps a block address back to `(segment, offset)`.
    ///
    /// Returns `None` for addresses outside the log region.
    pub fn seg_of(&self, addr: BlockAddr) -> Option<(SegNo, u32)> {
        if addr.is_nil() || addr.0 < self.seg_start.0 {
            return None;
        }
        let rel = addr.0 - self.seg_start.0;
        let seg = rel / self.seg_blocks;
        if seg >= self.nsegments {
            return None;
        }
        Some((SegNo(seg), rel % self.seg_blocks))
    }

    /// Usable data capacity in bytes (the whole log region).
    pub fn log_capacity_bytes(&self) -> u64 {
        self.nsegments as u64 * self.seg_blocks as u64 * self.block_size as u64
    }

    /// Serialises into exactly one block.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.block_size as usize);
        w.u32(SUPERBLOCK_MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(self.block_size);
        w.u32(self.seg_blocks);
        w.u32(self.nsegments);
        w.u32(self.max_inodes);
        w.u32(self.cp_blocks);
        w.u32(self.cp_a.0);
        w.u32(self.cp_b.0);
        w.u32(self.seg_start.0);
        let mut bytes = w.into_vec();
        let crc = crc32(&bytes);
        let mut w = ByteWriter::new();
        w.bytes(&bytes);
        w.u32(crc);
        w.pad_to(self.block_size as usize);
        bytes = w.into_vec();
        bytes
    }

    /// Parses a superblock from the first block of a device.
    pub fn decode(block: &[u8]) -> FsResult<Self> {
        let mut r = ByteReader::new(block);
        let magic = r.u32().ok_or(FsError::Corrupt("superblock too short"))?;
        if magic != SUPERBLOCK_MAGIC {
            return Err(FsError::Corrupt("bad superblock magic"));
        }
        let version = r.u32().ok_or(FsError::Corrupt("superblock too short"))?;
        if version != FORMAT_VERSION {
            return Err(FsError::Corrupt("unsupported format version"));
        }
        let mut u = || r.u32().ok_or(FsError::Corrupt("superblock too short"));
        let block_size = u()?;
        let seg_blocks = u()?;
        let nsegments = u()?;
        let max_inodes = u()?;
        let cp_blocks = u()?;
        let cp_a = BlockAddr(u()?);
        let cp_b = BlockAddr(u()?);
        let seg_start = BlockAddr(u()?);
        let stored_crc = u()?;
        let crc = crc32(&block[..40]);
        if crc != stored_crc {
            return Err(FsError::Corrupt("superblock checksum mismatch"));
        }
        Ok(Self {
            block_size,
            seg_blocks,
            nsegments,
            max_inodes,
            cp_blocks,
            cp_a,
            cp_b,
            seg_start,
        })
    }
}

/// Inode-map blocks needed for `max_inodes` at `block_size`.
pub fn imap_blocks_for(max_inodes: u32, block_size: usize) -> u32 {
    let per_block = (block_size / IMAP_ENTRY_SIZE) as u32;
    max_inodes.div_ceil(per_block)
}

/// Usage-table blocks needed for `nsegments` at `block_size`.
pub fn usage_blocks_for(nsegments: u32, block_size: usize) -> u32 {
    let per_block = (block_size / USAGE_ENTRY_SIZE) as u32;
    nsegments.div_ceil(per_block).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Superblock {
        Superblock::derive(&LfsConfig::small_test(), 16 * 1024 * 1024).unwrap()
    }

    #[test]
    fn derive_produces_consistent_geometry() {
        let sb = sample();
        assert_eq!(sb.block_size, 512);
        assert_eq!(sb.seg_blocks, 32);
        assert!(sb.nsegments >= 4);
        assert!(sb.seg_start.0 > 2 * sb.cp_blocks);
        // Total footprint fits the device.
        let total_blocks = 16 * 1024 * 1024 / 512;
        assert!((sb.seg_start.0 + sb.nsegments * sb.seg_blocks) as u64 <= total_blocks);
    }

    #[test]
    fn derive_rejects_tiny_devices() {
        assert_eq!(
            Superblock::derive(&LfsConfig::small_test(), 4 * 1024),
            Err(FsError::NoSpace)
        );
    }

    #[test]
    fn paper_geometry_on_300mb() {
        let sb = Superblock::derive(&LfsConfig::paper(), 310 * 1024 * 1024).unwrap();
        assert_eq!(sb.block_size, 4096);
        assert_eq!(sb.seg_blocks, 256);
        // Roughly 300 one-megabyte segments.
        assert!(sb.nsegments >= 290 && sb.nsegments <= 310);
    }

    #[test]
    fn encode_decode_round_trips() {
        let sb = sample();
        let bytes = sb.encode();
        assert_eq!(bytes.len(), sb.block_size as usize);
        assert_eq!(Superblock::decode(&bytes).unwrap(), sb);
    }

    #[test]
    fn decode_rejects_corruption() {
        let sb = sample();
        let mut bytes = sb.encode();
        bytes[8] ^= 0xFF;
        assert!(matches!(
            Superblock::decode(&bytes),
            Err(FsError::Corrupt(_))
        ));
        let mut bad_magic = sb.encode();
        bad_magic[0] = 0;
        assert_eq!(
            Superblock::decode(&bad_magic),
            Err(FsError::Corrupt("bad superblock magic"))
        );
    }

    #[test]
    fn seg_block_addressing_round_trips() {
        let sb = sample();
        let addr = sb.seg_block(SegNo(2), 5);
        assert_eq!(sb.seg_of(addr), Some((SegNo(2), 5)));
        // Superblock and checkpoint regions are outside the log.
        assert_eq!(sb.seg_of(BlockAddr(0)), None);
        assert_eq!(sb.seg_of(BlockAddr::NIL), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn seg_block_rejects_bad_segment() {
        let sb = sample();
        let _ = sb.seg_block(SegNo(sb.nsegments), 0);
    }

    #[test]
    fn aligned_metadata_gives_each_fixed_region_its_own_segment_row() {
        let cfg = LfsConfig::small_test().with_segment_aligned_metadata();
        let sb = Superblock::derive(&cfg, 16 * 1024 * 1024).unwrap();
        let seg = sb.seg_blocks;
        // Superblock row [0, seg), then each region starts a fresh row.
        assert_eq!(sb.cp_a.0 % seg, 0);
        assert!(sb.cp_a.0 >= seg);
        assert_eq!(sb.cp_b.0 % seg, 0);
        assert!(sb.cp_b.0 >= sb.cp_a.0 + sb.cp_blocks);
        assert_eq!(sb.seg_start.0 % seg, 0);
        assert!(sb.seg_start.0 >= sb.cp_b.0 + sb.cp_blocks);
        // The padded geometry round-trips through the superblock, so
        // mount needs no knowledge of the alignment knob.
        assert_eq!(Superblock::decode(&sb.encode()).unwrap(), sb);
        // Default layouts are bit-identical to the packed original.
        let packed = Superblock::derive(&LfsConfig::small_test(), 16 * 1024 * 1024).unwrap();
        assert_eq!(packed.cp_a.0, 1);
        assert_eq!(packed.cp_b.0, 1 + packed.cp_blocks);
        assert_eq!(packed.seg_start.0, 1 + 2 * packed.cp_blocks);
    }

    #[test]
    fn helper_counts_round_up() {
        assert_eq!(imap_blocks_for(1, 512), 1);
        // 512 / 24 = 21 entries per block.
        assert_eq!(imap_blocks_for(22, 512), 2);
        assert_eq!(usage_blocks_for(1, 512), 1);
        // 512 / 16 = 32 entries per block.
        assert_eq!(usage_blocks_for(33, 512), 2);
    }
}
