//! On-disk formats.
//!
//! Everything here is fixed little-endian layout, hand-serialised through
//! [`crate::util::ByteWriter`] / [`crate::util::ByteReader`]. The disk is
//! laid out as:
//!
//! ```text
//! block 0                superblock
//! blocks cp_a .. +cp     checkpoint region A  (fixed location)
//! blocks cp_b .. +cp     checkpoint region B  (fixed location)
//! blocks seg_start ..    segments, each seg_blocks long
//! ```
//!
//! Inside a segment the log is a sequence of *chunks*, each written by one
//! segment write (possibly partial, §4.3.5):
//!
//! ```text
//! [summary block(s) | data/inode/imap/usage blocks ...] [next chunk ...]
//! ```

pub mod checkpoint;
pub mod imap_block;
pub mod inode;
pub mod summary;
pub mod superblock;
pub mod usage_block;
