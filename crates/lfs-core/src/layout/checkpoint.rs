//! Checkpoint regions (§4.4.1).
//!
//! "During a checkpoint, all of the memory-resident data structures that
//! describe the current state of the file system are written to a known
//! disk location called the checkpoint region." Two fixed regions
//! alternate; each carries a serial number and checksum so mount can pick
//! the most recent *valid* one even if a crash interrupted a checkpoint
//! write.

use vfs::{FsError, FsResult, Ino};

use crate::types::{BlockAddr, SegNo};
use crate::util::{crc32, ByteReader, ByteWriter};

/// Magic number identifying a checkpoint region ("CKPT").
pub const CHECKPOINT_MAGIC: u32 = 0x434B_5054;

/// The dynamic state captured by one checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRegion {
    /// Virtual time at which the checkpoint was taken.
    pub timestamp_ns: u64,
    /// Monotonic checkpoint counter (larger = newer).
    pub serial: u64,
    /// Log sequence number of the currently open segment.
    pub seq: u64,
    /// The currently open segment.
    pub cur_seg: SegNo,
    /// Next free block offset within `cur_seg`.
    pub next_block: u32,
    /// Next partial-chunk index within `cur_seg`.
    pub partial: u32,
    /// Allocation hint: lowest possibly-free inode number.
    pub next_free_ino: Ino,
    /// Disk addresses of the inode-map blocks, in map order.
    pub imap_addrs: Vec<BlockAddr>,
    /// Disk addresses of the segment-usage-table blocks, in order.
    pub usage_addrs: Vec<BlockAddr>,
}

impl CheckpointRegion {
    /// Serialises the region into exactly `region_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the encoded form does not fit.
    pub fn encode(&self, region_bytes: usize) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(region_bytes);
        w.u32(CHECKPOINT_MAGIC);
        w.u64(self.timestamp_ns);
        w.u64(self.serial);
        w.u64(self.seq);
        w.u32(self.cur_seg.0);
        w.u32(self.next_block);
        w.u32(self.partial);
        w.u32(self.next_free_ino.0);
        w.u32(self.imap_addrs.len() as u32);
        w.u32(self.usage_addrs.len() as u32);
        for addr in &self.imap_addrs {
            w.u32(addr.0);
        }
        for addr in &self.usage_addrs {
            w.u32(addr.0);
        }
        let crc = crc32(w.as_slice());
        w.u32(crc);
        w.pad_to(region_bytes);
        w.into_vec()
    }

    /// Parses and validates a checkpoint region.
    pub fn decode(bytes: &[u8]) -> FsResult<Self> {
        let mut r = ByteReader::new(bytes);
        let magic = r.u32().ok_or(FsError::Corrupt("checkpoint truncated"))?;
        if magic != CHECKPOINT_MAGIC {
            return Err(FsError::Corrupt("bad checkpoint magic"));
        }
        let timestamp_ns = r.u64().ok_or(FsError::Corrupt("checkpoint truncated"))?;
        let serial = r.u64().ok_or(FsError::Corrupt("checkpoint truncated"))?;
        let seq = r.u64().ok_or(FsError::Corrupt("checkpoint truncated"))?;
        let cur_seg = SegNo(r.u32().ok_or(FsError::Corrupt("checkpoint truncated"))?);
        let next_block = r.u32().ok_or(FsError::Corrupt("checkpoint truncated"))?;
        let partial = r.u32().ok_or(FsError::Corrupt("checkpoint truncated"))?;
        let next_free_ino = Ino(r.u32().ok_or(FsError::Corrupt("checkpoint truncated"))?);
        let nimap = r.u32().ok_or(FsError::Corrupt("checkpoint truncated"))? as usize;
        let nusage = r.u32().ok_or(FsError::Corrupt("checkpoint truncated"))? as usize;
        if r.remaining() < (nimap + nusage + 1) * 4 {
            return Err(FsError::Corrupt("checkpoint truncated"));
        }
        let mut imap_addrs = Vec::with_capacity(nimap);
        for _ in 0..nimap {
            imap_addrs.push(BlockAddr(r.u32().unwrap()));
        }
        let mut usage_addrs = Vec::with_capacity(nusage);
        for _ in 0..nusage {
            usage_addrs.push(BlockAddr(r.u32().unwrap()));
        }
        let body_len = r.position();
        let stored_crc = r.u32().unwrap();
        if crc32(&bytes[..body_len]) != stored_crc {
            return Err(FsError::Corrupt("checkpoint checksum mismatch"));
        }
        Ok(Self {
            timestamp_ns,
            serial,
            seq,
            cur_seg,
            next_block,
            partial,
            next_free_ino,
            imap_addrs,
            usage_addrs,
        })
    }

    /// Picks the newer of two (possibly invalid) decoded regions.
    pub fn newest(a: FsResult<Self>, b: FsResult<Self>) -> FsResult<Self> {
        match (a, b) {
            (Ok(a), Ok(b)) => Ok(if a.serial >= b.serial { a } else { b }),
            (Ok(a), Err(_)) => Ok(a),
            (Err(_), Ok(b)) => Ok(b),
            (Err(e), Err(_)) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(serial: u64) -> CheckpointRegion {
        CheckpointRegion {
            timestamp_ns: 999,
            serial,
            seq: 12,
            cur_seg: SegNo(3),
            next_block: 17,
            partial: 2,
            next_free_ino: Ino(44),
            imap_addrs: vec![BlockAddr(100), BlockAddr(101), BlockAddr::NIL],
            usage_addrs: vec![BlockAddr(200)],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let cp = sample(5);
        let bytes = cp.encode(1024);
        assert_eq!(bytes.len(), 1024);
        assert_eq!(CheckpointRegion::decode(&bytes).unwrap(), cp);
    }

    #[test]
    fn decode_rejects_corruption() {
        let bytes = sample(5).encode(1024);
        let mut bad = bytes.clone();
        bad[30] ^= 1;
        assert!(CheckpointRegion::decode(&bad).is_err());
        // An all-zero (never written) region is invalid, not a panic.
        assert!(CheckpointRegion::decode(&vec![0u8; 1024]).is_err());
    }

    #[test]
    fn newest_prefers_higher_serial_and_tolerates_corruption() {
        let older = sample(5);
        let newer = sample(9);
        assert_eq!(
            CheckpointRegion::newest(Ok(older.clone()), Ok(newer.clone())).unwrap(),
            newer
        );
        assert_eq!(
            CheckpointRegion::newest(Err(FsError::Corrupt("x")), Ok(older.clone())).unwrap(),
            older
        );
        assert_eq!(
            CheckpointRegion::newest(Ok(newer.clone()), Err(FsError::Corrupt("x"))).unwrap(),
            newer
        );
        assert!(
            CheckpointRegion::newest(Err(FsError::Corrupt("a")), Err(FsError::Corrupt("b")))
                .is_err()
        );
    }

    #[test]
    #[should_panic(expected = "exceeds target")]
    fn encode_rejects_overflow() {
        // A region too small for the address lists must panic loudly
        // (geometry bug), not silently truncate.
        let _ = sample(1).encode(64);
    }
}
