//! Segment summary blocks (§4.3.1).
//!
//! Each segment write deposits a *chunk*: one or more summary blocks
//! followed by the blocks they describe. "For each block in the segment,
//! the summary block indicates the file number of the block's file and the
//! position of the block within the file." The summary also carries the
//! sequencing and checksums that roll-forward recovery (§4.4.1) needs to
//! walk the log past the last checkpoint.

use vfs::{FsError, FsResult, Ino};

use crate::types::{BlockAddr, SegNo, SUMMARY_ENTRY_SIZE};
use crate::util::{crc32, ByteReader, ByteWriter};

/// Magic number identifying a chunk header ("SEGS").
pub const SUMMARY_MAGIC: u32 = 0x5345_4753;

/// Serialised size of a chunk header, in bytes.
pub const HEADER_SIZE: usize = 48;

/// What a logged block contains, as recorded in its summary entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Data block `bno` of file `ino`.
    Data {
        /// Owning file.
        ino: Ino,
        /// Block index within the file.
        bno: u32,
    },
    /// The single-indirect pointer block of file `ino`.
    IndSingle {
        /// Owning file.
        ino: Ino,
    },
    /// The double-indirect (top-level) pointer block of file `ino`.
    IndDoubleTop {
        /// Owning file.
        ino: Ino,
    },
    /// Second-level indirect block `outer` under file `ino`'s double
    /// indirect pointer.
    IndDoubleChild {
        /// Owning file.
        ino: Ino,
        /// Slot in the double-indirect top block.
        outer: u32,
    },
    /// A block of packed inodes.
    InodeBlock,
    /// Inode-map block `index`.
    ImapBlock {
        /// Index within the inode map.
        index: u32,
    },
    /// Segment-usage-table block `index`.
    UsageBlock {
        /// Index within the usage table.
        index: u32,
    },
}

/// One summary entry: the identity of one logged block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryEntry {
    /// What the block contains.
    pub kind: BlockKind,
    /// The owning file's version number at write time (zero for
    /// metadata blocks). §4.3.3 step 1 uses this for fast liveness checks.
    pub version: u32,
    /// CRC-32C over the described block's full content, computed at log
    /// write time. End-to-end integrity: a reader recomputes this over
    /// the bytes the device returned and any mismatch means the device
    /// silently corrupted the block (bit-rot), independent of the
    /// whole-payload `data_crc` used for torn-write detection.
    pub crc: u32,
}

impl SummaryEntry {
    fn encode(&self, w: &mut ByteWriter) {
        let (tag, ino, param) = match self.kind {
            BlockKind::Data { ino, bno } => (1u8, ino.0, bno),
            BlockKind::IndSingle { ino } => (2, ino.0, 0),
            BlockKind::IndDoubleTop { ino } => (3, ino.0, 0),
            BlockKind::IndDoubleChild { ino, outer } => (4, ino.0, outer),
            BlockKind::InodeBlock => (5, 0, 0),
            BlockKind::ImapBlock { index } => (6, 0, index),
            BlockKind::UsageBlock { index } => (7, 0, index),
        };
        w.u8(tag);
        w.pad(3);
        w.u32(ino);
        w.u32(param);
        w.u32(self.version);
        w.u32(self.crc);
    }

    fn decode(r: &mut ByteReader<'_>) -> FsResult<Self> {
        let tag = r.u8().ok_or(FsError::Corrupt("summary entry truncated"))?;
        r.skip(3)
            .ok_or(FsError::Corrupt("summary entry truncated"))?;
        let ino = Ino(r.u32().ok_or(FsError::Corrupt("summary entry truncated"))?);
        let param = r.u32().ok_or(FsError::Corrupt("summary entry truncated"))?;
        let version = r.u32().ok_or(FsError::Corrupt("summary entry truncated"))?;
        let crc = r.u32().ok_or(FsError::Corrupt("summary entry truncated"))?;
        let kind = match tag {
            1 => BlockKind::Data { ino, bno: param },
            2 => BlockKind::IndSingle { ino },
            3 => BlockKind::IndDoubleTop { ino },
            4 => BlockKind::IndDoubleChild { ino, outer: param },
            5 => BlockKind::InodeBlock,
            6 => BlockKind::ImapBlock { index: param },
            7 => BlockKind::UsageBlock { index: param },
            _ => return Err(FsError::Corrupt("bad summary entry tag")),
        };
        Ok(Self { kind, version, crc })
    }
}

/// The unvalidated leading fields of a chunk header (successor scans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeaderPrefix {
    /// Disk address the header claims to live at.
    pub addr: BlockAddr,
    /// Sequence number claimed by the header.
    pub seq: u64,
    /// Partial-chunk index claimed by the header.
    pub partial: u32,
    /// Entry count claimed by the header.
    pub nentries: u32,
}

/// A decoded chunk summary: header fields plus per-block entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkSummary {
    /// Disk address of this chunk's first summary block — the chunk's
    /// *self-identity*, covered by the header CRC. Readers must compare
    /// it against the address they actually read from and reject any
    /// mismatch: a byte-exact copy of a valid chunk sitting at the
    /// wrong place (e.g. forged by XOR-reconstructing a parity row that
    /// a crash left torn) carries valid checksums, and only the
    /// recorded address betrays it.
    pub addr: BlockAddr,
    /// Global sequence number of the segment incarnation this chunk
    /// belongs to (every time a segment is opened for writing it takes the
    /// next value).
    pub seq: u64,
    /// Index of this chunk within its segment (0 for the first write).
    pub partial: u32,
    /// Virtual time of the write.
    pub timestamp_ns: u64,
    /// If this chunk seals its segment, the segment the log continues in.
    pub next_seg: SegNo,
    /// CRC-32 over the described data blocks, for torn-write detection.
    pub data_crc: u32,
    /// Number of summary blocks reserved ahead of the payload. The writer
    /// sizes the summary area for the worst case before knowing the final
    /// entry count, so readers must use this recorded value (not a
    /// recomputation from `entries.len()`) to locate the payload.
    pub reserved_blocks: u32,
    /// The entries, one per described block, in log order.
    pub entries: Vec<SummaryEntry>,
}

impl ChunkSummary {
    /// Number of summary blocks this chunk occupies for `block_size`.
    pub fn summary_blocks(nentries: usize, block_size: usize) -> usize {
        (HEADER_SIZE + nentries * SUMMARY_ENTRY_SIZE).div_ceil(block_size)
    }

    /// Largest entry count whose summary fits in `max_blocks` summary
    /// blocks of `block_size`.
    pub fn max_entries(max_blocks: usize, block_size: usize) -> usize {
        (max_blocks * block_size).saturating_sub(HEADER_SIZE) / SUMMARY_ENTRY_SIZE
    }

    /// Serialises the summary into whole blocks of `block_size`.
    pub fn encode(&self, block_size: usize) -> Vec<u8> {
        let mut body = ByteWriter::new();
        for entry in &self.entries {
            entry.encode(&mut body);
        }
        let body = body.into_vec();

        let mut w = ByteWriter::new();
        w.u32(SUMMARY_MAGIC);
        w.u32(self.addr.0);
        w.u64(self.seq);
        w.u32(self.partial);
        w.u32(self.entries.len() as u32);
        w.u64(self.timestamp_ns);
        w.u32(self.next_seg.0);
        w.u32(self.data_crc);
        w.u32(self.reserved_blocks);
        // Header CRC covers the fields above plus the entry bytes.
        let mut crc = 0xFFFF_FFFFu32;
        crc = crate::util::crc32_update(crc, w.as_slice());
        crc = crate::util::crc32_update(crc, &body);
        w.u32(crc ^ 0xFFFF_FFFF);
        debug_assert_eq!(w.len(), HEADER_SIZE);
        w.bytes(&body);

        let total = (self.reserved_blocks as usize)
            .max(Self::summary_blocks(self.entries.len(), block_size))
            * block_size;
        w.pad_to(total);
        w.into_vec()
    }

    /// Decodes only the header fields from the first summary block,
    /// without requiring (or checksumming) the entry list.
    ///
    /// Used by recovery's successor scan, which reads just one block per
    /// segment. Callers must treat the result as a hint and re-validate
    /// with [`ChunkSummary::decode`] before applying anything.
    pub fn decode_header_prefix(bytes: &[u8]) -> FsResult<ChunkHeaderPrefix> {
        let mut r = ByteReader::new(bytes);
        let magic = r.u32().ok_or(FsError::Corrupt("summary truncated"))?;
        if magic != SUMMARY_MAGIC {
            return Err(FsError::Corrupt("bad summary magic"));
        }
        let addr = BlockAddr(r.u32().ok_or(FsError::Corrupt("summary truncated"))?);
        let seq = r.u64().ok_or(FsError::Corrupt("summary truncated"))?;
        let partial = r.u32().ok_or(FsError::Corrupt("summary truncated"))?;
        let nentries = r.u32().ok_or(FsError::Corrupt("summary truncated"))?;
        Ok(ChunkHeaderPrefix {
            addr,
            seq,
            partial,
            nentries,
        })
    }

    /// Parses a chunk summary that was read from disk address `expect`,
    /// rejecting a header whose recorded self-address disagrees — the
    /// signature of a displaced byte-exact copy, which every other
    /// checksum in the chunk would happily accept.
    pub fn decode_at(bytes: &[u8], expect: BlockAddr) -> FsResult<Self> {
        let chunk = Self::decode(bytes)?;
        if chunk.addr != expect {
            return Err(FsError::Corrupt("chunk summary at wrong address"));
        }
        Ok(chunk)
    }

    /// Parses a chunk summary starting at `bytes` (which must span at
    /// least the full summary; extra trailing bytes are ignored).
    pub fn decode(bytes: &[u8]) -> FsResult<Self> {
        let mut r = ByteReader::new(bytes);
        let magic = r.u32().ok_or(FsError::Corrupt("summary truncated"))?;
        if magic != SUMMARY_MAGIC {
            return Err(FsError::Corrupt("bad summary magic"));
        }
        let addr = BlockAddr(r.u32().ok_or(FsError::Corrupt("summary truncated"))?);
        let seq = r.u64().ok_or(FsError::Corrupt("summary truncated"))?;
        let partial = r.u32().ok_or(FsError::Corrupt("summary truncated"))?;
        let nentries = r.u32().ok_or(FsError::Corrupt("summary truncated"))? as usize;
        let timestamp_ns = r.u64().ok_or(FsError::Corrupt("summary truncated"))?;
        let next_seg = SegNo(r.u32().ok_or(FsError::Corrupt("summary truncated"))?);
        let data_crc = r.u32().ok_or(FsError::Corrupt("summary truncated"))?;
        let reserved_blocks = r.u32().ok_or(FsError::Corrupt("summary truncated"))?;
        let stored_crc = r.u32().ok_or(FsError::Corrupt("summary truncated"))?;

        let body_len = nentries
            .checked_mul(SUMMARY_ENTRY_SIZE)
            .ok_or(FsError::Corrupt("summary entry count overflow"))?;
        if r.remaining() < body_len {
            return Err(FsError::Corrupt("summary truncated"));
        }
        let mut crc = 0xFFFF_FFFFu32;
        crc = crate::util::crc32_update(crc, &bytes[..HEADER_SIZE - 4]);
        crc = crate::util::crc32_update(crc, &bytes[HEADER_SIZE..HEADER_SIZE + body_len]);
        if crc ^ 0xFFFF_FFFF != stored_crc {
            return Err(FsError::Corrupt("summary checksum mismatch"));
        }

        let mut entries = Vec::with_capacity(nentries);
        for _ in 0..nentries {
            entries.push(SummaryEntry::decode(&mut r)?);
        }
        Ok(Self {
            addr,
            seq,
            partial,
            timestamp_ns,
            next_seg,
            data_crc,
            reserved_blocks,
            entries,
        })
    }
}

/// Computes the data CRC over the payload blocks of a chunk.
pub fn data_checksum(payload: &[u8]) -> u32 {
    crc32(payload)
}

/// Computes the per-block end-to-end checksum recorded in
/// [`SummaryEntry::crc`] (CRC-32C over the block's full content).
pub fn block_checksum(block: &[u8]) -> u32 {
    crate::util::crc32c(block)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChunkSummary {
        ChunkSummary {
            addr: BlockAddr(320),
            seq: 42,
            partial: 3,
            timestamp_ns: 1_234_567,
            next_seg: SegNo(7),
            data_crc: 0xABCD_EF01,
            reserved_blocks: 1,
            entries: vec![
                SummaryEntry {
                    kind: BlockKind::Data {
                        ino: Ino(5),
                        bno: 9,
                    },
                    version: 2,
                    crc: 0x1111_2222,
                },
                SummaryEntry {
                    kind: BlockKind::InodeBlock,
                    version: 0,
                    crc: 0x3333_4444,
                },
                SummaryEntry {
                    kind: BlockKind::ImapBlock { index: 3 },
                    version: 0,
                    crc: 0,
                },
                SummaryEntry {
                    kind: BlockKind::IndDoubleChild {
                        ino: Ino(5),
                        outer: 17,
                    },
                    version: 2,
                    crc: 0xFFFF_FFFF,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let summary = sample();
        let bytes = summary.encode(512);
        assert_eq!(bytes.len() % 512, 0);
        assert_eq!(ChunkSummary::decode(&bytes).unwrap(), summary);
    }

    #[test]
    fn decode_rejects_bit_flips() {
        let bytes = sample().encode(512);
        for &offset in &[0usize, 5, 20, HEADER_SIZE + 3] {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x80;
            assert!(
                ChunkSummary::decode(&bad).is_err(),
                "bit flip at {offset} must be detected"
            );
        }
    }

    #[test]
    fn decode_at_rejects_displaced_copies() {
        let summary = sample();
        let bytes = summary.encode(512);
        // At its recorded home the chunk is accepted...
        assert_eq!(ChunkSummary::decode_at(&bytes, summary.addr).unwrap(), summary);
        // ...but the same valid bytes read from anywhere else are not:
        // every CRC passes, only the self-address betrays the copy.
        assert_eq!(
            ChunkSummary::decode_at(&bytes, BlockAddr(summary.addr.0 + 16)),
            Err(FsError::Corrupt("chunk summary at wrong address"))
        );
    }

    #[test]
    fn summary_block_count_matches_paper_geometry() {
        // 1 MB segment of 4 KB blocks: 254 data blocks need 2 summary
        // blocks (254 entries do not fit in one).
        assert_eq!(ChunkSummary::summary_blocks(254, 4096), 2);
        assert_eq!(ChunkSummary::summary_blocks(1, 4096), 1);
        let max_one = ChunkSummary::max_entries(1, 4096);
        assert_eq!(max_one, (4096 - HEADER_SIZE) / SUMMARY_ENTRY_SIZE);
        assert_eq!(ChunkSummary::summary_blocks(max_one, 4096), 1);
        assert_eq!(ChunkSummary::summary_blocks(max_one + 1, 4096), 2);
    }

    #[test]
    fn empty_chunk_is_representable() {
        let summary = ChunkSummary {
            addr: BlockAddr(0),
            seq: 1,
            partial: 0,
            timestamp_ns: 0,
            next_seg: SegNo::NIL,
            data_crc: 0,
            reserved_blocks: 1,
            entries: Vec::new(),
        };
        let bytes = summary.encode(512);
        assert_eq!(ChunkSummary::decode(&bytes).unwrap(), summary);
    }

    #[test]
    fn data_checksum_is_stable() {
        assert_eq!(data_checksum(b"abc"), data_checksum(b"abc"));
        assert_ne!(data_checksum(b"abc"), data_checksum(b"abd"));
    }
}
