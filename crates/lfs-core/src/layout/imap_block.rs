//! Inode-map block format (§4.2.1).
//!
//! The inode map takes an inode number to the current log address of that
//! inode, and also stores the allocation status, the version number
//! (bumped on delete/truncate-to-zero, used by the cleaner), and the file's
//! access time (footnote 2: kept here so reads never rewrite inodes).

use vfs::{FsError, FsResult};

use crate::types::{BlockAddr, IMAP_ENTRY_SIZE};
use crate::util::{ByteReader, ByteWriter};

/// One inode-map entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImapEntry {
    /// Log block holding this inode (NIL if never written).
    pub addr: BlockAddr,
    /// Inode slot within that block.
    pub slot: u16,
    /// Whether the inode number is currently allocated.
    pub allocated: bool,
    /// Version number; incremented when the file is deleted or truncated
    /// to length zero.
    pub version: u32,
    /// Last access time (virtual ns).
    pub atime_ns: u64,
}

impl ImapEntry {
    /// A never-used entry.
    pub const FREE: ImapEntry = ImapEntry {
        addr: BlockAddr::NIL,
        slot: 0,
        allocated: false,
        version: 0,
        atime_ns: 0,
    };

    fn encode(&self, w: &mut ByteWriter) {
        w.u32(self.addr.0);
        w.u16(self.slot);
        w.u16(self.allocated as u16);
        w.u32(self.version);
        w.u64(self.atime_ns);
        w.pad(4);
    }

    fn decode(r: &mut ByteReader<'_>) -> FsResult<Self> {
        let addr = BlockAddr(r.u32().ok_or(FsError::Corrupt("imap entry truncated"))?);
        let slot = r.u16().ok_or(FsError::Corrupt("imap entry truncated"))?;
        let flags = r.u16().ok_or(FsError::Corrupt("imap entry truncated"))?;
        let version = r.u32().ok_or(FsError::Corrupt("imap entry truncated"))?;
        let atime_ns = r.u64().ok_or(FsError::Corrupt("imap entry truncated"))?;
        r.skip(4).ok_or(FsError::Corrupt("imap entry truncated"))?;
        Ok(Self {
            addr,
            slot,
            allocated: flags & 1 != 0,
            version,
            atime_ns,
        })
    }
}

/// Serialises `entries` into one imap block of `block_size` bytes.
///
/// # Panics
///
/// Panics if the entries do not fit.
pub fn encode_block(entries: &[ImapEntry], block_size: usize) -> Vec<u8> {
    assert!(
        entries.len() * IMAP_ENTRY_SIZE <= block_size,
        "too many imap entries for one block"
    );
    let mut w = ByteWriter::with_capacity(block_size);
    for entry in entries {
        entry.encode(&mut w);
    }
    w.pad_to(block_size);
    w.into_vec()
}

/// Parses `count` entries from an imap block.
pub fn decode_block(block: &[u8], count: usize) -> FsResult<Vec<ImapEntry>> {
    let mut r = ByteReader::new(block);
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(ImapEntry::decode(&mut r)?);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_round_trip() {
        let entries = vec![
            ImapEntry {
                addr: BlockAddr(77),
                slot: 3,
                allocated: true,
                version: 9,
                atime_ns: 123_456,
            },
            ImapEntry::FREE,
            ImapEntry {
                addr: BlockAddr::NIL,
                slot: 0,
                allocated: true, // Allocated but never flushed.
                version: 1,
                atime_ns: 0,
            },
        ];
        let block = encode_block(&entries, 512);
        assert_eq!(block.len(), 512);
        assert_eq!(decode_block(&block, 3).unwrap(), entries);
    }

    #[test]
    fn entry_size_constant_is_accurate() {
        let block = encode_block(&[ImapEntry::FREE; 2], 512);
        let mut r = ByteReader::new(&block);
        ImapEntry::decode(&mut r).unwrap();
        assert_eq!(r.position(), IMAP_ENTRY_SIZE);
    }

    #[test]
    #[should_panic(expected = "too many imap entries")]
    fn encode_rejects_overflow() {
        let _ = encode_block(&[ImapEntry::FREE; 100], 512);
    }

    #[test]
    fn decode_rejects_truncated() {
        assert!(decode_block(&[0u8; 10], 1).is_err());
    }
}
