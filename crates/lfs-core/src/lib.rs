#![warn(missing_docs)]

//! The LFS storage manager.
//!
//! This crate implements the log-structured file system described in
//! *The LFS Storage Manager* (Rosenblum & Ousterhout, USENIX 1990): the
//! disk is a **segmented append-only log**. All modifications — file data,
//! directories, inodes, and the inode map — accumulate in the file cache
//! and reach disk in large sequential segment writes. Nothing is ever
//! updated in place except the two fixed checkpoint regions.
//!
//! The major pieces, mapped to the paper:
//!
//! | Paper section | Module |
//! |---|---|
//! | §4.1 file writing (segment packing) | [`log`] |
//! | §4.2.1 inode map | [`imap`], [`layout::imap_block`] |
//! | §4.2 inodes & indirect blocks | [`layout::inode`], [`fs`] |
//! | §4.3.1 segment summary blocks | [`layout::summary`] |
//! | §4.3.2–4.3.4 segment cleaning | [`cleaner`], [`usage`] |
//! | §4.3.5 segment write timing | [`block_cache::WritebackPolicy`] + [`fs`] |
//! | §4.4 checkpoints & crash recovery | [`checkpoint`], [`recovery`] |
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use lfs_core::{Lfs, LfsConfig};
//! use sim_disk::{Clock, DiskGeometry, SimDisk};
//! use vfs::FileSystem;
//!
//! let clock = Clock::new();
//! let disk = SimDisk::new(DiskGeometry::tiny_test(131_072), Arc::clone(&clock));
//! let mut fs = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
//! fs.mkdir("/dir1").unwrap();
//! fs.write_file("/dir1/file1", b"hello, log-structured world").unwrap();
//! fs.sync().unwrap();
//! assert_eq!(fs.read_file("/dir1/file1").unwrap(), b"hello, log-structured world");
//! ```

pub mod checkpoint;
pub mod cleaner;
pub mod cleaner_run;
#[cfg(test)]
mod cleaner_tests;
pub mod config;
pub mod fs;
pub mod fsck;
mod gather;
pub mod imap;
pub mod layout;
pub mod log;
pub mod recovery;
pub mod scrub;
pub mod stats;
pub mod types;
pub mod usage;
pub mod util;

pub use cleaner::{AsyncCleanerPolicy, CleanerConfig, CleanerPolicy, CleanerRunMode};
pub use cleaner_run::{CleanerRun, CleanerStepOutcome};
pub use config::LfsConfig;
pub use fs::Lfs;
pub use fsck::FsckReport;
pub use scrub::ScrubReport;
pub use stats::LfsStats;
pub use types::{BlockAddr, SegNo};

// Re-export the cache crate under the name used in module docs.
pub use block_cache;
