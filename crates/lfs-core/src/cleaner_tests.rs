//! White-box tests of cleaner victim selection and budgeting (§4.3.4).

use std::sync::Arc;

use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::FileSystem;

use crate::cleaner::CleanerPolicy;
use crate::config::LfsConfig;
use crate::fs::Lfs;
use crate::layout::usage_block::SegState;
use crate::types::SegNo;

fn fs_with_policy(policy: CleanerPolicy) -> Lfs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(32_768), Arc::clone(&clock));
    let mut cfg = LfsConfig::small_test();
    cfg.cleaner.policy = policy;
    cfg.cleaner.activate_below_clean = 0;
    Lfs::format(disk, cfg, clock).unwrap()
}

/// Fabricates a usage-table state for victim-selection tests.
fn stage(fs: &mut Lfs<SimDisk>, entries: &[(u32, u64, u64)]) {
    for &(seg, live, when) in entries {
        fs.usage_mut_for_test()
            .set_state(SegNo(seg), SegState::Dirty);
        fs.usage_mut_for_test().set_live(SegNo(seg), live, when);
    }
}

/// Victim list restricted to the staged segments (format itself leaves a
/// dirty segment or two that would otherwise pollute the ranking).
fn staged_victims(fs: &Lfs<SimDisk>, staged: &[u32], limit: usize) -> Vec<SegNo> {
    fs.pick_victims(usize::MAX)
        .into_iter()
        .filter(|seg| staged.contains(&seg.0))
        .take(limit)
        .collect()
}

#[test]
fn greedy_prefers_most_free_space() {
    let mut fs = fs_with_policy(CleanerPolicy::Greedy);
    stage(
        &mut fs,
        &[(1, 12_000, 5), (2, 2_000, 1), (3, 8_000, 9), (4, 500, 3)],
    );
    let victims = staged_victims(&fs, &[1, 2, 3, 4], 3);
    assert_eq!(victims, vec![SegNo(4), SegNo(2), SegNo(3)]);
}

#[test]
fn oldest_prefers_least_recent() {
    let mut fs = fs_with_policy(CleanerPolicy::Oldest);
    stage(
        &mut fs,
        &[
            (1, 12_000, 50),
            (2, 2_000, 10),
            (3, 8_000, 90),
            (4, 500, 30),
        ],
    );
    let victims = staged_victims(&fs, &[1, 2, 3, 4], 3);
    assert_eq!(victims, vec![SegNo(2), SegNo(4), SegNo(1)]);
}

#[test]
fn cost_benefit_weighs_age_against_utilization() {
    let mut fs = fs_with_policy(CleanerPolicy::CostBenefit);
    fs.clock().advance_ns(1_000_000);
    // Same utilization, different ages: older wins.
    stage(&mut fs, &[(1, 8_000, 900_000), (2, 8_000, 100)]);
    let victims = staged_victims(&fs, &[1, 2], 2);
    assert_eq!(victims[0], SegNo(2), "older segment must rank first");

    // Same age, different utilization: emptier wins.
    let mut fs = fs_with_policy(CleanerPolicy::CostBenefit);
    fs.clock().advance_ns(1_000_000);
    stage(&mut fs, &[(1, 15_000, 100), (2, 1_000, 100)]);
    let victims = staged_victims(&fs, &[1, 2], 2);
    assert_eq!(victims[0], SegNo(2), "emptier segment must rank first");
}

#[test]
fn candidates_above_the_settable_fraction_are_skipped() {
    // §4.3.4: "segments are cleaned until all segments are either clean
    // or contain at least a file-system-settable fraction of live
    // blocks".
    let mut fs = fs_with_policy(CleanerPolicy::Greedy);
    let seg_bytes = fs.usage_table().seg_bytes();
    let nearly_full = (seg_bytes as f64 * 0.99) as u64;
    stage(&mut fs, &[(1, nearly_full, 1), (2, 100, 1)]);
    let victims = staged_victims(&fs, &[1, 2], 10);
    assert_eq!(
        victims,
        vec![SegNo(2)],
        "a ~full segment is not worth cleaning"
    );
}

#[test]
fn budget_skips_victims_that_do_not_fit() {
    let mut fs = fs_with_policy(CleanerPolicy::Greedy);
    stage(&mut fs, &[(1, 4_000, 1), (2, 6_000, 1), (3, 1_000, 1)]);
    // A budget that fits the two smallest staged victims (and whatever
    // low-occupancy segment format itself left behind).
    let mut budget = 5_500u64;
    fs.clean_pass_with_budget(&mut budget).unwrap();
    // The two staged victims within budget are pending; the over-budget
    // one stays dirty.
    assert_eq!(fs.usage_table().state(SegNo(3)), SegState::CleanPending);
    assert_eq!(fs.usage_table().state(SegNo(1)), SegState::CleanPending);
    assert_eq!(fs.usage_table().state(SegNo(2)), SegState::Dirty);
}

#[test]
fn active_segment_is_never_a_victim() {
    let mut fs = fs_with_policy(CleanerPolicy::Greedy);
    let active = fs.log_position_for_test().seg;
    stage(&mut fs, &[(5, 100, 1)]);
    let victims = fs.pick_victims(100);
    assert!(!victims.contains(&active));
}

#[test]
fn cleaning_an_empty_dirty_segment_costs_one_read() {
    let mut fs = fs_with_policy(CleanerPolicy::Greedy);
    // Produce a genuinely dirty (once written, now dead) segment.
    fs.write_file("/dies", &vec![1u8; 14 * 1024]).unwrap();
    fs.sync().unwrap();
    fs.unlink("/dies").unwrap();
    fs.sync().unwrap();
    let victims = fs.pick_victims(1);
    let seg = victims[0];
    let (blocks, inodes) = fs.clean_segment(seg).unwrap();
    // Everything in it was dead: nothing to copy.
    assert_eq!((blocks, inodes), (0, 0));
    assert_eq!(fs.usage_table().state(seg), SegState::CleanPending);
}
