//! Operational counters for experiments and debugging.

/// Counters accumulated by a mounted LFS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LfsStats {
    /// Log chunks written (each is one sequential disk transfer).
    pub chunks_written: u64,
    /// Chunks that did not fill their segment (partial segment writes).
    pub partial_chunks: u64,
    /// Segments sealed (filled and closed).
    pub segments_sealed: u64,
    /// File data blocks written to the log.
    pub data_blocks_written: u64,
    /// Indirect blocks written to the log.
    pub indirect_blocks_written: u64,
    /// Inode blocks written to the log.
    pub inode_blocks_written: u64,
    /// Inode-map blocks written to the log.
    pub imap_blocks_written: u64,
    /// Usage-table blocks written to the log.
    pub usage_blocks_written: u64,
    /// Summary blocks written (log overhead).
    pub summary_blocks_written: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Segments processed by the cleaner.
    pub segments_cleaned: u64,
    /// Live blocks the cleaner copied back into the cache.
    pub cleaner_blocks_copied: u64,
    /// Live inodes the cleaner re-dirtied.
    pub cleaner_inodes_copied: u64,
    /// Bytes of whole-segment reads performed by the cleaner.
    pub cleaner_bytes_read: u64,
    /// Cleaner passes that ran.
    pub cleaner_passes: u64,
    /// Log chunks replayed by roll-forward at the last mount.
    pub rollforward_chunks: u64,
    /// Inodes recovered by roll-forward at the last mount.
    pub rollforward_inodes: u64,
}

impl LfsStats {
    /// Total blocks written to the log, including summary overhead.
    pub fn total_log_blocks(&self) -> u64 {
        self.data_blocks_written
            + self.indirect_blocks_written
            + self.inode_blocks_written
            + self.imap_blocks_written
            + self.usage_blocks_written
            + self.summary_blocks_written
    }

    /// Fraction of written blocks that were summary overhead.
    pub fn summary_overhead(&self) -> f64 {
        let total = self.total_log_blocks();
        if total == 0 {
            0.0
        } else {
            self.summary_blocks_written as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_block_kinds() {
        let stats = LfsStats {
            data_blocks_written: 10,
            indirect_blocks_written: 2,
            inode_blocks_written: 3,
            imap_blocks_written: 1,
            usage_blocks_written: 1,
            summary_blocks_written: 3,
            ..LfsStats::default()
        };
        assert_eq!(stats.total_log_blocks(), 20);
        assert!((stats.summary_overhead() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn overhead_of_nothing_is_zero() {
        assert_eq!(LfsStats::default().summary_overhead(), 0.0);
    }
}
