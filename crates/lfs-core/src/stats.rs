//! Operational counters for experiments and debugging.
//!
//! The live counters are registry-backed [`obs`] instruments held in
//! [`LfsObs`]; [`LfsStats`] is the point-in-time snapshot the accessor
//! [`Lfs::stats`](crate::Lfs::stats) assembles from them, so existing
//! `fs.stats().field` call sites keep working while every count is also
//! visible through the shared metrics registry (and hence the JSON
//! export).

use obs::{Counter, Hist, Registry};

/// Counters accumulated by a mounted LFS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LfsStats {
    /// Log chunks written (each is one sequential disk transfer).
    pub chunks_written: u64,
    /// Chunks that did not fill their segment (partial segment writes).
    pub partial_chunks: u64,
    /// Segments sealed (filled and closed).
    pub segments_sealed: u64,
    /// File data blocks written to the log.
    pub data_blocks_written: u64,
    /// Indirect blocks written to the log.
    pub indirect_blocks_written: u64,
    /// Inode blocks written to the log.
    pub inode_blocks_written: u64,
    /// Inode-map blocks written to the log.
    pub imap_blocks_written: u64,
    /// Usage-table blocks written to the log.
    pub usage_blocks_written: u64,
    /// Summary blocks written (log overhead).
    pub summary_blocks_written: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Segments processed by the cleaner.
    pub segments_cleaned: u64,
    /// Live blocks the cleaner copied back into the cache.
    pub cleaner_blocks_copied: u64,
    /// Live inodes the cleaner re-dirtied.
    pub cleaner_inodes_copied: u64,
    /// Bytes of whole-segment reads performed by the cleaner.
    pub cleaner_bytes_read: u64,
    /// Cleaner passes that ran.
    pub cleaner_passes: u64,
    /// Incremental async-cleaner steps executed.
    pub async_steps: u64,
    /// Async cleaner runs started (low watermark crossed).
    pub async_runs_started: u64,
    /// Async cleaner runs that reached the high watermark or ran dry.
    pub async_runs_completed: u64,
    /// Victims abandoned mid-run because their segment state changed.
    pub async_victims_aborted: u64,
    /// Async victims selected off the log head's spindle.
    pub async_offspindle_victims: u64,
    /// Emergency synchronous passes taken while in async mode (the
    /// host stepped too slowly and the log neared its floor).
    pub async_emergency_passes: u64,
    /// Log chunks replayed by roll-forward at the last mount.
    pub rollforward_chunks: u64,
    /// Inodes recovered by roll-forward at the last mount.
    pub rollforward_inodes: u64,
    /// Spindle partitions that did recovery work at the last parallel
    /// roll-forward (0 when recovery ran sequentially).
    pub recovery_partitions: u64,
    /// Whole-segment reads recovery issued through the asynchronous
    /// read facade (overlapped across spindles).
    pub recovery_parallel_reads: u64,
    /// Metadata blocks the recovery gather phase prefetched into the
    /// cache ahead of the serial repair passes.
    pub recovery_prefetched_blocks: u64,
    /// Log reads verified against their per-block checksum.
    pub verified_reads: u64,
    /// Checksum mismatches detected on the read path.
    pub corruptions_detected: u64,
    /// Segments walked by the scrub pass.
    pub scrub_segments: u64,
    /// Blocks whose checksums the scrub pass verified.
    pub scrub_blocks_verified: u64,
    /// Bad or rotten live blocks the scrub pass detected.
    pub scrub_bad_blocks: u64,
    /// Bad live blocks the scrub pass rewrote to the log head.
    pub scrub_relocated: u64,
    /// Bad live blocks the scrub pass could not recover.
    pub scrub_unrecoverable: u64,
}

impl LfsStats {
    /// Total blocks written to the log, including summary overhead.
    pub fn total_log_blocks(&self) -> u64 {
        self.data_blocks_written
            + self.indirect_blocks_written
            + self.inode_blocks_written
            + self.imap_blocks_written
            + self.usage_blocks_written
            + self.summary_blocks_written
    }

    /// Fraction of written blocks that were summary overhead.
    pub fn summary_overhead(&self) -> f64 {
        let total = self.total_log_blocks();
        if total == 0 {
            0.0
        } else {
            self.summary_blocks_written as f64 / total as f64
        }
    }
}

/// Registry-backed instruments for a mounted LFS: one [`Counter`] per
/// [`LfsStats`] field plus per-operation latency histograms. All handles
/// point into the stack's shared [`Registry`], so the same numbers appear
/// in `fs.stats()`, in `Registry::snapshot`, and in the exported JSON.
pub(crate) struct LfsObs {
    pub registry: Registry,
    pub chunks_written: Counter,
    pub partial_chunks: Counter,
    pub segments_sealed: Counter,
    pub data_blocks_written: Counter,
    pub indirect_blocks_written: Counter,
    pub inode_blocks_written: Counter,
    pub imap_blocks_written: Counter,
    pub usage_blocks_written: Counter,
    pub summary_blocks_written: Counter,
    pub checkpoints: Counter,
    pub segments_cleaned: Counter,
    pub cleaner_blocks_copied: Counter,
    pub cleaner_inodes_copied: Counter,
    pub cleaner_bytes_read: Counter,
    pub cleaner_passes: Counter,
    pub async_steps: Counter,
    pub async_runs_started: Counter,
    pub async_runs_completed: Counter,
    pub async_victims_aborted: Counter,
    pub async_offspindle_victims: Counter,
    pub async_emergency_passes: Counter,
    pub rollforward_chunks: Counter,
    pub rollforward_inodes: Counter,
    pub recovery_partitions: Counter,
    pub recovery_parallel_reads: Counter,
    pub recovery_prefetched_blocks: Counter,
    pub verified_reads: Counter,
    pub corruptions_detected: Counter,
    pub scrub_segments: Counter,
    pub scrub_blocks_verified: Counter,
    pub scrub_bad_blocks: Counter,
    pub scrub_relocated: Counter,
    pub scrub_unrecoverable: Counter,
    pub op_lookup: Hist,
    pub op_create: Hist,
    pub op_mkdir: Hist,
    pub op_unlink: Hist,
    pub op_rmdir: Hist,
    pub op_rename: Hist,
    pub op_link: Hist,
    pub op_read: Hist,
    pub op_write: Hist,
    pub op_truncate: Hist,
    pub op_fsync: Hist,
    pub op_sync: Hist,
}

impl LfsObs {
    /// Registers every LFS instrument in `registry`.
    pub fn new(registry: Registry) -> Self {
        let c = |name: &str| registry.counter(name);
        let h = |name: &str| registry.hist(name);
        LfsObs {
            chunks_written: c("log.chunks_written"),
            partial_chunks: c("log.partial_chunks"),
            segments_sealed: c("log.segments_sealed"),
            data_blocks_written: c("log.data_blocks_written"),
            indirect_blocks_written: c("log.indirect_blocks_written"),
            inode_blocks_written: c("log.inode_blocks_written"),
            imap_blocks_written: c("log.imap_blocks_written"),
            usage_blocks_written: c("log.usage_blocks_written"),
            summary_blocks_written: c("log.summary_blocks_written"),
            checkpoints: c("log.checkpoints"),
            segments_cleaned: c("cleaner.segments_cleaned"),
            cleaner_blocks_copied: c("cleaner.blocks_copied"),
            cleaner_inodes_copied: c("cleaner.inodes_copied"),
            cleaner_bytes_read: c("cleaner.bytes_read"),
            cleaner_passes: c("cleaner.passes"),
            async_steps: c("cleaner.async.steps"),
            async_runs_started: c("cleaner.async.runs_started"),
            async_runs_completed: c("cleaner.async.runs_completed"),
            async_victims_aborted: c("cleaner.async.victims_aborted"),
            async_offspindle_victims: c("cleaner.async.offspindle_victims"),
            async_emergency_passes: c("cleaner.async.emergency_passes"),
            rollforward_chunks: c("recovery.rollforward_chunks"),
            rollforward_inodes: c("recovery.rollforward_inodes"),
            recovery_partitions: c("recovery.partitions"),
            recovery_parallel_reads: c("recovery.parallel_reads"),
            recovery_prefetched_blocks: c("recovery.prefetched_blocks"),
            verified_reads: c("integrity.verified_reads"),
            corruptions_detected: c("integrity.corruptions_detected"),
            scrub_segments: c("scrub.segments"),
            scrub_blocks_verified: c("scrub.blocks_verified"),
            scrub_bad_blocks: c("scrub.bad_blocks"),
            scrub_relocated: c("scrub.relocated"),
            scrub_unrecoverable: c("scrub.unrecoverable"),
            op_lookup: h("op.lookup_ns"),
            op_create: h("op.create_ns"),
            op_mkdir: h("op.mkdir_ns"),
            op_unlink: h("op.unlink_ns"),
            op_rmdir: h("op.rmdir_ns"),
            op_rename: h("op.rename_ns"),
            op_link: h("op.link_ns"),
            op_read: h("op.read_ns"),
            op_write: h("op.write_ns"),
            op_truncate: h("op.truncate_ns"),
            op_fsync: h("op.fsync_ns"),
            op_sync: h("op.sync_ns"),
            registry,
        }
    }

    /// Assembles the [`LfsStats`] snapshot from the live counters.
    pub fn stats(&self) -> LfsStats {
        LfsStats {
            chunks_written: self.chunks_written.get(),
            partial_chunks: self.partial_chunks.get(),
            segments_sealed: self.segments_sealed.get(),
            data_blocks_written: self.data_blocks_written.get(),
            indirect_blocks_written: self.indirect_blocks_written.get(),
            inode_blocks_written: self.inode_blocks_written.get(),
            imap_blocks_written: self.imap_blocks_written.get(),
            usage_blocks_written: self.usage_blocks_written.get(),
            summary_blocks_written: self.summary_blocks_written.get(),
            checkpoints: self.checkpoints.get(),
            segments_cleaned: self.segments_cleaned.get(),
            cleaner_blocks_copied: self.cleaner_blocks_copied.get(),
            cleaner_inodes_copied: self.cleaner_inodes_copied.get(),
            cleaner_bytes_read: self.cleaner_bytes_read.get(),
            cleaner_passes: self.cleaner_passes.get(),
            async_steps: self.async_steps.get(),
            async_runs_started: self.async_runs_started.get(),
            async_runs_completed: self.async_runs_completed.get(),
            async_victims_aborted: self.async_victims_aborted.get(),
            async_offspindle_victims: self.async_offspindle_victims.get(),
            async_emergency_passes: self.async_emergency_passes.get(),
            rollforward_chunks: self.rollforward_chunks.get(),
            rollforward_inodes: self.rollforward_inodes.get(),
            recovery_partitions: self.recovery_partitions.get(),
            recovery_parallel_reads: self.recovery_parallel_reads.get(),
            recovery_prefetched_blocks: self.recovery_prefetched_blocks.get(),
            verified_reads: self.verified_reads.get(),
            corruptions_detected: self.corruptions_detected.get(),
            scrub_segments: self.scrub_segments.get(),
            scrub_blocks_verified: self.scrub_blocks_verified.get(),
            scrub_bad_blocks: self.scrub_bad_blocks.get(),
            scrub_relocated: self.scrub_relocated.get(),
            scrub_unrecoverable: self.scrub_unrecoverable.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_block_kinds() {
        let stats = LfsStats {
            data_blocks_written: 10,
            indirect_blocks_written: 2,
            inode_blocks_written: 3,
            imap_blocks_written: 1,
            usage_blocks_written: 1,
            summary_blocks_written: 3,
            ..LfsStats::default()
        };
        assert_eq!(stats.total_log_blocks(), 20);
        assert!((stats.summary_overhead() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn overhead_of_nothing_is_zero() {
        assert_eq!(LfsStats::default().summary_overhead(), 0.0);
    }
}
