//! The recovery path's fanned-out metadata gather.
//!
//! Roll-forward's serial repair passes ([`fix_directories`] and
//! [`recompute_usage`]) and `fsck`'s verify phases read metadata one
//! cache miss at a time: an inode block here, an indirect block there,
//! each a synchronous single-block read that leaves every other spindle
//! idle. This module front-loads those misses: it walks the recovered
//! inode map and prefetches the blocks the serial passes are about to
//! ask for — inode blocks, indirect roots, double-indirect children,
//! and directory data — in waves through the device's asynchronous
//! read facade, so the per-spindle queues overlap in virtual time.
//!
//! The gather is *quiet* by construction, so the serial passes behave
//! bit-identically whether or not it ran:
//!
//! * a prefetched block is inserted into the cache only after its
//!   end-to-end checksum verifies (counting `verified_reads` exactly
//!   as the serial read it replaces would have);
//! * a block that fails its read or its checksum is simply *not*
//!   inserted — the serial pass re-reads it through the normal path
//!   and raises the identical typed [`Corruption`]/IO error, with the
//!   identical counters and events, exactly once;
//! * cache lookups use [`MemMgr::peek`], so recency, hit/miss stats,
//!   and pool membership are untouched.
//!
//! [`fix_directories`]: crate::recovery
//! [`recompute_usage`]: crate::recovery
//! [`Corruption`]: vfs::FsError::Corruption
//! [`MemMgr::peek`]: mem_mgr::MemMgr::peek

use block_cache::BlockKey;
use sim_disk::BlockDevice;
use vfs::blockmap::{self, NDIRECT};
use vfs::{FileKind, Ino};

use crate::fs::{idx_dchild, Lfs, IDX_DTOP, IDX_SINGLE, NS_INODE_BLOCKS};
use crate::layout::inode::inode_block;
use crate::layout::summary;
use crate::recovery::read_batch;
use crate::types::BlockAddr;

/// Reads pointer `slot` from an indirect block's raw bytes.
fn read_ptr(block: &[u8], slot: usize) -> BlockAddr {
    let start = slot * 4;
    BlockAddr(u32::from_le_bytes(
        block[start..start + 4].try_into().unwrap(),
    ))
}

impl<D: BlockDevice> Lfs<D> {
    /// Prefetches one wave of `(cache key, disk address)` targets with
    /// at most `window` reads in flight. Returns how many blocks were
    /// verified and inserted.
    fn gather_wave(&mut self, window: usize, mut targets: Vec<(BlockKey, BlockAddr)>) -> u64 {
        targets.retain(|&(key, addr)| addr.is_some() && !self.cache.contains(key));
        // Claim in ascending disk order: deterministic, and sequential
        // within each spindle's share of the address space.
        targets.sort_by_key(|&(_, addr)| addr.0);
        targets.dedup();
        let bs = self.block_size();
        let reqs: Vec<(u64, usize)> = targets
            .iter()
            .map(|&(_, addr)| (self.sector_of(addr), bs))
            .collect();
        let (results, _) = read_batch(&mut self.dev, "recovery-gather", window, &reqs);
        let mut inserted = 0u64;
        for ((key, addr), result) in targets.into_iter().zip(results) {
            let Ok(data) = result else {
                continue; // The serial pass re-reads and reports.
            };
            // An unknown checksum passes unverified, as on the serial path.
            if let Some(crc) = self.expected_crc(addr) {
                if summary::block_checksum(&data) != crc {
                    continue; // Ditto: re-read raises the corruption.
                }
                self.obs.verified_reads.inc();
            }
            self.cache.insert_clean(key, data.into_boxed_slice());
            inserted += 1;
        }
        inserted
    }

    /// Fans out the metadata reads the serial recovery/fsck passes are
    /// about to issue: wave 1 prefetches every allocated inode's inode
    /// block, wave 2 the indirect roots and direct directory data those
    /// inodes point at, wave 3 the double-indirect children and the
    /// single-indirect span of each directory. Returns the number of
    /// blocks prefetched (also added to `recovery.prefetched_blocks`).
    pub(crate) fn gather_metadata(&mut self, window: usize) -> u64 {
        self.dev.set_maintenance(true);
        let bs = self.block_size();
        let ppb = self.sb.ptrs_per_block();
        let mut prefetched = 0u64;

        // Wave 1: inode blocks, straight off the inode map.
        let inos: Vec<Ino> = self.imap.allocated_inos().collect();
        let mut wave: Vec<(BlockKey, BlockAddr)> = Vec::new();
        for &ino in &inos {
            if let Ok(entry) = self.imap.get(ino) {
                if entry.allocated && entry.addr.is_some() {
                    wave.push((
                        BlockKey::meta(NS_INODE_BLOCKS, entry.addr.0 as u64),
                        entry.addr,
                    ));
                }
            }
        }
        prefetched += self.gather_wave(window, wave);

        // Wave 2: peek the now-cached inode blocks for each inode's
        // indirect roots and (for directories) direct data blocks. An
        // inode whose block did not land stays on the serial path.
        let mut wave: Vec<(BlockKey, BlockAddr)> = Vec::new();
        let mut dtops: Vec<Ino> = Vec::new();
        let mut dirs: Vec<(Ino, u64)> = Vec::new();
        for &ino in &inos {
            let Ok(entry) = self.imap.get(ino) else {
                continue;
            };
            if !entry.allocated || entry.addr.is_nil() {
                continue;
            }
            let key = BlockKey::meta(NS_INODE_BLOCKS, entry.addr.0 as u64);
            let Some(block) = self.cache.peek(key) else {
                continue;
            };
            let Ok(Some(inode)) = inode_block::unpack_slot(block, entry.slot as usize) else {
                continue;
            };
            if inode.ino != ino {
                continue;
            }
            wave.push((BlockKey::file(ino, IDX_SINGLE), inode.single));
            wave.push((BlockKey::file(ino, IDX_DTOP), inode.double));
            let nblocks = blockmap::blocks_for_size(inode.size, bs);
            if inode.kind == FileKind::Directory {
                for bno in 0..nblocks.min(NDIRECT as u64) {
                    wave.push((BlockKey::file(ino, bno), inode.direct[bno as usize]));
                }
                if inode.single.is_some() {
                    dirs.push((ino, nblocks));
                }
            }
            if inode.double.is_some() {
                dtops.push(ino);
            }
        }
        prefetched += self.gather_wave(window, wave);

        // Wave 3: second-level pointers now reachable through wave 2.
        let mut wave: Vec<(BlockKey, BlockAddr)> = Vec::new();
        for ino in dtops {
            let Some(block) = self.cache.peek(BlockKey::file(ino, IDX_DTOP)) else {
                continue;
            };
            let children: Vec<BlockAddr> = (0..ppb).map(|slot| read_ptr(block, slot)).collect();
            for (outer, child) in children.into_iter().enumerate() {
                wave.push((BlockKey::file(ino, idx_dchild(outer as u32)), child));
            }
        }
        for (ino, nblocks) in dirs {
            let Some(block) = self.cache.peek(BlockKey::file(ino, IDX_SINGLE)) else {
                continue;
            };
            let hi = nblocks.min(NDIRECT as u64 + ppb as u64);
            let spans: Vec<(u64, BlockAddr)> = (NDIRECT as u64..hi)
                .map(|bno| (bno, read_ptr(block, (bno - NDIRECT as u64) as usize)))
                .collect();
            for (bno, addr) in spans {
                wave.push((BlockKey::file(ino, bno), addr));
            }
        }
        prefetched += self.gather_wave(window, wave);

        self.dev.set_maintenance(false);
        self.obs.recovery_prefetched_blocks.add(prefetched);
        prefetched
    }
}
