//! Core address types for the log-structured layout.

use std::fmt;

/// A file-system block address: the block's index on the device, in
/// FS-block units (not sectors).
///
/// `BlockAddr::NIL` marks "no block" — a hole in a file or an unset
/// pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr(pub u32);

impl BlockAddr {
    /// The null address.
    pub const NIL: BlockAddr = BlockAddr(u32::MAX);

    /// Returns true if this address points at a real block.
    pub fn is_some(self) -> bool {
        self != Self::NIL
    }

    /// Returns true if this is the null address.
    pub fn is_nil(self) -> bool {
        self == Self::NIL
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nil() {
            write!(f, "NIL")
        } else {
            write!(f, "blk{}", self.0)
        }
    }
}

/// A segment number: the index of a segment within the log region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegNo(pub u32);

impl SegNo {
    /// The null segment number.
    pub const NIL: SegNo = SegNo(u32::MAX);

    /// Returns true if this is a real segment number.
    pub fn is_some(self) -> bool {
        self != Self::NIL
    }
}

impl fmt::Display for SegNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Self::NIL {
            write!(f, "segNIL")
        } else {
            write!(f, "seg{}", self.0)
        }
    }
}

/// On-disk size of one inode, in bytes.
pub const INODE_SIZE: usize = 128;

/// On-disk size of one inode-map entry, in bytes.
pub const IMAP_ENTRY_SIZE: usize = 24;

/// On-disk size of one segment-usage entry, in bytes.
pub const USAGE_ENTRY_SIZE: usize = 16;

/// On-disk size of one segment-summary entry, in bytes.
///
/// tag (1) + pad (3) + ino (4) + param (4) + version (4) + per-block
/// CRC-32C (4).
pub const SUMMARY_ENTRY_SIZE: usize = 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_addresses() {
        assert!(BlockAddr::NIL.is_nil());
        assert!(!BlockAddr::NIL.is_some());
        assert!(BlockAddr(0).is_some());
        assert_eq!(format!("{}", BlockAddr(7)), "blk7");
        assert_eq!(format!("{}", BlockAddr::NIL), "NIL");
    }

    #[test]
    fn seg_numbers() {
        assert!(!SegNo::NIL.is_some());
        assert!(SegNo(0).is_some());
        assert_eq!(format!("{}", SegNo(3)), "seg3");
    }
}
