//! The segment writer (§4.1).
//!
//! A [`ChunkBuilder`] accumulates blocks for one log *chunk*: the unit of
//! a single sequential disk transfer, consisting of summary block(s)
//! followed by payload blocks. A full segment write is one chunk spanning
//! the whole segment; a partial segment write (sync, age threshold, §4.3.5)
//! is a smaller chunk appended at the segment's current fill point.
//!
//! The summary area is sized for the worst case (the chunk filling the
//! rest of the segment) so payload block addresses are known the moment a
//! block is added — they go straight into inode and indirect-block
//! pointers while the chunk is still being built.

use crate::layout::summary::{self, BlockKind, ChunkSummary, SummaryEntry};
use crate::types::{BlockAddr, SegNo};

/// The current append position of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogPosition {
    /// Segment currently open for writing.
    pub seg: SegNo,
    /// Next free block offset within the segment.
    pub offset: u32,
    /// Next chunk (partial-write) index within the segment.
    pub partial: u32,
    /// Sequence number of the current segment incarnation.
    pub seq: u64,
}

/// Plans the summary area for a chunk starting with `remaining` free
/// blocks in its segment.
///
/// Returns `(summary_blocks, payload_capacity)`, or `None` if there is not
/// enough room for at least one summary block and one payload block (the
/// segment should be sealed instead).
pub fn plan_chunk(remaining: usize, block_size: usize) -> Option<(usize, usize)> {
    for s in 1..remaining {
        let capacity = remaining - s;
        if ChunkSummary::summary_blocks(capacity, block_size) <= s {
            return Some((s, capacity));
        }
    }
    None
}

/// A finished chunk, ready to be written with one disk transfer.
#[derive(Debug)]
pub struct FinishedChunk {
    /// Disk address of the first (summary) block.
    pub addr: BlockAddr,
    /// The raw bytes: summary blocks followed by payload blocks.
    pub bytes: Vec<u8>,
    /// Total blocks consumed from the segment (summary + payload).
    pub blocks_used: u32,
    /// Summary blocks consumed (log overhead).
    pub summary_blocks: u32,
    /// Payload blocks written.
    pub payload_blocks: u32,
    /// Per-payload-block end-to-end checksums, in payload order — the
    /// same values stamped into the summary entries, exposed so the
    /// writer can remember what each block should read back as.
    pub entry_crcs: Vec<u32>,
}

/// Accumulates blocks for one chunk.
#[derive(Debug)]
pub struct ChunkBuilder {
    seg: SegNo,
    /// Disk address of the chunk start.
    start_addr: BlockAddr,
    summary_blocks: usize,
    capacity: usize,
    block_size: usize,
    entries: Vec<SummaryEntry>,
    payload: Vec<u8>,
}

impl ChunkBuilder {
    /// Starts a chunk at `start` within segment `seg` (whose block 0 has
    /// disk address `seg_base`), with `remaining` free blocks.
    ///
    /// Returns `None` when the tail of the segment is too small to be
    /// worth a chunk — the caller should seal the segment.
    pub fn new(
        seg: SegNo,
        seg_base: BlockAddr,
        start: u32,
        remaining: usize,
        block_size: usize,
    ) -> Option<Self> {
        let (summary_blocks, capacity) = plan_chunk(remaining, block_size)?;
        Some(Self {
            seg,
            start_addr: BlockAddr(seg_base.0 + start),
            summary_blocks,
            capacity,
            block_size,
            entries: Vec::new(),
            payload: Vec::new(),
        })
    }

    /// The segment this chunk is being built in.
    pub fn seg(&self) -> SegNo {
        self.seg
    }

    /// Payload blocks added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if no payload has been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload blocks that can still be added.
    pub fn remaining(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Returns true if the chunk has reached its payload capacity.
    pub fn is_full(&self) -> bool {
        self.remaining() == 0
    }

    /// Total segment blocks this chunk will consume when finished
    /// (reserved summary area plus payload so far).
    pub fn blocks_used(&self) -> u32 {
        (self.summary_blocks + self.entries.len()) as u32
    }

    /// Adds one payload block and returns its disk address.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is full or the block size is wrong.
    pub fn add(&mut self, kind: BlockKind, version: u32, data: &[u8]) -> BlockAddr {
        assert!(!self.is_full(), "chunk is full");
        assert_eq!(data.len(), self.block_size, "payload block size mismatch");
        let index = self.entries.len() as u32;
        // The per-block CRC is stamped in `finish` so `replace_payload`
        // patches stay covered; a placeholder keeps the entry well-formed.
        self.entries.push(SummaryEntry {
            kind,
            version,
            crc: 0,
        });
        self.payload.extend_from_slice(data);
        BlockAddr(self.start_addr.0 + self.summary_blocks as u32 + index)
    }

    /// Replaces the payload of block `index` (0-based within this
    /// chunk). Used by the checkpoint to re-encode the segment usage
    /// table *after* the placement of the table's own blocks has been
    /// accounted — the data CRC is computed at finish, so patching here
    /// is safe.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the size differs.
    pub fn replace_payload(&mut self, index: usize, data: &[u8]) {
        assert!(index < self.entries.len(), "payload index out of range");
        assert_eq!(data.len(), self.block_size, "payload block size mismatch");
        let start = index * self.block_size;
        self.payload[start..start + self.block_size].copy_from_slice(data);
    }

    /// Seals the chunk into writable bytes.
    pub fn finish(
        self,
        seq: u64,
        partial: u32,
        timestamp_ns: u64,
        next_seg: SegNo,
    ) -> FinishedChunk {
        let mut entries = self.entries;
        // Stamp each entry's end-to-end checksum over the final payload
        // bytes (after any `replace_payload` patches).
        for (i, entry) in entries.iter_mut().enumerate() {
            let start = i * self.block_size;
            entry.crc = summary::block_checksum(&self.payload[start..start + self.block_size]);
        }
        let payload_blocks = entries.len() as u32;
        let entry_crcs: Vec<u32> = entries.iter().map(|e| e.crc).collect();
        // The summary area was sized for the worst case; the actual
        // summary may need fewer blocks, but we keep the reserved size so
        // payload addresses remain valid. Extra summary blocks are dead
        // space reclaimed by the cleaner like any other.
        let summary = ChunkSummary {
            addr: self.start_addr,
            seq,
            partial,
            timestamp_ns,
            next_seg,
            data_crc: summary::data_checksum(&self.payload),
            reserved_blocks: self.summary_blocks as u32,
            entries,
        };
        let mut bytes = summary.encode(self.block_size);
        let reserved = self.summary_blocks * self.block_size;
        assert!(
            bytes.len() <= reserved,
            "summary exceeded its reserved area"
        );
        bytes.resize(reserved, 0);
        bytes.extend_from_slice(&self.payload);
        FinishedChunk {
            addr: self.start_addr,
            bytes,
            blocks_used: self.summary_blocks as u32 + payload_blocks,
            summary_blocks: self.summary_blocks as u32,
            payload_blocks,
            entry_crcs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::Ino;

    #[test]
    fn plan_chunk_matches_paper_geometry() {
        // 256-block segment of 4 KB blocks: 2 summary blocks, 254 payload.
        assert_eq!(plan_chunk(256, 4096), Some((2, 254)));
        // Small tail: 1 summary + 1 payload.
        assert_eq!(plan_chunk(2, 4096), Some((1, 1)));
        // Too small for anything.
        assert_eq!(plan_chunk(1, 4096), None);
        assert_eq!(plan_chunk(0, 4096), None);
    }

    #[test]
    fn plan_chunk_summary_always_fits() {
        for bs in [512usize, 4096] {
            for remaining in 2..300 {
                if let Some((s, capacity)) = plan_chunk(remaining, bs) {
                    assert_eq!(s + capacity, remaining);
                    assert!(ChunkSummary::summary_blocks(capacity, bs) <= s);
                }
            }
        }
    }

    #[test]
    fn builder_assigns_contiguous_addresses() {
        let mut b = ChunkBuilder::new(SegNo(0), BlockAddr(100), 4, 10, 512).unwrap();
        // 512-byte blocks: one summary block covers plenty of entries.
        let a0 = b.add(
            BlockKind::Data {
                ino: Ino(1),
                bno: 0,
            },
            1,
            &[0xAA; 512],
        );
        let a1 = b.add(
            BlockKind::Data {
                ino: Ino(1),
                bno: 1,
            },
            1,
            &[0xBB; 512],
        );
        // Chunk starts at offset 4 in a segment based at block 100, and
        // one summary block precedes the payload.
        assert_eq!(a0, BlockAddr(105));
        assert_eq!(a1, BlockAddr(106));
    }

    #[test]
    fn finished_chunk_round_trips_through_summary_decode() {
        let mut b = ChunkBuilder::new(SegNo(2), BlockAddr(64), 0, 32, 512).unwrap();
        b.add(
            BlockKind::Data {
                ino: Ino(3),
                bno: 7,
            },
            5,
            &[1; 512],
        );
        b.add(BlockKind::InodeBlock, 0, &[2; 512]);
        let chunk = b.finish(9, 1, 777, SegNo::NIL);
        assert_eq!(chunk.addr, BlockAddr(64));
        assert_eq!(chunk.payload_blocks, 2);
        assert_eq!(chunk.bytes.len(), (chunk.blocks_used as usize) * 512);

        let summary = ChunkSummary::decode(&chunk.bytes).unwrap();
        assert_eq!(summary.seq, 9);
        assert_eq!(summary.partial, 1);
        assert_eq!(summary.entries.len(), 2);
        let payload_start = chunk.summary_blocks as usize * 512;
        assert_eq!(
            summary.data_crc,
            summary::data_checksum(&chunk.bytes[payload_start..])
        );
    }

    #[test]
    fn finish_stamps_per_block_checksums_after_patches() {
        let mut b = ChunkBuilder::new(SegNo(1), BlockAddr(0), 0, 8, 512).unwrap();
        b.add(
            BlockKind::Data {
                ino: Ino(2),
                bno: 0,
            },
            1,
            &[0x11; 512],
        );
        b.add(BlockKind::UsageBlock { index: 0 }, 0, &[0x22; 512]);
        // Patch the usage block after placement, as the checkpoint does.
        b.replace_payload(1, &[0x33; 512]);
        let chunk = b.finish(1, 0, 0, SegNo::NIL);
        let summary = ChunkSummary::decode(&chunk.bytes).unwrap();
        assert_eq!(summary.entries[0].crc, summary::block_checksum(&[0x11; 512]));
        assert_eq!(
            summary.entries[1].crc,
            summary::block_checksum(&[0x33; 512]),
            "the patched bytes must be the covered bytes"
        );
    }

    #[test]
    fn is_full_stops_at_capacity() {
        let mut b = ChunkBuilder::new(SegNo(0), BlockAddr(10), 0, 3, 512).unwrap();
        // remaining=3: 1 summary + 2 payload.
        assert_eq!(b.remaining(), 2);
        b.add(BlockKind::InodeBlock, 0, &[0; 512]);
        b.add(BlockKind::InodeBlock, 0, &[0; 512]);
        assert!(b.is_full());
    }

    #[test]
    #[should_panic(expected = "chunk is full")]
    fn add_past_capacity_panics() {
        let mut b = ChunkBuilder::new(SegNo(0), BlockAddr(10), 0, 2, 512).unwrap();
        b.add(BlockKind::InodeBlock, 0, &[0; 512]);
        b.add(BlockKind::InodeBlock, 0, &[0; 512]);
    }
}
