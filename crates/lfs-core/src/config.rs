//! File-system configuration.

use block_cache::WritebackPolicy;
use mem_mgr::CachePolicy;

use crate::cleaner::CleanerConfig;

/// Tunable parameters of an LFS file system.
///
/// [`LfsConfig::paper`] reproduces the configuration of the paper's §5
/// evaluation: 4 KB blocks, 1 MB segments, a ~15 MB file cache, 30-second
/// write-back and checkpoint intervals.
#[derive(Debug, Clone)]
pub struct LfsConfig {
    /// File-system block size in bytes. Must be a multiple of the sector
    /// size and a power of two.
    pub block_size: usize,
    /// Segment size in bytes. Must be a multiple of `block_size`.
    pub segment_bytes: usize,
    /// Maximum number of inodes (sets the inode-map size at format time).
    pub max_inodes: u32,
    /// File-cache capacity in bytes.
    pub cache_bytes: usize,
    /// Write-back policy (age threshold, dirty high-water mark).
    pub writeback: WritebackPolicy,
    /// Memory-manager policy: a single shared LRU over all cached
    /// blocks (the paper's file cache), or the adaptive split into a
    /// write buffer and a scan-resistant read cache with a tuned
    /// boundary between them.
    pub cache_policy: CachePolicy,
    /// Interval between automatic checkpoints, in virtual nanoseconds.
    pub checkpoint_interval_ns: u64,
    /// Segment-cleaner configuration.
    pub cleaner: CleanerConfig,
    /// Maximum fraction of log capacity that live data may occupy.
    /// §5.3's closing question — "how full LFS can allow the disk to
    /// become and still keep the cleaning cost down" — has a hard edge:
    /// above ~90 % the cleaner reclaims less per pass than its own
    /// checkpoints consume and the log wedges. Writes that would push
    /// live data past this fraction fail with `NoSpace` instead.
    pub max_utilization: f64,
    /// Whether mount attempts roll-forward past the last checkpoint
    /// (the paper's "ultimately LFS will recover" design, §4.4.1).
    pub roll_forward: bool,
    /// Whether `fsync` forces a checkpoint so the synced data is
    /// recoverable even with `roll_forward` disabled.
    pub fsync_checkpoints: bool,
    /// Segment-align the fixed metadata regions at format time, so the
    /// superblock and each checkpoint region start on their own
    /// segment boundary (padding the gaps).
    ///
    /// On a parity volume whose stripe rows coincide with segments,
    /// this confines every in-place metadata rewrite to rows that hold
    /// nothing else. That closes half of the degraded-array write
    /// hole: a checkpoint write torn by a crash can stale only its own
    /// row's parity, so a later XOR reconstruction of a lost spindle
    /// can garble only the region being written — which its own
    /// checksum already rejects — never an unrelated committed block.
    /// The other half of the hole lives in the log itself and needs
    /// [`seal_on_flush`] as well.
    ///
    /// Off by default; single-disk layouts gain nothing from the
    /// padding.
    ///
    /// [`seal_on_flush`]: LfsConfig::seal_on_flush
    pub segment_align_metadata: bool,
    /// Seal the open segment at the end of every flush, so no later
    /// flush ever appends into a segment that already holds committed
    /// chunks.
    ///
    /// On a parity volume whose stripe rows coincide with segments,
    /// appending a chunk rewrites the row's parity in place. If the
    /// crash lands between the append's data writes and its parity
    /// write, the row's XOR is stale at every in-row offset the append
    /// changed — and if an *earlier, committed* chunk shares the row, a
    /// later reconstruction of a lost spindle garbles that committed
    /// chunk at the matching offsets. No write ordering fixes this
    /// (data-before-parity and parity-before-data are symmetric), so
    /// the fix is structural: with this knob each parity row only ever
    /// holds chunks of a single flush. A torn row then contains only
    /// that flush's uncommitted tail, which roll-forward's payload
    /// CRCs and chunk self-addresses already fence. Sealed rows are
    /// write-once until the cleaner reclaims the whole segment.
    ///
    /// The forced seal stamps a `next_seg` link in the flush's final
    /// chunk, so roll-forward can still follow the chain across the
    /// mid-segment boundary. Off by default: on a single disk it only
    /// costs segment-tail fragmentation (which the cleaner reclaims)
    /// without buying anything.
    pub seal_on_flush: bool,
    /// Recovery read fan-out: how many spindle partitions the recovery
    /// path (roll-forward, fsck's gather phase, scrub's gather phase)
    /// keeps in flight at once through the device's asynchronous read
    /// facade.
    ///
    /// `1` (the default) is strictly sequential — the recovery code
    /// takes the same synchronous path it always has. `0` means "ask
    /// the device": the fan-out becomes [`BlockDevice::fanout`], i.e.
    /// the spindle count of a striped volume. Any other value is used
    /// as-is. The recovered state is bit-identical at every setting;
    /// only the virtual time spent recovering changes.
    ///
    /// [`BlockDevice::fanout`]: sim_disk::BlockDevice::fanout
    pub recovery_fanout: usize,
}

impl LfsConfig {
    /// The configuration used in the paper's evaluation (§5).
    pub fn paper() -> Self {
        Self {
            block_size: 4096,
            segment_bytes: 1024 * 1024,
            max_inodes: 65_536,
            cache_bytes: 15 * 1024 * 1024,
            writeback: WritebackPolicy::paper(),
            cache_policy: CachePolicy::SharedLru,
            checkpoint_interval_ns: 30 * 1_000_000_000,
            cleaner: CleanerConfig::default(),
            max_utilization: 0.88,
            roll_forward: true,
            fsync_checkpoints: false,
            segment_align_metadata: false,
            seal_on_flush: false,
            recovery_fanout: 1,
        }
    }

    /// A miniature configuration for fast unit tests on tiny disks:
    /// 512-byte blocks, 16 KB segments, 512 inodes, 64 KB cache.
    pub fn small_test() -> Self {
        Self {
            block_size: 512,
            segment_bytes: 16 * 1024,
            max_inodes: 512,
            cache_bytes: 64 * 1024,
            writeback: WritebackPolicy::paper(),
            cache_policy: CachePolicy::SharedLru,
            checkpoint_interval_ns: 30 * 1_000_000_000,
            cleaner: CleanerConfig::default(),
            max_utilization: 0.88,
            roll_forward: true,
            fsync_checkpoints: false,
            segment_align_metadata: false,
            seal_on_flush: false,
            recovery_fanout: 1,
        }
    }

    /// Blocks per segment.
    pub fn seg_blocks(&self) -> usize {
        self.segment_bytes / self.block_size
    }

    /// The natural striping unit for this configuration: one full
    /// segment, so each log segment lands on a single spindle and
    /// successive segments rotate round-robin across the array.
    pub fn stripe_chunk_bytes(&self) -> usize {
        self.segment_bytes
    }

    /// Cache capacity in blocks.
    pub fn cache_blocks(&self) -> usize {
        (self.cache_bytes / self.block_size).max(8)
    }

    /// Builder-style override of the block size.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Builder-style override of the segment size.
    pub fn with_segment_bytes(mut self, segment_bytes: usize) -> Self {
        self.segment_bytes = segment_bytes;
        self
    }

    /// Builder-style override of the cache size.
    pub fn with_cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    /// Builder-style override of the memory-manager cache policy.
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Builder-style override of the checkpoint interval (seconds).
    pub fn with_checkpoint_secs(mut self, secs: f64) -> Self {
        self.checkpoint_interval_ns = (secs * 1e9) as u64;
        self
    }

    /// Builder-style enable of [`segment_align_metadata`]
    /// (see that field for the parity write-hole rationale).
    ///
    /// [`segment_align_metadata`]: LfsConfig::segment_align_metadata
    pub fn with_segment_aligned_metadata(mut self) -> Self {
        self.segment_align_metadata = true;
        self
    }

    /// Builder-style override of [`recovery_fanout`]: `1` sequential,
    /// `0` match the device's spindle count, `n` explicit.
    ///
    /// [`recovery_fanout`]: LfsConfig::recovery_fanout
    pub fn with_recovery_fanout(mut self, fanout: usize) -> Self {
        self.recovery_fanout = fanout;
        self
    }

    /// Builder-style enable of [`seal_on_flush`]
    /// (see that field for the parity write-hole rationale).
    ///
    /// [`seal_on_flush`]: LfsConfig::seal_on_flush
    pub fn with_seal_on_flush(mut self) -> Self {
        self.seal_on_flush = true;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on an invalid configuration;
    /// called from `format`/`mount`.
    pub fn validate(&self) {
        assert!(
            self.block_size >= sim_disk::SECTOR_SIZE
                && self.block_size.is_multiple_of(sim_disk::SECTOR_SIZE),
            "block size must be a multiple of the sector size"
        );
        assert!(
            self.block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(
            self.segment_bytes.is_multiple_of(self.block_size),
            "segment size must be a multiple of the block size"
        );
        assert!(
            self.seg_blocks() >= 4,
            "segments must hold at least 4 blocks (summary + data)"
        );
        assert!(self.max_inodes >= 2, "need at least the root inode");
    }
}

impl Default for LfsConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_5() {
        let cfg = LfsConfig::paper();
        assert_eq!(cfg.block_size, 4096);
        assert_eq!(cfg.segment_bytes, 1 << 20);
        assert_eq!(cfg.seg_blocks(), 256);
        assert_eq!(cfg.checkpoint_interval_ns, 30_000_000_000);
        cfg.validate();
    }

    #[test]
    fn small_test_config_is_valid() {
        let cfg = LfsConfig::small_test();
        cfg.validate();
        assert_eq!(cfg.seg_blocks(), 32);
    }

    #[test]
    #[should_panic(expected = "multiple of the block size")]
    fn validate_rejects_misaligned_segment() {
        LfsConfig::paper().with_segment_bytes(5000).validate();
    }

    #[test]
    fn builders_override_fields() {
        let cfg = LfsConfig::paper()
            .with_block_size(8192)
            .with_segment_bytes(2 << 20)
            .with_cache_bytes(1 << 20)
            .with_checkpoint_secs(5.0);
        assert_eq!(cfg.block_size, 8192);
        assert_eq!(cfg.seg_blocks(), (2 << 20) / 8192);
        assert_eq!(cfg.cache_blocks(), (1 << 20) / 8192);
        assert_eq!(cfg.checkpoint_interval_ns, 5_000_000_000);
    }
}
